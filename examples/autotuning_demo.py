"""Launch-parameter tuning: the analytical model vs exhaustive search.

Reproduces the Figure-6 study interactively: resolves the §3.3 model's
launch parameters for a sparse matrix (Eq. 4 vector size, occupancy-driven
block size, Eq. 5 coarsening), sweeps ~1,200 alternative settings through
the cost model, and reports where the analytical pick lands.

Run:  python examples/autotuning_demo.py
"""

from repro.gpu.device import GTX_TITAN
from repro.gpu.occupancy import occupancy
from repro.sparse import random_csr
from repro.tuning import autotune_sparse, tune_sparse

def main() -> None:
    m, n = 100_000, 1024
    print(f"matrix: {m} x {n} sparse, sparsity 0.01 "
          "(the paper's Figure-6 workload, scaled)")
    X = random_csr(m, n, sparsity=0.01, rng=0)

    params = tune_sparse(X, GTX_TITAN)
    print(f"\nanalytical model (§3.3):")
    print(f"  mu (mean nnz/row)     = {X.mean_row_nnz:.1f}")
    print(f"  vector size VS (Eq.4) = {params.vector_size}")
    print(f"  block size BS         = {params.block_size}")
    print(f"  coarsening C (Eq.5)   = {params.coarsening} rows/vector")
    print(f"  grid size             = {params.grid_size} blocks")
    print(f"  shared memory         = {params.shared_bytes} B/block")
    print(f"  variant               = {params.variant}")
    occ = occupancy(GTX_TITAN, params.block_size, params.registers,
                    params.shared_bytes)
    print(f"  occupancy             = {occ.blocks_per_sm} blocks/SM, "
          f"{occ.warps_per_sm} warps/SM (limited by {occ.limited_by})")

    print("\nsweeping the exhaustive search space...")
    at = autotune_sparse(X, GTX_TITAN)
    print(f"  settings explored     = {len(at.settings)}")
    print(f"  best setting          = VS={at.best.vector_size} "
          f"BS={at.best.block_size} RpV={at.best.rows_per_vector} "
          f"-> {at.best.time_ms:.4f} ms")
    print(f"  model's setting       = VS={at.model_setting.vector_size} "
          f"BS={at.model_setting.block_size} "
          f"RpV={at.model_setting.rows_per_vector} "
          f"-> {at.model_setting.time_ms:.4f} ms")
    print(f"  worst setting         = {at.worst.time_ms:.4f} ms "
          f"({at.worst.time_ms / at.best.time_ms:.1f}x the best)")
    print(f"\n  model gap from optimum: {100 * at.model_gap:.2f}% "
          "(paper: < 2%)")
    print(f"  settings faster than the model's pick: "
          f"{100 * at.model_rank_fraction:.1f}%")

    print("\ntop-5 settings:")
    for s in sorted(at.settings, key=lambda s: s.time_ms)[:5]:
        print(f"  VS={s.vector_size:3d} BS={s.block_size:5d} "
              f"RpV={s.rows_per_vector:6d} grid={s.grid_size:5d} "
              f"-> {s.time_ms:.4f} ms")


if __name__ == "__main__":
    main()
