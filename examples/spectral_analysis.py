"""Spectral analysis with the multi-RHS fused pattern.

Computes the top-r singular directions of a document-feature matrix by block
power iteration — every iteration is *one* fused kernel that reads the
matrix once for all r directions (``repro.kernels.fused_pattern_multi``),
the block generalization of the HITS column of Table 1.  Compares against r
independent single-vector iterations and against exact eigenpairs.

Run:  python examples/spectral_analysis.py
"""

import numpy as np

from repro.kernels import fused_pattern_multi, fused_pattern_sparse
from repro.ml import subspace_iteration
from repro.sparse import power_law_csr

def main() -> None:
    rng = np.random.default_rng(0)
    m, n, r = 8000, 600, 5
    print(f"building a {m} x {n} power-law document-feature matrix...")
    X = power_law_csr(m, n, nnz_target=120_000, alpha=1.4, rng=1)
    print(f"nnz = {X.nnz}, mu = {X.mean_row_nnz:.1f}\n")

    # ---- the kernel-level story --------------------------------------------
    B = rng.normal(size=(n, r))
    multi = fused_pattern_multi(X, B)
    seq_ms = sum(fused_pattern_sparse(X, B[:, j]).time_ms for j in range(r))
    print(f"one block iteration, r={r} directions:")
    print(f"  multi-RHS fused kernel : {multi.time_ms:8.4f} model-ms")
    print(f"  {r} single-RHS kernels   : {seq_ms:8.4f} model-ms")
    print(f"  block saving           : {seq_ms / multi.time_ms:8.2f}x\n")

    # ---- full subspace iteration ---------------------------------------------
    res = subspace_iteration(X, r=r, rng=2, max_iterations=300, tol=1e-10)
    print(f"subspace iteration: {res.iterations} iterations, "
          f"{res.total_time_ms:.2f} model-ms")
    print(f"top-{r} singular values: "
          f"{np.round(res.singular_values, 2)}")

    # exact check on the small dense shadow
    A = X.to_dense()
    exact = np.sqrt(np.linalg.eigvalsh(A.T @ A)[::-1][:r])
    rel = np.abs(res.singular_values - exact) / exact
    print(f"relative error vs exact eigensolve: {rel.max():.2e}")
    assert rel.max() < 1e-4

    # the leading direction identifies the hottest features
    top_features = np.argsort(-np.abs(res.vectors[:, 0]))[:5]
    counts = X.column_counts()
    print(f"\nleading direction's top features: {top_features.tolist()}")
    print(f"their column popularity ranks:    "
          f"{[int(np.argsort(-counts).tolist().index(f)) for f in top_features]}")


if __name__ == "__main__":
    main()
