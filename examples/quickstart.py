"""Quickstart: evaluate the paper's generic pattern under every strategy.

Builds a synthetic sparse matrix, evaluates

    w = alpha * X^T x (v ⊙ (X x y)) + beta * z

with the fused kernel and the operator-level baselines, and prints the model
times and speedups — a one-screen version of Figure 4.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import evaluate, pattern_of
from repro.sparse import random_csr

def main() -> None:
    rng = np.random.default_rng(0)
    m, n = 50_000, 1024
    print(f"building a {m} x {n} sparse matrix (sparsity 0.01)...")
    X = random_csr(m, n, sparsity=0.01, rng=1)
    y = rng.normal(size=n)
    v = rng.normal(size=m)
    z = rng.normal(size=n)

    inst = pattern_of(X, y, v=v, z=z, beta=0.5)
    print(f"pattern instantiation: {inst.value}")
    print(f"nnz = {X.nnz}, mean row length mu = {X.mean_row_nnz:.1f}\n")

    results = {}
    for strategy in ("fused", "cusparse", "bidmat-gpu", "bidmat-cpu"):
        res = evaluate(X, y, v=v, z=z, alpha=2.0, beta=0.5,
                       strategy=strategy, check=True)
        results[strategy] = res
        loads = res.counters.global_load_transactions
        print(f"{strategy:>12}: {res.time_ms:8.3f} model-ms   "
              f"loads={loads:12.0f}   launches="
              f"{res.counters.kernel_launches:.0f}")

    fused_ms = results["fused"].time_ms
    print("\nspeedups over the fused kernel's competitors:")
    for strategy, res in results.items():
        if strategy != "fused":
            print(f"   vs {strategy:>12}: {res.time_ms / fused_ms:6.1f}x")

    # every strategy computed the same vector
    ref = results["fused"].output
    for strategy, res in results.items():
        assert np.allclose(res.output, ref, rtol=1e-9)
    print("\nall strategies agree numerically ✓")


if __name__ == "__main__":
    main()
