"""Out-of-core streaming and hybrid CPU/GPU execution of the pattern.

Demonstrates the paper's two stated extensions: the §3 streaming adaptation
(row blocks double-buffered over PCIe, kernel of block *i* overlapping the
transfer of block *i+1*) and the §5 future-work hybrid execution (a
cost-model-chosen row split between the fused GPU kernel and the CPU).

Run:  python examples/out_of_core_hybrid.py
"""

import numpy as np

from repro.core import GenericPattern, HybridExecutor, StreamingExecutor
from repro.gpu.device import GTX_TITAN
from repro.kernels.base import GpuContext
from repro.sparse import random_csr
from repro.sparse.ops import fused_pattern_reference

def main() -> None:
    rng = np.random.default_rng(0)
    m, n = 150_000, 512
    print(f"building a {m} x {n} sparse matrix (sparsity 0.01)...")
    X = random_csr(m, n, sparsity=0.01, rng=1)
    y = rng.normal(size=n)
    pattern = GenericPattern(X, y)
    ref = fused_pattern_reference(X, y)

    # ---- streaming: pretend the device only stages 1/8 of X ----------------
    print("\n== out-of-core streaming (staging budget = X/8) ==")
    ex = StreamingExecutor(budget_bytes=X.nbytes() / 8)
    rep = ex.evaluate(pattern)
    assert np.allclose(rep.output, ref, rtol=1e-9)
    serial = ex.serial_time_ms(rep)
    print(f"blocks                = {rep.blocks}")
    print(f"kernel time           = {rep.kernel_ms:8.3f} model-ms")
    print(f"transfer time         = {rep.transfer_ms:8.3f} model-ms")
    print(f"serial (no overlap)   = {serial:8.3f} model-ms")
    print(f"overlapped critical   = {rep.overlapped_ms:8.3f} model-ms "
          f"({100 * (1 - rep.overlapped_ms / serial):.1f}% saved)")

    # ---- hybrid: split rows between GPU and CPU -----------------------------
    print("\n== hybrid CPU/GPU execution ==")
    for bw, label in ((288.0, "full-speed GTX Titan"),
                      (24.0, "bandwidth-starved device (1/12 speed)")):
        ctx = GpuContext(GTX_TITAN.with_(global_bandwidth_gbps=bw))
        hx = HybridExecutor(ctx=ctx)
        f = hx.optimal_split(pattern)
        rep = hx.evaluate(pattern, f)
        assert np.allclose(rep.output, ref, rtol=1e-9)
        pure = hx.evaluate(pattern, 1.0)
        print(f"\n{label}:")
        print(f"  GPU row share       = {100 * f:.0f}%")
        print(f"  gpu/cpu time        = {rep.gpu_ms:.3f} / "
              f"{rep.cpu_ms:.3f} model-ms (balance "
              f"{rep.balance:.2f})")
        print(f"  makespan            = {rep.makespan_ms:.3f} vs pure-GPU "
              f"{pure.makespan_ms:.3f} "
              f"({100 * (1 - rep.makespan_ms / pure.makespan_ms):.1f}% "
              "gained)")

    print("\nresults identical to the in-core fused kernel in all modes ✓")


if __name__ == "__main__":
    main()
