"""HITS web ranking on a power-law link graph via the fused pattern.

Builds a synthetic hyperlink graph with hub/authority structure, runs
Kleinberg's HITS in both formulations (the textbook alternating updates and
the fused ``X^T (X a)`` power iteration), verifies both agree, and shows the
kernel-time advantage of fusing — the HITS column of Table 1 in action.

Run:  python examples/ranking_hits.py
"""

import numpy as np

from repro.ml import MLRuntime, hits
from repro.sparse import power_law_csr

def main() -> None:
    n_pages = 3000
    print(f"building a {n_pages}-page power-law link graph...")
    X = power_law_csr(n_pages, n_pages, nnz_target=60_000, alpha=1.4, rng=0)
    X.values[:] = 1.0                     # unweighted links
    print(f"links: {X.nnz}, hottest page in-degree: "
          f"{X.column_counts().max()}\n")

    runs = {}
    for mode in ("alternating", "fused"):
        rt = MLRuntime("gpu-fused")
        res = hits(X, rt, max_iterations=200, tol=1e-10, mode=mode)
        runs[mode] = (res, rt.ledger.total_ms)
        print(f"mode={mode:>12}: converged in {res.iterations} iterations, "
              f"kernel time {rt.ledger.total_ms:8.3f} model-ms")

    a_alt = runs["alternating"][0].authorities
    a_fused = runs["fused"][0].authorities
    cos = abs(float(a_alt @ a_fused))
    print(f"\nformulations agree: |cos| = {cos:.9f}")

    res = runs["fused"][0]
    print("\ntop-5 authorities:", res.top_authorities(5).tolist())
    print("top-5 hubs:       ", res.top_hubs(5).tolist())

    # ground truth: the leading eigenvector of X^T X
    A = X.to_dense()
    _, evecs = np.linalg.eigh(A.T @ A)
    lead = np.abs(evecs[:, -1])
    overlap = set(res.top_authorities(5)) & set(np.argsort(-lead)[:5])
    print(f"\ntop-5 overlap with the exact eigenvector ranking: "
          f"{len(overlap)}/5")


if __name__ == "__main__":
    main()
