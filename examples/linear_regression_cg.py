"""End-to-end linear regression (Listing 1) on a KDD2010-like dataset.

Runs conjugate-gradient linear regression under three backends — CPU,
GPU with operator-level kernels, GPU with the fused kernel — and prints the
per-category time ledger, reproducing the reasoning behind Tables 2 and 5:
the pattern dominates compute, and fusing it moves the end-to-end time.

Run:  python examples/linear_regression_cg.py
"""

import numpy as np

from repro.data import kdd_like, regression_targets
from repro.ml import MLRuntime, linreg_cg

def main() -> None:
    print("building a KDD2010-like ultra-sparse dataset (scale 0.003)...")
    X = kdd_like(scale=0.003, rng=0)
    y, w_true = regression_targets(X, rng=1)
    print(f"X: {X.m} x {X.n}, nnz={X.nnz}, mu={X.mean_row_nnz:.1f}\n")

    runs = {}
    for backend in ("cpu", "gpu-baseline", "gpu-fused"):
        rt = MLRuntime(backend)
        res = linreg_cg(X, y, rt, eps=1e-3, max_iterations=40)
        runs[backend] = (res, rt.ledger)
        led = rt.ledger
        print(f"--- backend {backend}: {res.iterations} iterations, "
              f"total {res.total_time_ms:9.2f} model-ms")
        for cat in ("pattern", "mv", "blas1", "transfer"):
            ms = led.by_category.get(cat, 0.0)
            if ms:
                print(f"      {cat:>9}: {ms:9.2f} ms "
                      f"({100 * ms / led.total_ms:5.1f}%)")

    cpu_t = runs["cpu"][0].total_time_ms
    base_t = runs["gpu-baseline"][0].total_time_ms
    fused_t = runs["gpu-fused"][0].total_time_ms
    print(f"\nend-to-end speedup, fused vs CPU:          "
          f"{cpu_t / fused_t:6.1f}x")
    print(f"end-to-end speedup, fused vs GPU-baseline: "
          f"{base_t / fused_t:6.1f}x   (Table 5's comparison)")

    # all backends converge to the same weights
    res, _ = runs["gpu-fused"]
    assert np.allclose(res.w, runs["cpu"][0].w, rtol=1e-10)
    reduction = np.sqrt(res.residual_norm_sq / res.initial_norm_sq)
    print(f"\nCG residual reduced to {reduction:.2e} of its initial norm "
          f"in {res.iterations} iterations")


if __name__ == "__main__":
    main()
