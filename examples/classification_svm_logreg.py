"""Classifier training: primal SVM and trust-region logistic regression.

Trains both classifiers on the same sparse dataset through the pattern
runtime, compares accuracy, and breaks down where the kernel time goes —
covering the SVM and LogReg columns of Table 1 (including the *complete*
pattern, which only LogReg's regularized Hessian-vector products use).

Run:  python examples/classification_svm_logreg.py
"""

import numpy as np

from repro.data import classification_labels
from repro.ml import MLRuntime, logreg_trust_region, svm_primal
from repro.sparse import random_csr

def main() -> None:
    m, n = 20_000, 400
    print(f"building a {m} x {n} sparse classification problem...")
    X = random_csr(m, n, sparsity=0.03, rng=0)
    t = classification_labels(X, rng=1)
    d = X.to_dense()

    # ---- logistic regression ------------------------------------------------
    rt_lr = MLRuntime("gpu-fused")
    lr = logreg_trust_region(X, t, rt_lr, lam=1.0, max_newton=15)
    acc_lr = (np.sign(d @ lr.w) == t).mean()
    print(f"\nLogReg (trust-region Newton):")
    print(f"  newton iterations   = {lr.iterations}, "
          f"CG iterations = {lr.cg_iterations}")
    print(f"  final grad norm     = {lr.grad_norm:.2e}")
    print(f"  training accuracy   = {acc_lr:.3f}")
    print(f"  kernel time         = {lr.total_time_ms:.2f} model-ms")
    insts = {i.name for i in rt_lr.ledger.instantiations}
    print(f"  pattern rows used   = {sorted(insts)}")

    # ---- primal SVM ----------------------------------------------------------
    rt_svm = MLRuntime("gpu-fused")
    svm = svm_primal(X, t, rt_svm, lam=1.0, max_newton=15)
    acc_svm = (np.sign(d @ svm.w) == t).mean()
    print(f"\nSVM (primal Newton, squared hinge):")
    print(f"  newton iterations   = {svm.iterations}, "
          f"CG iterations = {svm.cg_iterations}")
    print(f"  support vectors     = {svm.n_support} / {m}")
    print(f"  training accuracy   = {acc_svm:.3f}")
    print(f"  kernel time         = {svm.total_time_ms:.2f} model-ms")
    insts = {i.name for i in rt_svm.ledger.instantiations}
    print(f"  pattern rows used   = {sorted(insts)}")

    # ---- fused vs baseline on the same training run -------------------------
    rt_base = MLRuntime("gpu-baseline")
    logreg_trust_region(X, t, rt_base, lam=1.0, max_newton=15)
    fused_ms = rt_lr.ledger.total_ms
    base_ms = rt_base.ledger.total_ms
    print(f"\nLogReg training, fused vs operator-level kernels: "
          f"{base_ms / fused_ms:.1f}x")

    assert acc_lr > 0.85 and acc_svm > 0.85


if __name__ == "__main__":
    main()
