"""SystemML-style pipeline: DAG construction, pattern rewriting, hybrid run.

Shows the integration path of Section 4.4: a DML-like expression is built as
an operator DAG, the rewriter recognizes the generic pattern and fuses it,
the memory manager stages data on the simulated device, and the end-to-end
LR-CG comparison of Table 6 is reproduced on a HIGGS-like dataset.

Run:  python examples/systemml_pipeline.py
"""

import numpy as np

from repro.data import higgs_like, regression_targets
from repro.sparse import random_csr
from repro.systemml import (Add, EwMul, Input, MatVec, Smul, Transpose,
                            GpuMemoryManager, SystemMLSession, fused_nodes,
                            rewrite, table6_comparison)

def main() -> None:
    # ---- 1. the DML statement q = t(V) %*% (V %*% p) + eps * p ------------
    V, p = Input("V"), Input("p")
    q_expr = Add(MatVec(Transpose(V), MatVec(V, p)), Smul(0.001, p))
    print("DML statement:  q = t(V) %*% (V %*% p) + eps * p")
    print(f"original DAG:   {q_expr!r}")

    rewritten = rewrite(q_expr)
    print(f"rewritten DAG:  {rewritten!r}")
    print(f"fused nodes:    {len(fused_nodes(rewritten))}\n")

    # verify on data
    rng = np.random.default_rng(0)
    Vm = random_csr(5000, 300, 0.02, rng=1)
    env = {"V": Vm, "p": rng.normal(size=300)}
    from repro.sparse.ops import fused_pattern_reference
    ref = fused_pattern_reference(Vm, env["p"], z=env["p"], beta=0.001)
    got = rewritten.eval(env)
    assert np.allclose(got, ref, rtol=1e-10)
    print("rewritten DAG evaluates identically to the original ✓\n")

    # ---- 2. the memory manager at work -------------------------------------
    mm = GpuMemoryManager(capacity_bytes=50e6, via_jni=True)
    mm.register("V", Vm.nbytes(), needs_conversion=True, pinned=True)
    mm.register("big-intermediate", 40e6)
    cost = mm.request("V")
    print(f"staging V on device: {cost:.3f} ms "
          f"(JNI {mm.stats.jni_ms:.3f} + convert "
          f"{mm.stats.conversion_ms:.3f} + PCIe {mm.stats.h2d_ms:.3f})")
    mm.request("big-intermediate")          # forces nothing: V is pinned
    print(f"device use: {mm.used_bytes / 1e6:.1f} / "
          f"{mm.capacity / 1e6:.1f} MB, evictions={mm.stats.evictions}\n")

    # ---- 2b. Listing 1, as written in the paper, through the interpreter ---
    from repro.ml.runtime import MLRuntime
    from repro.systemml.script import LISTING1, run_script
    from repro.data import regression_targets as _rt

    Xs = random_csr(3000, 200, 0.02, rng=7)
    ys, _ = _rt(Xs, rng=8)
    rt = MLRuntime("gpu-fused")
    script_res = run_script(LISTING1, {"1": Xs, "2": ys}, rt)
    print("running the paper's Listing 1 text through the DML interpreter:")
    print(f"  statements executed   = {script_res.statements_executed}")
    print(f"  CG iterations         = {script_res.env['i']:.0f}")
    print(f"  fused pattern calls   = {script_res.fused_calls}")
    print(f"  pattern time share    = "
          f"{100 * rt.ledger.compute_fraction('pattern'):.1f}%\n")

    # ---- 3. Table 6 end to end ---------------------------------------------
    print("running Table 6 on a HIGGS-like dataset (scale 0.01)...")
    X = higgs_like(scale=0.01, rng=2)
    y, _ = regression_targets(X, rng=3)
    out = table6_comparison(X, y, max_iterations=32)
    print(f"  iterations            = {out['iterations']:.0f}")
    print(f"  total speedup         = {out['total_speedup']:.2f}x "
          "(paper: 1.2x)")
    print(f"  fused-kernel speedup  = {out['fused_kernel_speedup']:.1f}x "
          "(paper: 11.2x)")
    print(f"  GPU transfer overhead = {out['gpu_transfer_ms']:.2f} ms of "
          f"{out['gpu_total_ms']:.2f} ms total")
    print("\nthe kernel-level win survives; JNI + transfer overheads eat "
          "most of it end-to-end — the paper's Section 4.4 conclusion.")


if __name__ == "__main__":
    main()
