"""CI benchmark-trend gate: fresh BENCH_*.json vs committed baselines.

Compares the ratio metrics (top-level numeric keys ending in ``_x`` —
speedups and overhead reductions, which are wall-clock-noise tolerant,
unlike raw millisecond series) of freshly produced benchmark JSON files
against the baselines committed under ``benchmarks/results/``.  A metric
fails when it regresses by more than ``--max-regression`` (default 2x:
``fresh < baseline / 2``).  Improvements and new metrics never fail.

Writes a markdown trend table to ``--summary`` (or ``$GITHUB_STEP_SUMMARY``
when set) so the comparison shows up in the CI job summary.

Usage::

    python benchmarks/check_trend.py --fresh benchmarks/results \
        --baseline /tmp/baselines --require BENCH_profile.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys


def ratio_metrics(doc: dict) -> dict[str, float]:
    """Top-level numeric keys ending in ``_x`` — the gated ratio metrics."""
    return {k: float(v) for k, v in doc.items()
            if k.endswith("_x") and isinstance(v, (int, float))
            and not isinstance(v, bool)}


def load_dir(path: pathlib.Path) -> dict[str, dict[str, float]]:
    """``{file name: {metric: value}}`` for every BENCH_*.json in ``path``."""
    out: dict[str, dict[str, float]] = {}
    for f in sorted(path.glob("BENCH_*.json")):
        try:
            doc = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"check_trend: unreadable {f}: {exc}") from None
        if isinstance(doc, dict):
            out[f.name] = ratio_metrics(doc)
    return out


def compare(fresh: dict[str, dict[str, float]],
            baseline: dict[str, dict[str, float]],
            max_regression: float) -> tuple[list[dict], list[str]]:
    """Row-per-metric comparison plus the list of failure messages."""
    rows: list[dict] = []
    failures: list[str] = []
    for name in sorted(set(fresh) | set(baseline)):
        fresh_metrics = fresh.get(name, {})
        base_metrics = baseline.get(name, {})
        for metric in sorted(set(fresh_metrics) | set(base_metrics)):
            f_val = fresh_metrics.get(metric)
            b_val = base_metrics.get(metric)
            if f_val is None:
                status = "missing-fresh"
                failures.append(
                    f"{name}:{metric} present in baseline but missing from "
                    "the fresh run")
            elif b_val is None:
                status = "new"
            elif b_val <= 0:
                status = "skipped (non-positive baseline)"
            elif f_val < b_val / max_regression:
                status = "REGRESSED"
                failures.append(
                    f"{name}:{metric} regressed more than "
                    f"{max_regression:g}x: {f_val:.3f} vs baseline "
                    f"{b_val:.3f}")
            else:
                status = "improved" if f_val > b_val else "ok"
            rows.append({"file": name, "metric": metric, "fresh": f_val,
                         "baseline": b_val, "status": status})
    return rows, failures


def markdown_table(rows: list[dict], max_regression: float) -> str:
    def fmt(v):
        return f"{v:.3f}" if v is not None else "—"

    lines = ["## Benchmark trend (ratio metrics, "
             f"fail under baseline/{max_regression:g})", "",
             "| file | metric | baseline | fresh | status |",
             "|---|---|---:|---:|---|"]
    for r in rows:
        mark = "❌" if r["status"] in ("REGRESSED", "missing-fresh") else "✅"
        lines.append(f"| {r['file']} | `{r['metric']}` | "
                     f"{fmt(r['baseline'])} | {fmt(r['fresh'])} | "
                     f"{mark} {r['status']} |")
    if not rows:
        lines.append("| — | — | — | — | no ratio metrics found |")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True, type=pathlib.Path,
                    help="directory with freshly produced BENCH_*.json")
    ap.add_argument("--baseline", required=True, type=pathlib.Path,
                    help="directory with committed baseline BENCH_*.json")
    ap.add_argument("--max-regression", type=float, default=2.0,
                    help="fail when fresh < baseline / this (default: 2.0)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="FILE", help="BENCH file that must exist in the "
                    "fresh directory (repeatable)")
    ap.add_argument("--summary", type=pathlib.Path, default=None,
                    help="markdown output path (default: "
                         "$GITHUB_STEP_SUMMARY when set)")
    args = ap.parse_args(argv)
    if args.max_regression <= 1.0:
        raise SystemExit("check_trend: --max-regression must be > 1")
    for d in (args.fresh, args.baseline):
        if not d.is_dir():
            raise SystemExit(f"check_trend: not a directory: {d}")

    fresh = load_dir(args.fresh)
    baseline = load_dir(args.baseline)
    rows, failures = compare(fresh, baseline, args.max_regression)
    for req in args.require:
        if req not in fresh:
            failures.append(f"required fresh result missing: {req}")

    table = markdown_table(rows, args.max_regression)
    summary = args.summary or (
        pathlib.Path(os.environ["GITHUB_STEP_SUMMARY"])
        if os.environ.get("GITHUB_STEP_SUMMARY") else None)
    if summary is not None:
        with open(summary, "a") as f:
            f.write(table)
    print(table)

    if failures:
        for msg in failures:
            print(f"check_trend: {msg}", file=sys.stderr)
        return 1
    print(f"check_trend: {len(rows)} metric(s) within "
          f"{args.max_regression:g}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
