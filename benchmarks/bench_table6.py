"""Table 6: GPU-enabled SystemML vs CPU SystemML (JNI + memory manager)."""

from repro.bench.tables import table6


def bench_table6(benchmark, record_experiment):
    result = benchmark.pedantic(table6, rounds=1, iterations=1)
    record_experiment(result)
    rows = {r[0]: r for r in result.rows}

    for name in ("HIGGS-like", "KDD2010-like"):
        total, kernel = rows[name][2], rows[name][3]
        # paper's central point: the fused kernel alone is 4-11x faster,
        # but JNI/transfer/conversion overheads shrink the end-to-end win
        # to 1.2-1.9x
        assert kernel > 2.0, f"{name} kernel speedup {kernel}"
        assert 0.8 < total < 4.0, f"{name} total speedup {total}"
        assert kernel > 1.5 * total, \
            f"{name}: overheads should eat most of the kernel speedup"
