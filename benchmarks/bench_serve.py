"""Serving-layer micro-batching: fingerprint-aware vs naive FIFO dispatch.

Regenerates the serve experiment: a Zipf-skewed burst of pattern requests
over more fingerprints than the engine's bounded artifact LRU can hold,
dispatched once with naive FIFO batching and once with fingerprint-aware
micro-batching.  Asserts the acceptance claims: >= 1.5x better p99 latency
at equal offered load and zero result divergence vs uncached evaluation.

Also runnable as a script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke

which writes the series to ``benchmarks/results/BENCH_serve.json`` and the
markdown table to ``benchmarks/results/serve.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.serve_bench import serve_latency

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _headline(result) -> tuple[float, int, int]:
    """(p99 speedup, total divergent outputs, total dropped requests)."""
    rows = {r[0]: r for r in result.rows}
    cols = result.columns
    p99 = cols.index("p99_ms")
    speedup = rows["fifo"][p99] / max(rows["fingerprint"][p99], 1e-9)
    divergent = sum(r[cols.index("divergent")] for r in result.rows)
    dropped = sum(r[cols.index("dropped")] for r in result.rows)
    return speedup, divergent, dropped


def bench_serve(benchmark, record_experiment):
    result = benchmark.pedantic(serve_latency, rounds=1, iterations=1)
    record_experiment(result)

    speedup, divergent, dropped = _headline(result)
    rows = {r[0]: r for r in result.rows}

    # the acceptance claims: fingerprint-aware micro-batching beats naive
    # FIFO by >= 1.5x on p99 latency at equal offered load, with zero
    # result divergence and nothing shed or timed out
    assert speedup >= 1.5, f"p99 speedup {speedup:.2f}x < 1.5x"
    assert divergent == 0, f"{divergent} outputs diverged from uncached"
    assert dropped == 0, f"{dropped} requests shed/timed out unexpectedly"

    # grouping must translate into cache behaviour, not just timing: the
    # fingerprint policy rebuilds far fewer profiles and keeps a better
    # plan-artifact economy than the thrashing FIFO baseline
    cols = result.columns
    built = cols.index("profiles_built")
    assert rows["fingerprint"][built] < rows["fifo"][built] / 2
    assert rows["fingerprint"][cols.index("completed")] == \
        rows["fifo"][cols.index("completed")]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small burst for CI smoke runs")
    ap.add_argument("--scale", type=float, default=None,
                    help="row-count scale in (0, 1] (default: REPRO_SCALE)")
    ap.add_argument("--requests", type=int, default=None,
                    help="burst size (default 240, smoke 96)")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if the >=1.5x / zero-divergence "
                         "targets are missed (wall-clock ratios are noisy "
                         "on shared runners, so CI records without gating)")
    args = ap.parse_args(argv)

    requests = args.requests or (96 if args.smoke else 240)
    scale = args.scale if args.scale is not None else \
        (0.05 if args.smoke else None)
    result = serve_latency(scale=scale, requests=requests)
    result.print()

    speedup, divergent, dropped = _headline(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "experiment": result.experiment,
        "title": result.title,
        "requests": requests,
        "series": [dict(zip(result.columns, row)) for row in result.rows],
        "p99_speedup_x": speedup,
        "divergent_outputs": divergent,
        "dropped_requests": dropped,
        "notes": result.notes,
    }
    out = RESULTS_DIR / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    (RESULTS_DIR / "serve.md").write_text(result.to_markdown())
    print(f"wrote {out} and {RESULTS_DIR / 'serve.md'}")

    ok = speedup >= 1.5 and divergent == 0 and dropped == 0
    if not ok:
        print(f"targets missed: p99 speedup {speedup:.2f}x (>=1.5 wanted), "
              f"{divergent} divergent, {dropped} dropped", file=sys.stderr)
    return 0 if ok or not args.check else 1


if __name__ == "__main__":
    raise SystemExit(main())
