"""Table 1: pattern instantiations exercised by each of the five ML
algorithms, verified by tracing real executions."""

from repro.bench.tables import table1


def bench_table1(benchmark, record_experiment):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    record_experiment(result)
    assert any("complete" in n for n in result.notes), result.notes
    # every algorithm exercises at least one instantiation
    for col in range(1, len(result.columns)):
        assert any(r[col] == "x" for r in result.rows), \
            f"no pattern traced for {result.columns[col]}"
