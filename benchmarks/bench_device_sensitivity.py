"""Robustness of the reproduced speedups to device parameters.

The headline claims should not hinge on one device preset: the fused
kernel's advantage comes from structural properties (one pass over X,
aggregation hierarchy), so it must survive on a K20X-like part and under
halved bandwidth — while *shrinking* when atomics get cheap (confirming the
mechanism, not just the number).
"""

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.core import GenericPattern, PatternExecutor
from repro.gpu.device import GTX_TITAN, K20X
from repro.kernels.base import GpuContext
from repro.sparse import random_csr


def bench_device_sensitivity(benchmark, record_experiment):
    def run():
        res = ExperimentResult(
            "device-sensitivity",
            "fused vs cuSPARSE across device variants (m=60k, n=512)",
            ("device", "fused_ms", "cusparse_ms", "speedup"))
        rng = np.random.default_rng(0)
        X = random_csr(60_000, 512, 0.01, rng=1)
        y = rng.normal(size=512)
        variants = {
            "gtx-titan": GTX_TITAN,
            "k20x": K20X,
            "half-bandwidth": GTX_TITAN.with_(global_bandwidth_gbps=144.0),
            "cheap-atomics": GTX_TITAN.with_(atomic_global_ns=0.1),
        }
        for name, dev in variants.items():
            ex = PatternExecutor(GpuContext(dev))
            p = GenericPattern(X, y)
            fused = ex.evaluate(p, "fused")
            base = ex.evaluate(p, "cusparse")
            res.add(name, fused.time_ms, base.time_ms,
                    base.time_ms / fused.time_ms)
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(res)
    rows = {r[0]: r for r in res.rows}
    # the win is structural: present on every Kepler-class variant
    for name in ("gtx-titan", "k20x", "half-bandwidth"):
        assert rows[name][3] > 5.0, name
    # the two full-speed presets agree within 2x on the ratio
    assert 0.5 < rows["gtx-titan"][3] / rows["k20x"][3] < 2.0
    # halving bandwidth barely changes the ratio (both sides memory-bound,
    # the baseline's lock chains are latency- not bandwidth-bound)
    assert rows["half-bandwidth"][3] > 0.4 * rows["gtx-titan"][3]
