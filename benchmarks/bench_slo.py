"""SLO-aware scheduling: tiered EDF dispatch vs naive FIFO.

Regenerates the slo experiment: a mixed-tenant burst (a small interactive
minority carrying a latency SLO, a large batch majority) drained by one
worker under FIFO and under the tiered ``edf`` policy.  Asserts the
acceptance claims: interactive SLO attainment >= 95% under the scheduler
while FIFO lands at its arrival-order-bound ~45%, and zero result
divergence vs uncached evaluation.

Also runnable as a script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_slo.py --smoke --check

which writes the series to ``benchmarks/results/BENCH_slo.json`` and the
markdown table to ``benchmarks/results/slo.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.slo_bench import slo_attainment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: acceptance thresholds: scheduler attainment floor, FIFO ceiling
SCHED_ATTAINMENT = 0.95
FIFO_ATTAINMENT = 0.80


def _headline(result) -> tuple[float, float, float, int, int]:
    """(edf attainment, fifo attainment, p99 ratio, divergent, dropped)."""
    rows = {r[0]: r for r in result.rows}
    cols = result.columns
    att = cols.index("slo_attainment")
    p99 = cols.index("interactive_p99_ms")
    ratio = rows["fifo"][p99] / max(rows["edf"][p99], 1e-9)
    divergent = sum(r[cols.index("divergent")] for r in result.rows)
    dropped = sum(r[cols.index("dropped")] for r in result.rows)
    return rows["edf"][att], rows["fifo"][att], ratio, divergent, dropped


def bench_slo(benchmark, record_experiment):
    result = benchmark.pedantic(slo_attainment, rounds=1, iterations=1)
    record_experiment(result)

    edf_att, fifo_att, ratio, divergent, dropped = _headline(result)

    # the acceptance claims: the tiered scheduler meets the interactive
    # SLO that FIFO structurally cannot, at zero result divergence and
    # with every request completed in both runs
    assert edf_att >= SCHED_ATTAINMENT, \
        f"edf attainment {edf_att:.2f} < {SCHED_ATTAINMENT}"
    assert fifo_att <= FIFO_ATTAINMENT, \
        f"fifo attainment {fifo_att:.2f} > {FIFO_ATTAINMENT} — the SLO " \
        "is too loose to discriminate"
    assert ratio >= 1.5, f"interactive p99 ratio {ratio:.2f}x < 1.5x"
    assert divergent == 0, f"{divergent} outputs diverged from uncached"
    assert dropped == 0, f"{dropped} requests shed/timed out unexpectedly"

    rows = {r[0]: r for r in result.rows}
    cols = result.columns
    assert rows["edf"][cols.index("completed")] == \
        rows["fifo"][cols.index("completed")]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small burst for CI smoke runs")
    ap.add_argument("--scale", type=float, default=None,
                    help="row-count scale in (0, 1] (default: REPRO_SCALE)")
    ap.add_argument("--requests", type=int, default=None,
                    help="burst size (default 200, smoke 96)")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero when the attainment / zero-"
                         "divergence targets are missed")
    args = ap.parse_args(argv)

    requests = args.requests or (96 if args.smoke else 200)
    scale = args.scale if args.scale is not None else \
        (0.05 if args.smoke else None)
    result = slo_attainment(scale=scale, requests=requests)
    result.print()

    edf_att, fifo_att, ratio, divergent, dropped = _headline(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "experiment": result.experiment,
        "title": result.title,
        "requests": requests,
        "series": [dict(zip(result.columns, row)) for row in result.rows],
        "interactive_p99_x": ratio,
        "edf_slo_attainment": edf_att,
        "fifo_slo_attainment": fifo_att,
        "divergent_outputs": divergent,
        "dropped_requests": dropped,
        "notes": result.notes,
    }
    out = RESULTS_DIR / "BENCH_slo.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    (RESULTS_DIR / "slo.md").write_text(result.to_markdown())
    print(f"wrote {out} and {RESULTS_DIR / 'slo.md'}")

    ok = (edf_att >= SCHED_ATTAINMENT and fifo_att <= FIFO_ATTAINMENT
          and divergent == 0 and dropped == 0)
    if not ok:
        print(f"targets missed: edf attainment {edf_att:.2f} "
              f"(>= {SCHED_ATTAINMENT} wanted), fifo {fifo_att:.2f} "
              f"(<= {FIFO_ATTAINMENT} wanted), {divergent} divergent, "
              f"{dropped} dropped", file=sys.stderr)
    return 0 if ok or not args.check else 1


if __name__ == "__main__":
    raise SystemExit(main())
