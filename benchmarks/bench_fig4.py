"""Figure 4: the complete pattern ``alpha*X^T(v.(Xy)) + beta*z`` (sparse)."""

import numpy as np

from repro.bench.figures import figure3, figure4


def bench_figure4(benchmark, record_experiment):
    result = benchmark.pedantic(figure4, rounds=1, iterations=1)
    record_experiment(result)

    cusp = result.column("cusparse_x")
    bgpu = result.column("bidmat-gpu_x")
    bcpu = result.column("bidmat-cpu_x")

    assert all(x > 1.0 for x in cusp + bgpu + bcpu)
    # paper: full-pattern speedups similar or slightly better than Fig. 3
    # (the baseline pays extra BLAS-1 launches for v, alpha, beta)
    fig3 = figure3()
    mean4, mean3 = float(np.mean(cusp)), float(np.mean(fig3.column(
        "cusparse_x")))
    assert mean4 > 0.85 * mean3
    assert float(np.mean(cusp)) > float(np.mean(bgpu)) > 1.0
