"""Fusion-plan optimizer benchmark: auto vs pattern vs unfused.

Wraps the ``fusion`` experiment (``repro.bench.fusion_bench``): every
shipped DML script executed unfused, through the hand-matched pattern
rewriter, and through the cost-based optimizer, in model milliseconds.
Two ratio metrics are trend-gated against the committed baseline:

* ``auto_vs_unfused_x`` — summed unfused model ms over summed auto model
  ms.  The optimizer's end-to-end win; a regression here means plans
  stopped fusing.
* ``auto_vs_pattern_x`` — summed pattern-rewriter ms over summed auto ms.
  Must stay >= 1.0: cost-based selection may never lose to the fixed
  rewrite it generalizes (it wins where the rewriter leaves cell-wise
  regions unfused).

Also runnable as a script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_fusion.py --quick

which writes the series to ``benchmarks/results/BENCH_fusion.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def fusion_payload(scale: float) -> dict:
    from repro.bench.fusion_bench import fusion_plans

    result = fusion_plans(scale=scale)
    series = [dict(zip(result.columns, row)) for row in result.rows]
    unfused = sum(r["unfused_ms"] for r in series)
    pattern = sum(r["pattern_ms"] for r in series)
    auto = sum(r["auto_ms"] for r in series)
    return {
        "experiment": "fusion",
        "title": result.title,
        "series": series,
        "auto_vs_unfused_x": unfused / max(auto, 1e-12),
        "auto_vs_pattern_x": pattern / max(auto, 1e-12),
        "searches": sorted({r["search"] for r in series}),
        "notes": result.notes,
    }


def bench_fusion(benchmark, record_experiment):
    """pytest-benchmark wrapper: plan, execute, and assert the orderings."""
    from repro.bench.fusion_bench import fusion_plans

    result = benchmark.pedantic(fusion_plans, rounds=1, iterations=1)
    record_experiment(result)
    rows = {r[0]: r for r in result.rows}
    for name, (_, unfused, pattern, auto, *_rest) in rows.items():
        assert auto <= unfused + 1e-9, f"{name}: auto lost to unfused"
        assert auto <= pattern + 1e-9, f"{name}: auto lost to pattern"
    # the Eq.-1 scripts must be rediscovered (big wins), the cell-wise
    # scripts must at least beat their unfused form
    for name in ("linreg-cg", "logreg", "svm"):
        assert rows[name][4] > 2.0, f"{name}: Eq.-1 fusion not rediscovered"
    for name in ("cg-update", "row-scale"):
        assert rows[name][4] > 1.0, f"{name}: cell-wise region not fused"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small matrix for CI smoke runs")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero when auto loses to either fixed "
                         "strategy (ratios are model time: deterministic, "
                         "so this is safe to gate)")
    args = ap.parse_args(argv)

    payload = fusion_payload(scale=0.05 if args.quick else 1.0)

    for row in payload["series"]:
        print(f"{row['script']:>10}: unfused {row['unfused_ms']:8.3f}  "
              f"pattern {row['pattern_ms']:8.3f}  "
              f"auto {row['auto_ms']:8.3f} model-ms  "
              f"({row['auto_speedup']:.1f}x, {row['search']})")
    print(f"auto vs unfused: {payload['auto_vs_unfused_x']:.2f}x, "
          f"auto vs pattern: {payload['auto_vs_pattern_x']:.2f}x")

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_fusion.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    ok = (payload["auto_vs_unfused_x"] >= 1.0
          and payload["auto_vs_pattern_x"] >= 1.0)
    if not ok:
        print("targets missed: auto must not lose to unfused or pattern",
              file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
