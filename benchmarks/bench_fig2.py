"""Figure 2: ``X^T x y`` sparse — fused kernel vs cuSPARSE.

Regenerates both panels: speedups over the column sweep, global-load
transaction counts, and the transpose-amortization iteration counts.
"""

import numpy as np

from repro.bench.figures import figure2


def bench_figure2(benchmark, record_experiment):
    result = benchmark.pedantic(figure2, rounds=1, iterations=1)
    record_experiment(result)

    speedups = result.column("speedup")
    load_ratios = result.column("load_ratio")
    amortize = result.column("amortize_iters")

    # paper shape: fused wins everywhere, most at the low-n end,
    # with a consistent load-transaction advantage and a non-trivial
    # number of iterations needed to amortize an explicit transpose
    assert all(s > 1.0 for s in speedups)
    assert speedups[0] == max(speedups), "largest win should be at small n"
    assert speedups[0] > 10.0
    assert all(r > 1.0 for r in load_ratios)
    assert all(a >= 2 for a in amortize)
    assert float(np.mean(speedups)) > 5.0
