"""Table 5: end-to-end LR-CG speedup, PCIe transfer included."""

from repro.bench.tables import table5


def bench_table5(benchmark, record_experiment):
    result = benchmark.pedantic(table5, rounds=1, iterations=1)
    record_experiment(result)
    rows = {r[0]: r for r in result.rows}

    higgs, kdd = rows["HIGGS-like"], rows["KDD2010-like"]
    # paper: HIGGS 4.8x over 32 iterations, KDD2010 9x over 100 iterations
    assert higgs[1] == 32 and kdd[1] == 100
    assert higgs[4] > 1.5
    assert kdd[4] > 4.0
    assert kdd[4] > higgs[4], \
        "sparse KDD should benefit more end-to-end than dense HIGGS"
    # transfer is charged but amortized: it must not dominate the fused run
    assert higgs[5] < higgs[2]
    assert kdd[5] < kdd[2]
