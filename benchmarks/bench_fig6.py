"""Figure 6: exhaustive launch-parameter sweep vs the analytical model."""

from repro.bench.figures import figure6


def bench_figure6(benchmark, record_experiment):
    result = benchmark.pedantic(figure6, rounds=1, iterations=1)
    record_experiment(result)
    row = dict(zip(result.column("quantity"), result.column("value")))

    # paper: ~1,200 settings; the model's pick is within 2% of the optimum
    assert row["settings_explored"] > 800
    assert row["model_gap_pct"] < 2.0
    # the sweep spans a meaningful performance range (Fig. 6 shows sharp
    # peaks and valleys)
    assert row["worst_time_ms"] > 2.0 * row["best_time_ms"]
    # the model picks the paper's vector size for mu ~ 10 (n=1k, 0.01)
    assert row["model_VS"] == 8
