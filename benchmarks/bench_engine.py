"""PatternEngine session cache: cold-vs-warm amortization, batched wall time.

Regenerates the engine experiment: 100 LR-CG-style iterations per strategy,
comparing fresh per-call evaluation against one cached session, plus a
serial-vs-batched wall-clock comparison (in the notes).
"""

from repro.bench.engine_bench import engine_amortization


def bench_engine(benchmark, record_experiment):
    result = benchmark.pedantic(engine_amortization, rounds=1, iterations=1)
    record_experiment(result)

    rows = {r[0]: r for r in result.rows}
    amortized = dict(zip(result.column("strategy"),
                         result.column("amortized_x")))
    hit_rates = dict(zip(result.column("strategy"),
                         result.column("hit_rate")))

    # the acceptance claim: warm-cache model time for the 100-iteration
    # series beats cold per-call evaluation by >= 2x on the route that
    # re-pays the csr2csc conversion (Fig. 2's amortization, now a session
    # guarantee), with a > 0.95 plan-cache hit rate
    assert amortized["cusparse-explicit"] >= 2.0
    assert all(hr > 0.95 for hr in hit_rates.values())

    # the transpose is built exactly once per session
    assert rows["cusparse-explicit"][7] == 1
    assert rows["fused"][7] == 0

    # strategies that carry no per-call setup cost must be model-time
    # neutral under the cache: caching never makes a plan slower
    assert amortized["fused"] >= 1.0 - 1e-12
    assert amortized["cusparse"] >= 1.0 - 1e-12

    # warm explicit-transpose calls drop the conversion entirely
    exp = rows["cusparse-explicit"]
    assert exp[2] < exp[1], "warm call must be cheaper than cold call"
