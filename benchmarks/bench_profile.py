"""Kernel-profile amortization: structure-invariant templates + planned SpMV.

Regenerates the profile experiment: per-call wall time of the fused-pattern
counter model at three warmth levels (cold full evaluation, warm without a
profile, warm with the cached profile), plus the end-to-end warm
``evaluate()`` comparison against the pre-profile session state.

Also runnable as a script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_profile.py --quick

which writes the series to ``benchmarks/results/BENCH_profile.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.engine_bench import profile_amortization

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _ratios(result) -> tuple[float, float]:
    """(model-overhead reduction, end-to-end speedup) from the series rows."""
    per_call = dict(zip(result.column("series"),
                        result.column("per_call_ms")))
    overhead = dict(zip(result.column("series"),
                        result.column("model_overhead_ms")))
    # same clamp as the builder's notes: the profiled overhead sits within
    # timing noise of the numeric floor, so bound it by the resolution
    resolution = max(0.01 * per_call["numeric_floor"], 1e-6)
    model_x = (overhead["warm_unprofiled"]
               / max(overhead["warm_profiled"], resolution))
    e2e_x = (per_call["pre_profile_warm_e2e"]
             / max(per_call["engine_warm_e2e"], 1e-9))
    return model_x, e2e_x


def bench_profile(benchmark, record_experiment):
    result = benchmark.pedantic(profile_amortization, rounds=1, iterations=1)
    record_experiment(result)

    per_call = dict(zip(result.column("series"),
                        result.column("per_call_ms")))
    model_x, e2e_x = _ratios(result)

    # the acceptance claims: cached profiles cut the warm per-iteration
    # model-building overhead >= 5x and the end-to-end warm evaluate()
    # >= 1.5x on the Fig. 3 sweep workload
    assert model_x >= 5.0, f"model-overhead reduction {model_x:.2f}x < 5x"
    assert e2e_x >= 1.5, f"end-to-end warm speedup {e2e_x:.2f}x < 1.5x"

    # sanity on the series shape: the floor is the cheapest, the cold path
    # the dearest of the single-call series, and the profiled warm call
    # lands within noise of the floor
    assert per_call["numeric_floor"] <= per_call["warm_profiled"] * 1.25
    assert per_call["warm_profiled"] < per_call["warm_unprofiled"]
    assert per_call["warm_unprofiled"] <= per_call["cold_full"] * 1.25


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small iteration count for CI smoke runs")
    ap.add_argument("--scale", type=float, default=None,
                    help="row-count scale in (0, 1] (default: REPRO_SCALE)")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if the >=5x / >=1.5x targets are "
                         "missed (wall-clock ratios are noisy on shared "
                         "runners, so CI records without gating)")
    args = ap.parse_args(argv)

    iterations = 10 if args.quick else 30
    result = profile_amortization(scale=args.scale, iterations=iterations)
    result.print()

    model_x, e2e_x = _ratios(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "experiment": result.experiment,
        "title": result.title,
        "iterations": iterations,
        "series": [dict(zip(result.columns, row)) for row in result.rows],
        "model_overhead_reduction_x": model_x,
        "warm_e2e_speedup_x": e2e_x,
        "notes": result.notes,
    }
    out = RESULTS_DIR / "BENCH_profile.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    ok = model_x >= 5.0 and e2e_x >= 1.5
    if not ok:
        print(f"targets missed: model {model_x:.2f}x (>=5 wanted), "
              f"e2e {e2e_x:.2f}x (>=1.5 wanted)", file=sys.stderr)
    return 0 if ok or not args.check else 1


if __name__ == "__main__":
    raise SystemExit(main())
