"""Benchmarks for the paper's stated extensions.

Section 3 promises the fused kernels "can easily be adapted to a streaming
design for out-of-core computation"; Section 5's future work is a cost model
for "hybrid executions involving CPUs and GPUs".  These benchmarks
demonstrate both extensions quantitatively:

* streaming: double-buffered row blocks hide most transfer time behind
  kernels (or vice versa), beating the serial transfer+compute sum;
* hybrid: the analytic row split never loses to the better single processor
  and approaches the ideal makespan when CPU and GPU rates are comparable.
"""

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.core import GenericPattern, HybridExecutor, StreamingExecutor
from repro.gpu.device import GTX_TITAN
from repro.kernels.base import GpuContext
from repro.sparse import random_csr


def bench_streaming_overlap(benchmark, record_experiment):
    def run():
        res = ExperimentResult(
            "extension-streaming",
            "out-of-core streaming: overlapped vs serial (m=120k, n=512)",
            ("blocks", "kernel_ms", "transfer_ms", "overlapped_ms",
             "serial_ms", "saving_pct"))
        rng = np.random.default_rng(0)
        X = random_csr(120_000, 512, 0.01, rng=1)
        y = rng.normal(size=512)
        p = GenericPattern(X, y)
        for divisor in (2, 6, 16):
            ex = StreamingExecutor(budget_bytes=X.nbytes() / divisor)
            rep = ex.evaluate(p)
            serial = ex.serial_time_ms(rep)
            res.add(rep.blocks, rep.kernel_ms, rep.transfer_ms,
                    rep.overlapped_ms, serial,
                    100.0 * (1 - rep.overlapped_ms / serial))
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(res)
    savings = res.column("saving_pct")
    # overlap always helps; the saving is bounded by the smaller stream
    # (min(kernel, transfer) / (kernel + transfer)) and should get close
    assert all(s > 0.0 for s in savings)
    assert max(savings) > 10.0
    for row in res.rows:
        _, kernel, transfer, overlapped, serial, saving = row
        bound = 100.0 * min(kernel, transfer) / serial
        assert saving <= bound + 1e-6
    # correctness of the overlap arithmetic: critical path bounded by the
    # dominant stream plus one exposed block of each kind
    for row in res.rows:
        blocks, kernel, transfer, overlapped, serial, _ = row
        assert overlapped >= max(kernel, transfer) - 1e-9
        assert overlapped <= serial


def bench_hybrid_split(benchmark, record_experiment):
    def run():
        res = ExperimentResult(
            "extension-hybrid",
            "hybrid CPU/GPU split of the pattern (m=120k, n=512)",
            ("device_bw_gbps", "split_fraction", "gpu_ms", "cpu_ms",
             "makespan_ms", "pure_gpu_ms", "gain_pct"))
        rng = np.random.default_rng(2)
        X = random_csr(120_000, 512, 0.01, rng=3)
        y = rng.normal(size=512)
        p = GenericPattern(X, y)
        # sweep device speed: slower GPUs shift work to the CPU
        for bw in (288.0, 48.0, 12.0):
            ctx = GpuContext(GTX_TITAN.with_(global_bandwidth_gbps=bw))
            ex = HybridExecutor(ctx=ctx)
            f = ex.optimal_split(p)
            rep = ex.evaluate(p, f)
            pure = ex.evaluate(p, 1.0)
            res.add(bw, f, rep.gpu_ms, rep.cpu_ms, rep.makespan_ms,
                    pure.makespan_ms,
                    100.0 * (1 - rep.makespan_ms / pure.makespan_ms))
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(res)
    fractions = res.column("split_fraction")
    gains = res.column("gain_pct")
    # the slower the device, the more rows the CPU takes
    assert fractions[0] >= fractions[1] >= fractions[2]
    # hybrid never loses to pure GPU, and wins clearly on the slow device
    assert all(g >= -1e-6 for g in gains)
    assert gains[-1] > 10.0
