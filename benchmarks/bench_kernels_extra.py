"""Kernel-level studies beyond the paper's headline figures.

* CSR-scalar vs CSR-vector across mean row length: fixed VS=32 wastes lanes
  on short rows (where the scalar kernel is competitive), while Eq. 4's
  adaptive VS dominates both everywhere — the reason §3.3 adopts the
  Bell & Garland selection rule.
* Multi-RHS fusion: one X pass serving k patterns approaches k-fold savings
  while the mirrors fit shared memory.
"""

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.kernels import (csrmv, csrmv_scalar, fused_pattern_multi,
                           fused_pattern_sparse)
from repro.kernels.sparse_baseline import _csrmv_launch  # noqa: PLC2701
from repro.gpu.launch import LaunchConfig
from repro.sparse import random_csr
from repro.tuning import tune_sparse


def bench_scalar_vector_crossover(benchmark, record_experiment):
    def run():
        res = ExperimentResult(
            "kernels-scalar-vs-vector",
            "CSR-scalar vs CSR-vector (Eq. 4 adaptive VS) across mu",
            ("mu", "scalar_ms", "vector_ms", "scalar_over_vector",
             "eq4_VS"))
        rng = np.random.default_rng(0)
        m, n = 30_000, 600
        for sparsity in (0.0025, 0.01, 0.04, 0.12):
            X = random_csr(m, n, sparsity, rng=int(sparsity * 10_000))
            y = rng.normal(size=n)
            sc = csrmv_scalar(X, y)
            ve = csrmv(X, y)
            res.add(X.mean_row_nnz, sc.time_ms, ve.time_ms,
                    sc.time_ms / ve.time_ms,
                    tune_sparse(X).vector_size)
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(res)
    ratios = res.column("scalar_over_vector")
    vss = res.column("eq4_VS")
    # the scalar kernel's uncoalesced walks hurt more as rows lengthen
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 3.0
    # Eq. 4 raises VS with mu
    assert vss == sorted(vss)
    # adaptive-VS vector never loses to scalar
    assert all(r >= 1.0 for r in ratios)


def bench_multi_rhs(benchmark, record_experiment):
    def run():
        res = ExperimentResult(
            "kernels-multi-rhs",
            "multi-RHS fused pattern: one X pass serving k systems",
            ("k", "multi_ms", "sequential_ms", "saving_x"))
        rng = np.random.default_rng(1)
        X = random_csr(60_000, 300, 0.02, rng=2)
        for k in (1, 2, 4, 8):
            Y = rng.normal(size=(X.n, k))
            multi = fused_pattern_multi(X, Y)
            seq = sum(fused_pattern_sparse(X, Y[:, j]).time_ms
                      for j in range(k))
            res.add(k, multi.time_ms, seq, seq / multi.time_ms)
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(res)
    savings = res.column("saving_x")
    ks = res.column("k")
    # k=1 is a plain fused call; the saving grows with k but below k-fold
    assert savings[0] < 1.3
    for k, s in zip(ks[1:], savings[1:]):
        assert 1.0 < s < k + 0.5
    assert savings[-1] > 2.5
