"""Ablation studies for the fused kernel's design choices.

Each ablation isolates one mechanism the paper credits for its speedups:

* shared-memory vs global-memory aggregation across the column count n
  (the §3.1 variant switch at the ~6K shared-memory limit);
* the texture binding of y;
* the L2 temporal-locality reuse of the second row pass;
* the coarsening factor C (atomic-flush traffic vs parallelism);
* sparse-format choice (CSR-vector vs ELL vs HYB) across row-length skew.
"""

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.gpu.device import GTX_TITAN
from repro.kernels import ellmv, csrmv, hybmv, fused_pattern_sparse
from repro.kernels.base import GpuContext
from repro.sparse import EllMatrix, HybMatrix, power_law_csr, random_csr
from repro.tuning import tune_sparse
from repro.tuning.sparse_params import SparseParams


def bench_aggregation_variant_crossover(benchmark, record_experiment):
    """Shared-mirror aggregation wins wherever it fits; the global variant
    pays a bounded bandwidth overhead (atomic write sectors) plus a
    contention term that the paper argues away for large, uniform column
    spaces — and that bites back when columns are skewed."""

    def run():
        res = ExperimentResult(
            "ablation-aggregation",
            "fused sparse: shared-memory vs global-memory aggregation",
            ("workload", "shared_ms", "global_ms", "global_over_shared"))
        rng = np.random.default_rng(0)
        for n in (128, 512, 2048, 4096):
            X = random_csr(40_000, n, 0.01, rng=n)
            y = rng.normal(size=n)
            t = {}
            for variant in ("shared", "global"):
                params = tune_sparse(X, force_variant=variant)
                t[variant] = fused_pattern_sparse(X, y,
                                                  params=params).time_ms
            res.add(f"uniform n={n}", t["shared"], t["global"],
                    t["global"] / t["shared"])
        # skewed columns: a hot feature (e.g. an intercept/bias column every
        # row touches) concentrates the global atomics on one address
        Xs = random_csr(40_000, 512, 0.01, rng=99)
        hot = rng.random(Xs.nnz) < 0.3
        Xs.col_idx[hot] = 0
        ys = rng.normal(size=512)
        t = {}
        for variant in ("shared", "global"):
            params = tune_sparse(Xs, force_variant=variant)
            t[variant] = fused_pattern_sparse(Xs, ys, params=params).time_ms
        res.add("power-law n=512", t["shared"], t["global"],
                t["global"] / t["shared"])
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(res)
    rows = res.rows
    uniform_ratios = [r[3] for r in rows if r[0].startswith("uniform")]
    skew_ratio = [r[3] for r in rows if r[0].startswith("power-law")][0]
    # shared aggregation wins everywhere it fits...
    assert all(r > 1.0 for r in uniform_ratios)
    # ...with a bounded overhead for the global variant on uniform columns...
    assert max(uniform_ratios) < 2.5
    # ...while column skew makes global aggregation strictly worse than the
    # comparable uniform case (the contention the shared mirror absorbs)
    uniform_512 = uniform_ratios[1]
    assert skew_ratio > uniform_512


def bench_texture_and_l2_ablation(benchmark, record_experiment):
    """Turning off the y texture binding and the L2 row reuse must cost
    load transactions — the two locality mechanisms of §3.1."""

    def run():
        res = ExperimentResult(
            "ablation-locality",
            "fused sparse: texture / L2-reuse ablation (n=1024)",
            ("config", "time_ms", "load_transactions"))
        rng = np.random.default_rng(1)
        X = random_csr(40_000, 1024, 0.01, rng=2)
        y = rng.normal(size=1024)
        configs = {
            "full": GpuContext(GTX_TITAN),
            "no-texture": GpuContext(GTX_TITAN, use_texture_cache=False),
            "no-l2-reuse": GpuContext(GTX_TITAN, use_l2_reuse=False),
            "neither": GpuContext(GTX_TITAN, use_texture_cache=False,
                                  use_l2_reuse=False),
        }
        for name, ctx in configs.items():
            r = fused_pattern_sparse(X, y, ctx=ctx)
            res.add(name, r.time_ms, r.counters.global_load_transactions)
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(res)
    rows = {r[0]: r for r in res.rows}
    assert rows["no-texture"][2] > rows["full"][2]
    assert rows["no-l2-reuse"][2] > rows["full"][2]
    assert rows["neither"][1] >= rows["full"][1]
    # losing the second-pass reuse costs about one extra pass over X
    assert rows["no-l2-reuse"][2] > 1.3 * rows["full"][2]


def bench_coarsening_sweep(benchmark, record_experiment):
    """Coarsening C trades inter-block atomic flushes for parallelism;
    Eq. 5's balanced choice should sit near the sweep's optimum."""

    def run():
        res = ExperimentResult(
            "ablation-coarsening",
            "fused sparse: coarsening-factor sweep (n=1024)",
            ("C", "grid", "time_ms", "is_model_choice"))
        rng = np.random.default_rng(3)
        X = random_csr(60_000, 1024, 0.01, rng=4)
        y = rng.normal(size=1024)
        model = tune_sparse(X)
        for mult in (0.05, 0.25, 0.5, 1.0, 2.0, 8.0, 64.0):
            c = max(1, round(model.coarsening * mult))
            nv = model.block_size // model.vector_size
            grid = max(1, -(-X.m // (nv * c)))
            params = SparseParams(
                vector_size=model.vector_size,
                block_size=model.block_size, coarsening=c,
                grid_size=grid, shared_bytes=model.shared_bytes,
                registers=model.registers, variant=model.variant,
                occupancy=model.occupancy)
            r = fused_pattern_sparse(X, y, params=params)
            res.add(c, grid, r.time_ms, mult == 1.0)
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(res)
    times = res.column("time_ms")
    model_time = [r[2] for r in res.rows if r[3]][0]
    # the model's C is within 25% of the best probed setting, and tiny C
    # (many blocks -> many atomic flushes) is measurably worse
    assert model_time <= 1.25 * min(times)
    assert times[0] > min(times)


def bench_format_choice(benchmark, record_experiment):
    """CSR-vector vs ELL vs HYB across row-length skew: ELL collapses on
    skewed rows (padding), HYB recovers, CSR stays close to best — the
    Bell & Garland landscape the paper's kernel starts from."""

    def run():
        res = ExperimentResult(
            "ablation-format",
            "SpMV format comparison: uniform vs power-law rows",
            ("rows", "csr_ms", "ell_ms", "hyb_ms", "ell_padding"))
        rng = np.random.default_rng(5)
        uniform = random_csr(20_000, 512, 0.02, rng=6)
        skewed = power_law_csr(5_000, 512, nnz_target=uniform.nnz // 4,
                               alpha=1.6, rng=7)
        for name, X in (("uniform", uniform), ("power-law", skewed)):
            y = rng.normal(size=X.n)
            csr_t = csrmv(X, y).time_ms
            ell = EllMatrix.from_csr(X)
            ell_t = ellmv(ell, y).time_ms
            hyb = HybMatrix.from_csr(X)
            hyb_t = hybmv(hyb, y).time_ms
            res.add(name, csr_t, ell_t, hyb_t, ell.padding_fraction)
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(res)
    rows = {r[0]: r for r in res.rows}
    uni, skew = rows["uniform"], rows["power-law"]
    # skew blows up ELL's padding and its time relative to HYB
    assert skew[4] > uni[4] + 0.2
    assert skew[2] > skew[3], "HYB must beat ELL on skewed rows"
