"""Table 4: the three patterns on the ultra-sparse KDD2010 stand-in
(large-n fused variant vs cuBLAS/cuSPARSE)."""

from repro.bench.tables import table4


def bench_table4(benchmark, record_experiment):
    result = benchmark.pedantic(table4, rounds=1, iterations=1)
    record_experiment(result)
    rows = {r[0]: r for r in result.rows}

    # paper speedups: X^T y 110x, X^T(Xy) 72.6x, full 66.9x — more than an
    # order of magnitude everywhere, largest for the bare transpose product
    for name in ("X^T y", "X^T (X y)", "full"):
        assert rows[name][3] > 10.0, f"{name}: {rows[name][3]}"
    assert rows["X^T y"][3] >= rows["full"][3]
    # fused times ordered like the paper's 50.5 < 78.3 < 85.2 ms
    assert rows["X^T y"][1] <= rows["X^T (X y)"][1] <= rows["full"][1]
