"""Span-tracing benchmark: capture overhead and attribution coverage.

Runs the warm engine loop (the Listing-1 hot statement, ``q = X^T(Xy) +
eps*y``) twice — untraced and with a capturing tracer installed — and
records two ratio metrics:

* ``traced_throughput_x`` — untraced per-call wall time over traced
  per-call wall time.  1.0 means free tracing; the committed baseline
  guards against an instrumentation change making capture expensive.
* ``attribution_coverage_x`` — fraction of the measured per-call latency
  the span tree explains (queue wait + evaluation + completion); the
  ``repro trace`` CLI gates the same quantity at 1 ± 0.1.

Also runnable as a script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_trace.py --quick

which writes the series to ``benchmarks/results/BENCH_trace.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro import trace
from repro.core.engine import PatternEngine
from repro.sparse import random_csr

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _loop(engine: PatternEngine, X, iterations: int, seed: int) -> float:
    """Summed per-call wall ms of the warm iteration loop."""
    rng = np.random.default_rng(seed)
    n = X.shape[1]
    total = 0.0
    for _ in range(iterations):
        y = rng.normal(size=n)
        t0 = time.perf_counter()
        engine.evaluate(X, y, z=y, beta=1e-3, strategy="fused")
        total += (time.perf_counter() - t0) * 1e3
    return total


def trace_overhead(iterations: int = 60, rows: int = 20_000,
                   cols: int = 256, sparsity: float = 0.01) -> dict:
    X = random_csr(rows, cols, sparsity, rng=0)
    engine = PatternEngine()
    _loop(engine, X, max(3, iterations // 10), seed=99)   # warm the caches

    untraced_ms = _loop(engine, X, iterations, seed=1)
    with trace.capture() as tracer:
        traced_ms = _loop(engine, X, iterations, seed=1)
    att = trace.attribution(tracer.snapshot(), traced_ms)

    return {
        "experiment": "trace",
        "title": f"Span-tracing capture overhead and attribution coverage: "
                 f"{iterations} warm fused-pattern calls on "
                 f"{rows}x{cols}:{sparsity:g}",
        "iterations": iterations,
        "series": [
            {"series": "untraced", "per_call_ms": untraced_ms / iterations},
            {"series": "traced", "per_call_ms": traced_ms / iterations},
        ],
        "traced_throughput_x": untraced_ms / max(traced_ms, 1e-9),
        "attribution_coverage_x": att["coverage"],
        "spans": len(tracer.snapshot()),
        "notes": [
            "traced_throughput_x ~ 1.0 means installing a capturing tracer "
            "costs nothing measurable per warm call",
            "attribution_coverage_x is the repro-trace acceptance quantity: "
            "queue-wait + evaluate + completion over measured per-call wall "
            "time (CLI gate: within 1 +/- 0.1)",
            "host wall-clock on the simulated-device counter model",
        ],
    }


def bench_trace(benchmark, record_experiment):
    """pytest-benchmark wrapper: traced replay + attribution assertions."""
    from repro.bench.trace_bench import trace_attribution

    result = benchmark.pedantic(trace_attribution, rounds=1, iterations=1)
    record_experiment(result)
    q = dict(zip(result.column("quantity"), result.column("value")))
    assert 0.85 <= q["coverage"] <= 1.15, \
        f"attribution coverage {q['coverage']:.3f} outside [0.85, 1.15]"
    assert q["spans"] > 0
    # the decomposition is internally consistent: parts sum to attributed
    parts = (q["queue_wait_ms"] + q["evaluate_ms"] + q["completion_ms"])
    assert abs(parts - q["attributed_ms"]) < 1e-6 * max(1.0, parts)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small iteration count for CI smoke runs")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero when coverage leaves [0.85, 1.15] "
                         "or tracing halves throughput (wall-clock ratios "
                         "are noisy on shared runners, so CI records "
                         "without gating and trends via check_trend.py)")
    args = ap.parse_args(argv)

    iterations = 20 if args.quick else 60
    payload = trace_overhead(iterations=iterations)

    for row in payload["series"]:
        print(f"{row['series']:>10}: {row['per_call_ms']:8.3f} ms/call")
    print(f"traced throughput: {payload['traced_throughput_x']:.3f}x, "
          f"attribution coverage: {payload['attribution_coverage_x']:.3f} "
          f"({payload['spans']} spans)")

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_trace.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    ok = (0.85 <= payload["attribution_coverage_x"] <= 1.15
          and payload["traced_throughput_x"] >= 0.5)
    if not ok:
        print("targets missed: coverage in [0.85, 1.15] and throughput "
              ">= 0.5x wanted", file=sys.stderr)
    return 0 if ok or not args.check else 1


if __name__ == "__main__":
    raise SystemExit(main())
