"""Table 2: single-threaded CPU compute-time breakdown of LR-CG."""

from repro.bench.tables import table2


def bench_table2(benchmark, record_experiment):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    record_experiment(result)
    rows = {r[0]: r for r in result.rows}

    kdd = rows["KDD2010-like"]
    higgs = rows["HIGGS-like"]
    # paper: KDD 82.9% pattern / 16.9% BLAS-1; HIGGS 99.4% / 0.1%
    assert 70.0 < kdd[1] < 95.0
    assert 5.0 < kdd[2] < 30.0
    assert higgs[1] > 97.0
    assert higgs[2] < 3.0
    # the pattern share is larger for the wide-row dense data
    assert higgs[1] > kdd[1]
