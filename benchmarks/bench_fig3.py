"""Figure 3: ``X^T x (X x y)`` sparse — fused vs cuSPARSE / BIDMat-GPU /
BIDMat-CPU."""

import numpy as np

from repro.bench.figures import figure3


def bench_figure3(benchmark, record_experiment):
    result = benchmark.pedantic(figure3, rounds=1, iterations=1)
    record_experiment(result)

    cusp = result.column("cusparse_x")
    bgpu = result.column("bidmat-gpu_x")
    bcpu = result.column("bidmat-cpu_x")

    # paper: fused wins against every method at every size; cuSPARSE is the
    # slowest baseline and BIDMat-GPU tracks it (avg 20.33 / 14.66 / 9.28)
    assert all(x > 1.0 for x in cusp + bgpu + bcpu)
    for c, g in zip(cusp, bgpu):
        assert c > g, "BIDMat-GPU should sit between fused and cuSPARSE"
    assert float(np.mean(cusp)) > float(np.mean(bcpu))
    assert 3.0 < float(np.mean(bcpu)) < 30.0       # paper: 9.28x
    assert float(np.mean(cusp)) > 8.0              # paper: 20.33x
