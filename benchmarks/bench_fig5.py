"""Figure 5: ``X^T x (X x y)`` dense — fused (generated kernel) vs cuBLAS /
BIDMat-GPU / BIDMat-CPU."""

import numpy as np

from repro.bench.figures import figure5


def bench_figure5(benchmark, record_experiment):
    result = benchmark.pedantic(figure5, rounds=1, iterations=1)
    record_experiment(result)

    cublas = result.column("cusparse_x")     # cuBLAS route for dense
    bgpu = result.column("bidmat-gpu_x")
    bcpu = result.column("bidmat-cpu_x")

    # paper: dense gains are modest (4.27x vs cuBLAS, 2.18x vs BIDMat-GPU
    # — the win is loading X once) while the CPU lags far behind (15.33x):
    # the dense-vs-sparse crossover where MKL is relatively worse on dense
    assert all(x > 1.0 for x in cublas)
    assert 1.5 < float(np.mean(cublas)) < 10.0
    assert float(np.mean(bgpu)) < float(np.mean(cublas))
    assert float(np.mean(bcpu)) > float(np.mean(cublas)), \
        "CPU must lag the GPU baselines on dense (unlike sparse)"
    assert float(np.mean(bcpu)) > 8.0
