"""Sharded-cluster scaling: fingerprint-partitioned caches vs one server.

Regenerates the cluster experiment: a near-uniform request stream over
more fingerprints than one shard's bounded artifact LRU can hold,
replayed against 1, 2 and 4 fingerprint-sharded worker processes with the
*per-shard* budget held constant, plus a Zipf hot-key scenario comparing
replication 1 (head traffic pinned to one shard) against replication 2
(hot fingerprints spread over their replica sets).  Asserts the
acceptance claims: >= 2.0x aggregate throughput from 1 -> 4 shards and
zero result divergence vs uncached evaluation.

Also runnable as a script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke

which writes the series to ``benchmarks/results/BENCH_cluster.json`` and
the markdown table to ``benchmarks/results/cluster.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.cluster_bench import SHARD_COUNTS, cluster_scaling

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _headline(result) -> tuple[float, float, int, int]:
    """(1->4 scaling, hot-key spread gain, divergent total, dropped total)."""
    cols = result.columns
    rps = {r[cols.index("shards")]: r[cols.index("throughput_rps")]
           for r in result.rows if r[0] == "scaling"}
    scaling = rps[SHARD_COUNTS[-1]] / max(rps[SHARD_COUNTS[0]], 1e-9)
    share = {r[cols.index("replication")]: r[cols.index("max_shard_share")]
             for r in result.rows if r[0] == "hotkey"}
    hot_spread = share[1] / max(share[2], 1e-9)
    divergent = sum(r[cols.index("divergent")] for r in result.rows)
    dropped = sum(r[cols.index("dropped")] for r in result.rows)
    return scaling, hot_spread, divergent, dropped


def bench_cluster(benchmark, record_experiment):
    result = benchmark.pedantic(cluster_scaling, rounds=1, iterations=1)
    record_experiment(result)

    scaling, hot_spread, divergent, dropped = _headline(result)

    # the acceptance claims: sharding the fingerprint space >= doubles
    # aggregate throughput by 4 shards at a fixed per-shard cache budget,
    # with zero divergence and every request completing
    assert scaling >= 2.0, f"1->4 shard scaling {scaling:.2f}x < 2.0x"
    assert divergent == 0, f"{divergent} outputs diverged from uncached"
    assert dropped == 0, f"{dropped} requests rejected/failed unexpectedly"

    # the mechanism must be cache residency, not timing luck: the warm
    # fraction climbs monotonically with the shard count
    cols = result.columns
    warm = {r[cols.index("shards")]: r[cols.index("warm_fraction")]
            for r in result.rows if r[0] == "scaling"}
    assert warm[SHARD_COUNTS[-1]] > warm[SHARD_COUNTS[0]] + 0.3, \
        f"warm fraction barely moved: {warm}"

    # hot-key replication must actually engage on the Zipf trace and
    # de-concentrate the head shard's load
    replica = {r[cols.index("replication")]: r[cols.index("replica_routed")]
               for r in result.rows if r[0] == "hotkey"}
    assert replica[1] == 0 and replica[2] > 0, \
        f"replica routing {replica} (expected only at replication=2)"
    assert hot_spread >= 1.1, \
        f"hot-shard load share barely moved ({hot_spread:.2f}x)"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="shorter trace for CI smoke runs (matrix sizes "
                         "unchanged: the capacity effect needs them)")
    ap.add_argument("--scale", type=float, default=None,
                    help="row-count scale in (0, 1] (default: REPRO_SCALE)")
    ap.add_argument("--requests", type=int, default=None,
                    help="scaling-trace length (default 240, smoke 120)")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if the >=2.0x / zero-divergence "
                         "targets are missed (wall-clock ratios are noisy "
                         "on shared runners, so CI records without gating)")
    args = ap.parse_args(argv)

    requests = args.requests or (120 if args.smoke else 240)
    hot_requests = 100 if args.smoke else 200
    result = cluster_scaling(scale=args.scale, requests=requests,
                             hot_requests=hot_requests)
    result.print()

    scaling, hot_spread, divergent, dropped = _headline(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "experiment": result.experiment,
        "title": result.title,
        "requests": requests,
        "series": [dict(zip(result.columns, row)) for row in result.rows],
        "scaling_1_to_4_x": scaling,
        "hotkey_spread_x": hot_spread,
        "divergent_outputs": divergent,
        "dropped_requests": dropped,
        "notes": result.notes,
    }
    out = RESULTS_DIR / "BENCH_cluster.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    (RESULTS_DIR / "cluster.md").write_text(result.to_markdown())
    print(f"wrote {out} and {RESULTS_DIR / 'cluster.md'}")

    ok = scaling >= 2.0 and divergent == 0 and dropped == 0
    if not ok:
        print(f"targets missed: scaling {scaling:.2f}x (>=2.0 wanted), "
              f"{divergent} divergent, {dropped} dropped", file=sys.stderr)
    return 0 if ok or not args.check else 1


if __name__ == "__main__":
    raise SystemExit(main())
