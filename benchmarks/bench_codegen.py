"""AOT sparse-kernel compilation: compiled vs interpreted warm dispatch.

Regenerates the codegen experiment: per-call wall time of the fused
pattern at five dispatch levels (numeric floor, direct compiled call,
warm interpreted engine, warm compiling engine with and without a pinned
fingerprint) on the Fig. 3 sweep workload.  The builder asserts
bit-identity across all levels before timing anything.

Also runnable as a script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_codegen.py --quick

which writes the series to ``benchmarks/results/BENCH_codegen.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.codegen_bench import codegen_warm_path

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _ratios(result) -> tuple[float, float]:
    """(compiled-vs-interpreted speedup, pin speedup) from the series."""
    per_call = dict(zip(result.column("series"),
                        result.column("per_call_ms")))
    compiled_x = (per_call["warm_interpreted_e2e"]
                  / max(per_call["warm_compiled_e2e"], 1e-9))
    pin_x = (per_call["warm_compiled_unpinned_e2e"]
             / max(per_call["warm_compiled_e2e"], 1e-9))
    return compiled_x, pin_x


def bench_codegen(benchmark, record_experiment):
    result = benchmark.pedantic(codegen_warm_path, rounds=1, iterations=1)
    record_experiment(result)

    per_call = dict(zip(result.column("series"),
                        result.column("per_call_ms")))
    compiled_x, pin_x = _ratios(result)

    # the acceptance claim: warm compiled evaluate() >= 2x over the
    # interpreted warm path, with bit-identical outputs (asserted inside
    # the builder before any timing)
    assert compiled_x >= 2.0, f"warm compiled speedup {compiled_x:.2f}x < 2x"
    assert pin_x >= 1.0, f"pinned fingerprint slower: {pin_x:.2f}x"

    # series shape: the floor is the cheapest, the direct compiled call
    # lands within noise of it, and every e2e level sits above the floor
    assert per_call["numeric_floor"] <= per_call["compiled_direct"] * 1.25
    assert per_call["warm_compiled_e2e"] < per_call["warm_interpreted_e2e"]
    assert (per_call["warm_compiled_e2e"]
            <= per_call["warm_compiled_unpinned_e2e"] * 1.25)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small iteration count for CI smoke runs")
    ap.add_argument("--scale", type=float, default=None,
                    help="row-count scale in (0, 1] (default: REPRO_SCALE)")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if the >=2x compiled-speedup "
                         "target is missed (wall-clock ratios are noisy on "
                         "shared runners, so CI records without gating)")
    args = ap.parse_args(argv)

    iterations = 10 if args.quick else 30
    result = codegen_warm_path(scale=args.scale, iterations=iterations)
    result.print()

    compiled_x, pin_x = _ratios(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "experiment": result.experiment,
        "title": result.title,
        "iterations": iterations,
        "series": [dict(zip(result.columns, row)) for row in result.rows],
        "warm_compiled_speedup_x": compiled_x,
        "pinned_fingerprint_speedup_x": pin_x,
        "notes": result.notes,
    }
    out = RESULTS_DIR / "BENCH_codegen.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    ok = compiled_x >= 2.0
    if not ok:
        print(f"target missed: warm compiled {compiled_x:.2f}x "
              f"(>=2 wanted)", file=sys.stderr)
    return 0 if ok or not args.check else 1


if __name__ == "__main__":
    raise SystemExit(main())
