"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` wraps one experiment builder from :mod:`repro.bench`:
pytest-benchmark times the builder, and the resulting series/rows (the
paper's figures and tables, in model milliseconds) are printed to the
console and collected into ``benchmarks/results/*.md``.

Scale: ``REPRO_SCALE`` (in (0,1], default per experiment) or
``REPRO_FULL_SCALE=1`` for paper-sized inputs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_experiment(results_dir):
    """Print an ExperimentResult and persist it as markdown."""

    def _record(result):
        result.print()
        out = results_dir / f"{result.experiment}.md"
        out.write_text(result.to_markdown())
        return result

    return _record
