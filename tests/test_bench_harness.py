"""The bench harness: registry, result assembly, scale resolution."""

import numpy as np
import pytest

from repro.bench import REGISTRY, ExperimentResult, resolve_scale
from repro.bench.figures import figure2, figure6
from repro.bench.tables import table1


class TestExperimentResult:
    def test_add_and_column(self):
        r = ExperimentResult("x", "t", ("a", "b"))
        r.add(1, 2.0)
        r.add(3, 4.0)
        assert r.column("a") == [1, 3]
        assert r.column("b") == [2.0, 4.0]

    def test_add_wrong_arity(self):
        r = ExperimentResult("x", "t", ("a", "b"))
        with pytest.raises(ValueError, match="row has"):
            r.add(1)

    def test_markdown_rendering(self):
        r = ExperimentResult("figX", "demo", ("n", "speedup"))
        r.add(100, 12.345)
        r.notes.append("a note")
        md = r.to_markdown()
        assert "| n | speedup |" in md
        assert "12.3" in md
        assert "a note" in md
        assert md.startswith("### figX")


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {"figure2", "figure3", "figure4", "figure5", "figure6",
                    "table1", "table2", "table4", "table5", "table6"}
        assert expected <= set(REGISTRY)

    def test_scale_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert resolve_scale(0.25) == 0.25
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert resolve_scale(0.25) == 0.5
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert resolve_scale(0.25) == 1.0

    def test_invalid_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "7")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            resolve_scale(0.1)


class TestSmallScaleExperiments:
    """Experiments at tiny scale: structure checks only (bands are asserted
    at the benchmark scale in benchmarks/)."""

    def test_figure2_structure(self):
        r = figure2(scale=0.01)
        assert r.columns[0] == "n"
        assert len(r.rows) == 6
        assert all(s > 1.0 for s in r.column("speedup"))

    def test_figure6_structure(self):
        r = figure6(scale=0.02)
        q = dict(zip(r.column("quantity"), r.column("value")))
        assert q["settings_explored"] > 300
        assert q["model_gap_pct"] < 25.0

    def test_table1_structure(self):
        r = table1()
        assert len(r.rows) == 5
        assert any("complete" in n for n in r.notes)
