"""Behavioural pins for the concurrency fixes the host analyzer drove.

Each test targets one shipped change: the merged pinned-fingerprint
critical section, the keep-first transpose build race, the Event-based
accept flag on the server, and the locked ``ShardChannel.healthy`` read.
The point is that the *fix* — not just the analyzer's silence — survives
future edits.
"""

import socket
import threading

import numpy as np
import pytest

from repro.core.engine import PatternEngine
from repro.serve import (STATUS_OK, STATUS_REJECTED, PatternServer,
                         ServeRequest)
from repro.sparse import random_csr


def make_request(rng: int = 0) -> ServeRequest:
    X = random_csr(60, 12, 0.2, rng=rng)
    gen = np.random.default_rng(rng)
    return ServeRequest(X, gen.standard_normal(X.n),
                        z=gen.standard_normal(X.n), beta=0.3)


class TestPinnedFingerprint:
    def test_pin_hit_is_memoized_and_counted(self):
        engine = PatternEngine()
        X = random_csr(40, 10, 0.3, rng=1)
        fp = engine.pin(X)
        got, pinned = engine._fingerprint(X)
        assert (got, pinned) == (fp, True)
        assert engine.stats().pinned_fingerprint_hits == 1

    def test_rebound_array_falls_back_to_hashing(self):
        # rebinding X.values to a fresh writable array breaks the pin:
        # the memo must not serve a stale fingerprint
        engine = PatternEngine()
        X = random_csr(40, 10, 0.3, rng=1)
        engine.pin(X)
        X.values = X.values.copy()
        X.values[0] += 1.0
        got, pinned = engine._fingerprint(X)
        assert not pinned
        assert got != engine._fingerprint(random_csr(40, 10, 0.3, rng=2))[0]

    def test_concurrent_pinned_lookups_count_exactly(self):
        # the whole check-ref-count-pop sequence now sits in one critical
        # section, so N racing lookups record exactly N hits
        engine = PatternEngine()
        X = random_csr(40, 10, 0.3, rng=1)
        engine.pin(X)
        n, workers = 25, 8
        barrier = threading.Barrier(workers)

        def spin():
            barrier.wait()
            for _ in range(n):
                assert engine._fingerprint(X)[1]

        threads = [threading.Thread(target=spin) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert engine.stats().pinned_fingerprint_hits == n * workers


class TestTransposeKeepFirst:
    def test_losing_builder_returns_winner_artifact(self):
        engine = PatternEngine()
        X = random_csr(50, 12, 0.3, rng=3)
        from repro.core.engine import fingerprint_matrix
        fp = fingerprint_matrix(X)
        XT1, _, warm = engine._transpose_for(X, fp)
        assert not warm
        bytes_after_first = engine._artifact_bytes
        # simulate the losing side of the build race: the artifact is
        # already cached when the second builder re-enters the lock
        XT2, res, warm = engine._transpose_for(X, fp)
        assert warm and res is None
        assert XT2 is XT1
        # keep-first: no double insert, no byte-accounting drift
        assert engine._artifact_bytes == bytes_after_first
        assert engine.stats().transposes_built == 1


class TestServerAcceptFlag:
    def test_submit_after_stop_is_rejected_not_raced(self):
        server = PatternServer()
        try:
            assert server.evaluate(make_request()).status == STATUS_OK
            server.stop()
            resp = server.submit(make_request()).result(timeout=5.0)
            assert resp.status == STATUS_REJECTED
        finally:
            server.stop()

    def test_stop_is_idempotent(self):
        server = PatternServer()
        server.stop()
        server.stop()
        resp = server.submit(make_request()).result(timeout=5.0)
        assert resp.status == STATUS_REJECTED


class TestChannelHealthyRead:
    @pytest.fixture
    def channel(self):
        from repro.cluster.channel import ShardChannel
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        accepted = []
        t = threading.Thread(target=lambda: accepted.append(
            listener.accept()[0]), daemon=True)
        t.start()
        ch = ShardChannel(0, port)
        t.join(5.0)
        try:
            yield ch
        finally:
            ch.close(join_timeout_s=2.0)
            for s in accepted:
                s.close()
            listener.close()

    def test_healthy_flips_exactly_once_under_racing_readers(self, channel):
        stop = threading.Event()
        flips = []

        def watch():
            last = channel.healthy
            while not stop.is_set():
                cur = channel.healthy       # locked read of _healthy
                if cur != last:
                    flips.append((last, cur))
                    last = cur

        readers = [threading.Thread(target=watch) for _ in range(4)]
        for t in readers:
            t.start()
        assert channel.healthy
        channel._fail("test")
        stop.set()
        for t in readers:
            t.join(5.0)
        assert not channel.healthy
        assert all(flip == (True, False) for flip in flips)

    def test_failed_channel_fires_callbacks_with_none(self, channel):
        got = []
        channel._fail("test")
        channel.send({"op": "ping"}, on_reply=got.append)
        assert got == [None]
