"""Property test: DAG -> DML text -> DAG round-trips semantically.

A hypothesis strategy generates random *well-typed* expression DAGs over a
fixed environment (a sparse X plus n- and m-length vectors); printing with
``to_dml`` and re-parsing must evaluate to the same vector.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import random_csr
from repro.systemml.dag import Add, EwMul, Input, MatVec, Smul, Transpose
from repro.systemml.parser import parse_expression, to_dml
from repro.systemml.rewriter import rewrite

M, N = 24, 10
_X = random_csr(M, N, 0.3, rng=0)
_RNG = np.random.default_rng(1)
ENV = {
    "X": _X,
    "yn": _RNG.normal(size=N), "zn": _RNG.normal(size=N),
    "ym": _RNG.normal(size=M), "vm": _RNG.normal(size=M),
}

_N_VECS = ("yn", "zn")
_M_VECS = ("ym", "vm")


def _exprs(length: str, depth: int):
    """Strategy for vector expressions of the given logical length."""
    names = _N_VECS if length == "n" else _M_VECS
    leaf = st.sampled_from(names).map(Input)
    if depth <= 0:
        return leaf
    sub = _exprs(length, depth - 1)
    other = _exprs("m" if length == "n" else "n", depth - 1)
    alpha = st.floats(-4, 4, allow_nan=False).map(lambda a: round(a, 3))
    options = [
        leaf,
        st.tuples(alpha, sub).map(lambda t: Smul(t[0], t[1])),
        st.tuples(sub, sub).map(lambda t: Add(*t)),
        st.tuples(sub, sub).map(lambda t: EwMul(*t)),
    ]
    if length == "m":
        options.append(other.map(lambda v: MatVec(Input("X"), v)))
    else:
        options.append(other.map(
            lambda v: MatVec(Transpose(Input("X")), v)))
    return st.one_of(options)


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(st.one_of(_exprs("n", 3), _exprs("m", 3)))
    def test_print_parse_evaluates_identically(self, node):
        text = to_dml(node)
        reparsed = parse_expression(text)
        np.testing.assert_allclose(reparsed.eval(ENV), node.eval(ENV),
                                   rtol=1e-12, atol=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(_exprs("n", 3))
    def test_rewrite_preserves_semantics_of_printed_dag(self, node):
        """rewrite() on a reparsed DAG never changes its value."""
        reparsed = parse_expression(to_dml(node))
        expected = node.eval(ENV)
        rewritten = rewrite(reparsed)
        np.testing.assert_allclose(rewritten.eval(ENV), expected,
                                   rtol=1e-9, atol=1e-10)

    def test_fused_node_not_printable(self):
        from repro.systemml.dag import FusedPattern
        f = FusedPattern(Input("X"), Input("yn"))
        with pytest.raises(ValueError, match="rewrite artifact"):
            to_dml(f)

    def test_known_example(self):
        node = Add(MatVec(Transpose(Input("X")),
                          MatVec(Input("X"), Input("yn"))),
                   Smul(0.5, Input("zn")))
        text = to_dml(node)
        assert "%*%" in text and "t(X)" in text
        np.testing.assert_allclose(parse_expression(text).eval(ENV),
                                   node.eval(ENV), rtol=1e-12)
