"""ShardRouter integration: routing, parity, replication, drain hygiene.

Multi-process tests (real worker processes, real sockets) for the cluster
contract:

* completed outputs are bit-identical to direct uncached evaluation —
  sharding adds placement, never numerics;
* the same fingerprint always lands on its ring primary while cold, so
  per-shard caches see disjoint working sets;
* a Zipf-hot fingerprint is promoted and spread over its replica set;
* unknown ops and unregistered fingerprints answer deterministically;
* shutdown drains cleanly: no leaked threads, no leaked processes, and
  every outstanding request resolves.

Everything uses tiny matrices (~150x24) and bounded waits so the suite
stays fast and can never hang the runner.
"""

import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.cluster import (ClusterConfig, ClusterRequest, ShardRouter,
                           STATUS_OK, STATUS_REJECTED, WorkerConfig)
from repro.core.api import evaluate as evaluate_uncached
from repro.sparse import random_csr

pytestmark = pytest.mark.cluster


def cluster_threads():
    return [t for t in threading.enumerate()
            if t.is_alive() and t.name.startswith("repro-cluster")]


def make_router(shards=2, **kw):
    kw.setdefault("worker", WorkerConfig(max_batch=8, batch_linger_ms=0.5))
    kw.setdefault("heartbeat_interval_s", 0.1)
    return ShardRouter(ClusterConfig(shards=shards, **kw))


@pytest.fixture
def matrices():
    return [random_csr(150, 24, 0.08, rng=seed) for seed in range(5)]


# ------------------------------------------------------------------- parity
def test_outputs_bit_identical_to_uncached(matrices):
    router = make_router(shards=2)
    try:
        rng = np.random.default_rng(7)
        for X in matrices:
            fp = router.register(X)
            y = rng.normal(size=X.n)
            resp = router.evaluate(
                ClusterRequest(fp, y, z=y, beta=1e-3, strategy="fused"),
                timeout=60)
            assert resp.status == STATUS_OK, resp
            ref = evaluate_uncached(X, y, z=y, beta=1e-3, strategy="fused")
            assert np.array_equal(resp.result.output, ref.output)
    finally:
        router.stop()


def test_register_is_idempotent(matrices):
    router = make_router(shards=2)
    try:
        assert router.register(matrices[0]) == router.register(matrices[0])
    finally:
        router.stop()


# ----------------------------------------------------------------- affinity
def test_cold_requests_stick_to_ring_primary(matrices):
    router = make_router(shards=4, replication=1)
    try:
        rng = np.random.default_rng(1)
        for X in matrices:
            fp = router.register(X)
            primary = router.ring.primary(fp)
            for _ in range(3):
                resp = router.evaluate(
                    ClusterRequest(fp, rng.normal(size=X.n),
                                   strategy="fused"), timeout=60)
                assert resp.ok and resp.shard == primary, resp
    finally:
        router.stop()


def test_upload_happens_once_per_shard(matrices):
    router = make_router(shards=2, replication=1)
    try:
        fp = router.register(matrices[0])
        rng = np.random.default_rng(2)
        for _ in range(10):
            assert router.evaluate(
                ClusterRequest(fp, rng.normal(size=matrices[0].n),
                               strategy="fused"), timeout=60).ok
        assert router.metrics_snapshot()["counters"]["uploads"] == 1
    finally:
        router.stop()


# -------------------------------------------------------------- replication
def test_hot_key_promoted_and_spread(matrices):
    router = make_router(shards=3, replication=2, hot_threshold=0.5,
                         hot_min_requests=8)
    try:
        fp = router.register(matrices[0])
        rng = np.random.default_rng(3)
        responses = [router.evaluate(
            ClusterRequest(fp, rng.normal(size=matrices[0].n),
                           strategy="fused"), timeout=60)
            for _ in range(40)]
        assert all(r.ok for r in responses)
        snap = router.metrics_snapshot()
        assert snap["counters"]["promotions"] >= 1
        assert fp in snap["replicated"]
        reps = snap["replicated"][fp]
        assert reps == router.ring.replicas(fp, 2)
        shards_used = {r.shard for r in responses if r.replica_routed}
        # power-of-two-choices may favor one replica, but routing must
        # have considered the replica set once hot
        assert any(r.replica_routed for r in responses)
        assert shards_used <= set(reps)
    finally:
        router.stop()


def test_replication_disabled_never_promotes(matrices):
    router = make_router(shards=2, replication=1)
    try:
        fp = router.register(matrices[0])
        rng = np.random.default_rng(4)
        for _ in range(30):
            assert router.evaluate(
                ClusterRequest(fp, rng.normal(size=matrices[0].n),
                               strategy="fused"), timeout=60).ok
        snap = router.metrics_snapshot()
        assert snap["counters"]["promotions"] == 0
        assert snap["counters"]["routed_replica"] == 0
        assert snap["replicated"] == {}
    finally:
        router.stop()


# ----------------------------------------------------------- deterministic no
def test_unregistered_fingerprint_rejected():
    router = make_router(shards=2)
    try:
        resp = router.evaluate(
            ClusterRequest("no-such-fp", np.zeros(4)), timeout=30)
        assert resp.status == STATUS_REJECTED
        assert "unregistered" in resp.reason
    finally:
        router.stop()


def test_submit_after_stop_rejected(matrices):
    router = make_router(shards=2)
    fp = router.register(matrices[0])
    router.stop()
    resp = router.evaluate(
        ClusterRequest(fp, np.zeros(matrices[0].n)), timeout=30)
    assert resp.status == STATUS_REJECTED
    assert "shutdown" in resp.reason


def test_bad_shape_is_error_not_hang(matrices):
    router = make_router(shards=2)
    try:
        fp = router.register(matrices[0])
        resp = router.evaluate(ClusterRequest(fp, np.zeros(3)), timeout=30)
        assert resp.status == "error"
        assert resp.reason
    finally:
        router.stop()


# ------------------------------------------------------------ observability
def test_metrics_aggregate_matches_totals(matrices):
    router = make_router(shards=3)
    try:
        rng = np.random.default_rng(5)
        fps = [router.register(X) for X in matrices]
        n = 30
        for i in range(n):
            X, fp = matrices[i % 5], fps[i % 5]
            assert router.evaluate(
                ClusterRequest(fp, rng.normal(size=X.n),
                               strategy="fused"), timeout=60).ok
        snap = router.metrics_snapshot()
        assert snap["counters"]["submitted"] == n
        assert snap["counters"]["completed"] == n
        agg = snap["aggregate"]
        assert agg["counters"]["completed"] == n
        assert agg["shards_reporting"] == 3
        assert agg["histograms"]["latency_ms"]["count"] == n
        # per-shard completion counts sum to the aggregate
        per_shard = sum(e["metrics"]["counters"]["completed"]
                        for e in snap["shards"].values())
        assert per_shard == n
        # deterministic export ordering at every level
        assert list(snap) == sorted(snap)
        assert list(snap["counters"]) == sorted(snap["counters"])
        assert list(agg["counters"]) == sorted(agg["counters"])
    finally:
        router.stop()


def test_prometheus_export_has_cluster_series(matrices):
    router = make_router(shards=2)
    try:
        fp = router.register(matrices[0])
        rng = np.random.default_rng(6)
        assert router.evaluate(
            ClusterRequest(fp, rng.normal(size=matrices[0].n),
                           strategy="fused"), timeout=60).ok
        text = router.metrics_prometheus()
        for needle in ("repro_cluster_router_total",
                       "repro_cluster_requests_total",
                       "repro_cluster_shard_gauge",
                       'status="completed"', "repro_cluster_latency_ms"):
            assert needle in text
    finally:
        router.stop()


def test_route_spans_emitted(matrices):
    from repro import trace

    tracer = trace.Tracer()
    trace.install(tracer)
    try:
        router = make_router(shards=2)
        try:
            fp = router.register(matrices[0])
            rng = np.random.default_rng(8)
            assert router.evaluate(
                ClusterRequest(fp, rng.normal(size=matrices[0].n),
                               strategy="fused"), timeout=60).ok
            time.sleep(0.1)   # forward span lands from the reader thread
        finally:
            router.stop()
        names = {s.name for s in tracer.spans
                 if s.category == "cluster"}
        assert {"route", "forward"} <= names
    finally:
        trace.uninstall()


# ------------------------------------------------------------------ hygiene
def test_stop_is_idempotent_and_leak_free(matrices):
    before_threads = len(cluster_threads())
    before_children = len(multiprocessing.active_children())
    router = make_router(shards=2)
    fp = router.register(matrices[0])
    rng = np.random.default_rng(9)
    futures = [router.submit(
        ClusterRequest(fp, rng.normal(size=matrices[0].n),
                       strategy="fused")) for _ in range(20)]
    router.stop()
    router.stop()             # second stop must be a no-op
    for f in futures:
        resp = f.result(timeout=30)
        assert resp.status in (STATUS_OK, STATUS_REJECTED)
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if (len(cluster_threads()) <= before_threads
                and len(multiprocessing.active_children())
                <= before_children):
            break
        time.sleep(0.05)
    assert len(cluster_threads()) <= before_threads, cluster_threads()
    assert len(multiprocessing.active_children()) <= before_children


def test_context_manager_stops():
    with make_router(shards=2) as router:
        assert router.metrics_snapshot()["gauges"]["shards_healthy"] == 2
    assert router._shutdown_complete
