"""PatternServer behaviour: identity, admission, deadlines, shutdown.

The serving contract under test:

* outputs are bit-identical to direct uncached evaluation (the server adds
  scheduling, never numerics);
* a full admission queue sheds non-blocking submits and backpressures
  blocking ones;
* queued requests whose deadline expires are resolved ``timeout``, not
  evaluated;
* graceful shutdown completes in-flight batches, rejects everything still
  queued with a deterministic ``rejected`` response, and leaks no threads.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.api import evaluate as evaluate_uncached
from repro.core.engine import PatternEngine
from repro.serve import (STATUS_ERROR, STATUS_OK, STATUS_REJECTED,
                         STATUS_SHED, STATUS_TIMEOUT, PatternServer,
                         ServeClient, ServeFuture, ServeRequest,
                         ServeResponse, ServerConfig)
from repro.sparse import random_csr


def serve_threads() -> list[threading.Thread]:
    return [t for t in threading.enumerate()
            if t.is_alive() and t.name.startswith("repro-serve")]


class SlowEngine(PatternEngine):
    """Engine whose batches take a visible amount of wall time."""

    def __init__(self, delay_s: float = 0.05, **kw):
        super().__init__(**kw)
        self.delay_s = delay_s

    def evaluate_many(self, requests, max_workers=None):
        time.sleep(self.delay_s)
        return super().evaluate_many(requests, max_workers=max_workers)


class FailingEngine(PatternEngine):
    """Engine that raises while ``failing`` is set."""

    failing = False

    def evaluate_many(self, requests, max_workers=None):
        if self.failing:
            raise RuntimeError("injected engine failure")
        return super().evaluate_many(requests, max_workers=max_workers)


@pytest.fixture()
def X():
    return random_csr(150, 24, 0.2, rng=0)


@pytest.fixture()
def rng():
    return np.random.default_rng(1)


class TestRoundTrip:
    def test_bit_identical_to_uncached(self, X, rng):
        y = rng.normal(size=X.n)
        z = rng.normal(size=X.n)
        with PatternServer() as server:
            resp = server.evaluate(ServeRequest(X, y, z=z, beta=0.3,
                                                strategy="fused"))
        ref = evaluate_uncached(X, y, z=z, beta=0.3, strategy="fused")
        assert resp.ok and resp.status == STATUS_OK
        assert np.array_equal(resp.result.output, ref.output)
        assert resp.latency_ms >= resp.wait_ms >= 0.0
        assert resp.batch_size >= 1
        assert resp.fingerprint            # grouping key is reported back

    def test_every_policy_same_bits(self, X, rng):
        ys = [rng.normal(size=X.n) for _ in range(6)]
        outs = {}
        for policy in ("fifo", "fingerprint"):
            with PatternServer(config=ServerConfig(policy=policy)) as server:
                outs[policy] = [
                    server.evaluate(ServeRequest(X, y)).result.output
                    for y in ys]
        for a, b in zip(outs["fifo"], outs["fingerprint"]):
            assert np.array_equal(a, b)

    def test_second_call_served_warm(self, X, rng):
        with PatternServer() as server:
            server.evaluate(ServeRequest(X, rng.normal(size=X.n),
                                         strategy="fused"))
            warm = server.evaluate(ServeRequest(X, rng.normal(size=X.n),
                                                strategy="fused"))
        assert warm.cached

    def test_invalid_shapes_raise_in_caller(self, X):
        with PatternServer() as server:
            with pytest.raises(ValueError):
                server.submit(ServeRequest(X, np.ones(X.n + 3)))
        # nothing was enqueued for the bad request
        assert server.metrics.snapshot()["counters"]["submitted"] == 0


class TestAdmission:
    def test_shed_when_full(self, X, rng):
        server = PatternServer(
            config=ServerConfig(queue_capacity=2), start=False)
        futures = [server.submit(ServeRequest(X, rng.normal(size=X.n)))
                   for _ in range(4)]
        shed = [f.result(0.1) for f in futures[2:]]
        assert all(r.status == STATUS_SHED for r in shed)
        assert all("admission queue full" in r.reason for r in shed)
        server.start()
        assert all(f.result(10.0).ok for f in futures[:2])
        server.stop()
        snap = server.metrics.snapshot()["counters"]
        assert snap["shed"] == 2 and snap["completed"] == 2
        assert snap["submitted"] == 4 and snap["admitted"] == 2

    def test_backpressure_blocks_until_timeout(self, X, rng):
        server = PatternServer(
            config=ServerConfig(queue_capacity=1), start=False)
        server.submit(ServeRequest(X, rng.normal(size=X.n)))
        t0 = time.monotonic()
        fut = server.submit(ServeRequest(X, rng.normal(size=X.n)),
                            block=True, timeout=0.08)
        waited = time.monotonic() - t0
        assert waited >= 0.06                  # actually exerted backpressure
        assert fut.result(0.1).status == STATUS_SHED
        server.stop()

    def test_backpressure_admits_when_space_frees(self, X, rng):
        engine = SlowEngine(delay_s=0.02)
        with PatternServer(engine, ServerConfig(queue_capacity=1,
                                                max_batch=1,
                                                workers=1)) as server:
            futures = [server.submit(ServeRequest(X, rng.normal(size=X.n)),
                                     block=True, timeout=10.0)
                       for _ in range(5)]
            assert all(f.result(30.0).ok for f in futures)


class TestDeadlines:
    def test_expired_while_queued(self, X, rng):
        server = PatternServer(start=False)
        fut = server.submit(ServeRequest(X, rng.normal(size=X.n),
                                         deadline_ms=1.0))
        time.sleep(0.03)
        server.start()
        resp = fut.result(10.0)
        assert resp.status == STATUS_TIMEOUT
        assert "deadline" in resp.reason
        server.stop()
        assert server.metrics.snapshot()["counters"]["timeout"] == 1

    def test_generous_deadline_completes(self, X, rng):
        with PatternServer() as server:
            resp = server.evaluate(ServeRequest(X, rng.normal(size=X.n),
                                                deadline_ms=60_000.0))
        assert resp.ok

    def test_config_default_deadline_applies(self, X, rng):
        server = PatternServer(
            config=ServerConfig(default_deadline_ms=1.0), start=False)
        fut = server.submit(ServeRequest(X, rng.normal(size=X.n)))
        time.sleep(0.03)
        server.start()
        assert fut.result(10.0).status == STATUS_TIMEOUT
        server.stop()


class TestShutdown:
    def test_graceful_under_load(self, X, rng):
        engine = SlowEngine(delay_s=0.05)
        server = PatternServer(engine, ServerConfig(
            queue_capacity=64, max_batch=4, workers=1, batch_linger_ms=0.0))
        futures = [server.submit(ServeRequest(X, rng.normal(size=X.n)))
                   for _ in range(24)]
        time.sleep(0.02)                      # let the first batch dispatch
        server.stop()
        responses = [f.result(10.0) for f in futures]
        by_status = {}
        for r in responses:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        # in-flight work completed, everything else was rejected cleanly
        assert by_status.get(STATUS_OK, 0) >= 1
        assert by_status.get(STATUS_REJECTED, 0) >= 1
        assert set(by_status) <= {STATUS_OK, STATUS_REJECTED}
        assert all(r.reason == "server shutdown" for r in responses
                   if r.status == STATUS_REJECTED)
        assert serve_threads() == []          # no leaked threads

    def test_submit_after_stop_is_rejected(self, X, rng):
        server = PatternServer()
        server.stop()
        resp = server.submit(
            ServeRequest(X, rng.normal(size=X.n))).result(0.1)
        assert resp.status == STATUS_REJECTED
        assert resp.reason == "server shutdown"

    def test_stop_is_idempotent(self, X, rng):
        server = PatternServer()
        assert server.evaluate(ServeRequest(X, rng.normal(size=X.n))).ok
        server.stop()
        server.stop()
        assert serve_threads() == []

    def test_stop_without_start_rejects_backlog(self, X, rng):
        server = PatternServer(start=False)
        futures = [server.submit(ServeRequest(X, rng.normal(size=X.n)))
                   for _ in range(3)]
        server.stop()
        assert all(f.result(0.1).status == STATUS_REJECTED
                   for f in futures)
        assert serve_threads() == []

    def test_double_stop_before_start(self, X, rng):
        """Stop-before-start must latch cleanly and stay idempotent."""
        server = PatternServer(start=False)
        future = server.submit(ServeRequest(X, rng.normal(size=X.n)))
        server.stop()
        server.stop()                         # second call: pure no-op
        assert future.result(0.1).status == STATUS_REJECTED
        # still terminal afterwards: submits reject, start refuses
        late = server.submit(ServeRequest(X, rng.normal(size=X.n)))
        assert late.result(0.1).status == STATUS_REJECTED
        assert serve_threads() == []

    def test_start_after_stop_raises(self):
        server = PatternServer(start=False)
        server.stop()
        with pytest.raises(RuntimeError):
            server.start()

    def test_every_future_resolves_exactly_once(self, X, rng):
        engine = SlowEngine(delay_s=0.01)
        server = PatternServer(engine, ServerConfig(max_batch=2, workers=2))
        futures = [server.submit(ServeRequest(X, rng.normal(size=X.n)))
                   for _ in range(10)]
        server.stop()
        for f in futures:
            assert f.done()
            first = f.result(0.0)
            assert f.result(0.0) is first     # stable terminal response


class TestErrorIsolation:
    def test_engine_failure_resolves_batch_as_error(self, X, rng):
        engine = FailingEngine()
        with PatternServer(engine, ServerConfig(workers=1)) as server:
            engine.failing = True
            bad = server.evaluate(ServeRequest(X, rng.normal(size=X.n)))
            assert bad.status == STATUS_ERROR
            assert "injected engine failure" in bad.reason
            engine.failing = False
            good = server.evaluate(ServeRequest(X, rng.normal(size=X.n)))
            assert good.ok                     # server survived the failure
        snap = server.metrics.snapshot()["counters"]
        assert snap["errors"] == 1 and snap["completed"] == 1


class TestGaugesAndMetrics:
    def test_wait_idle(self, X, rng):
        with PatternServer() as server:
            fut = server.submit(ServeRequest(X, rng.normal(size=X.n)))
            assert server.wait_idle(timeout=10.0)
            assert fut.done()
            assert server.queue_depth == 0 and server.in_flight == 0

    def test_metrics_exports_include_engine(self, X, rng):
        with PatternServer() as server:
            server.evaluate(ServeRequest(X, rng.normal(size=X.n),
                                         strategy="fused"))
            snap = server.metrics_snapshot()
            prom = server.metrics_prometheus()
        assert snap["engine"]["profiles_built"] >= 1
        assert snap["counters"]["completed"] == 1
        assert snap["histograms"]["latency_ms"]["count"] == 1
        assert "repro_engine_profiles_built_total" in prom
        assert 'repro_serve_requests_total{status="completed"} 1' in prom

    def test_engine_batch_stats_update(self, X, rng):
        with PatternServer(config=ServerConfig(max_batch=8)) as server:
            futures = [server.submit(ServeRequest(X, rng.normal(size=X.n)))
                       for _ in range(6)]
            assert all(f.result(10.0).ok for f in futures)
            st = server.engine.snapshot()
        assert st.batches >= 1
        assert st.batch_requests == 6
        assert 1 <= st.batch_max_requests <= 6


class TestConfigValidation:
    @pytest.mark.parametrize("kw", [
        {"policy": "roulette"}, {"queue_capacity": 0},
        {"max_batch": 0}, {"workers": 0},
    ])
    def test_rejects_bad_config(self, kw):
        with pytest.raises(ValueError):
            ServerConfig(**kw)


class TestServeFuture:
    def test_first_resolution_wins(self):
        fut = ServeFuture()
        a = ServeResponse(id=1, status=STATUS_OK)
        b = ServeResponse(id=1, status=STATUS_REJECTED)
        assert fut.resolve(a)
        assert not fut.resolve(b)
        assert fut.result(0.0) is a
        assert fut.resolved_at is not None

    def test_result_timeout(self):
        with pytest.raises(TimeoutError):
            ServeFuture().result(0.01)

    def test_done_callback_after_resolution_runs_immediately(self):
        fut = ServeFuture()
        resp = ServeResponse(id=1, status=STATUS_OK)
        fut.resolve(resp)
        got = []
        fut.add_done_callback(got.append)
        assert got == [resp]

    def test_done_callbacks_fire_once_in_order(self):
        fut = ServeFuture()
        got = []
        fut.add_done_callback(lambda r: got.append(("a", r.status)))
        fut.add_done_callback(lambda r: got.append(("b", r.status)))
        fut.resolve(ServeResponse(id=1, status=STATUS_OK))
        fut.resolve(ServeResponse(id=1, status=STATUS_REJECTED))  # ignored
        assert got == [("a", STATUS_OK), ("b", STATUS_OK)]


class TestServeClient:
    def test_submit_evaluate_map(self, X, rng):
        with PatternServer() as server:
            client = ServeClient(server)
            resp = client.evaluate(X, rng.normal(size=X.n), beta=0.2,
                                   z=rng.normal(size=X.n))
            assert resp.ok
            resps = client.map([ServeRequest(X, rng.normal(size=X.n))
                                for _ in range(3)], wait_timeout=10.0)
            assert all(r.ok for r in resps)
            fut = client.submit(X, rng.normal(size=X.n), strategy="fused")
            assert fut.result(10.0).ok
