"""The mini-DML interpreter: Listing 1 verbatim, statements, control flow."""

import numpy as np
import pytest

from repro.data import regression_targets
from repro.core.pattern import Instantiation
from repro.ml import MLRuntime, linreg_cg
from repro.sparse import random_csr
from repro.systemml.parser import DmlSyntaxError
from repro.systemml.script import (DmlInterpreter, DmlRuntimeError, LISTING1,
                                   run_script, split_statements)


@pytest.fixture(scope="module")
def problem():
    X = random_csr(400, 30, 0.25, rng=1)
    y, _ = regression_targets(X, rng=2)
    return X, y


class TestStatementSplitting:
    def test_semicolons_and_comments(self):
        stmts = split_statements("a = 1; b = 2  # trailing\n# whole line\n"
                                 "c = 3")
        assert stmts == ["a = 1", "b = 2", "c = 3"]

    def test_hash_inside_string_kept(self):
        stmts = split_statements('write(w, "out#1")')
        assert stmts == ['write(w, "out#1")']

    def test_blank_lines_skipped(self):
        assert split_statements("\n\n  \n") == []


class TestScalarStatements:
    def test_arithmetic_and_power(self):
        interp = DmlInterpreter()
        interp.run("a = 2; b = a ^ 3 + 1; c = b / 3")
        assert interp.env["b"] == 9.0
        assert interp.env["c"] == 3.0

    def test_comparisons_and_conjunction(self):
        interp = DmlInterpreter()
        interp.run("x = 1; ok = x < 2 & x > 0; no = x < 2 & x > 5")
        assert interp.env["ok"] is True
        assert interp.env["no"] is False

    def test_while_loop(self):
        interp = DmlInterpreter()
        interp.run("""
i = 0; total = 0;
while (i < 5) {
  total = total + i;
  i = i + 1;
}
""")
        assert interp.env["total"] == 10.0
        assert interp.env["i"] == 5.0

    def test_nonterminating_loop_guard(self):
        with pytest.raises(DmlRuntimeError, match="100k"):
            DmlInterpreter().run("i = 0;\nwhile (i < 1) {\nx = 1;\n}")

    def test_undefined_variable(self):
        with pytest.raises(DmlRuntimeError, match="undefined"):
            DmlInterpreter().run("a = ghost + 1")

    def test_unknown_builtin(self):
        with pytest.raises(DmlRuntimeError, match="unknown builtin"):
            DmlInterpreter().run("a = solve(1)")


class TestMatrixStatements:
    def test_matvec_and_builtins(self, problem, rng):
        X, _ = problem
        interp = DmlInterpreter(inputs={"1": X})
        interp.env["v"] = rng.normal(size=X.n)
        interp.run("X = read($1); u = X %*% v; n = nrow(X); m = ncol(X)")
        np.testing.assert_allclose(interp.env["u"],
                                   X.to_dense() @ interp.env["v"],
                                   rtol=1e-10)
        assert interp.env["n"] == X.m and interp.env["m"] == X.n

    def test_matrix_constructor(self):
        interp = DmlInterpreter()
        interp.run("w = matrix(1.5, rows=4, cols=1)")
        np.testing.assert_array_equal(interp.env["w"], np.full(4, 1.5))

    def test_vector_dot_via_transpose(self, rng):
        interp = DmlInterpreter()
        a, b = rng.normal(size=8), rng.normal(size=8)
        interp.env["a"], interp.env["b"] = a, b
        interp.run("d = t(a) %*% b")
        assert interp.env["d"] == pytest.approx(float(a @ b))

    def test_sum_of_elementwise_square(self, rng):
        interp = DmlInterpreter()
        r = rng.normal(size=16)
        interp.env["r"] = r
        interp.run("nr2 = sum(r * r)")
        assert interp.env["nr2"] == pytest.approx(float(r @ r))

    def test_bare_transpose_assignment_rejected(self, problem):
        X, _ = problem
        interp = DmlInterpreter(inputs={"1": X})
        with pytest.raises(DmlRuntimeError, match="bare t"):
            interp.run("X = read($1); Z = t(X)")

    def test_write_output(self, rng):
        interp = DmlInterpreter()
        interp.env["w"] = rng.normal(size=3)
        res = interp.run('write(w, "w-out")')
        np.testing.assert_array_equal(res.outputs["w-out"],
                                      interp.env["w"])


class TestListing1:
    def test_matches_handcoded_cg(self, problem):
        """The paper's script text produces the same weights as linreg_cg."""
        X, y = problem
        res = run_script(LISTING1, {"1": X, "2": y},
                         MLRuntime("gpu-fused"))
        ref = linreg_cg(X, y, MLRuntime("gpu-fused"), eps=1e-3,
                        max_iterations=100, include_transfer=False)
        np.testing.assert_allclose(res.outputs["w"], ref.w, rtol=1e-12)
        assert res.env["i"] == ref.iterations

    def test_pattern_fused_every_iteration(self, problem):
        X, y = problem
        rt = MLRuntime("gpu-fused")
        res = run_script(LISTING1, {"1": X, "2": y}, rt)
        assert res.fused_calls == res.env["i"]
        assert rt.ledger.instantiations[Instantiation.XT_X_Y] \
            == res.fused_calls
        assert rt.ledger.instantiations[Instantiation.XT_Y] == 1

    def test_fused_backend_faster_than_baseline(self, problem):
        X, y = problem
        rt_f = MLRuntime("gpu-fused")
        run_script(LISTING1, {"1": X, "2": y}, rt_f)
        rt_b = MLRuntime("gpu-baseline")
        run_script(LISTING1, {"1": X, "2": y}, rt_b)
        assert rt_f.ledger.by_category["pattern"] < \
            rt_b.ledger.by_category["pattern"]

    def test_missing_input_binding(self, problem):
        X, _ = problem
        with pytest.raises(DmlRuntimeError, match="no input"):
            run_script("V = read($9)", {"1": X})
