"""The EXPERIMENTS.md report generator."""

import numpy as np
import pytest

from repro.bench.harness import ExperimentResult
from repro.bench.report import PAPER_HEADLINES, generate, measured_headline


class TestHeadlines:
    def test_every_experiment_has_a_paper_headline(self):
        from repro.bench import REGISTRY
        assert set(PAPER_HEADLINES) == set(REGISTRY)

    def test_figure2_headline(self):
        r = ExperimentResult("figure2", "t", (
            "n", "fused_ms", "cusparse_ms", "speedup", "fused_loads",
            "cusparse_loads", "load_ratio", "amortize_iters"))
        r.add(200, 0.1, 2.0, 20.0, 100, 350, 3.5, 5)
        r.add(1024, 0.2, 2.0, 10.0, 200, 700, 3.5, 6)
        s = measured_headline("figure2", r)
        assert "max 20.0x at n=200" in s
        assert "3.5x fewer loads" in s

    def test_figure3_headline_averages(self):
        r = ExperimentResult("figure3", "t",
                             ("n", "fused_ms", "cusparse_x",
                              "bidmat-gpu_x", "bidmat-cpu_x"))
        r.add(200, 0.1, 20.0, 15.0, 9.0)
        r.add(400, 0.1, 10.0, 5.0, 9.0)
        assert measured_headline("figure3", r) == \
            "avg 15.0x / 10.0x / 9.0x"

    def test_table6_headline(self):
        r = ExperimentResult("table6", "t",
                             ("dataset", "iterations", "total_speedup",
                              "fused_kernel_speedup", "gpu_transfer_ms"))
        r.add("HIGGS-like", 32, 1.2, 11.2, 5.0)
        r.add("KDD2010-like", 100, 1.9, 4.1, 90.0)
        s = measured_headline("table6", r)
        assert "1.2x/1.9x" in s and "11.2x/4.1x" in s

    def test_unknown_experiment_falls_back(self):
        r = ExperimentResult("mystery", "t", ("a",))
        assert measured_headline("mystery", r) == "see detail table"

    def test_headline_survives_malformed_result(self):
        r = ExperimentResult("figure2", "t", ("wrong", "columns"))
        s = measured_headline("figure2", r)
        assert "unavailable" in s


class TestGenerate:
    def test_generate_writes_report(self, tmp_path, monkeypatch):
        """End-to-end with a stubbed registry (the real one takes minutes)."""
        import repro.bench.report as report_mod

        def fake_builder(scale=None):
            r = ExperimentResult("figure2", "stub", (
                "n", "fused_ms", "cusparse_ms", "speedup", "fused_loads",
                "cusparse_loads", "load_ratio", "amortize_iters"))
            r.add(200, 0.1, 2.0, 20.0, 100, 350, 3.5, 5)
            return r

        monkeypatch.setattr(report_mod, "REGISTRY",
                            {"figure2": fake_builder})
        out = tmp_path / "EXP.md"
        text = generate(str(out))
        assert out.exists()
        assert "paper vs measured" in text
        assert "figure2" in text
        assert "| 200 |" in text
