"""Stable sorted key order in every metrics export.

Shard-level snapshots are merged counter-by-counter by the cluster
router, and dashboards diff JSON exports across runs — both only stay
deterministic when every exporter agrees on ordering.  These tests pin
the contract at its three sources: ``ServeMetrics.snapshot()``,
``EngineStats.to_dict()``, and the ``repro engine-stats --json`` CLI.
"""

import json

import numpy as np
import pytest

from repro import cli
from repro.core.engine import EngineStats, PatternEngine
from repro.serve import PatternServer, ServeRequest
from repro.sparse import random_csr


def assert_sorted_recursively(obj, path="$"):
    """Every dict reachable from ``obj`` has its keys in sorted order."""
    if isinstance(obj, dict):
        keys = list(obj)
        assert keys == sorted(keys), f"{path}: {keys}"
        for k, v in obj.items():
            # histogram bucket keys are numeric strings sorted by bound,
            # not lexically -- they are data, not schema
            if k == "buckets":
                continue
            assert_sorted_recursively(v, f"{path}.{k}")
    elif isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            assert_sorted_recursively(v, f"{path}[{i}]")


def test_serve_snapshot_keys_sorted_at_every_level():
    X = random_csr(150, 24, 0.08, rng=0)
    rng = np.random.default_rng(0)
    with PatternServer() as server:
        for _ in range(4):
            assert server.evaluate(ServeRequest(
                X, rng.normal(size=X.n), strategy="fused")).ok
        snap = server.metrics_snapshot()
    assert_sorted_recursively(snap)
    # and the counters include everything the aggregator merges
    assert {"completed", "submitted", "batches"} <= set(snap["counters"])


def test_serve_snapshot_json_roundtrip_is_stable():
    X = random_csr(150, 24, 0.08, rng=1)
    rng = np.random.default_rng(1)
    with PatternServer() as server:
        assert server.evaluate(ServeRequest(X, rng.normal(size=X.n))).ok
        a = server.metrics.to_json(engine_stats=server.engine.stats())
        b = server.metrics.to_json(engine_stats=server.engine.stats())
    assert a == b                      # identical text, not just equal dicts


def test_engine_stats_to_dict_sorted_and_complete():
    st = EngineStats(plan_hits=3, plan_misses=1,
                     artifact_kinds={"profile": 2, "csc": 1})
    d = st.to_dict()
    assert list(d) == sorted(d)
    assert list(d["artifact_kinds"]) == ["csc", "profile"]
    assert d["plan_hit_rate"] == pytest.approx(0.75)
    # every dataclass field is present (merge-ability across shards)
    from dataclasses import fields
    assert {f.name for f in fields(EngineStats)} <= set(d)


def test_engine_stats_to_dict_tracks_live_engine():
    engine = PatternEngine()
    X = random_csr(150, 24, 0.08, rng=2)
    rng = np.random.default_rng(2)
    engine.evaluate(X, rng.normal(size=X.n), strategy="fused")
    d = engine.stats().to_dict()
    assert d["calls"] == 1 and d["profiles_built"] >= 1
    assert_sorted_recursively({k: v for k, v in d.items()})


def test_engine_stats_cli_json_sorted(capsys):
    code = cli.main(["engine-stats", "400x32:0.05",
                     "--iterations", "5", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    doc = json.loads(out)
    assert_sorted_recursively(doc)
    assert doc["calls"] >= 5
    # the printed text IS the sorted serialization, byte-for-byte
    assert out.strip() == json.dumps(doc, indent=2, sort_keys=True)
