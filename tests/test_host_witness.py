"""Dynamic lock-order witness over the *shipped* serving stack.

The contract the CI ``host-analyze`` job enforces: every lock-order edge
the static analyzer claims for ``PatternServer`` is confirmed by a live
witnessed run — and, critically, never inverted.  A refuted edge would
mean the static model and the running code disagree about acquisition
order, i.e. a latent deadlock or an analyzer bug.
"""

import threading

import numpy as np
import pytest

from repro.analyze.host import host_classes
from repro.analyze.host.hostcheckers import lock_order_edges
from repro.analyze.host.witness import (LockWitness, TracedLock,
                                        cross_validate, instrument_locks,
                                        qualify_edges, watch_attrs)
from repro.serve import PatternServer, ServeRequest
from repro.serve.server import __file__ as SERVER_FILE
from repro.sparse import random_csr


def make_request(rng: int = 0) -> ServeRequest:
    X = random_csr(60, 12, 0.2, rng=rng)
    gen = np.random.default_rng(rng)
    y = gen.standard_normal(X.n)
    z = gen.standard_normal(X.n)
    return ServeRequest(X, y, z=z, beta=0.3, strategy="fused")


@pytest.fixture
def witnessed_server():
    witness = LockWitness()
    server = PatternServer(start=False)
    # instrument before start(): conditions are rebuilt over traced
    # locks, so no waiter may be parked on the originals yet
    instrument_locks(witness, server, server._queue, server.engine)
    watch_attrs(witness, server.engine, ["_artifact_bytes"])
    server.start()
    try:
        yield server, witness
    finally:
        server.stop()


def test_static_server_edges_confirmed_never_inverted(witnessed_server):
    server, witness = witnessed_server
    for i in range(8):
        resp = server.evaluate(make_request(rng=i % 3))
        assert resp.status == "ok"
    server.stop()

    (cls,) = [c for c in host_classes(SERVER_FILE)
              if c.name == "PatternServer"]
    static = qualify_edges(cls.name, lock_order_edges(cls))
    assert static, "static model lost the server's lock-order edges"

    result = cross_validate(static, witness)
    assert result.ok, f"witness refuted static edges: {result.inversions}"
    assert not result.unobserved, (
        f"traffic never exercised: {result.unobserved}")
    assert result.confirmed == static


def test_witnessed_graph_is_acyclic_and_balanced(witnessed_server):
    server, witness = witnessed_server
    for i in range(4):
        server.evaluate(make_request(rng=i))
    server.stop()

    assert witness.order_cycles() == []
    # every acquire was matched by a release on the same thread
    assert not witness.leaked_locks()
    assert witness.acquire_counts, "no lock activity was recorded"


def test_watched_engine_attr_is_always_locked(witnessed_server):
    server, witness = witnessed_server
    for i in range(6):
        server.evaluate(make_request(rng=i % 2))
    server.stop()

    locksets = witness.access_locksets.get("PatternEngine._artifact_bytes")
    assert locksets, "no accesses to the watched attribute were sampled"
    # the Eraser invariant, observed live: the candidate set never empties
    assert frozenset.intersection(*locksets) == {"PatternEngine._lock"}
    assert not witness.racy_attrs()


def test_traced_lock_transparency():
    """Instrumentation must not change blocking semantics."""
    witness = LockWitness()
    inner = threading.Lock()
    traced = TracedLock("T.l", inner, witness)
    with traced:
        assert inner.locked()
        assert not traced.acquire(blocking=False)
    assert not inner.locked()
    assert witness.acquire_counts["T.l"] == 1


def test_mixed_traced_untraced_share_one_lock():
    """Traced wrappers delegate, so a traced holder excludes a direct
    holder of the same inner lock (no split-brain)."""
    witness = LockWitness()
    inner = threading.Lock()
    traced = TracedLock("T.l", inner, witness)
    with traced:
        assert not inner.acquire(blocking=False)
