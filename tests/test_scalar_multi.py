"""CSR-scalar kernel and the multi-RHS fused pattern."""

import numpy as np
import pytest

from repro.kernels import (csrmv, csrmv_scalar, fused_pattern_multi,
                           fused_pattern_sparse, imbalance_report,
                           max_rhs_for_shared)
from repro.gpu.device import GTX_TITAN
from repro.sparse import CsrMatrix, random_csr
from repro.sparse.ops import fused_pattern_reference, spmv


class TestCsrScalar:
    def test_correct(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        res = csrmv_scalar(medium_csr, y)
        np.testing.assert_allclose(res.output, spmv(medium_csr, y))

    def test_loses_to_vector_on_long_rows(self, rng):
        X = random_csr(5000, 400, 0.1, rng=1)     # mu = 40
        y = rng.normal(size=400)
        assert csrmv_scalar(X, y).time_ms > 2.0 * csrmv(X, y).time_ms

    def test_competitive_on_tiny_rows(self, rng):
        X = random_csr(20_000, 500, 0.002, rng=2)  # mu = 1
        y = rng.normal(size=500)
        assert csrmv_scalar(X, y).time_ms < 4.0 * csrmv(X, y).time_ms

    def test_empty_matrix(self):
        X = CsrMatrix.empty((10, 5))
        res = csrmv_scalar(X, np.ones(5))
        np.testing.assert_array_equal(res.output, np.zeros(10))

    def test_imbalance_report(self, medium_csr):
        rep = imbalance_report(medium_csr, vector_size=4)
        assert 0.0 <= rep["warp_idle_fraction"] <= 1.0
        assert rep["max_row_nnz"] >= rep["mean_row_nnz"]


class TestMultiRhs:
    @pytest.fixture(scope="class")
    def problem(self):
        X = random_csr(4000, 120, 0.03, rng=3)
        rng = np.random.default_rng(4)
        k = 3
        return (X, rng.normal(size=(120, k)),
                rng.normal(size=(4000, k)), rng.normal(size=(120, k)))

    def test_columns_match_reference(self, problem):
        X, Y, V, Z = problem
        res = fused_pattern_multi(X, Y, V, Z, alpha=2.0, beta=-0.4)
        for j in range(Y.shape[1]):
            expected = fused_pattern_reference(X, Y[:, j], V[:, j],
                                               Z[:, j], 2.0, -0.4)
            np.testing.assert_allclose(res.output[:, j], expected,
                                       rtol=1e-9, err_msg=f"column {j}")

    def test_matches_single_rhs_kernel(self, problem):
        X, Y, _, _ = problem
        multi = fused_pattern_multi(X, Y[:, :1])
        single = fused_pattern_sparse(X, Y[:, 0])
        np.testing.assert_allclose(multi.output[:, 0], single.output)
        # a k=1 multi call costs about the same as the plain kernel
        assert multi.time_ms == pytest.approx(single.time_ms, rel=0.3)

    def test_shares_the_x_pass(self, problem):
        X, Y, _, _ = problem
        k = Y.shape[1]
        multi = fused_pattern_multi(X, Y)
        seq_loads = k * fused_pattern_sparse(
            X, Y[:, 0]).counters.global_load_transactions
        assert multi.counters.global_load_transactions < 0.8 * seq_loads

    def test_single_launch(self, problem):
        X, Y, _, _ = problem
        assert fused_pattern_multi(X, Y).counters.kernel_launches == 1

    def test_validation(self, problem):
        X, Y, V, Z = problem
        with pytest.raises(ValueError, match="Y must have shape"):
            fused_pattern_multi(X, Y[:-1])
        with pytest.raises(ValueError, match="V must have shape"):
            fused_pattern_multi(X, Y, V=V[:, :1])
        with pytest.raises(ValueError, match="requires Z"):
            fused_pattern_multi(X, Y, beta=1.0)
        with pytest.raises(ValueError, match="at least one"):
            fused_pattern_multi(X, Y[:, :0])

    def test_max_rhs_capacity(self):
        k = max_rhs_for_shared(1000, GTX_TITAN)
        assert 1 <= k < 10
        assert max_rhs_for_shared(10, GTX_TITAN) > 100

    def test_mirror_overflow_switches_accounting(self, rng):
        """Far more RHS than shared memory holds -> global-memory path
        (per-nnz atomics appear in the counters)."""
        X = random_csr(500, 2000, 0.005, rng=5)
        k = 8
        Y = rng.normal(size=(2000, k))
        res = fused_pattern_multi(X, Y)
        assert res.counters.atomic_global_ops >= k * X.nnz
