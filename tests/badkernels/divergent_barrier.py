"""Seeded bug: Algorithm 2 with a barrier under a thread-divergent guard.

``active = row < m`` differs between threads once the row loop reaches the
matrix tail, so a ``yield BARRIER`` inside ``if active:`` is reached by only
part of the block while the rest proceeds to the warp shuffle —
``divergent-barrier`` statically, :class:`DeadlockError` at launch.
"""

from repro.gpu.simt import BARRIER, ThreadCtx, warp_allreduce_sum

EXPECTED_KIND = "divergent-barrier"
SIGNATURE = "alg2"


def alg2_divergent_barrier(ctx: ThreadCtx, values, col_idx, row_off, y, v, z,
                           w, m: int, n: int, VS: int, C: int,
                           alpha: float, beta: float):
    tid = ctx.tid
    lid, vid = tid % VS, tid // VS
    NV = ctx.block_size // VS
    row = ctx.block_id * NV + vid
    for i in range(tid, n, ctx.block_size):
        ctx.shared[i] = 0.0
    if beta != 0.0:
        for i in range(ctx.global_tid, n, ctx.grid_threads):
            ctx.atomic_add(w, i, beta * z[i])
    yield BARRIER
    for _ in range(C):
        active = row < m
        s = 0.0
        if active:
            # BUG: barrier under a tid-dependent condition — inactive
            # threads skip it and park at the shuffle below instead
            yield BARRIER
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):
                s += values[i] * y[col_idx[i]]
        s = yield from warp_allreduce_sum(ctx, s, VS)
        if active:
            if v is not None:
                s *= v[row]
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):
                ctx.atomic_add_shared(int(col_idx[i]), values[i] * s)
        row += ctx.grid_threads // VS
    yield BARRIER
    for i in range(tid, n, ctx.block_size):
        ctx.atomic_add(w, i, alpha * ctx.shared[i])
