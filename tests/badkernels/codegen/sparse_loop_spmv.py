"""Seeded bug: a generated sparse SpMV with a per-row Python loop.

The AOT generators emit flat straight-line NumPy — a row loop means the
source was never specialized and would run at interpreted speed (and does
not map onto a single kernel launch); expected ``codegen-flatness``.
"""


def sparse_spmv_deadbeef_32_1(y, scratch):
    np.take(y, COL_IDX, out=scratch)
    np.multiply(VALUES, scratch, out=scratch)
    out = np.zeros(64)
    for i in range(64):                   # BUG: data-dependent row loop
        out[i] = scratch[i]
    return out
