"""Seeded bug: a ``_v`` fused specialization without the inter-vector stage.

The fused call-shape suffix is a contract: ``_v`` promises the
``p = p * v`` stage is compiled in.  Dropping it silently computes
``X^T (X y)`` when the caller asked for ``X^T (v * (X y))``.  Expected
``codegen-accumulation``.
"""


def sparse_fused_deadbeef_32_1_v(y, v, z, alpha, beta, scratch):
    np.take(y, COL_IDX, out=scratch)
    np.multiply(VALUES, scratch, out=scratch)
    p = np.zeros(64)
    p[NONEMPTY] = np.add.reduceat(scratch, STARTS)
    # BUG: missing `p = p * v` despite the _v suffix
    np.take(p, ROW_EXPAND, out=scratch)
    np.multiply(VALUES, scratch, out=scratch)
    w = alpha * np.bincount(COL_IDX, weights=scratch, minlength=16)
    return w
