"""Seeded bug: a generated sparse kernel calls outside the whitelist.

The flat sparse family may only use the five vectorized primitives its
generators emit (take/multiply/zeros/add.reduceat/bincount) — anything
else means the generator was tampered with or the source is not a
generated kernel at all.  Expected ``codegen-flatness``.
"""


def sparse_spmvt_deadbeef_32_1(p, scratch):
    np.take(p, ROW_EXPAND, out=scratch)
    scratch = np.dot(VALUES, scratch)     # BUG: non-whitelisted call
    out = np.bincount(COL_IDX, weights=scratch, minlength=16)
    return out
