"""Seeded bug: output allocation sized by a runtime variable.

Every shape scalar must be baked into the source as a literal — a
variable size means the specialization constant was never propagated and
the kernel is not structure-specialized; expected
``codegen-nonconstant-index``.
"""


def sparse_spmv_deadbeef_32_1(y, scratch):
    m = len(STARTS)                       # BUG: runtime shape derivation
    np.take(y, COL_IDX, out=scratch)
    np.multiply(VALUES, scratch, out=scratch)
    out = np.zeros(m)                     # BUG: non-literal allocation size
    out[NONEMPTY] = np.add.reduceat(scratch, STARTS)
    return out
