"""Seeded bug: the same out slice is stored twice and one slice never.

Stores must cover each ``VS``-wide slice exactly once in order; expected
``codegen-coverage``.
"""


def cellwise_8_4_2(a0, out):
    l_a0s1 = a0[0:4]
    out[0:4] = (2.0 * l_a0s1)
    l_a0s2 = a0[4:8]
    out[0:4] = (2.0 * l_a0s2)  # BUG: restores slice 1, [4, 8) never written
    return out
