"""Seeded bug: the second register load overlaps the first slice.

The loads must tile ``[0, n)`` disjointly in slice order; the lint must
flag the overlap as ``codegen-coverage``.
"""


def cellwise_8_4_2(a0, out):
    l_a0s1 = a0[0:4]
    out[0:4] = (2.0 * l_a0s1)
    l_a0s2 = a0[2:6]           # BUG: overlaps slice 1, leaves [6, 8) unread
    out[4:8] = (2.0 * l_a0s2)
    return out
