"""Seeded bug: a register load uses a runtime slice bound.

A non-constant bound would spill the register array in CUDA (Listing 2);
the cell-wise codegen lint must flag it as ``codegen-nonconstant-index``.
"""


def cellwise_8_4_2(a0, out):
    vs = 4
    l_a0s1 = a0[0:vs]          # BUG: bound is a variable, not a literal
    out[0:4] = (2.0 * l_a0s1)
    l_a0s2 = a0[4:8]
    out[4:8] = (2.0 * l_a0s2)
    return out
