"""Seeded bug: the scratch buffer is read before the gather wrote it.

``scratch`` is a reused O(nnz) buffer shared across calls; multiplying
into it before ``np.take(..., out=scratch)`` consumes the *previous*
call's gather — numerically wrong on every call after the first.
Expected ``codegen-accumulation``.
"""


def sparse_spmv_deadbeef_32_1(y, scratch):
    np.multiply(VALUES, scratch, out=scratch)   # BUG: stale-buffer read
    np.take(y, COL_IDX, out=scratch)
    out = np.zeros(64)
    out[NONEMPTY] = np.add.reduceat(scratch, STARTS)
    return out
