"""Seeded bug: an out slice is accumulated with ``+=``.

Fused cell-wise kernels must store each output slice exactly once with a
plain assignment — ``+=`` re-reads global memory (read-modify-write
hazard on an uninitialized buffer); expected ``codegen-accumulation``.
"""


def cellwise_8_4_2(a0, out):
    l_a0s1 = a0[0:4]
    out[0:4] += (2.0 * l_a0s1)  # BUG: accumulating store
    l_a0s2 = a0[4:8]
    out[4:8] = (2.0 * l_a0s2)
    return out
