"""Seeded bug: slice 2's store reads slice 1's register.

Each output slice must be computed only from its own slice's registers;
a cross-slice read silently computes the wrong elements.  Expected
``codegen-accumulation``.
"""


def cellwise_8_4_2(a0, a1, out):
    l_a0s1 = a0[0:4]
    l_a1s1 = a1[0:4]
    out[0:4] = (l_a0s1 * l_a1s1)
    l_a0s2 = a0[4:8]
    l_a1s2 = a1[4:8]
    out[4:8] = (l_a0s2 * l_a1s1)  # BUG: reads slice 1's register
    return out
