"""Seeded bug: Algorithm 1 without the barrier before the flush.

The shipped kernel separates the shared-memory aggregation (lines 5-13)
from the inter-block flush (lines 15-16) with the line-14 barrier.  Dropping
it lets a thread read ``ctx.shared[i]`` for the flush while other threads
are still aggregating into the same cells: an atomic-write/plain-read
conflict in one barrier phase — ``shared-race``.
"""

from repro.gpu.simt import BARRIER, ThreadCtx

EXPECTED_KIND = "shared-race"
SIGNATURE = "alg1"


def alg1_dropped_barrier(ctx: ThreadCtx, values, col_idx, row_off, p, w,
                         m: int, n: int, VS: int, C: int):
    tid = ctx.tid
    lid, vid = tid % VS, tid // VS
    NV = ctx.block_size // VS
    row = ctx.block_id * NV + vid
    for i in range(tid, n, ctx.block_size):
        ctx.shared[i] = 0.0
    yield BARRIER
    for _ in range(C):
        if row < m:
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):
                ctx.atomic_add_shared(int(col_idx[i]), values[i] * p[row])
        row += ctx.grid_threads // VS
    # BUG: line-14 `yield BARRIER` dropped — the flush below reads cells
    # other threads may still be aggregating into
    for i in range(tid, n, ctx.block_size):
        ctx.atomic_add(w, i, ctx.shared[i])
