"""Seeded bug: Algorithm 1 flushing to global memory without atomics.

Lines 15-16 flush each block's shared mirror into the global ``w``.  Every
block covers the *same* ``[0, n)`` range with its tid-strided loop, and no
inter-block barrier exists, so the flush must be ``ctx.atomic_add``.  The
plain read-modify-write here loses updates between blocks —
``global-race`` (index taint lacks the block id).
"""

from repro.gpu.simt import BARRIER, ThreadCtx

EXPECTED_KIND = "global-race"
SIGNATURE = "alg1"


def alg1_global_plain_flush(ctx: ThreadCtx, values, col_idx, row_off, p, w,
                            m: int, n: int, VS: int, C: int):
    tid = ctx.tid
    lid, vid = tid % VS, tid // VS
    NV = ctx.block_size // VS
    row = ctx.block_id * NV + vid
    for i in range(tid, n, ctx.block_size):
        ctx.shared[i] = 0.0
    yield BARRIER
    for _ in range(C):
        if row < m:
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):
                ctx.atomic_add_shared(int(col_idx[i]), values[i] * p[row])
        row += ctx.grid_threads // VS
    yield BARRIER
    for i in range(tid, n, ctx.block_size):
        # BUG: every block writes the same cells; must be ctx.atomic_add
        w[i] = w[i] + ctx.shared[i]
