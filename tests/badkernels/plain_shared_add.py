"""Seeded bug: Algorithm 1 with a *plain* shared-memory add.

Lines 10-11 of Algorithm 1 aggregate partial products of shared columns
from different rows; two lanes (of different vectors) handling rows that
share a column collide on the same shared cell.  The shipped kernel uses
``ctx.atomic_add_shared``; this mutant uses a plain read-modify-write,
which the checker must flag as ``shared-race`` (data-dependent index,
non-atomic) and the sanitizer reproduces as an unordered shared conflict.
"""

from repro.gpu.simt import BARRIER, ThreadCtx

EXPECTED_KIND = "shared-race"
SIGNATURE = "alg1"


def alg1_plain_shared_add(ctx: ThreadCtx, values, col_idx, row_off, p, w,
                          m: int, n: int, VS: int, C: int):
    tid = ctx.tid
    lid, vid = tid % VS, tid // VS
    NV = ctx.block_size // VS
    row = ctx.block_id * NV + vid
    for i in range(tid, n, ctx.block_size):
        ctx.shared[i] = 0.0
    yield BARRIER
    for _ in range(C):
        if row < m:
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):
                # BUG: non-atomic aggregation on a data-dependent index
                ctx.shared[int(col_idx[i])] += values[i] * p[row]
        row += ctx.grid_threads // VS
    yield BARRIER
    for i in range(tid, n, ctx.block_size):
        ctx.atomic_add(w, i, ctx.shared[i])
