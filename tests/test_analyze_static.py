"""Static analyzer: extraction, taint, phases, and the three checkers."""

import textwrap

import pytest

from repro.analyze import (AnalysisError, check_models, check_shipped,
                           extract_source)
from repro.analyze.model import BLOCK, DATA, GLOBAL, SHARED, TID, WRITE


def models_of(src):
    return extract_source(textwrap.dedent(src))


def kinds_of(src):
    return {f.kind for f in check_models(models_of(src))}


class TestExtraction:
    def test_discovers_all_shipped_kernels(self):
        from repro.kernels import simt_kernels
        with open(simt_kernels.__file__) as f:
            models = extract_source(f.read())
        names = {m.name for m in models}
        assert names == {"alg1_xt_spmv", "alg2_fused_sparse",
                         "alg2_fused_sparse_large_n", "alg3_fused_dense",
                         "csr_vector_spmv"}
        # the launchers are not generators taking ctx — not kernels
        assert "run_alg2" not in names and "run_alg3" not in names

    def test_alg3_splits_on_uniform_barrier_branch(self):
        from repro.kernels import simt_kernels
        with open(simt_kernels.__file__) as f:
            models = [m for m in extract_source(f.read())
                      if m.name == "alg3_fused_dense"]
        # VS <= 32 (barrier-free) and VS > 32 (two barriers per step)
        assert len(models) == 2
        assert {m.phases for m in models} == {1, 5}

    def test_taint_propagation_through_locals(self):
        (model,) = models_of("""
            def k(ctx, w, n, VS):
                tid = ctx.tid
                lid, vid = tid % VS, tid // VS
                row = ctx.block_id * (ctx.block_size // VS) + vid
                ctx.atomic_add(w, row, 1.0)
                yield BARRIER
        """)
        (acc,) = [a for a in model.accesses if a.array == "w"]
        assert acc.index_taint == frozenset({TID, BLOCK})
        assert acc.atomic and acc.kind == WRITE

    def test_data_taint_through_memory_loads(self):
        (model,) = models_of("""
            def k(ctx, col_idx, w, n):
                i = ctx.tid
                c = int(col_idx[i])
                w[c] = 1.0
                yield BARRIER
        """)
        write = [a for a in model.accesses
                 if a.array == "w" and a.kind == WRITE][0]
        assert DATA in write.index_taint

    def test_barrier_increments_phase(self):
        (model,) = models_of("""
            def k(ctx, n):
                ctx.shared[ctx.tid] = 0.0
                yield BARRIER
                ctx.shared[ctx.tid] = 1.0
                yield BARRIER
        """)
        phases = [a.phase for a in model.accesses if a.space == SHARED]
        assert phases == [0, 1]
        assert model.phases == 3

    def test_loop_with_barrier_walked_twice_for_wraparound(self):
        # write after the loop's barrier lands in the same phase as the
        # read before it on the next iteration — the back-edge adjacency
        assert "shared-race" in kinds_of("""
            def k(ctx, n, C):
                for _ in range(C):
                    s = ctx.shared[0]
                    yield BARRIER
                    ctx.shared[ctx.tid % 2] = s
        """)

    def test_unsupported_statement_raises(self):
        with pytest.raises(AnalysisError, match="unsupported"):
            models_of("""
                def k(ctx):
                    with open("x") as f:
                        pass
                    yield BARRIER
            """)

    def test_global_array_identified_via_atomic_add(self):
        (model,) = models_of("""
            def k(ctx, w):
                ctx.atomic_add(w, ctx.global_tid, 1.0)
                yield BARRIER
        """)
        assert [a.space for a in model.accesses if a.array == "w"] \
            == [GLOBAL]


class TestRaceChecker:
    def test_shipped_kernels_are_clean(self):
        assert check_shipped() == []

    def test_plain_shared_write_data_index(self):
        assert kinds_of("""
            def k(ctx, col_idx, values, n):
                i = ctx.tid
                ctx.shared[int(col_idx[i])] += values[i]
                yield BARRIER
        """) == {"shared-race"}

    def test_uniform_shared_write_races(self):
        assert "shared-race" in kinds_of("""
            def k(ctx, n):
                ctx.shared[0] = 1.0
                yield BARRIER
        """)

    def test_tid_partitioned_shared_write_is_clean(self):
        assert kinds_of("""
            def k(ctx, n):
                for i in range(ctx.tid, n, ctx.block_size):
                    ctx.shared[i] = 0.0
                yield BARRIER
        """) == set()

    def test_atomic_write_and_plain_read_same_phase(self):
        assert kinds_of("""
            def k(ctx, col_idx, w, n):
                ctx.atomic_add_shared(int(col_idx[ctx.tid]), 1.0)
                for i in range(ctx.tid, n, ctx.block_size):
                    ctx.atomic_add(w, i, ctx.shared[i])
                yield BARRIER
        """) == {"shared-race"}

    def test_barrier_separation_clears_the_conflict(self):
        assert kinds_of("""
            def k(ctx, col_idx, w, n):
                ctx.atomic_add_shared(int(col_idx[ctx.tid]), 1.0)
                yield BARRIER
                for i in range(ctx.tid, n, ctx.block_size):
                    ctx.atomic_add(w, i, ctx.shared[i])
        """) == set()

    def test_block_local_global_write_races_across_blocks(self):
        # tid-strided partition covers the same cells in every block
        assert kinds_of("""
            def k(ctx, w, n):
                for i in range(ctx.tid, n, ctx.block_size):
                    w[i] = w[i] + 1.0
                yield BARRIER
        """) == {"global-race"}

    def test_grid_strided_global_write_is_clean(self):
        assert kinds_of("""
            def k(ctx, w, n):
                for i in range(ctx.global_tid, n, ctx.grid_threads):
                    w[i] = 1.0
                yield BARRIER
        """) == set()

    def test_atomic_global_aggregation_is_clean(self):
        assert kinds_of("""
            def k(ctx, w, n):
                for i in range(ctx.tid, n, ctx.block_size):
                    ctx.atomic_add(w, i, 1.0)
                yield BARRIER
        """) == set()


class TestBarrierChecker:
    def test_barrier_under_tid_branch(self):
        assert kinds_of("""
            def k(ctx):
                if ctx.tid == 0:
                    yield BARRIER
        """) == {"divergent-barrier"}

    def test_barrier_under_data_dependent_branch(self):
        assert kinds_of("""
            def k(ctx, row_off, m):
                active = row_off[ctx.tid] < m
                if active:
                    yield BARRIER
        """) == {"divergent-barrier"}

    def test_barrier_in_tid_trip_count_loop(self):
        assert kinds_of("""
            def k(ctx, n):
                for i in range(ctx.tid, n, ctx.block_size):
                    yield BARRIER
        """) == {"divergent-barrier"}

    def test_uniform_branch_barrier_is_clean(self):
        assert kinds_of("""
            def k(ctx, beta, n):
                if beta != 0.0:
                    yield BARRIER
                for i in range(ctx.tid, n, ctx.block_size):
                    ctx.shared[i] = 0.0
                yield BARRIER
        """) == set()

    def test_shuffle_under_divergent_guard(self):
        findings = check_models(models_of("""
            def k(ctx, m, VS):
                if ctx.tid < m:
                    s = yield from warp_allreduce_sum(ctx, 1.0, VS)
        """))
        assert {f.kind for f in findings} == {"divergent-barrier"}
        assert "shuffle" in findings[0].message
