"""Stateful property test of the GPU memory manager (hypothesis).

Drives random register/request/dirty/sync/free sequences and checks the
manager's invariants after every step: capacity is never exceeded, pinned
blocks stay resident, a clean block never pays for a download, and
residency implies registration.
"""

import hypothesis.strategies as st
import pytest
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, invariant,
                                 rule)

from repro.gpu.device import GTX_TITAN
from repro.systemml.memmanager import GpuMemoryManager, OutOfDeviceMemory

CAPACITY = 10_000.0


class MemoryManagerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.mm = GpuMemoryManager(GTX_TITAN, capacity_bytes=CAPACITY)
        self.counter = 0

    keys = Bundle("keys")

    @rule(target=keys,
          nbytes=st.floats(1.0, CAPACITY * 1.5),
          pinned=st.booleans())
    def register(self, nbytes, pinned):
        self.counter += 1
        key = f"blk{self.counter}"
        # pin only blocks that could ever fit together
        self.mm.register(key, nbytes, pinned=pinned and nbytes < CAPACITY / 4)
        return key

    @rule(key=keys)
    def request(self, key):
        if key not in self.mm.blocks:
            return
        try:
            cost = self.mm.request(key)
            assert cost >= 0.0
            assert self.mm.is_resident(key)
        except OutOfDeviceMemory:
            pass  # legitimate when pinned blocks or the block itself exceed

    @rule(key=keys)
    def dirty_device(self, key):
        if key in self.mm.blocks and self.mm.is_resident(key):
            self.mm.mark_device_dirty(key)

    @rule(key=keys)
    def dirty_host(self, key):
        if key in self.mm.blocks:
            self.mm.mark_host_dirty(key)

    @rule(key=keys)
    def sync(self, key):
        if key not in self.mm.blocks:
            return
        b = self.mm.blocks[key]
        was_clean = not (b.on_device and b.host_dirty)
        cost = self.mm.sync_to_host(key)
        if was_clean:
            assert cost == 0.0
        assert not self.mm.blocks[key].host_dirty

    @rule(key=keys)
    def free(self, key):
        self.mm.free(key)

    @invariant()
    def capacity_respected(self):
        assert self.mm.used_bytes <= CAPACITY + 1e-9

    @invariant()
    def pinned_blocks_stay_resident_once_placed(self):
        for b in self.mm.blocks.values():
            if b.pinned and b.on_device:
                assert b.nbytes <= CAPACITY

    @invariant()
    def stats_monotone(self):
        s = self.mm.stats
        assert s.h2d_count >= 0 and s.evictions >= 0
        assert s.total_ms >= 0.0


TestMemoryManagerStateful = MemoryManagerMachine.TestCase
TestMemoryManagerStateful.settings = __import__(
    "hypothesis").settings(max_examples=40, stateful_step_count=30,
                           deadline=None)


class TestSimtBaselineDifferential:
    """CSR-vector baseline SpMV, per-thread vs reference."""

    @pytest.mark.parametrize("vs,bs,grid", [(2, 16, 2), (8, 32, 3)])
    def test_csr_vector_spmv(self, vs, bs, grid, rng):
        import numpy as np
        from repro.gpu import SimtEngine
        from repro.kernels.simt_kernels import csr_vector_spmv
        from repro.sparse import random_csr, spmv
        X = random_csr(70, 25, 0.2, rng=3)
        y = rng.normal(size=25)
        out = np.zeros(X.m)
        vectors = grid * (bs // vs)
        C = max(1, -(-X.m // vectors))
        SimtEngine().launch(csr_vector_spmv, grid, bs,
                            (X.values, X.col_idx, X.row_off, y, out,
                             X.m, vs, C))
        np.testing.assert_allclose(out, spmv(X, y), rtol=1e-10)
