"""Worker failure: failover, bounded retry, deterministic rejection.

The acceptance bar from the issue: killing a worker process mid-run must
leave ZERO hung requests — every accepted request completes via replica
failover or resolves a deterministic ``rejected`` response.  These tests
kill real worker processes (SIGKILL, no cleanup) at the nastiest moments:

* after warmup (cold failover along the ring),
* with requests in flight on the dying shard (transport-failure retry),
* with every shard dead (terminal rejection, bounded by ``max_retries``),
* during shutdown (drain tolerates a corpse).

All waits are bounded; a hang fails the test rather than the suite.
"""

import time

import numpy as np
import pytest

from repro.cluster import (ClusterConfig, ClusterRequest, ShardRouter,
                           STATUS_OK, STATUS_REJECTED, WorkerConfig)
from repro.core.api import evaluate as evaluate_uncached
from repro.sparse import random_csr

pytestmark = pytest.mark.cluster


def make_router(shards=3, **kw):
    kw.setdefault("worker", WorkerConfig(max_batch=8, batch_linger_ms=0.5))
    kw.setdefault("heartbeat_interval_s", 0.1)
    kw.setdefault("retry_backoff_ms", 2.0)
    kw.setdefault("max_retries", 4)
    return ShardRouter(ClusterConfig(shards=shards, **kw))


def register_with_primary(router, target_shard, tries=64):
    """A matrix whose fingerprint's ring primary is ``target_shard``."""
    for seed in range(tries):
        X = random_csr(150, 24, 0.08, rng=1000 + seed)
        fp = router.register(X)
        if router.ring.primary(fp) == target_shard:
            return X, fp
    raise AssertionError(f"no fingerprint landed on shard {target_shard}")


def kill_shard(router, shard):
    proc = router._channels[shard].process
    proc.kill()
    proc.join(10)
    assert not proc.is_alive()


# ------------------------------------------------------------- cold failover
def test_requests_fail_over_to_next_ring_shard():
    router = make_router(shards=3)
    try:
        victim = 1
        X, fp = register_with_primary(router, victim)
        rng = np.random.default_rng(0)
        warm = router.evaluate(ClusterRequest(fp, rng.normal(size=X.n),
                                              strategy="fused"), timeout=60)
        assert warm.ok and warm.shard == victim
        kill_shard(router, victim)
        y = rng.normal(size=X.n)
        resp = router.evaluate(ClusterRequest(fp, y, strategy="fused"),
                               timeout=60)
        assert resp.status == STATUS_OK, resp
        assert resp.shard != victim
        # failover is along the ring: the new owner is the next replica
        assert resp.shard == [s for s in router.ring.replicas(fp, 3)
                              if s != victim][0]
        # and the answer is still bit-identical (re-upload + re-evaluate)
        ref = evaluate_uncached(X, y, strategy="fused")
        assert np.array_equal(resp.result.output, ref.output)
        assert router.metrics_snapshot()["counters"]["failovers"] >= 1
    finally:
        router.stop()


# -------------------------------------------------------- mid-flight failure
def test_kill_with_requests_in_flight_completes_everything():
    router = make_router(shards=3)
    try:
        victim = 2
        X, fp = register_with_primary(router, victim)
        others = [random_csr(150, 24, 0.08, rng=s) for s in range(3)]
        fps = [router.register(M) for M in others]
        rng = np.random.default_rng(1)
        # warm the victim so the kill happens with its socket live
        assert router.evaluate(ClusterRequest(fp, rng.normal(size=X.n),
                                              strategy="fused"),
                               timeout=60).ok
        futures = []
        for i in range(40):
            M, f = ((X, fp) if i % 2 == 0
                    else (others[i % 3], fps[i % 3]))
            futures.append(router.submit(
                ClusterRequest(f, rng.normal(size=M.n), strategy="fused")))
            if i == 10:
                kill_shard(router, victim)
        statuses = {}
        for fut in futures:
            resp = fut.result(timeout=60)       # bounded: no hangs allowed
            statuses[resp.status] = statuses.get(resp.status, 0) + 1
            assert resp.status in (STATUS_OK, STATUS_REJECTED), resp
        # the cluster stayed useful: most requests still completed
        assert statuses.get(STATUS_OK, 0) >= 30, statuses
        snap = router.metrics_snapshot()
        assert snap["gauges"]["shards_healthy"] == 2
        assert snap["counters"]["completed"] + \
            snap["counters"]["rejected"] == 41
    finally:
        router.stop()


def test_reupload_after_failover_is_transparent():
    """The replacement shard has no matrix; the router re-uploads."""
    router = make_router(shards=2, replication=1)
    try:
        victim = 0
        X, fp = register_with_primary(router, victim)
        rng = np.random.default_rng(2)
        assert router.evaluate(ClusterRequest(fp, rng.normal(size=X.n),
                                              strategy="fused"),
                               timeout=60).ok
        kill_shard(router, victim)
        resp = router.evaluate(ClusterRequest(fp, rng.normal(size=X.n),
                                              strategy="fused"), timeout=60)
        assert resp.ok and resp.shard == 1
        # two uploads total: one per shard that ever served the key
        assert router.metrics_snapshot()["counters"]["uploads"] == 2
    finally:
        router.stop()


# --------------------------------------------------------- total cluster loss
def test_all_workers_dead_rejects_deterministically():
    router = make_router(shards=2)
    try:
        X = random_csr(150, 24, 0.08, rng=3)
        fp = router.register(X)
        for shard in (0, 1):
            kill_shard(router, shard)
        t0 = time.monotonic()
        resp = router.evaluate(
            ClusterRequest(fp, np.zeros(X.n), strategy="fused"), timeout=60)
        elapsed = time.monotonic() - t0
        assert resp.status == STATUS_REJECTED
        assert "no healthy shard" in resp.reason
        assert elapsed < 30, "rejection must be prompt, not a timeout"
        # identical failure -> identical deterministic reason
        again = router.evaluate(
            ClusterRequest(fp, np.zeros(X.n), strategy="fused"), timeout=60)
        assert again.status == STATUS_REJECTED
        assert again.reason == resp.reason
    finally:
        router.stop()


def test_retries_are_bounded():
    router = make_router(shards=2, max_retries=2)
    try:
        X = random_csr(150, 24, 0.08, rng=4)
        fp = router.register(X)
        for shard in (0, 1):
            kill_shard(router, shard)
        resp = router.evaluate(
            ClusterRequest(fp, np.zeros(X.n), strategy="fused"), timeout=60)
        assert resp.status == STATUS_REJECTED
        assert resp.attempts <= 2
    finally:
        router.stop()


# ------------------------------------------------------------------ shutdown
def test_stop_with_dead_worker_does_not_hang():
    router = make_router(shards=3)
    X = random_csr(150, 24, 0.08, rng=5)
    fp = router.register(X)
    rng = np.random.default_rng(5)
    assert router.evaluate(ClusterRequest(fp, rng.normal(size=X.n),
                                          strategy="fused"), timeout=60).ok
    kill_shard(router, 0)
    t0 = time.monotonic()
    router.stop()
    assert time.monotonic() - t0 < 30
    assert router._shutdown_complete


def test_wedged_shard_times_out_pending_requests():
    """A worker that is alive but mute never tears the socket; the
    channel's timeout sweep must turn its silence into failures."""
    import socket

    from repro.cluster import ShardChannel

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    channel = None
    try:
        channel = ShardChannel(0, listener.getsockname()[1])
        server_side, _ = listener.accept()   # accept, then never reply
        got = []
        channel.send({"op": "ping"}, on_reply=got.append)
        assert channel.outstanding == 1
        time.sleep(0.2)
        assert channel.fail_timed_out(10.0) == 0    # too young to expire
        assert channel.fail_timed_out(0.1) == 1     # the sweep fires it
        assert got == [None]
        assert channel.outstanding == 0
        server_side.close()
    finally:
        if channel is not None:
            channel.close()
        listener.close()
