"""Sparse kernels: numerical correctness and event-accounting properties."""

import numpy as np
import pytest

from repro.kernels import (bidmat_spmv, bidmat_spmv_transpose,
                           csr2csc_kernel, csrmv, csrmv_transpose,
                           csrmv_via_explicit_transpose,
                           fused_pattern_sparse, fused_xtxy_sparse,
                           xt_spmv_fused)
from repro.kernels.base import GpuContext
from repro.gpu.device import GTX_TITAN
from repro.sparse import CsrMatrix, random_csr, spmv, spmv_t
from repro.tuning import tune_sparse


class TestBaselineKernels:
    def test_csrmv_correct(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        res = csrmv(medium_csr, y)
        np.testing.assert_allclose(res.output, spmv(medium_csr, y))

    def test_csrmv_transpose_correct(self, medium_csr, rng):
        p = rng.normal(size=medium_csr.m)
        res = csrmv_transpose(medium_csr, p)
        np.testing.assert_allclose(res.output, spmv_t(medium_csr, p))

    def test_transpose_mode_slower_than_normal(self, medium_csr, rng):
        """The paper's premise: cuSPARSE transpose SpMV is far slower."""
        y = rng.normal(size=medium_csr.n)
        p = rng.normal(size=medium_csr.m)
        normal = csrmv(medium_csr, y)
        trans = csrmv_transpose(medium_csr, p)
        assert trans.time_ms > 2.0 * normal.time_ms

    def test_csr2csc_output_correct(self, medium_csr):
        res = csr2csc_kernel(medium_csr)
        np.testing.assert_allclose(res.output.to_dense(),
                                   medium_csr.to_dense())

    def test_explicit_transpose_route(self, medium_csr, rng):
        p = rng.normal(size=medium_csr.m)
        spmv_res, trans_res = csrmv_via_explicit_transpose(medium_csr, p)
        assert trans_res is not None
        np.testing.assert_allclose(spmv_res.output, spmv_t(medium_csr, p),
                                   rtol=1e-10)
        # amortized: with a prebuilt transpose no conversion is charged
        spmv2, trans2 = csrmv_via_explicit_transpose(
            medium_csr, p, XT=medium_csr.transpose_csr())
        assert trans2 is None

    def test_bidmat_tracks_cusparse(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        p = rng.normal(size=medium_csr.m)
        cu = csrmv(medium_csr, y)
        bi = bidmat_spmv(medium_csr, y)
        assert 0.5 < bi.time_ms / cu.time_ms < 2.0
        cut = csrmv_transpose(medium_csr, p)
        bit = bidmat_spmv_transpose(medium_csr, p)
        assert 0.3 < bit.time_ms / cut.time_ms <= 1.0
        np.testing.assert_allclose(bit.output, spmv_t(medium_csr, p))


class TestFusedKernels:
    def test_alg1_correct(self, medium_csr, rng):
        p = rng.normal(size=medium_csr.m)
        res = xt_spmv_fused(medium_csr, p)
        np.testing.assert_allclose(res.output, spmv_t(medium_csr, p))

    @pytest.mark.parametrize("variant", ["shared", "global"])
    def test_alg2_correct_both_variants(self, medium_csr, rng, variant):
        y = rng.normal(size=medium_csr.n)
        v = rng.normal(size=medium_csr.m)
        z = rng.normal(size=medium_csr.n)
        params = tune_sparse(medium_csr, force_variant=variant)
        res = fused_pattern_sparse(medium_csr, y, v, z, 1.5, -0.2,
                                   params=params)
        expected = 1.5 * spmv_t(medium_csr, spmv(medium_csr, y) * v) \
            - 0.2 * z
        np.testing.assert_allclose(res.output, expected, rtol=1e-10)
        assert variant in res.name

    def test_alg2_without_v_z(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        res = fused_xtxy_sparse(medium_csr, y)
        np.testing.assert_allclose(
            res.output, spmv_t(medium_csr, spmv(medium_csr, y)), rtol=1e-10)

    def test_beta_requires_z(self, medium_csr, rng):
        with pytest.raises(ValueError, match="requires z"):
            fused_pattern_sparse(medium_csr, rng.normal(size=medium_csr.n),
                                 beta=1.0)

    def test_v_shape_checked(self, medium_csr, rng):
        with pytest.raises(ValueError, match="v must have shape"):
            fused_pattern_sparse(medium_csr, rng.normal(size=medium_csr.n),
                                 v=np.ones(3))

    def test_single_kernel_launch(self, medium_csr, rng):
        """Fusion's defining property: one launch for the whole pattern."""
        y = rng.normal(size=medium_csr.n)
        res = fused_pattern_sparse(medium_csr, y, v=None, z=None)
        assert res.counters.kernel_launches == 1

    def test_fused_fewer_loads_than_two_passes(self, rng):
        """Temporal locality: with cache-resident rows the second pass is
        nearly free, so fused loads ~ one pass, baseline ~ 2+ passes."""
        X = random_csr(3000, 500, 0.05, rng=3)   # ~25 nnz per row
        y = rng.normal(size=X.n)
        fused = fused_xtxy_sparse(X, y)
        base_loads = (csrmv(X, y).counters.global_load_transactions
                      + csrmv_transpose(
                          X, spmv(X, y)).counters.global_load_transactions)
        assert fused.counters.global_load_transactions < base_loads / 1.5

    def test_fused_faster_than_baseline(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        fused = fused_xtxy_sparse(medium_csr, y)
        b1 = csrmv(medium_csr, y)
        b2 = csrmv_transpose(medium_csr, b1.output)
        assert fused.time_ms < b1.time_ms + b2.time_ms

    def test_no_l2_reuse_increases_loads(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        on = fused_xtxy_sparse(medium_csr, y,
                               ctx=GpuContext(GTX_TITAN, use_l2_reuse=True))
        off = fused_xtxy_sparse(medium_csr, y,
                                ctx=GpuContext(GTX_TITAN,
                                               use_l2_reuse=False))
        assert off.counters.global_load_transactions \
            > on.counters.global_load_transactions

    def test_shared_variant_uses_shared_atomics(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        params = tune_sparse(medium_csr, force_variant="shared")
        res = fused_pattern_sparse(medium_csr, y, params=params)
        assert res.counters.atomic_shared_ops == medium_csr.nnz

    def test_global_variant_uses_global_atomics(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        params = tune_sparse(medium_csr, force_variant="global")
        res = fused_pattern_sparse(medium_csr, y, params=params)
        assert res.counters.atomic_shared_ops == 0
        assert res.counters.atomic_global_ops >= medium_csr.nnz

    def test_wide_matrix_auto_selects_global(self, rng):
        X = random_csr(500, 10_000, 0.002, rng=4)
        params = tune_sparse(X)
        assert params.variant == "global"
        y = rng.normal(size=X.n)
        res = fused_pattern_sparse(X, y, params=params)
        np.testing.assert_allclose(res.output,
                                   spmv_t(X, spmv(X, y)), rtol=1e-10)

    def test_empty_matrix(self):
        X = CsrMatrix.empty((50, 20))
        res = fused_pattern_sparse(X, np.ones(20))
        np.testing.assert_array_equal(res.output, np.zeros(20))
