"""Dense kernels: Algorithm 3, the code generator, and the cuBLAS baselines."""

import numpy as np
import pytest

from repro.kernels import (bidmat_gemv_n, bidmat_gemv_t, clear_cache,
                           fused_pattern_dense, fused_xtxy_dense,
                           gemv_n, gemv_t, generate_source, get_kernel,
                           pad_for_vector_size)
from repro.kernels.codegen import cache_size, ensure_kernel
from repro.tuning import tune_dense


class TestBaselines:
    def test_gemv_n(self, rng):
        X = rng.normal(size=(300, 40))
        y = rng.normal(size=40)
        res = gemv_n(X, y)
        np.testing.assert_allclose(res.output, X @ y)

    def test_gemv_t(self, rng):
        X = rng.normal(size=(300, 40))
        p = rng.normal(size=300)
        res = gemv_t(X, p)
        np.testing.assert_allclose(res.output, X.T @ p)

    def test_gemv_t_pays_bank_conflicts(self, rng):
        X = rng.normal(size=(2000, 256))
        n_res = gemv_n(X, rng.normal(size=256))
        t_res = gemv_t(X, rng.normal(size=2000))
        assert t_res.counters.shared_bank_conflicts > 0
        assert t_res.time_ms > n_res.time_ms

    def test_shape_validation(self, rng):
        X = rng.normal(size=(10, 5))
        with pytest.raises(ValueError):
            gemv_n(X, np.ones(6))
        with pytest.raises(ValueError):
            gemv_t(X, np.ones(5))

    def test_bidmat_variants_correct(self, rng):
        X = rng.normal(size=(200, 30))
        np.testing.assert_allclose(bidmat_gemv_n(X, np.ones(30)).output,
                                   X @ np.ones(30))
        np.testing.assert_allclose(bidmat_gemv_t(X, np.ones(200)).output,
                                   X.T @ np.ones(200))

    def test_bidmat_t_faster_than_cublas_t(self, rng):
        X = rng.normal(size=(4000, 512))
        p = rng.normal(size=4000)
        assert bidmat_gemv_t(X, p).time_ms < gemv_t(X, p).time_ms


class TestCodegen:
    def test_source_structure(self):
        src = generate_source(32, 16, 2)
        assert "def mtmvm_32_16_2(" in src
        assert "l_y1" in src and "l_y2" in src
        assert "l_X1" in src and "l_X2" in src
        assert "l_w1" in src and "l_w2" in src
        assert "for " not in src, "register loops must be fully unrolled"

    def test_unroll_count_matches_tl(self):
        src = generate_source(96, 16, 6)
        for i in range(1, 7):
            assert f"l_X{i}" in src
        assert "l_X7" not in src

    def test_dimension_validation(self):
        with pytest.raises(ValueError, match="VS\\*TL"):
            generate_source(33, 16, 2)
        with pytest.raises(ValueError):
            generate_source(0, 0, 0)

    @pytest.mark.parametrize("n,vs,tl", [
        (31, 16, 2),    # n one short of VS*TL
        (48, 16, 2),    # n one register-slice over
        (0, 0, 1),      # zero VS
        (0, 4, 0),      # zero TL
        (-8, -4, 2),    # negative VS (and key still "consistent": -8 == -4*2)
    ])
    def test_bad_specializations_never_reach_compile(self, n, vs, tl):
        clear_cache()
        with pytest.raises(ValueError):
            generate_source(n, vs, tl)
        with pytest.raises(ValueError):
            ensure_kernel(n, vs, tl)
        assert cache_size() == 0, "a rejected key must not be cached"

    def test_nonpositive_message_names_both_knobs(self):
        with pytest.raises(ValueError, match="VS and TL must be positive"):
            generate_source(-8, -4, 2)

    def test_generated_kernel_computes_pattern(self, rng):
        k = get_kernel(32, 16, 2)
        X = rng.normal(size=(50, 32))
        y = rng.normal(size=32)
        v = rng.normal(size=50)
        out = np.zeros(32)
        k(X, y, v, 2.0, out)
        np.testing.assert_allclose(out, 2.0 * X.T @ ((X @ y) * v),
                                   rtol=1e-10)

    def test_generated_kernel_accumulates_into_out(self, rng):
        k = get_kernel(16, 8, 2)
        X = rng.normal(size=(20, 16))
        y = rng.normal(size=16)
        out = np.full(16, 5.0)
        k(X, y, None, 1.0, out)
        np.testing.assert_allclose(out, 5.0 + X.T @ (X @ y), rtol=1e-10)

    def test_cache_reuse(self):
        clear_cache()
        assert cache_size() == 0
        a = get_kernel(32, 16, 2)
        b = get_kernel(32, 16, 2)
        assert a is b
        assert cache_size() == 1
        get_kernel(64, 16, 4)
        assert cache_size() == 2

    def test_ensure_kernel_reports_compile_flag(self):
        clear_cache()
        fn1, compiled1 = ensure_kernel(32, 16, 2)
        fn2, compiled2 = ensure_kernel(32, 16, 2)
        assert compiled1 and not compiled2
        assert fn1 is fn2

    def test_repeated_get_kernel_never_recompiles(self):
        clear_cache()
        first = get_kernel(32, 16, 2)
        for _ in range(5):
            assert get_kernel(32, 16, 2) is first
        assert cache_size() == 1

    def test_padding_helper(self):
        assert pad_for_vector_size(200, 32) == 224
        assert pad_for_vector_size(64, 32) == 64


class TestFusedDense:
    @pytest.mark.parametrize("m,n", [(100, 28), (257, 200), (64, 1024)])
    def test_correct_various_shapes(self, rng, m, n):
        X = rng.normal(size=(m, n))
        y = rng.normal(size=n)
        v = rng.normal(size=m)
        z = rng.normal(size=n)
        res = fused_pattern_dense(X, y, v, z, 1.3, 0.4)
        expected = 1.3 * X.T @ ((X @ y) * v) + 0.4 * z
        np.testing.assert_allclose(res.output, expected, rtol=1e-9)

    def test_without_v_z(self, rng):
        X = rng.normal(size=(150, 64))
        y = rng.normal(size=64)
        res = fused_xtxy_dense(X, y)
        np.testing.assert_allclose(res.output, X.T @ (X @ y), rtol=1e-10)

    def test_loads_x_exactly_once(self, rng):
        """Algorithm 3's defining property."""
        m, n = 4000, 256
        X = rng.normal(size=(m, n))
        res = fused_xtxy_dense(X, rng.normal(size=n))
        x_transactions = m * n * 8 / 128
        assert res.counters.global_load_transactions \
            < 1.1 * x_transactions
        # while the cuBLAS route reads it at least twice
        base = (gemv_n(X, rng.normal(size=n)).counters
                .global_load_transactions
                + gemv_t(X, rng.normal(size=m)).counters
                .global_load_transactions)
        assert base > 2.0 * x_transactions

    def test_single_launch(self, rng):
        X = rng.normal(size=(100, 32))
        res = fused_xtxy_dense(X, rng.normal(size=32))
        assert res.counters.kernel_launches == 1

    def test_fused_beats_two_gemvs(self, rng):
        X = rng.normal(size=(20_000, 256))
        y = rng.normal(size=256)
        fused = fused_xtxy_dense(X, y)
        base = gemv_n(X, y).time_ms + gemv_t(X, X @ y).time_ms
        assert fused.time_ms < base

    def test_validation(self, rng):
        X = rng.normal(size=(10, 8))
        with pytest.raises(ValueError, match="y must have shape"):
            fused_pattern_dense(X, np.ones(9))
        with pytest.raises(ValueError, match="requires z"):
            fused_pattern_dense(X, np.ones(8), beta=1.0)
        with pytest.raises(ValueError, match="v must have shape"):
            fused_pattern_dense(X, np.ones(8), v=np.ones(11))
        with pytest.raises(ValueError, match="2-D"):
            fused_pattern_dense(np.ones(8), np.ones(8))

    def test_padding_transparent(self, rng):
        """n not divisible by VS: the kernel pads internally with zeros."""
        X = rng.normal(size=(80, 37))
        y = rng.normal(size=37)
        res = fused_xtxy_dense(X, y)
        assert res.output.shape == (37,)
        np.testing.assert_allclose(res.output, X.T @ (X @ y), rtol=1e-9)
