"""CLI error handling: exit codes for bad subcommands, specs, and files.

``main()`` returns 0 on success; argparse rejections exit with code 2; our
own guard rails raise ``SystemExit(message)``, which the interpreter maps to
exit status 1.  ``_exit_code`` normalizes all three so every test asserts a
concrete process exit status.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import save_csr, save_dataset
from repro.sparse import random_csr


def _exit_code(argv) -> int:
    """Run ``main`` and normalize the exit status like ``sys.exit`` would."""
    try:
        rc = main(argv)
    except SystemExit as e:
        if e.code is None:
            return 0
        return 1 if isinstance(e.code, str) else int(e.code)
    return rc if rc is not None else 0


class TestArgparseRejections:
    def test_no_arguments(self, capsys):
        assert _exit_code([]) == 2

    def test_bad_subcommand(self, capsys):
        assert _exit_code(["frobnicate"]) == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_strategy_choice(self, capsys):
        assert _exit_code(["evaluate", "100x20:0.1",
                           "--strategies", "quantum"]) == 2

    def test_auto_not_allowed_in_evaluate(self, capsys):
        # evaluate compares named strategies; `auto` is engine-stats-only
        assert _exit_code(["evaluate", "100x20:0.1",
                           "--strategies", "auto"]) == 2

    def test_bad_generate_kind(self, capsys):
        assert _exit_code(["generate", "mnist", "out.npz"]) == 2


class TestFileGuards:
    def test_evaluate_missing_npz(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.npz")
        with pytest.raises(SystemExit) as exc:
            main(["evaluate", missing])
        assert f"matrix file not found: {missing}" in str(exc.value.code)
        assert _exit_code(["evaluate", missing]) == 1

    def test_tune_missing_npz(self, tmp_path):
        assert _exit_code(["tune", str(tmp_path / "nope.npz")]) == 1

    def test_bad_matrix_spec(self):
        with pytest.raises(SystemExit) as exc:
            main(["evaluate", "not-a-spec"])
        assert "MxN:sparsity" in str(exc.value.code)
        assert _exit_code(["evaluate", "100xx20:0.1"]) == 1

    def test_script_missing_script_file(self, tmp_path):
        dataset = tmp_path / "data.npz"
        X = random_csr(30, 8, 0.3, rng=0)
        save_dataset(str(dataset), X, np.ones(30))
        assert _exit_code(["script", str(tmp_path / "nope.dml"),
                           str(dataset)]) == 1

    def test_script_missing_dataset(self, tmp_path):
        script = tmp_path / "lr.dml"
        script.write_text("w = t(X) %*% y\n")
        assert _exit_code(["script", str(script),
                           str(tmp_path / "nope.npz")]) == 1

    def test_generate_dense_without_targets(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["generate", "higgs", str(tmp_path / "h.npz"),
                  "--scale", "0.002"])
        assert "--targets" in str(exc.value.code)

    def test_serve_missing_workload(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        with pytest.raises(SystemExit) as exc:
            main(["serve", missing])
        assert f"workload file not found: {missing}" in str(exc.value.code)
        assert _exit_code(["serve", missing]) == 1

    def test_serve_corrupt_workload(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json at all")
        assert _exit_code(["serve", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro serve:")
        assert len(err.strip().splitlines()) == 1   # one line, no traceback

    def test_serve_invalid_trace_shape(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"version": 1, "mode": "open"}\n')
        assert _exit_code(["serve", str(path)]) == 1
        assert "no matrices" in capsys.readouterr().err

    def test_loadgen_unwritable_output(self, tmp_path, capsys):
        target = str(tmp_path / "no" / "such" / "dir" / "trace.json")
        assert _exit_code(["loadgen", target,
                           "--matrices", "2", "--requests", "4"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro loadgen:")
        assert len(err.strip().splitlines()) == 1

    def test_loadgen_bad_deadline_spread(self, tmp_path, capsys):
        assert _exit_code(["loadgen", str(tmp_path / "t.json"),
                           "--deadline-ms", "10",
                           "--deadline-spread", "1.5"]) == 1
        assert "deadline_spread" in capsys.readouterr().err

    def test_evaluate_corrupt_npz(self, tmp_path, capsys):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"this is not a zip archive")
        assert _exit_code(["evaluate", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro evaluate:")
        assert len(err.strip().splitlines()) == 1

    def test_check_missing_kernel_file(self, tmp_path):
        missing = str(tmp_path / "nope.py")
        with pytest.raises(SystemExit) as exc:
            main(["check", missing])
        assert f"kernel file not found: {missing}" in str(exc.value.code)
        assert _exit_code(["check", missing]) == 1

    def test_check_bad_grid_spec(self, capsys):
        assert _exit_code(["check", "--grid", "8x"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro check:")
        assert "VSxTL" in err
        assert len(err.strip().splitlines()) == 1

    def test_check_empty_grid_spec(self, capsys):
        assert _exit_code(["check", "--grid", ","]) == 1
        assert "empty" in capsys.readouterr().err

    def test_check_zero_grid_dimension(self, capsys):
        assert _exit_code(["check", "--grid", "0x4"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro check:")
        assert "positive" in err
        assert len(err.strip().splitlines()) == 1

    def test_check_unknown_scope(self, capsys):
        assert _exit_code(["check", "--scope", "bogus"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro check: unknown scope 'bogus'")
        assert "kernels, host, or all" in err
        assert len(err.strip().splitlines()) == 1

    def test_check_host_scope_missing_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.py")
        with pytest.raises(SystemExit) as exc:
            main(["check", "--scope", "host", missing])
        assert f"host module not found: {missing}" in str(exc.value.code)
        assert _exit_code(["check", "--scope", "host", missing]) == 1

    def test_check_unparseable_kernel_file(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def k(:\n")
        assert _exit_code(["check", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro check:")
        assert len(err.strip().splitlines()) == 1   # one line, no traceback

    def test_check_sigint_exits_130(self, monkeypatch, capsys):
        import repro.analyze

        def boom(*a, **kw):
            raise KeyboardInterrupt

        # cmd_check does `from .analyze import run_check` at call time
        monkeypatch.setattr(repro.analyze, "run_check", boom)
        assert _exit_code(["check"]) == 130
        err = capsys.readouterr().err
        assert err.strip() == "repro check: interrupted"


class TestSuccessPaths:
    """Contrast cases: the same commands succeed once inputs exist."""

    def test_evaluate_synthetic_spec(self, capsys):
        assert _exit_code(["evaluate", "200x40:0.15"]) == 0
        out = capsys.readouterr().out
        assert "fused" in out and "model-ms" in out

    def test_evaluate_saved_npz(self, tmp_path, capsys):
        path = str(tmp_path / "m.npz")
        save_csr(path, random_csr(100, 16, 0.2, rng=1))
        assert _exit_code(["evaluate", path]) == 0

    def test_engine_stats_reports_cache_lines(self, capsys):
        assert _exit_code(["engine-stats", "200x40:0.15",
                           "--iterations", "5",
                           "--strategy", "cusparse-explicit",
                           "--batch", "3", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "hit-rate" in out
        assert "uncached total" in out
        assert "batched:" in out

    def test_engine_stats_missing_npz(self, tmp_path):
        assert _exit_code(["engine-stats",
                           str(tmp_path / "nope.npz")]) == 1

    def test_loadgen_then_serve_round_trip(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        assert _exit_code(["loadgen", trace, "--matrices", "2",
                           "--requests", "8", "--rows", "80",
                           "--cols", "8"]) == 0
        assert "wrote" in capsys.readouterr().out
        metrics = str(tmp_path / "metrics.json")
        assert _exit_code(["serve", trace, "--verify",
                           "--metrics-json", metrics]) == 0
        out = capsys.readouterr().out
        assert "latency:" in out and "0 divergent outputs" in out
        import json
        parsed = json.loads(open(metrics).read())
        assert parsed["counters"]["completed"] == 8

    def test_check_shipped_kernels_clean(self, capsys):
        assert _exit_code(["check"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "shipped kernels" in out

    def test_check_json_output_parses(self, capsys):
        import json
        assert _exit_code(["check", "--json", "--grid", "4x2"]) == 0
        findings = json.loads(capsys.readouterr().out)
        # scope defaults to `all`: the host layer's deliberate patterns
        # appear as suppressed entries, and none are active (exit 0)
        assert all(f["suppressed"] for f in findings)

    def test_check_kernels_scope_json_is_empty(self, capsys):
        import json
        assert _exit_code(["check", "--scope", "kernels", "--json",
                           "--grid", "4x2"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_check_host_scope_shipped_clean(self, capsys):
        assert _exit_code(["check", "--scope", "host"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "host module(s)" in out
        assert "suppressed" in out       # deliberate patterns stay visible

    def test_check_all_scope_covers_both_layers(self, capsys):
        assert _exit_code(["check", "--scope", "all"]) == 0
        out = capsys.readouterr().out
        assert "shipped kernels" in out and "host module(s)" in out

    def test_check_host_json_schema_is_stable(self, capsys, tmp_path):
        import json
        bad = tmp_path / "racy.py"
        bad.write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._x = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._x += 1\n"
            "    def peek(self):\n"
            "        return self._x\n")
        assert _exit_code(["check", "--scope", "host", "--json",
                           str(bad)]) == 1
        findings = json.loads(capsys.readouterr().out)
        assert isinstance(findings, list) and findings
        for f in findings:
            # flat dicts with deterministic, sorted keys
            assert list(f) == sorted(f)
            assert {"file", "kind", "kernel", "line",
                    "message", "suppressed"} <= set(f)
        keys = [(f["file"], f["line"], f["kind"]) for f in findings]
        assert keys == sorted(keys)

    def test_loadgen_run_inline(self, tmp_path, capsys):
        assert _exit_code(["loadgen", str(tmp_path / "t.json"),
                           "--matrices", "2", "--requests", "6",
                           "--rows", "80", "--cols", "8", "--run",
                           "--prometheus", "-"]) == 0
        out = capsys.readouterr().out
        assert "repro_serve_requests_total" in out
