"""CLI error handling: exit codes for bad subcommands, specs, and files.

``main()`` returns 0 on success; argparse rejections exit with code 2; our
own guard rails raise ``SystemExit(message)``, which the interpreter maps to
exit status 1.  ``_exit_code`` normalizes all three so every test asserts a
concrete process exit status.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import save_csr, save_dataset
from repro.sparse import random_csr


def _exit_code(argv) -> int:
    """Run ``main`` and normalize the exit status like ``sys.exit`` would."""
    try:
        rc = main(argv)
    except SystemExit as e:
        if e.code is None:
            return 0
        return 1 if isinstance(e.code, str) else int(e.code)
    return rc if rc is not None else 0


class TestArgparseRejections:
    def test_no_arguments(self, capsys):
        assert _exit_code([]) == 2

    def test_bad_subcommand(self, capsys):
        assert _exit_code(["frobnicate"]) == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_strategy_choice(self, capsys):
        assert _exit_code(["evaluate", "100x20:0.1",
                           "--strategies", "quantum"]) == 2

    def test_auto_not_allowed_in_evaluate(self, capsys):
        # evaluate compares named strategies; `auto` is engine-stats-only
        assert _exit_code(["evaluate", "100x20:0.1",
                           "--strategies", "auto"]) == 2

    def test_bad_generate_kind(self, capsys):
        assert _exit_code(["generate", "mnist", "out.npz"]) == 2


class TestFileGuards:
    def test_evaluate_missing_npz(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.npz")
        with pytest.raises(SystemExit) as exc:
            main(["evaluate", missing])
        assert f"matrix file not found: {missing}" in str(exc.value.code)
        assert _exit_code(["evaluate", missing]) == 1

    def test_tune_missing_npz(self, tmp_path):
        assert _exit_code(["tune", str(tmp_path / "nope.npz")]) == 1

    def test_bad_matrix_spec(self):
        with pytest.raises(SystemExit) as exc:
            main(["evaluate", "not-a-spec"])
        assert "MxN:sparsity" in str(exc.value.code)
        assert _exit_code(["evaluate", "100xx20:0.1"]) == 1

    def test_script_missing_script_file(self, tmp_path):
        dataset = tmp_path / "data.npz"
        X = random_csr(30, 8, 0.3, rng=0)
        save_dataset(str(dataset), X, np.ones(30))
        assert _exit_code(["script", str(tmp_path / "nope.dml"),
                           str(dataset)]) == 1

    def test_script_missing_dataset(self, tmp_path):
        script = tmp_path / "lr.dml"
        script.write_text("w = t(X) %*% y\n")
        assert _exit_code(["script", str(script),
                           str(tmp_path / "nope.npz")]) == 1

    def test_generate_dense_without_targets(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["generate", "higgs", str(tmp_path / "h.npz"),
                  "--scale", "0.002"])
        assert "--targets" in str(exc.value.code)


class TestSuccessPaths:
    """Contrast cases: the same commands succeed once inputs exist."""

    def test_evaluate_synthetic_spec(self, capsys):
        assert _exit_code(["evaluate", "200x40:0.15"]) == 0
        out = capsys.readouterr().out
        assert "fused" in out and "model-ms" in out

    def test_evaluate_saved_npz(self, tmp_path, capsys):
        path = str(tmp_path / "m.npz")
        save_csr(path, random_csr(100, 16, 0.2, rng=1))
        assert _exit_code(["evaluate", path]) == 0

    def test_engine_stats_reports_cache_lines(self, capsys):
        assert _exit_code(["engine-stats", "200x40:0.15",
                           "--iterations", "5",
                           "--strategy", "cusparse-explicit",
                           "--batch", "3", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "hit-rate" in out
        assert "uncached total" in out
        assert "batched:" in out

    def test_engine_stats_missing_npz(self, tmp_path):
        assert _exit_code(["engine-stats",
                           str(tmp_path / "nope.npz")]) == 1
