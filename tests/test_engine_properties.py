"""Property-based tests for PatternEngine cache-key correctness.

The satellite contract:

* mutating a matrix in place MUST miss the cache,
* swapping the device spec MUST miss the cache,
* evaluating an identical matrix twice MUST hit,
* engine results are bit-identical to uncached ``api.evaluate()`` across
  >= 200 randomly generated patterns.

Hypothesis drives the fingerprint/key invariants; a seeded-random loop
(8 chunks x 25 patterns) covers the bit-identity sweep across every
strategy, sparse and dense, with and without ``v``/``z``.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.api import evaluate as evaluate_uncached
from repro.core.engine import (PatternEngine, fingerprint_device,
                               fingerprint_matrix)
from repro.core.pattern import GenericPattern
from repro.kernels.base import GpuContext
from repro.gpu.device import GTX_TITAN, K20X, TINY_CC35
from repro.sparse import CsrMatrix, random_csr


def _clone(X: CsrMatrix) -> CsrMatrix:
    return CsrMatrix(X.shape, X.values.copy(), X.col_idx.copy(),
                     X.row_off.copy())


# ----------------------------------------------------- hypothesis: cache keys
class TestFingerprintProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_value_mutation_changes_fingerprint(self, seed):
        X = random_csr(60, 15, 0.2, rng=seed)
        assume(X.nnz > 0)
        clone = _clone(X)
        assert fingerprint_matrix(X) == fingerprint_matrix(clone)
        idx = seed % X.nnz
        clone.values[idx] += 1.0
        assert fingerprint_matrix(X) != fingerprint_matrix(clone)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_structure_mutation_changes_fingerprint(self, seed):
        X = random_csr(60, 15, 0.2, rng=seed)
        assume(X.nnz > 0)
        clone = _clone(X)
        idx = seed % X.nnz
        clone.col_idx[idx] = (clone.col_idx[idx] + 1) % X.n
        assert fingerprint_matrix(X) != fingerprint_matrix(clone)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), m=st.integers(2, 40),
           n=st.integers(2, 40))
    def test_dense_fingerprint_content_based(self, seed, m, n):
        X = np.random.default_rng(seed).normal(size=(m, n))
        assert fingerprint_matrix(X) == fingerprint_matrix(X.copy())
        Y = X.copy()
        Y[seed % m, seed % n] += 0.5
        assert fingerprint_matrix(X) != fingerprint_matrix(Y)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_mutation_misses_the_live_cache(self, seed):
        engine = PatternEngine()
        X = random_csr(80, 20, 0.2, rng=seed)
        assume(X.nnz > 0)
        y = np.random.default_rng(seed).normal(size=X.n)
        engine.evaluate(X, y)
        engine.evaluate(_clone(X), y)          # identical content: hit
        s = engine.stats()
        assert (s.plan_hits, s.plan_misses) == (1, 1)
        X.values[seed % X.nnz] *= 2.0          # in-place mutation: miss
        engine.evaluate(X, y)
        s = engine.stats()
        assert (s.plan_hits, s.plan_misses) == (1, 2)


class TestDeviceSwap:
    @pytest.mark.parametrize("a,b", [(GTX_TITAN, K20X),
                                     (GTX_TITAN, TINY_CC35),
                                     (K20X, TINY_CC35)])
    def test_device_specs_key_apart(self, a, b, small_csr):
        ea, eb = PatternEngine(GpuContext(a)), PatternEngine(GpuContext(b))
        assert fingerprint_device(ea.ctx) != fingerprint_device(eb.ctx)
        p = GenericPattern(small_csr, np.ones(small_csr.n))
        fp = fingerprint_matrix(small_csr)
        assert ea._plan_key(p, fp, "fused") != eb._plan_key(p, fp, "fused")

    def test_cache_flags_key_apart(self, small_csr):
        base = PatternEngine(GpuContext(GTX_TITAN))
        for flip in (GpuContext(GTX_TITAN, use_texture_cache=False),
                     GpuContext(GTX_TITAN, use_l2_reuse=False)):
            other = PatternEngine(flip)
            p = GenericPattern(small_csr, np.ones(small_csr.n))
            fp = fingerprint_matrix(small_csr)
            assert (base._plan_key(p, fp, "fused")
                    != other._plan_key(p, fp, "fused"))

    def test_per_device_results_match_their_uncached_baseline(self,
                                                              small_csr):
        y = np.random.default_rng(0).normal(size=small_csr.n)
        for dev in (GTX_TITAN, K20X):
            ctx = GpuContext(dev)
            engine = PatternEngine(ctx)
            for _ in range(2):                 # cold then warm
                res = engine.evaluate(small_csr, y, strategy="fused")
                ref = evaluate_uncached(small_csr, y, strategy="fused",
                                        ctx=ctx)
                np.testing.assert_array_equal(res.output, ref.output)
                assert res.time_ms == ref.time_ms


# ------------------------------------------- seeded sweep: 200-way bit-identity
SPARSE_STRATEGIES = ("auto", "fused", "cusparse", "cusparse-explicit",
                     "bidmat-gpu", "bidmat-cpu")
DENSE_STRATEGIES = ("auto", "fused", "cusparse", "bidmat-gpu", "bidmat-cpu")
PATTERNS_PER_CHUNK = 25


def _random_case(rng):
    sparse = rng.random() < 0.6
    if sparse:
        m = int(rng.integers(30, 300))
        n = int(rng.integers(8, 80))
        X = random_csr(m, n, float(rng.uniform(0.05, 0.4)),
                       rng=int(rng.integers(0, 2**31)))
        strategy = SPARSE_STRATEGIES[int(rng.integers(
            0, len(SPARSE_STRATEGIES)))]
    else:
        m = int(rng.integers(16, 120))
        n = int(rng.integers(8, 100))
        X = rng.normal(size=(m, n))
        strategy = DENSE_STRATEGIES[int(rng.integers(
            0, len(DENSE_STRATEGIES)))]
    y = rng.normal(size=n)
    v = rng.normal(size=m) if rng.random() < 0.5 else None
    z = rng.normal(size=n) if rng.random() < 0.5 else None
    alpha = float(rng.uniform(-2.0, 2.0))
    beta = float(rng.uniform(0.1, 2.0)) if z is not None else 0.0
    return X, y, v, z, alpha, beta, strategy


@pytest.mark.parametrize("chunk", range(8))
def test_bit_identical_to_uncached_across_random_patterns(chunk):
    """8 chunks x 25 patterns = 200 random cases, every strategy mixed in.

    Each case is evaluated twice through one shared engine (cold, then warm)
    and both results must be *bit-identical* to a fresh uncached
    ``api.evaluate()`` — caching plans/params/artifacts must never change a
    single output bit.
    """
    rng = np.random.default_rng(1000 + chunk)
    engine = PatternEngine()
    for case in range(PATTERNS_PER_CHUNK):
        X, y, v, z, alpha, beta, strategy = _random_case(rng)
        ref = evaluate_uncached(X, y, v=v, z=z, alpha=alpha, beta=beta,
                                strategy=strategy)
        cold = engine.evaluate(X, y, v=v, z=z, alpha=alpha, beta=beta,
                               strategy=strategy)
        warm = engine.evaluate(X, y, v=v, z=z, alpha=alpha, beta=beta,
                               strategy=strategy)
        context = f"chunk={chunk} case={case} strategy={strategy}"
        assert np.array_equal(cold.output, ref.output), context
        assert np.array_equal(warm.output, ref.output), context
    assert engine.stats().plan_hits >= PATTERNS_PER_CHUNK
