"""Wire framing, hot-key tracking, and shard-metrics merging.

The cluster's three pure-logic pieces, tested without any processes:

* length-prefixed framing round-trips arbitrary payloads, tells a clean
  close (``None``) from a torn frame (``ConnectionError``), and refuses
  frames whose announced size indicates corruption;
* the hot-key tracker promotes exactly the Zipf head (enough absolute
  traffic AND enough share) and demotes deterministically via decay;
* per-shard metrics snapshots merge into one aggregate with summed
  counters, bucket-exact histogram merging, and sorted keys throughout.
"""

import socket
import threading

import numpy as np
import pytest

from repro.cluster import (HotKeyTracker, aggregate_shards, merge_counters,
                           merge_engine_stats, merge_histograms)
from repro.cluster.protocol import (MAX_FRAME_BYTES, recv_msg, send_msg)
from repro.serve.metrics import ServeMetrics


def pair():
    a, b = socket.socketpair()
    return a, b


# ------------------------------------------------------------------- framing
def test_roundtrip_dict_with_arrays():
    a, b = pair()
    msg = {"op": "eval", "y": np.arange(5.0), "nested": {"k": [1, 2]}}
    send_msg(a, msg)
    got = recv_msg(b)
    assert got["op"] == "eval"
    np.testing.assert_array_equal(got["y"], np.arange(5.0))
    a.close(), b.close()


def test_multiple_frames_in_order():
    a, b = pair()
    for i in range(10):
        send_msg(a, {"i": i})
    assert [recv_msg(b)["i"] for i in range(10)] == list(range(10))
    a.close(), b.close()


def test_clean_close_returns_none():
    a, b = pair()
    send_msg(a, {"op": "ping"})
    a.close()
    assert recv_msg(b) == {"op": "ping"}
    assert recv_msg(b) is None          # EOF exactly on a frame boundary
    b.close()


def test_torn_frame_raises():
    a, b = pair()
    # header announces 100 payload bytes, but the link dies after 10
    a.sendall((100).to_bytes(4, "big") + b"x" * 10)
    a.close()
    with pytest.raises(ConnectionError):
        recv_msg(b)
    b.close()


def test_eof_between_header_and_payload_raises():
    a, b = pair()
    a.sendall((100).to_bytes(4, "big"))
    a.close()
    with pytest.raises(ConnectionError):
        recv_msg(b)
    b.close()


def test_oversized_announcement_rejected():
    a, b = pair()
    a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
    with pytest.raises((ConnectionError, OverflowError)):
        recv_msg(b)
    a.close(), b.close()


def test_oversized_send_rejected(monkeypatch):
    import repro.cluster.protocol as protocol

    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
    a, b = pair()
    with pytest.raises(ValueError):
        send_msg(a, {"payload": b"x" * 128})
    a.close(), b.close()


# ------------------------------------------------------------------ hot keys
def test_hot_promotion_needs_count_and_share():
    t = HotKeyTracker(threshold=0.5, min_requests=4, window=1000)
    for _ in range(3):
        assert not t.record("a")       # share 1.0 but below min_requests
    assert t.record("a")               # 4th: both conditions met
    assert t.is_hot("a")
    assert t.hot_keys() == ["a"]


def test_cold_long_tail_never_promotes():
    t = HotKeyTracker(threshold=0.2, min_requests=4, window=10_000)
    for i in range(400):
        t.record(f"k{i % 40}")         # uniform: share 2.5% each
    assert t.hot_keys() == []


def test_decay_demotes_deterministically():
    t = HotKeyTracker(threshold=0.5, min_requests=8, window=32)
    for _ in range(16):
        t.record("hot")
    assert t.is_hot("hot")
    # traffic moves on: decays halve "hot" while others accumulate
    i = 0
    while t.is_hot("hot"):
        t.record(f"other-{i % 16}")
        i += 1
        assert i < 10_000, "decay never demoted the cooled key"
    assert not t.is_hot("hot")


def test_snapshot_keys_sorted():
    t = HotKeyTracker()
    t.record("zz"), t.record("aa")
    snap = t.snapshot()
    assert list(snap) == sorted(snap)


def test_tracker_thread_safety():
    t = HotKeyTracker(window=64)
    errors = []

    def hammer(tag):
        try:
            for i in range(2000):
                t.record(f"{tag}-{i % 7}")
        except Exception as exc:       # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(j,)) for j in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert not errors
    assert t.snapshot()["tracked_keys"] <= 28


def test_tracker_validation():
    with pytest.raises(ValueError):
        HotKeyTracker(threshold=0.0)
    with pytest.raises(ValueError):
        HotKeyTracker(min_requests=0)
    with pytest.raises(ValueError):
        HotKeyTracker(window=1)


# ------------------------------------------------------------ metrics merge
def shard_snapshot(n):
    m = ServeMetrics()
    for i in range(n):
        m.inc("submitted"), m.inc("completed")
        m.observe_latency(float(i + 1))
        m.observe_wait(0.5)
        m.observe_batch(2, [0.3, 0.3])
    return m.snapshot(queue_depth=n, in_flight=1)


def test_merge_counters_sums_and_sorts():
    merged = merge_counters([{"b": 1, "a": 2}, {"a": 3, "c": 1}])
    assert merged == {"a": 5, "b": 1, "c": 1}
    assert list(merged) == ["a", "b", "c"]


def test_merge_histograms_exact_counts():
    snaps = [shard_snapshot(5), shard_snapshot(3)]
    merged = merge_histograms([s["histograms"]["latency_ms"]
                               for s in snaps])
    assert merged["count"] == 8
    assert merged["sum"] == pytest.approx(sum(range(1, 6))
                                          + sum(range(1, 4)))
    assert merged["min"] == 1.0 and merged["max"] == 5.0
    assert sum(merged["buckets"].values()) + merged["overflow"] == 8


def test_merge_histograms_rejects_mismatched_buckets():
    a = shard_snapshot(1)["histograms"]["latency_ms"]
    b = dict(a, buckets={"1.0": 1})
    with pytest.raises(ValueError):
        merge_histograms([a, b])


def test_merge_empty():
    merged = merge_histograms([])
    assert merged["count"] == 0 and merged["p99"] == 0.0


def test_aggregate_shards_shape_and_order():
    agg = aggregate_shards([shard_snapshot(4), shard_snapshot(2), {}])
    assert agg["shards_reporting"] == 2
    assert agg["counters"]["completed"] == 6
    assert agg["gauges"]["queue_depth"] == 6     # 4 + 2
    assert list(agg) == sorted(agg)
    assert list(agg["counters"]) == sorted(agg["counters"])
    assert list(agg["histograms"]) == sorted(agg["histograms"])


def test_merge_engine_stats_recomputes_hit_rate():
    merged = merge_engine_stats([
        {"plan_hits": 8, "plan_misses": 2, "bytes_cached": 100,
         "artifact_kinds": {"csc": 1}},
        {"plan_hits": 0, "plan_misses": 10, "bytes_cached": 50,
         "artifact_kinds": {"csc": 2, "profile": 1}},
    ])
    assert merged["plan_hits"] == 8 and merged["plan_misses"] == 12
    assert merged["plan_hit_rate"] == pytest.approx(0.4)
    assert merged["bytes_cached"] == 150
    assert merged["artifact_kinds"] == {"csc": 3, "profile": 1}
    assert list(merged) == sorted(merged)
