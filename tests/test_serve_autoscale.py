"""Unit tests for the hysteretic autoscaler (repro.serve.autoscale).

The decision core is pure — one ``observe`` call per interval with
synthetic signals — so hysteresis (consecutive-breach debouncing plus
post-resize cooldown) is pinned against exact load shapes without threads
or clocks, including the square-wave shape that defeats naive controllers.
"""

import pytest

from repro.serve import (AutoscaleConfig, Autoscaler, PatternServer,
                         ServeRequest, ServerConfig, parse_autoscale)
from repro.core.engine import PatternEngine
from repro.sparse.generate import random_csr


def cfg(**kw) -> AutoscaleConfig:
    base = dict(min_workers=1, max_workers=4, high_ratio=0.5, low_ratio=0.1,
                breach_count=3, cooldown_s=1.0, interval_s=0.25, step=1)
    base.update(kw)
    return AutoscaleConfig(**base)


def busy(asc: Autoscaler, now: float):
    """One saturated interval: waits dwarf service, queue non-empty."""
    return asc.observe(wait_ms=50.0, service_ms=10.0, completed=8,
                       queue_depth=16, now=now)


def idle(asc: Autoscaler, now: float):
    """One idle interval: negligible wait, empty queue."""
    return asc.observe(wait_ms=0.1, service_ms=10.0, completed=8,
                       queue_depth=0, now=now)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            cfg(min_workers=0)
        with pytest.raises(ValueError):
            cfg(max_workers=0)              # < min_workers
        with pytest.raises(ValueError):
            cfg(low_ratio=0.5, high_ratio=0.5)
        with pytest.raises(ValueError):
            cfg(low_ratio=-0.1)
        with pytest.raises(ValueError):
            cfg(breach_count=0)
        with pytest.raises(ValueError):
            cfg(cooldown_s=-1.0)
        with pytest.raises(ValueError):
            cfg(interval_s=0.0)
        with pytest.raises(ValueError):
            cfg(step=0)

    def test_parse_autoscale(self):
        asc = parse_autoscale("2:6")
        assert (asc.min_workers, asc.max_workers) == (2, 6)

    def test_parse_autoscale_rejects_bad_specs(self):
        for spec in ("", "3", "1:2:3", "a:b", "4:2"):
            with pytest.raises(ValueError):
                parse_autoscale(spec)

    def test_initial_target_clamped_to_bounds(self):
        assert Autoscaler(cfg(), initial=0).target == 1
        assert Autoscaler(cfg(), initial=99).target == 4
        assert Autoscaler(cfg(min_workers=2), initial=None).target == 2


class TestHysteresis:
    def test_scale_up_needs_consecutive_breaches(self):
        asc = Autoscaler(cfg(), initial=1)
        assert busy(asc, 0.0) is None
        assert busy(asc, 0.25) is None
        assert busy(asc, 0.50) == 2          # third consecutive breach acts
        assert asc.target == 2

    def test_one_quiet_interval_resets_the_streak(self):
        asc = Autoscaler(cfg(), initial=1)
        busy(asc, 0.0)
        busy(asc, 0.25)
        # neither high nor low (moderate ratio): streaks reset
        asc.observe(wait_ms=3.0, service_ms=10.0, completed=8,
                    queue_depth=2, now=0.50)
        assert busy(asc, 0.75) is None
        assert busy(asc, 1.00) is None
        assert busy(asc, 1.25) == 2

    def test_cooldown_blocks_consecutive_resizes(self):
        asc = Autoscaler(cfg(cooldown_s=2.0), initial=1)
        for t in (0.0, 0.25, 0.50):
            changed = busy(asc, t)
        assert changed == 2
        # breaches keep coming, but the cooldown holds the target
        for t in (0.75, 1.00, 1.25, 1.50, 2.25):
            assert busy(asc, t) is None
        assert busy(asc, 2.75) == 3          # cooldown expired at 2.50
        assert asc.target == 3

    def test_scale_down_on_sustained_idle_floors_at_min(self):
        asc = Autoscaler(cfg(cooldown_s=0.0), initial=3)
        changes = [idle(asc, 0.25 * i) for i in range(12)]
        assert [c for c in changes if c] == [2, 1]
        assert asc.target == 1               # never below min_workers

    def test_ceiling_at_max_workers(self):
        asc = Autoscaler(cfg(cooldown_s=0.0, max_workers=2), initial=2)
        assert all(busy(asc, 0.25 * i) is None for i in range(8))
        assert asc.target == 2

    def test_zero_completions_with_backlog_reads_as_pressure(self):
        asc = Autoscaler(cfg(), initial=1)
        for i in range(2):
            assert asc.observe(wait_ms=0.0, service_ms=0.0, completed=0,
                               queue_depth=5, now=0.25 * i) is None
        assert asc.observe(wait_ms=0.0, service_ms=0.0, completed=0,
                           queue_depth=5, now=0.50) == 2

    def test_zero_completions_with_empty_queue_reads_as_idle(self):
        asc = Autoscaler(cfg(cooldown_s=0.0), initial=2)
        changes = [asc.observe(wait_ms=0.0, service_ms=0.0, completed=0,
                               queue_depth=0, now=0.25 * i)
                   for i in range(3)]
        assert changes == [None, None, 1]

    def test_ratio_guards_divide_by_zero(self):
        assert Autoscaler(cfg()).ratio(10.0, 0.0) == 0.0


class TestSquareWave:
    def test_fast_square_wave_never_flaps(self):
        # load alternating busy/idle every interval: no streak ever
        # reaches breach_count, so the target never moves at all
        asc = Autoscaler(cfg(cooldown_s=0.0), initial=2)
        targets = set()
        for i in range(40):
            (busy if i % 2 == 0 else idle)(asc, 0.25 * i)
            targets.add(asc.target)
        assert targets == {2}

    def test_slow_square_wave_rate_limited_by_cooldown(self):
        # a 4-interval square wave clears breach_count=3, but the 2 s
        # cooldown (8 intervals) bounds resizes to ~one per period rather
        # than chasing every edge
        asc = Autoscaler(cfg(cooldown_s=2.0), initial=2)
        changes = 0
        for i in range(80):
            phase_busy = (i // 4) % 2 == 0
            if (busy if phase_busy else idle)(asc, 0.25 * i) is not None:
                changes += 1
        assert changes <= 80 * 0.25 / 2.0    # at most one per cooldown
        assert 1 <= asc.target <= 4


class TestServerPlumbing:
    def test_autoscaled_server_reports_target_and_scales(self):
        X = random_csr(400, 64, 0.05, rng=3)
        engine = PatternEngine()
        asc = cfg(min_workers=1, max_workers=3, breach_count=1,
                  cooldown_s=0.0, interval_s=0.01)
        # drain_lookahead < backlog makes the autoscaler's first sample
        # deterministic: it always observes a non-empty admission queue
        # (zero completions + backlog = maximal pressure), so at least
        # one scale-up happens regardless of how fast batches finish
        server = PatternServer(engine, ServerConfig(
            queue_capacity=512, max_batch=4, workers=1, policy="edf",
            drain_lookahead=8, autoscale=asc), start=False)
        try:
            assert server.workers_target == 1
            import numpy as np
            rng = np.random.default_rng(0)
            futures = [server.submit(ServeRequest(
                X, rng.normal(size=64), tier="batch"))
                for _ in range(64)]
            server.start()
            for f in futures:
                assert f.result(timeout=60.0).status == "ok"
        finally:
            server.stop()
        snap = server.metrics_snapshot()
        assert 1 <= server.workers_target <= 3
        assert snap["gauges"]["workers_target"] == server.workers_target
        events = snap["counters"]["scale_up"] + \
            snap["counters"]["scale_down"]
        prom = server.metrics_prometheus()
        assert "repro_serve_workers_target" in prom
        assert ('repro_serve_scale_events_total{direction="up"} '
                f'{snap["counters"]["scale_up"]}') in prom
        # with instant hysteresis and a 64-deep backlog on one worker,
        # the autoscaler must have acted at least once
        assert events >= 1
