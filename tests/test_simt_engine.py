"""The SIMT interpreter: barriers, shuffles, atomics, deadlock detection."""

import numpy as np
import pytest

from repro.gpu import (BARRIER, DeadlockError, ShflDown, ShflXor, SimtEngine,
                       TINY_CC35, warp_allreduce_sum, warp_reduce_sum)


class TestBasicExecution:
    def test_thread_ids(self):
        seen = []

        def k(ctx):
            seen.append((ctx.block_id, ctx.tid, ctx.global_tid))
            return
            yield  # make it a generator

        SimtEngine().launch(k, 2, 4)
        assert len(seen) == 8
        assert (1, 3, 7) in seen

    def test_atomic_add_global(self):
        out = np.zeros(1)

        def k(ctx, buf):
            ctx.atomic_add(buf, 0, 1.0)
            return
            yield

        stats = SimtEngine().launch(k, 3, 8, (out,))
        assert out[0] == 24.0
        assert stats.atomic_global == 24

    def test_shared_memory_per_block(self):
        out = np.zeros(2)

        def k(ctx, buf):
            if ctx.tid == 0:
                ctx.shared[0] = ctx.block_id + 1.0
            yield BARRIER
            if ctx.tid == 1:
                ctx.atomic_add(buf, ctx.block_id, ctx.shared[0])

        SimtEngine().launch(k, 2, 2, (out,))
        np.testing.assert_array_equal(out, [1.0, 2.0])

    def test_barrier_orders_writes(self):
        out = np.zeros(32)

        def k(ctx, buf):
            ctx.shared[ctx.tid] = float(ctx.tid)
            yield BARRIER
            buf[ctx.tid] = ctx.shared[(ctx.tid + 1) % ctx.block_size]

        SimtEngine().launch(k, 1, 32, (out,), shared_doubles=32)
        np.testing.assert_array_equal(out, (np.arange(32) + 1) % 32)


class TestShuffles:
    def test_shfl_down_basic(self):
        out = np.zeros(32)

        def k(ctx, buf):
            got = yield ShflDown(float(ctx.tid), 1, 32)
            buf[ctx.tid] = got

        SimtEngine().launch(k, 1, 32, (out,))
        expected = np.minimum(np.arange(32) + 1, 31)
        np.testing.assert_array_equal(out, expected)

    def test_shfl_down_width_groups(self):
        out = np.zeros(8)

        def k(ctx, buf):
            got = yield ShflDown(float(ctx.tid), 2, 4)
            buf[ctx.tid] = got

        SimtEngine().launch(k, 1, 8, (out,))
        # within each 4-lane group, lane i gets i+2 (own value past the edge)
        np.testing.assert_array_equal(out, [2, 3, 2, 3, 6, 7, 6, 7])

    def test_shfl_xor(self):
        out = np.zeros(4)

        def k(ctx, buf):
            got = yield ShflXor(float(ctx.tid), 1, 4)
            buf[ctx.tid] = got

        SimtEngine().launch(k, 1, 4, (out,))
        np.testing.assert_array_equal(out, [1, 0, 3, 2])

    def test_warp_reduce_sum(self):
        out = np.zeros(1)

        def k(ctx, buf):
            total = yield from warp_reduce_sum(ctx, float(ctx.tid + 1), 32)
            if ctx.lane == 0:
                ctx.atomic_add(buf, 0, total)

        SimtEngine().launch(k, 1, 32, (out,))
        assert out[0] == 32 * 33 / 2

    def test_warp_allreduce_every_lane(self):
        out = np.zeros(16)

        def k(ctx, buf):
            total = yield from warp_allreduce_sum(ctx, float(ctx.tid), 8)
            buf[ctx.tid] = total

        SimtEngine().launch(k, 1, 16, (out,))
        np.testing.assert_array_equal(out[:8], np.full(8, 28.0))
        np.testing.assert_array_equal(out[8:], np.full(8, 28.0 + 64))

    def test_partial_warp_reduce(self):
        """Threads beyond the active group may have finished; the shuffle
        must still resolve for live lanes."""
        out = np.zeros(1)

        def k(ctx, buf):
            total = yield from warp_allreduce_sum(ctx, 1.0, 4)
            if ctx.tid == 0:
                buf[0] = total

        SimtEngine().launch(k, 1, 4, (out,))
        assert out[0] == 4.0


class TestErrors:
    def test_divergent_barrier_deadlocks(self):
        def k(ctx):
            if ctx.tid == 0:
                yield BARRIER
            # other threads exit without reaching the barrier... except a
            # generator with no yield executes nothing; force mixed states
            elif ctx.tid == 1:
                got = yield ShflDown(1.0, 1, 32)
                _ = got

        with pytest.raises(DeadlockError):
            SimtEngine().launch(k, 1, 2)

    def test_block_size_validation(self):
        def k(ctx):
            return
            yield

        with pytest.raises(ValueError, match="block size"):
            SimtEngine(TINY_CC35).launch(k, 1, 100_000)

    def test_shared_memory_validation(self):
        def k(ctx):
            return
            yield

        with pytest.raises(ValueError, match="shared memory"):
            SimtEngine(TINY_CC35).launch(k, 1, 32,
                                         shared_doubles=10**6)

    def test_stats_counts(self):
        def k(ctx):
            yield BARRIER
            _ = yield ShflDown(1.0, 1, 32)

        stats = SimtEngine().launch(k, 2, 32)
        assert stats.barriers == 2          # one per block
        assert stats.shuffles == 2
        assert stats.threads_run == 64
