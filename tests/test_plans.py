"""Execution plans: composition, chaining, and baseline structure."""

import numpy as np
import pytest

from repro.core import (BidmatCpuPlan, BidmatGpuPlan, CusparsePlan,
                        ExplicitTransposePlan, FusedPlan, GenericPattern)
from repro.kernels.base import chain
from repro.sparse import random_csr


class TestCusparsePlan:
    def test_launch_count_full_pattern(self, medium_csr, rng):
        """Unfused full pattern = csrmv + ewmul + csrmv_t + scal + axpy."""
        p = GenericPattern(medium_csr, rng.normal(size=medium_csr.n),
                           v=rng.normal(size=medium_csr.m),
                           z=rng.normal(size=medium_csr.n),
                           alpha=2.0, beta=0.5)
        res = CusparsePlan().evaluate(p)
        assert res.counters.kernel_launches == 5

    def test_launch_count_xtxy(self, medium_csr, rng):
        p = GenericPattern(medium_csr, rng.normal(size=medium_csr.n))
        res = CusparsePlan().evaluate(p)
        assert res.counters.kernel_launches == 2

    def test_dense_route(self, rng):
        X = rng.normal(size=(500, 64))
        p = GenericPattern(X, rng.normal(size=64))
        res = CusparsePlan().evaluate(p)
        np.testing.assert_allclose(res.output, X.T @ (X @ p.y), rtol=1e-10)

    def test_outer_pattern(self, medium_csr, rng):
        p = GenericPattern(medium_csr, rng.normal(size=medium_csr.m),
                           inner=False)
        res = CusparsePlan().evaluate(p)
        np.testing.assert_allclose(
            res.output, medium_csr.to_dense().T @ p.y, rtol=1e-9)


class TestExplicitTransposePlan:
    def test_first_call_charges_transpose(self, medium_csr, rng):
        p = GenericPattern(medium_csr, rng.normal(size=medium_csr.n))
        plan = ExplicitTransposePlan()
        res = plan.evaluate(p)
        assert res.counters.kernel_launches >= 5   # csrmv + csr2csc(3) + csrmv

    def test_amortized_cache_skips_transpose(self, medium_csr, rng):
        p = GenericPattern(medium_csr, rng.normal(size=medium_csr.n))
        plan = ExplicitTransposePlan(amortized=True)
        first = plan.evaluate(p)
        second = plan.evaluate(p)
        assert second.time_ms < first.time_ms or \
            second.counters.kernel_launches <= first.counters.kernel_launches
        # steady state: no csr2csc launches
        assert second.counters.kernel_launches == 2

    def test_sparse_only(self, rng):
        X = rng.normal(size=(10, 5))
        with pytest.raises(ValueError, match="sparse-only"):
            ExplicitTransposePlan().evaluate(
                GenericPattern(X, rng.normal(size=5)))


class TestCpuPlan:
    def test_gather_fraction_depends_on_llc(self):
        plan = BidmatCpuPlan()
        assert plan._gather_fraction(1000) < plan._gather_fraction(10**7)

    def test_cpu_dense_slower_than_gpu_fused(self, rng):
        X = rng.normal(size=(20_000, 128))
        p = GenericPattern(X, rng.normal(size=128))
        cpu = BidmatCpuPlan().evaluate(p)
        gpu = FusedPlan().evaluate(p)
        assert cpu.time_ms > 5.0 * gpu.time_ms

    def test_no_gpu_counters(self, medium_csr, rng):
        p = GenericPattern(medium_csr, rng.normal(size=medium_csr.n))
        res = BidmatCpuPlan().evaluate(p)
        assert res.counters.kernel_launches == 0
        assert res.launch is None


class TestChaining:
    def test_chain_sums_times_and_counters(self, medium_csr, rng):
        from repro.kernels import csrmv, csrmv_transpose
        y = rng.normal(size=medium_csr.n)
        a = csrmv(medium_csr, y)
        b = csrmv_transpose(medium_csr, a.output)
        c = chain(a, b, name="two-step")
        assert c.time_ms == pytest.approx(a.time_ms + b.time_ms)
        assert c.counters.kernel_launches == 2
        assert c.name == "two-step"
        np.testing.assert_array_equal(c.output, b.output)

    def test_chain_empty_raises(self):
        with pytest.raises(ValueError):
            chain()


class TestPlanOrdering:
    def test_paper_baseline_ordering_sparse(self, rng):
        """At the synthetic-sweep operating point the baselines order as
        cuSPARSE slowest, then BIDMat-GPU, then BIDMat-CPU (Fig. 3)."""
        X = random_csr(30_000, 512, 0.01, rng=8)
        p = GenericPattern(X, rng.normal(size=512))
        fused = FusedPlan().evaluate(p).time_ms
        cusp = CusparsePlan().evaluate(p).time_ms
        bgpu = BidmatGpuPlan().evaluate(p).time_ms
        bcpu = BidmatCpuPlan().evaluate(p).time_ms
        assert fused < bcpu < bgpu < cusp

    def test_paper_baseline_ordering_dense(self, rng):
        """Dense flips the CPU: BIDMat-CPU is the slowest method (Fig. 5)."""
        X = rng.normal(size=(20_000, 256))
        p = GenericPattern(X, rng.normal(size=256))
        fused = FusedPlan().evaluate(p).time_ms
        cublas = CusparsePlan().evaluate(p).time_ms
        bgpu = BidmatGpuPlan().evaluate(p).time_ms
        bcpu = BidmatCpuPlan().evaluate(p).time_ms
        assert fused < bgpu < cublas < bcpu
