"""CSR format: construction, invariants, conversions, row access."""

import numpy as np
import pytest

from repro.sparse import CooMatrix, CsrMatrix, csr_to_csc, random_csr


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        d = rng.normal(size=(13, 7))
        d[rng.random(size=d.shape) < 0.5] = 0.0
        X = CsrMatrix.from_dense(d)
        np.testing.assert_array_equal(X.to_dense(), d)

    def test_empty(self):
        X = CsrMatrix.empty((5, 9))
        assert X.nnz == 0
        assert X.to_dense().shape == (5, 9)
        assert X.mean_row_nnz == 0.0

    def test_zero_rows(self):
        X = CsrMatrix.empty((0, 4))
        assert X.m == 0 and X.mean_row_nnz == 0.0

    def test_repr_mentions_shape_and_nnz(self, small_csr):
        s = repr(small_csr)
        assert "200" in s and "40" in s and str(small_csr.nnz) in s


class TestInvariants:
    def test_row_off_wrong_length(self):
        with pytest.raises(ValueError, match="row_off"):
            CsrMatrix((2, 2), np.ones(1), np.zeros(1, dtype=np.int64),
                      np.array([0, 1]))

    def test_row_off_not_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CsrMatrix((2, 2), np.ones(2), np.zeros(2, dtype=np.int64),
                      np.array([0, 2, 2 - 1]))

    def test_row_off_first_nonzero(self):
        with pytest.raises(ValueError, match=r"row_off\[0\]"):
            CsrMatrix((1, 2), np.ones(1), np.zeros(1, dtype=np.int64),
                      np.array([1, 1]))

    def test_nnz_mismatch(self):
        with pytest.raises(ValueError, match="nnz"):
            CsrMatrix((1, 2), np.ones(2), np.zeros(2, dtype=np.int64),
                      np.array([0, 1]))

    def test_col_out_of_bounds(self):
        with pytest.raises(ValueError, match="column index"):
            CsrMatrix((1, 2), np.ones(1), np.array([5]), np.array([0, 1]))

    def test_values_colidx_shape_mismatch(self):
        with pytest.raises(ValueError, match="identical shapes"):
            CsrMatrix((1, 3), np.ones(2), np.zeros(1, dtype=np.int64),
                      np.array([0, 2]))


class TestProperties:
    def test_row_nnz_sums_to_nnz(self, small_csr):
        assert small_csr.row_nnz.sum() == small_csr.nnz

    def test_mean_row_nnz(self, small_csr):
        assert small_csr.mean_row_nnz == pytest.approx(
            small_csr.nnz / small_csr.m)

    def test_density(self, small_csr):
        assert 0.05 < small_csr.density < 0.35

    def test_column_counts(self):
        X = random_csr(200, 40, 0.15, rng=7, distinct=True)
        counts = X.column_counts()
        assert counts.shape == (X.n,)
        assert counts.sum() == X.nnz
        dense_counts = (X.to_dense() != 0).sum(axis=0)
        np.testing.assert_array_equal(counts, dense_counts)

    def test_nbytes_accounts_for_all_arrays(self, small_csr):
        expected = (small_csr.nnz * 8 + small_csr.nnz * 4
                    + (small_csr.m + 1) * 4)
        assert small_csr.nbytes() == expected

    def test_row_slice_views(self, small_csr):
        vals, cols = small_csr.row_slice(3)
        s, e = small_csr.row_off[3], small_csr.row_off[4]
        assert vals.shape == (e - s,)
        np.testing.assert_array_equal(cols, small_csr.col_idx[s:e])


class TestTranspose:
    def test_transpose_csr_matches_dense(self, small_csr):
        XT = small_csr.transpose_csr()
        np.testing.assert_allclose(XT.to_dense(), small_csr.to_dense().T)

    def test_double_transpose_identity(self, small_csr):
        XTT = small_csr.transpose_csr().transpose_csr()
        assert XTT == small_csr

    def test_csr_to_csc_matches(self, small_csr):
        csc = csr_to_csc(small_csr)
        np.testing.assert_allclose(csc.to_dense(), small_csr.to_dense())


class TestEquality:
    def test_equal_matrices(self, small_csr):
        other = CsrMatrix(small_csr.shape, small_csr.values.copy(),
                          small_csr.col_idx.copy(),
                          small_csr.row_off.copy())
        assert small_csr == other

    def test_unequal_values(self, small_csr):
        other = CsrMatrix(small_csr.shape, small_csr.values * 2,
                          small_csr.col_idx.copy(),
                          small_csr.row_off.copy())
        assert small_csr != other

    def test_not_implemented_for_other_types(self, small_csr):
        assert (small_csr == 42) is False or (small_csr == 42) is NotImplemented \
            or not (small_csr == 42)


class TestCoo:
    def test_coo_roundtrip(self, rng):
        d = rng.normal(size=(9, 6))
        d[rng.random(size=d.shape) < 0.6] = 0.0
        coo = CooMatrix.from_dense(d)
        np.testing.assert_array_equal(coo.to_csr().to_dense(), d)

    def test_duplicates_summed(self):
        coo = CooMatrix((2, 2), np.array([0, 0, 1]), np.array([1, 1, 0]),
                        np.array([2.0, 3.0, 4.0]))
        X = coo.to_csr()
        assert X.to_dense()[0, 1] == 5.0
        assert X.to_dense()[1, 0] == 4.0
        assert X.nnz == 2

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            CooMatrix((2, 2), np.array([2]), np.array([0]), np.array([1.0]))

    def test_csr_to_coo_roundtrip(self):
        # duplicate-free matrix: the roundtrip is exact (duplicates would
        # legitimately be summed by the conversion)
        X = random_csr(150, 30, 0.2, rng=9, distinct=True)
        assert X.to_coo().to_csr() == X
