"""SimtEngine sanitizer mode: shadow memory, epochs, and race witnesses."""

import numpy as np
import pytest

from repro.analyze.sanitizer import (alg1_launch, alg2_launch, dynamic_kinds,
                                     fixture_inputs, sanitized_launch)
from repro.gpu.simt import BARRIER, SanitizerReport, SimtEngine
from repro.kernels.simt_kernels import alg1_xt_spmv, alg2_fused_sparse


class TestShadowSemantics:
    def test_plain_writes_same_cell_same_epoch(self):
        buf = np.zeros(1)

        def k(ctx, buf):
            buf[0] = float(ctx.tid)
            yield BARRIER

        kinds = dynamic_kinds(k, 1, 2, (buf,))
        assert kinds == {"global-race"}

    def test_same_thread_rewrites_are_ordered(self):
        buf = np.zeros(1)

        def k(ctx, buf):
            buf[0] = 1.0
            buf[0] = 2.0
            yield BARRIER

        assert dynamic_kinds(k, 1, 1, (buf,)) == set()

    def test_barrier_epoch_orders_within_block(self):
        def k(ctx):
            if ctx.tid == 0:
                ctx.shared[0] = 1.0
            yield BARRIER
            if ctx.tid == 1:
                ctx.shared[0] = 2.0

        assert dynamic_kinds(k, 1, 2, (), shared_doubles=1) == set()

    def test_barriers_do_not_order_across_blocks(self):
        buf = np.zeros(1)

        def k(ctx, buf):
            if ctx.block_id == 0:
                buf[0] = 1.0
            yield BARRIER
            yield BARRIER
            if ctx.block_id == 1:
                buf[0] = 2.0

        assert dynamic_kinds(k, 2, 1, (buf,)) == {"global-race"}

    def test_atomics_commute(self):
        buf = np.zeros(1)

        def k(ctx, buf):
            ctx.atomic_add(buf, 0, 1.0)
            return
            yield

        kinds, report = sanitized_launch(k, 2, 4, (buf,))
        assert kinds == set()
        assert buf[0] == 8.0  # shadow wrapper must not perturb numerics

    def test_atomic_vs_plain_read_conflicts(self):
        buf = np.zeros(1)
        out = np.zeros(4)

        def k(ctx, buf, out):
            ctx.atomic_add(buf, 0, 1.0)
            out[ctx.global_tid] = buf[0]
            yield BARRIER

        assert dynamic_kinds(k, 1, 4, (buf, out)) == {"global-race"}

    def test_shared_race_reported_in_shared_space(self):
        def k(ctx):
            ctx.shared[0] = float(ctx.tid)
            yield BARRIER

        kinds, report = sanitized_launch(k, 1, 4, (), shared_doubles=1)
        assert kinds == {"shared-race"}
        ev = report.events[0]
        assert ev.space == "shared"
        assert "shared" in ev.describe()


class TestReport:
    def test_witnesses_capped_per_class(self):
        buf = np.zeros(8)

        def k(ctx, buf):
            for i in range(8):
                buf[i] = float(ctx.tid)
            yield BARRIER

        kinds, report = sanitized_launch(k, 1, 16, (buf,))
        assert kinds == {"global-race"}
        assert 0 < len(report.events) <= SanitizerReport.WITNESSES_PER_CLASS

    def test_report_resets_between_launches(self):
        buf = np.zeros(1)

        def racy(ctx, buf):
            buf[0] = float(ctx.tid)
            yield BARRIER

        def clean(ctx, buf):
            ctx.atomic_add(buf, 0, 1.0)
            return
            yield

        engine = SimtEngine(sanitize=True)
        engine.launch(racy, 1, 2, (buf,))
        assert engine.report.events
        engine.launch(clean, 1, 2, (buf,))
        assert not engine.report.events

    def test_sanitizer_off_by_default(self):
        buf = np.zeros(1)

        def racy(ctx, buf):
            buf[0] = float(ctx.tid)
            yield BARRIER

        engine = SimtEngine()
        engine.launch(racy, 1, 2, (buf,))
        assert not engine.report.events


class TestShippedKernelsClean:
    def test_alg1_clean_and_correct(self):
        fx = fixture_inputs()
        assert alg1_launch(alg1_xt_spmv) == set()
        # and the sanitized run computes the right thing
        X, m, n = fx["X"], fx["m"], fx["n"]
        w = np.zeros(n)
        engine = SimtEngine(sanitize=True)
        grid, block, VS = 2, 8, 4
        C = max(1, -(-m // (grid * (block // VS))))
        engine.launch(alg1_xt_spmv, grid, block,
                      (X.values, X.col_idx, X.row_off, fx["p"], w,
                       m, n, VS, C), shared_doubles=n)
        np.testing.assert_allclose(w, X.to_dense().T @ fx["p"])

    def test_alg2_clean(self):
        assert alg2_launch(alg2_fused_sparse) == set()

    @pytest.mark.parametrize("vs", [2, 4, 8])
    def test_alg1_clean_across_vector_sizes(self, vs):
        assert alg1_launch(alg1_xt_spmv, VS=vs) == set()
