"""BLAS-1 kernel wrappers: numerics and launch accounting."""

import numpy as np
import pytest

from repro.kernels import axpy, dot, ewmul, nrm2, scal, sumsq


class TestNumerics:
    def test_axpy(self, rng):
        x, y = rng.normal(size=100), rng.normal(size=100)
        res = axpy(2.5, x, y)
        np.testing.assert_allclose(res.output, 2.5 * x + y)

    def test_scal(self, rng):
        x = rng.normal(size=50)
        np.testing.assert_allclose(scal(-3.0, x).output, -3.0 * x)

    def test_ewmul(self, rng):
        x, y = rng.normal(size=64), rng.normal(size=64)
        np.testing.assert_allclose(ewmul(x, y).output, x * y)

    def test_dot(self, rng):
        x, y = rng.normal(size=1000), rng.normal(size=1000)
        assert dot(x, y).output == pytest.approx(float(x @ y))

    def test_nrm2(self, rng):
        x = rng.normal(size=333)
        assert nrm2(x).output == pytest.approx(float(np.linalg.norm(x)))

    def test_sumsq(self, rng):
        x = rng.normal(size=333)
        assert sumsq(x).output == pytest.approx(float(x @ x))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            axpy(1.0, np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            dot(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            ewmul(np.ones(3), np.ones(4))


class TestAccounting:
    def test_each_op_is_one_launch(self, rng):
        x, y = rng.normal(size=4096), rng.normal(size=4096)
        for res in (axpy(1.0, x, y), scal(2.0, x), ewmul(x, y),
                    dot(x, y), nrm2(x), sumsq(x)):
            assert res.counters.kernel_launches == 1

    def test_axpy_traffic(self, rng):
        n = 16384
        x, y = rng.normal(size=n), rng.normal(size=n)
        res = axpy(1.0, x, y)
        # 2n doubles read + n written
        assert res.counters.global_load_transactions == pytest.approx(
            2 * n * 8 / 128)
        assert res.counters.global_store_transactions == pytest.approx(
            n * 8 / 128)

    def test_time_scales_with_size(self, rng):
        small = axpy(1.0, rng.normal(size=1000), rng.normal(size=1000))
        big = axpy(1.0, rng.normal(size=1_000_000),
                   rng.normal(size=1_000_000))
        assert big.time_ms > 10 * small.time_ms

    def test_launch_overhead_floors_small_ops(self, rng):
        tiny = dot(rng.normal(size=8), rng.normal(size=8))
        # dominated by the 5 us launch overhead, not traffic
        assert tiny.time_ms >= 0.005
