"""The badthreads corpus contract: every seeded host-concurrency mutant
is caught statically, reproduced dynamically by the lock witness, and the
two verdicts agree — mirroring ``tests/test_badkernels.py``.

Fixture protocol (see ``tests/badthreads/README.md``): ``EXPECTED_KIND``,
``build()``, ``drive(obj)``, optional ``WATCH_ATTRS``/``WITNESS``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.analyze.host import analyze_host_file
from repro.analyze.host.hostmodel import HOST_KINDS
from repro.analyze.host.witness import (LockWitness, instrument_object,
                                        watch_attrs)
from repro.cli import main

CORPUS_DIR = Path(__file__).parent / "badthreads"
CORPUS = sorted(CORPUS_DIR.glob("*.py"))

params = pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)


def load_fixture(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"badthreads_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def run_witnessed(mod):
    """Drive the fixture scenario under full instrumentation."""
    witness = LockWitness(**getattr(mod, "WITNESS", {}))
    obj = mod.build()
    instrument_object(witness, obj)
    if getattr(mod, "WATCH_ATTRS", None):
        watch_attrs(witness, obj, mod.WATCH_ATTRS)
    mod.drive(obj)
    return witness


def test_corpus_is_present():
    assert len(CORPUS) >= 6
    kinds = {load_fixture(p).EXPECTED_KIND for p in CORPUS}
    assert kinds <= set(HOST_KINDS)
    # the corpus exercises every rule in the catalog
    assert kinds == set(HOST_KINDS)


@params
def test_static_flags_expected_kind(path):
    mod = load_fixture(path)
    active, suppressed = analyze_host_file(str(path))
    assert not suppressed, "mutants must not carry suppressions"
    assert {f.kind for f in active} == {mod.EXPECTED_KIND}
    for f in active:
        assert f.file == str(path)
        assert f.line > 0 and f.kernel and f.message


@params
def test_dynamic_reproduces_expected_kind(path):
    mod = load_fixture(path)
    witness = run_witnessed(mod)
    assert mod.EXPECTED_KIND in witness.dynamic_kinds()


@params
def test_static_and_dynamic_agree(path):
    mod = load_fixture(path)
    active, _ = analyze_host_file(str(path))
    witness = run_witnessed(mod)
    assert ({f.kind for f in active} == witness.dynamic_kinds()
            == {mod.EXPECTED_KIND})


def test_cli_flags_whole_corpus(capsys):
    rc = main(["check", "--scope", "host"]
              + [str(p) for p in CORPUS])
    assert rc == 1
    out = capsys.readouterr().out
    # one line per finding plus the summary
    assert f"{len(CORPUS)} file(s)" in out


def test_cli_json_lists_every_expected_kind(capsys):
    rc = main(["check", "--scope", "host", "--json"]
              + [str(p) for p in CORPUS])
    assert rc == 1
    findings = json.loads(capsys.readouterr().out)
    flagged = {(Path(f["file"]).name, f["kind"]) for f in findings}
    expected = {(p.name, load_fixture(p).EXPECTED_KIND) for p in CORPUS}
    assert expected <= flagged
    assert all(f["suppressed"] is False for f in findings)
