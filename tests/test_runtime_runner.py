"""MLRuntime operations across backends and the SystemML runner details."""

import numpy as np
import pytest

from repro.data import higgs_like, regression_targets
from repro.ml.runtime import MLRuntime
from repro.sparse import random_csr
from repro.systemml.runner import SystemMLReport, SystemMLSession


class TestRuntimeOps:
    @pytest.fixture(params=["cpu", "gpu-baseline", "gpu-fused"])
    def rt(self, request):
        return MLRuntime(request.param)

    def test_pattern_numerics(self, rt, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        v = rng.normal(size=medium_csr.m)
        z = rng.normal(size=medium_csr.n)
        out = rt.pattern(medium_csr, y, v=v, z=z, alpha=1.5, beta=0.2)
        d = medium_csr.to_dense()
        np.testing.assert_allclose(out, 1.5 * d.T @ ((d @ y) * v) + 0.2 * z,
                                   rtol=1e-9)
        assert rt.ledger.by_category["pattern"] > 0

    def test_xt_mv(self, rt, medium_csr, rng):
        p = rng.normal(size=medium_csr.m)
        out = rt.xt_mv(medium_csr, p, alpha=-2.0)
        np.testing.assert_allclose(out, -2.0 * medium_csr.to_dense().T @ p,
                                   rtol=1e-9)

    def test_mv_sparse_and_dense(self, rt, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        np.testing.assert_allclose(rt.mv(medium_csr, y),
                                   medium_csr.to_dense() @ y, rtol=1e-10)
        Xd = rng.normal(size=(50, 8))
        np.testing.assert_allclose(rt.mv(Xd, np.ones(8)), Xd @ np.ones(8))
        assert rt.ledger.by_category["mv"] > 0

    def test_blas1_ops(self, rt, rng):
        x, y = rng.normal(size=64), rng.normal(size=64)
        np.testing.assert_allclose(rt.axpy(2.0, x, y), 2.0 * x + y)
        np.testing.assert_allclose(rt.scal(-1.0, x), -x)
        np.testing.assert_allclose(rt.ewmul(x, y), x * y)
        assert rt.dot(x, y) == pytest.approx(float(x @ y))
        assert rt.sumsq(x) == pytest.approx(float(x @ x))
        assert rt.nrm2(x) == pytest.approx(float(np.linalg.norm(x)))
        assert rt.ledger.op_counts["blas1"] == 6

    def test_upload_download_charging(self, medium_csr, rng):
        gpu = MLRuntime("gpu-fused")
        gpu.upload(medium_csr)
        gpu.download(rng.normal(size=10))
        assert gpu.ledger.by_category["transfer"] > 0
        cpu = MLRuntime("cpu")
        cpu.upload(medium_csr)
        assert cpu.ledger.by_category.get("transfer", 0.0) == 0.0


class TestSystemMLReport:
    def test_total_is_sum_of_parts(self):
        rep = SystemMLReport(mode="x", iterations=3, kernel_ms=1.0,
                             blas1_ms=2.0, transfer_ms=4.0)
        assert rep.total_ms == 7.0

    def test_gpu_baseline_session_slower_than_fused(self):
        X = higgs_like(scale=0.003, rng=1)
        y, _ = regression_targets(X, rng=2)
        fused = SystemMLSession("gpu-fused").run_linreg_cg(
            X, y, max_iterations=10)
        base = SystemMLSession("gpu-baseline").run_linreg_cg(
            X, y, max_iterations=10)
        np.testing.assert_allclose(fused.w, base.w, rtol=1e-10)
        assert fused.kernel_ms < base.kernel_ms

    def test_transfer_dominates_gpu_session(self):
        """Table 6's diagnosis: most GPU-session time is data movement."""
        X = higgs_like(scale=0.003, rng=3)
        y, _ = regression_targets(X, rng=4)
        rep = SystemMLSession("gpu-fused").run_linreg_cg(
            X, y, max_iterations=20)
        assert rep.transfer_ms > rep.kernel_ms

    def test_iterations_capped(self):
        X = random_csr(300, 20, 0.3, rng=5)
        y, _ = regression_targets(X, rng=6)
        rep = SystemMLSession("cpu").run_linreg_cg(X, y, max_iterations=4,
                                                   tolerance=0.0)
        assert rep.iterations == 4
