"""Cell-wise codegen lint: Listing-2 register rules on optimizer output.

Mirrors ``test_analyze_codegen.py`` for the new ``cellwise_*`` family: the
clean generator output must lint clean, every seeded mutation must be
flagged with the right kind, the committed ``tests/badkernels/codegen/``
corpus must keep tripping its documented rules, and every kernel the
optimizer can emit for the shipped scripts must pass ``repro check``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analyze.check import analyze_file, check_fusion_sources
from repro.analyze.codegen_lint import (
    check_cellwise_source,
    check_cellwise_specialization,
)
from repro.kernels.cellwise import CellwiseProgram, cellwise_params
from repro.kernels.codegen import generate_cellwise_source

CORPUS = Path(__file__).parent / "badkernels" / "codegen"

#: fixture file -> the kind its seeded bug must trip (extra consequential
#: kinds are allowed; e.g. an accumulating store also breaks coverage)
FIXTURE_KINDS = {
    "cellwise_nonconstant_bound.py": "codegen-nonconstant-index",
    "cellwise_overlapping_slices.py": "codegen-coverage",
    "cellwise_augassign_out.py": "codegen-accumulation",
    "cellwise_cross_slice_read.py": "codegen-accumulation",
    "cellwise_double_store.py": "codegen-coverage",
    "sparse_loop_spmv.py": "codegen-flatness",
    "sparse_dynamic_alloc.py": "codegen-nonconstant-index",
    "sparse_scratch_hazard.py": "codegen-accumulation",
    "sparse_flag_mismatch.py": "codegen-accumulation",
    "sparse_foreign_call.py": "codegen-flatness",
}

PROGRAM = CellwiseProgram(
    expr=("add", ("ewmul", ("in", 0), ("in", 1)), ("smul", 0.5, ("in", 2))),
    n_inputs=3)


def clean_src(n=8, vs=4, tl=2):
    return generate_cellwise_source(n, vs, tl, PROGRAM)


def mutate(src, pattern, replacement, count=1):
    out, n = re.subn(pattern, replacement, src, count=count)
    assert n == count, f"pattern {pattern!r} not found"
    return out


class TestCleanOutput:
    @pytest.mark.parametrize("n", [4, 8, 12, 16, 32, 100])
    def test_generator_output_is_clean(self, n):
        vs, tl = cellwise_params(n)
        assert check_cellwise_specialization(n, vs, tl, PROGRAM) == []

    def test_single_input_program(self):
        p = CellwiseProgram(expr=("smul", -1.0, ("in", 0)), n_inputs=1)
        assert check_cellwise_specialization(8, 4, 2, p) == []

    def test_findings_carry_filename(self):
        src = mutate(clean_src(), r"out\[0:4\] =", "out[0:4] +=")
        findings = check_cellwise_source(src, filename="gen.py")
        assert findings and all(f.file == "gen.py" for f in findings)
        assert all(f.kernel == "cellwise_8_4_2" for f in findings)


class TestMutations:
    def test_nonconstant_bound(self):
        src = mutate(clean_src(), r"l_a0s1 = a0\[0:4\]",
                     "vs = 4\n    l_a0s1 = a0[0:vs]")
        kinds = {f.kind for f in check_cellwise_source(src)}
        assert "codegen-nonconstant-index" in kinds

    def test_overlapping_load_slices(self):
        src = mutate(clean_src(), r"l_a1s2 = a1\[4:8\]", "l_a1s2 = a1[2:6]")
        kinds = {f.kind for f in check_cellwise_source(src)}
        assert "codegen-coverage" in kinds

    def test_missing_load(self):
        src = mutate(clean_src(), r"    l_a2s2 = a2\[4:8\]\n", "")
        kinds = {f.kind for f in check_cellwise_source(src)}
        assert "codegen-coverage" in kinds

    def test_augmented_store(self):
        src = mutate(clean_src(), r"out\[4:8\] =", "out[4:8] +=")
        kinds = {f.kind for f in check_cellwise_source(src)}
        assert "codegen-accumulation" in kinds

    def test_double_store(self):
        src = mutate(clean_src(), r"out\[4:8\]", "out[0:4]")
        kinds = {f.kind for f in check_cellwise_source(src)}
        assert "codegen-coverage" in kinds

    def test_cross_slice_register_read(self):
        src = mutate(clean_src(), r"\(l_a0s2 \* l_a1s2\)",
                     "(l_a0s2 * l_a1s1)")
        kinds = {f.kind for f in check_cellwise_source(src)}
        assert "codegen-accumulation" in kinds

    def test_register_reassignment(self):
        src = mutate(clean_src(), r"l_a2s2 = a2\[4:8\]", "l_a2s1 = a2[4:8]")
        kinds = {f.kind for f in check_cellwise_source(src)}
        assert "codegen-accumulation" in kinds

    def test_shape_mismatch_rejected(self):
        src = clean_src().replace("cellwise_8_4_2", "cellwise_8_4_3")
        assert check_cellwise_source(src), "VS*TL != n must be flagged"


class TestFixtureCorpus:
    def test_corpus_is_complete(self):
        found = {p.name for p in CORPUS.glob("*.py")}
        assert found == set(FIXTURE_KINDS)

    @pytest.mark.parametrize("name", sorted(FIXTURE_KINDS))
    def test_fixture_trips_documented_kind(self, name):
        findings = analyze_file(CORPUS / name)
        kinds = {f.kind for f in findings}
        assert FIXTURE_KINDS[name] in kinds, (name, kinds)

    @pytest.mark.parametrize("name", sorted(FIXTURE_KINDS))
    def test_fixture_findings_are_located(self, name):
        family = "sparse_" if name.startswith("sparse_") else "cellwise_"
        for f in analyze_file(CORPUS / name):
            assert f.line > 0
            assert f.kernel.startswith(family)


class TestOptimizerEmittedSources:
    def test_all_shipped_fusion_sources_lint_clean(self):
        """`repro check` over every kernel the optimizer would emit for the
        shipped scripts finds nothing."""
        assert check_fusion_sources() == []
