"""``repro trace``: Chrome JSON output, phase summary, attribution gate."""

import json

import pytest

from repro import cli
from repro.trace import validate_chrome


def run_cli(capsys, *argv):
    code = cli.main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


def test_engine_loop_mode_writes_valid_chrome_trace(tmp_path, capsys):
    chrome = tmp_path / "trace.json"
    code, out, err = run_cli(
        capsys, "trace", "--matrix", "3000x64:0.02", "--iterations", "20",
        "--chrome", str(chrome))
    assert code == 0, err
    doc = json.loads(chrome.read_text())
    assert validate_chrome(doc) > 0
    names = {ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
    assert {"evaluate", "fingerprint"} <= names
    # kernel span: one fused-pattern span under AOT dispatch, per-phase
    # spmv/xt-accumulate spans under interpreted dispatch
    assert "fused-pattern" in names or "spmv" in names
    # top-down phase table plus the attribution block
    assert "phase" in out and "self ms" in out
    assert "engine.evaluate" in out
    assert "phase attribution (per-request end-to-end):" in out
    assert "attributed:" in out


def test_engine_loop_attribution_within_10_percent(capsys):
    code, out, err = run_cli(capsys, "trace", "--matrix", "3000x64:0.02",
                             "--iterations", "25")
    assert code == 0, err
    line = next(ln for ln in out.splitlines() if "attributed:" in ln)
    coverage = float(line.rsplit("(", 1)[1].rstrip("%)")) / 100.0
    assert abs(coverage - 1.0) <= 0.10


def test_replay_mode_attributes_serve_phases(tmp_path, capsys):
    workload = tmp_path / "wl.json"
    chrome = tmp_path / "serve-trace.json"
    code, _, err = run_cli(
        capsys, "loadgen", str(workload), "--requests", "40",
        "--matrices", "3", "--rows", "800", "--cols", "48",
        "--mode", "closed")
    assert code == 0, err
    code, out, err = run_cli(
        capsys, "trace", "--replay", str(workload), "--chrome", str(chrome))
    assert code == 0, err
    doc = json.loads(chrome.read_text())
    assert validate_chrome(doc) > 0
    names = {ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
    assert {"queue-wait", "batch", "completion", "request"} <= names
    assert "serve.queue-wait" in out
    # queue-wait + evaluate + completion explain the measured latency sum
    line = next(ln for ln in out.splitlines() if "attributed:" in ln)
    coverage = float(line.rsplit("(", 1)[1].rstrip("%)")) / 100.0
    assert abs(coverage - 1.0) <= 0.10


def test_impossible_tolerance_fails_with_diagnostic(capsys):
    code, _, err = run_cli(capsys, "trace", "--matrix", "500x32:0.05",
                           "--iterations", "5",
                           "--coverage-tolerance", "0.0")
    assert code == 1
    assert "attribution coverage" in err


def test_trace_requires_a_mode(capsys):
    with pytest.raises(SystemExit):
        cli.main(["trace"])


def test_missing_replay_file_is_a_one_line_error(capsys):
    with pytest.raises(SystemExit, match="workload file not found"):
        cli.main(["trace", "--replay", "/nonexistent/wl.json"])
