"""PatternEngine under concurrent load: lock audit as executable invariants.

Satellite of the serving PR: the server's worker pool hits one shared
engine from many threads, so the cache layer must hold its invariants under
contention — tight LRU bounds, concurrent ``snapshot()`` readers, and
``invalidate()`` racing live evaluations.  The invariants asserted here:

* no exception escapes any thread;
* every output is bit-identical to uncached evaluation (caching never
  changes numerics, no matter the interleaving);
* ``plan_entries`` never exceeds ``max_plans`` and ``artifact_bytes``
  stays within ``max_artifact_bytes`` at every observed snapshot;
* snapshots are internally consistent (bytes_cached >= artifact_bytes,
  warm + cold == calls) because they are assembled under the cache lock.
"""

import threading

import numpy as np
import pytest

from repro.core.api import evaluate as evaluate_uncached
from repro.core.engine import PatternEngine, PatternRequest
from repro.sparse import random_csr

N_THREADS = 8
CALLS_PER_THREAD = 12


@pytest.fixture()
def matrices():
    return [random_csr(100 + 20 * i, 16, 0.2, rng=i) for i in range(6)]


def _hammer(engine, matrices, thread_seed, errors, batched=False):
    """One worker: mixed evaluate / evaluate_many over a matrix pool."""
    rng = np.random.default_rng(thread_seed)
    try:
        for call in range(CALLS_PER_THREAD):
            X = matrices[int(rng.integers(0, len(matrices)))]
            y = rng.normal(size=X.n)
            strategy = ("fused", "cusparse",
                        "cusparse-explicit")[call % 3]
            if batched and call % 4 == 3:
                reqs = [PatternRequest(X, rng.normal(size=X.n),
                                       strategy=strategy)
                        for _ in range(3)]
                for br in engine.evaluate_many(reqs, max_workers=3):
                    assert br.result.output is not None
            else:
                res = engine.evaluate(X, y, strategy=strategy)
                ref = evaluate_uncached(X, y, strategy=strategy)
                if not np.array_equal(res.output, ref.output):
                    raise AssertionError(
                        f"divergent output (thread seed {thread_seed}, "
                        f"call {call}, {strategy})")
    except BaseException as exc:              # pragma: no cover - on failure
        errors.append(exc)


def _run_threads(targets):
    threads = [threading.Thread(target=fn, args=args)
               for fn, args in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    assert not any(t.is_alive() for t in threads), "worker thread hung"


class TestConcurrentEvaluate:
    def test_stress_with_tight_lru_bounds(self, matrices):
        """>= 8 threads against max_plans=4 and a few-KB artifact budget."""
        engine = PatternEngine(max_plans=4, max_artifact_bytes=64 * 1024)
        errors: list = []
        snapshots: list = []
        stop = threading.Event()

        def snapshotter():
            # concurrent reader: snapshot() must never see a torn cache
            try:
                while not stop.is_set():
                    snapshots.append(engine.snapshot())
            except BaseException as exc:      # pragma: no cover - on failure
                errors.append(exc)

        workers = [(_hammer, (engine, matrices, 100 + i, errors, i % 2 == 0))
                   for i in range(N_THREADS)]
        reader = threading.Thread(target=snapshotter)
        reader.start()
        _run_threads(workers)
        stop.set()
        reader.join(timeout=30.0)

        assert errors == []
        final = engine.snapshot()
        for snap in snapshots + [final]:
            assert snap.plan_entries <= 4
            assert snap.artifact_bytes <= 64 * 1024
            assert snap.bytes_cached >= snap.artifact_bytes
            assert snap.warm_calls + snap.cold_calls == snap.calls
        # the tight bounds were actually exercised, not vacuous
        assert final.evictions > 0
        assert final.calls >= N_THREADS * (CALLS_PER_THREAD - 3)

    def test_invalidate_races_evaluate(self, matrices):
        """invalidate() storms while 8 threads evaluate: no stale results."""
        engine = PatternEngine(max_plans=8, max_artifact_bytes=1 << 20)
        errors: list = []
        stop = threading.Event()

        def invalidator():
            try:
                while not stop.is_set():
                    for X in matrices:
                        engine.invalidate(X)
            except BaseException as exc:      # pragma: no cover - on failure
                errors.append(exc)

        inval = threading.Thread(target=invalidator)
        inval.start()
        _run_threads([(_hammer, (engine, matrices, 200 + i, errors))
                      for i in range(N_THREADS)])
        stop.set()
        inval.join(timeout=30.0)

        assert errors == []
        final = engine.snapshot()
        assert final.invalidations > 0
        assert final.plan_entries <= 8

    def test_evaluate_many_from_many_threads(self, matrices):
        """Concurrent batch submitters keep the batch counters coherent."""
        engine = PatternEngine(max_plans=4, max_artifact_bytes=64 * 1024)
        errors: list = []
        batch_sizes = (1, 2, 5, 3)

        def submitter(seed, size):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(4):
                    X = matrices[int(rng.integers(0, len(matrices)))]
                    reqs = [PatternRequest(X, rng.normal(size=X.n),
                                           strategy="fused")
                            for _ in range(size)]
                    out = engine.evaluate_many(reqs, max_workers=2)
                    assert len(out) == size
                    assert [b.index for b in out] == list(range(size))
            except BaseException as exc:      # pragma: no cover - on failure
                errors.append(exc)

        _run_threads([(submitter, (300 + i, batch_sizes[i % 4]))
                      for i in range(N_THREADS)])
        assert errors == []
        st = engine.snapshot()
        expected_requests = sum(4 * batch_sizes[i % 4]
                                for i in range(N_THREADS))
        assert st.batches == 4 * N_THREADS
        assert st.batch_requests == expected_requests
        assert st.batch_max_requests == max(batch_sizes)
        assert st.batch_wall_ms > 0.0
