"""Adversarial DAGs for the fusion-plan optimizer.

Shapes the optimizer must *not* mis-fuse: diamonds whose interior is
consumed outside the region (must materialize), aliased operands, scalar
broadcast chains, and DAGs over the exhaustive-search budget (greedy
fallback must still be bit-identical).  Plus the rewriter's old
single-consumer bug as a pinned regression and the engine-level plan cache.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import PatternEngine
from repro.sparse.generate import random_csr
from repro.systemml.dag import (
    Add,
    EwMul,
    FusedPattern,
    Input,
    MatVec,
    Smul,
    Transpose,
)
from repro.systemml.parser import parse_expression
from repro.systemml.rewriter import rewrite
from repro.systemml.fusion import (
    clone_dag,
    enumerate_candidates,
    evaluate_dag,
    fingerprint_dag,
    index_dag,
    infer_shapes,
    optimize,
)


def _square_env(n=16, density=0.3, rng=2):
    X = random_csr(n, n, density, rng=rng)
    r = np.random.default_rng(rng + 1)
    return X, r


def _cands(root, env):
    index = index_dag(root)
    shapes = infer_shapes(index, env)
    return enumerate_candidates(index, shapes)


class TestDiamonds:
    def test_shared_interior_is_materialized_as_region_input(self):
        """A node consumed outside the region must become a region input
        (materialized), never a region member."""
        X, r = _square_env()
        a, b = Input("a"), Input("b")
        e = EwMul(a, b)                     # consumed by Smul AND MatVec
        root = Add(Smul(2.0, e), MatVec(Input("X"), e))
        env = {"X": X, "a": r.standard_normal(16), "b": r.standard_normal(16)}
        cands = _cands(root, env)
        assert cands, "expected at least one cell-wise candidate"
        for c in cands:
            if id(e) in c.member_ids:
                # e may only be a member if its every consumer is too
                assert any(id(m) == id(root) for m in c.members)
            else:
                assert any(op is e for op in c.operands), c.label
        baseline = np.asarray(root.eval(env))
        plan = optimize(root, env)
        got = np.asarray(evaluate_dag(plan.lowered(), env))
        assert np.array_equal(got, baseline)

    def test_fully_internal_diamond_may_fuse(self):
        """A diamond whose every path stays inside the region can fuse
        whole — and stays bit-identical."""
        a, b = Input("a"), Input("b")
        e = EwMul(a, b)
        root = Add(Smul(2.0, e), Smul(3.0, e))
        r = np.random.default_rng(5)
        env = {"a": r.standard_normal(32), "b": r.standard_normal(32)}
        baseline = np.asarray(root.eval(env))
        plan = optimize(root, env)
        got = np.asarray(evaluate_dag(plan.lowered(), env))
        assert np.array_equal(got, baseline)

    def test_eq1_interior_shared_blocks_inner_fusion(self):
        """If the inner matvec of Eq. 1 feeds a second consumer, the
        candidate may not swallow it silently."""
        X, r = _square_env(12, 0.4, rng=7)
        p, v = Input("p"), Input("v")
        mv = MatVec(Input("X"), p)
        core = MatVec(Transpose(Input("X")), EwMul(v, mv))
        root = Add(core, mv)                # mv escapes the region
        env = {"X": X, "p": r.standard_normal(12), "v": r.standard_normal(12)}
        baseline = np.asarray(root.eval(env))
        for c in _cands(root, env):
            if c.kind == "eq1":
                assert id(mv) not in c.member_ids, c.label
        plan = optimize(root, env)
        got = np.asarray(evaluate_dag(plan.lowered(), env))
        assert np.array_equal(got, baseline)


class TestAliasingAndScalars:
    def test_aliased_operand_add_a_a(self):
        a = Input("a")
        root = Add(EwMul(a, a), a)          # a used three times
        r = np.random.default_rng(6)
        env = {"a": r.standard_normal(40)}
        baseline = np.asarray(root.eval(env))
        for c in _cands(root, env):
            # aliased leaves appear once in the operand list
            assert len(c.operands) == len({id(o) for o in c.operands})
        plan = optimize(root, env)
        got = np.asarray(evaluate_dag(plan.lowered(), env))
        assert np.array_equal(got, baseline)

    def test_scalar_broadcast_chain(self):
        root = parse_expression("0.5 * (2.0 * a) + -1.0 * (b * a)")
        r = np.random.default_rng(7)
        env = {"a": r.standard_normal(24), "b": r.standard_normal(24)}
        baseline = np.asarray(root.eval(env))
        plan = optimize(root, env)
        assert plan.chosen, "scalar chain should produce a fusable region"
        got = np.asarray(evaluate_dag(plan.lowered(), env))
        assert np.array_equal(got, baseline)


class TestSearchFallback:
    def _wide_dag(self, k=8, n=16):
        """k independent cell-wise pairs summed — k eligible candidates."""
        r = np.random.default_rng(8)
        env = {}
        terms = []
        for i in range(k):
            a, b = Input(f"a{i}"), Input(f"b{i}")
            env[f"a{i}"] = r.standard_normal(n)
            env[f"b{i}"] = r.standard_normal(n)
            terms.append(Smul(0.5, EwMul(a, b)))
        root = terms[0]
        for t in terms[1:]:
            root = Add(root, t)
        return root, env

    def test_over_budget_falls_back_to_greedy(self):
        root, env = self._wide_dag()
        baseline = np.asarray(root.eval(env))
        plan = optimize(root, env, node_budget=4)
        assert plan.search == "greedy"
        got = np.asarray(evaluate_dag(plan.lowered(), env))
        assert np.array_equal(got, baseline)

    def test_exhaustive_and_greedy_agree_on_value(self):
        root, env = self._wide_dag(k=3)
        ex = optimize(root, env)
        gr = optimize(root, env, node_budget=1)
        assert ex.search == "exhaustive" and gr.search == "greedy"
        a = np.asarray(evaluate_dag(ex.lowered(), env))
        b = np.asarray(evaluate_dag(gr.lowered(), env))
        assert np.array_equal(a, b)
        # greedy can never beat exhaustive on modeled saving
        assert ex.saving_ms >= gr.saving_ms - 1e-12


class TestRewriterRegression:
    """Pinned regression for the old single-consumer assumption."""

    def test_shared_inner_matvec_is_not_fused(self):
        X, r = _square_env(10, 0.4, rng=9)
        p, v = Input("p"), Input("v")
        mv = MatVec(Input("X"), p)
        core = MatVec(Transpose(Input("X")), EwMul(v, mv))
        root = Add(core, mv)
        env = {"X": X, "p": r.standard_normal(10), "v": r.standard_normal(10)}
        baseline = np.asarray(root.eval(env))
        rewritten = rewrite(clone_dag(root))
        fused = [n for n in rewritten.walk() if isinstance(n, FusedPattern)]
        assert not fused, "rewriter must refuse to fuse a shared interior"
        assert np.array_equal(np.asarray(rewritten.eval(env)), baseline)

    def test_exclusive_interior_still_fuses(self):
        X, r = _square_env(10, 0.4, rng=10)
        root = parse_expression("t(X) %*% (v * (X %*% p)) + 0.001 * p")
        env = {"X": X, "p": r.standard_normal(10), "v": r.standard_normal(10)}
        baseline = np.asarray(root.eval(env))
        rewritten = rewrite(clone_dag(root))
        fused = [n for n in rewritten.walk() if isinstance(n, FusedPattern)]
        assert len(fused) == 1
        assert np.allclose(np.asarray(rewritten.eval(env)), baseline)


class TestPlanCache:
    EXPR = "t(X) %*% (X %*% p) + 0.001 * p"

    def _env(self, X, n, seed):
        r = np.random.default_rng(seed)
        return {"X": X, "p": r.standard_normal(n)}

    def test_plan_cached_by_dag_fingerprint(self):
        engine = PatternEngine()
        X = random_csr(80, 20, 0.1, rng=11)
        root = parse_expression(self.EXPR)
        env = self._env(X, 20, 1)
        plan1 = engine.fusion_plan(root, env, expression=self.EXPR)
        s1 = engine.snapshot()
        assert s1.fusion_plans_built == 1
        plan2 = engine.fusion_plan(root, env, expression=self.EXPR)
        s2 = engine.snapshot()
        assert plan2 is plan1
        assert s2.fusion_plans_built == 1
        assert s2.artifact_hits > s1.artifact_hits

    def test_vector_values_do_not_miss(self):
        """Iterative solvers change vector *values* every step; the plan
        key only sees vector lengths, so iteration 2 must hit."""
        engine = PatternEngine()
        X = random_csr(80, 20, 0.1, rng=11)
        root = parse_expression(self.EXPR)
        engine.fusion_plan(root, self._env(X, 20, 1), expression=self.EXPR)
        engine.fusion_plan(root, self._env(X, 20, 99), expression=self.EXPR)
        assert engine.snapshot().fusion_plans_built == 1

    def test_reparsed_expression_hits(self):
        """Fresh node objects with identical topology share a fingerprint."""
        X = random_csr(80, 20, 0.1, rng=11)
        env = self._env(X, 20, 1)
        fp1 = fingerprint_dag(parse_expression(self.EXPR), env)
        fp2 = fingerprint_dag(parse_expression(self.EXPR), env)
        assert fp1 == fp2

    def test_matrix_change_misses(self):
        engine = PatternEngine()
        root = parse_expression(self.EXPR)
        X1 = random_csr(80, 20, 0.1, rng=11)
        X2 = random_csr(80, 20, 0.1, rng=12)
        engine.fusion_plan(root, self._env(X1, 20, 1), expression=self.EXPR)
        engine.fusion_plan(root, self._env(X2, 20, 1), expression=self.EXPR)
        assert engine.snapshot().fusion_plans_built == 2

    def test_sharing_changes_fingerprint(self):
        """A tree and a DAG with the same infix rendering differ."""
        a = Input("a")
        shared = EwMul(a, a)
        dag = Add(shared, shared)           # one node, consumed twice
        tree = Add(EwMul(a, a), EwMul(a, a))
        env = {"a": np.ones(8)}
        assert fingerprint_dag(dag, env) != fingerprint_dag(tree, env)
