"""The hybrid SystemML session mode (cost-based per-statement placement)."""

import numpy as np
import pytest

from repro.data import higgs_like, kdd_like, regression_targets
from repro.gpu.device import GTX_TITAN
from repro.kernels.base import GpuContext
from repro.systemml import SystemMLSession
from repro.systemml.scheduler import HybridScheduler
from repro.systemml.memmanager import GpuMemoryManager


@pytest.fixture(scope="module")
def problem():
    X = kdd_like(scale=0.002, rng=0)
    y, _ = regression_targets(X, rng=1)
    return X, y


class TestHybridSession:
    def test_numerics_match_cpu(self, problem):
        X, y = problem
        hy = SystemMLSession("hybrid").run_linreg_cg(X, y,
                                                     max_iterations=15)
        cpu = SystemMLSession("cpu").run_linreg_cg(X, y, max_iterations=15)
        np.testing.assert_allclose(hy.w, cpu.w, rtol=1e-10)

    def test_amortized_scheduler_goes_gpu(self, problem):
        """With the reuse horizon, the iterative workload commits to the
        device despite the upfront staging cost."""
        X, y = problem
        sess = SystemMLSession("hybrid")
        sess.run_linreg_cg(X, y, max_iterations=15)
        assert sess.scheduler is not None
        assert sess.scheduler.gpu_fraction > 0.8

    def test_hybrid_not_worse_than_pure_modes(self, problem):
        X, y = problem
        hy = SystemMLSession("hybrid").run_linreg_cg(X, y,
                                                     max_iterations=15)
        cpu = SystemMLSession("cpu").run_linreg_cg(X, y, max_iterations=15)
        gpu = SystemMLSession("gpu-fused").run_linreg_cg(
            X, y, max_iterations=15)
        assert hy.total_ms <= 1.05 * min(cpu.total_ms, gpu.total_ms)

    def test_slow_device_stays_on_cpu(self, problem):
        X, y = problem
        slow = GpuContext(GTX_TITAN.with_(global_bandwidth_gbps=0.5,
                                          pcie_bandwidth_gbps=0.05))
        sess = SystemMLSession("hybrid", ctx=slow)
        sess.run_linreg_cg(X, y, max_iterations=10)
        assert sess.scheduler.gpu_fraction < 0.2

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SystemMLSession("quantum")


class TestReuseHorizon:
    def test_horizon_amortizes_upload(self):
        """Greedy (horizon 1) stays on CPU; horizon 100 commits to GPU."""
        for horizon, expected in ((1.0, "cpu"), (100.0, "gpu")):
            mm = GpuMemoryManager(GTX_TITAN, via_jni=True)
            mm.register("X", 5e8)          # ~40ms upload
            sched = HybridScheduler(mm, reuse_horizon=horizon)
            d = sched.decide("pattern", ["X"], gpu_kernel_ms=0.5,
                             cpu_ms=3.0)
            assert d.target == expected, horizon

    def test_resident_matrix_needs_no_amortization(self):
        mm = GpuMemoryManager(GTX_TITAN)
        mm.register("X", 5e8)
        sched = HybridScheduler(mm, reuse_horizon=1.0)
        mm.request("X")
        d = sched.decide("pattern", ["X"], gpu_kernel_ms=0.5, cpu_ms=3.0)
        assert d.target == "gpu"
        assert d.transfer_ms == 0.0
