"""AOT sparse-kernel codegen: bit-identity, cache semantics, fallback.

The PR's contract, satellite by satellite:

* every generated entry point (``spmv``, ``spmvt``, four fused call
  shapes) is **bit-identical** to its interpreted twin — over a
  200-pattern engine sweep, a hypothesis fuzz across random CSR
  structures and the VS x C specialization grid, and the empty-row /
  single-row / nnz==0 edges;
* code objects are cached per *structure*: value-only mutation never
  recompiles, structure mutation always does;
* a compile failure degrades to the interpreted kernel with one
  ``RuntimeWarning`` and a ``compile_fallbacks`` tick — never a
  user-facing exception, and never a second warning for the same matrix
  (negative cache);
* pinned matrices skip content hashing but stay sound: in-place
  mutation raises, ``unpin``/``invalidate`` restore writability;
* generated sources lint clean under ``check_sparse_source`` and the
  stats/trace surfaces report the compiled path.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import trace
from repro.analyze.codegen_lint import check_sparse_source
from repro.core.engine import PatternEngine
from repro.core.pattern import GenericPattern
from repro.kernels import codegen
from repro.kernels.codegen import (CompiledSparseKernels,
                                   clear_sparse_code_cache,
                                   sparse_code_cache_size,
                                   sparse_structure_tag)
from repro.serve.metrics import ServeMetrics
from repro.sparse import CsrMatrix, SpmvPlan, random_csr
from repro.trace.report import attribution, attribution_text

VS_GRID = (1, 32, 64, 128)
C_GRID = (1, 2, 4)


def _clone(X: CsrMatrix) -> CsrMatrix:
    return CsrMatrix(X.shape, X.values.copy(), X.col_idx.copy(),
                     X.row_off.copy())


def _interpreted_fused(plan, y, v=None, z=None, alpha=1.0, beta=0.0):
    """Interpreted twin of the generated fused family, stage for stage."""
    p = plan.spmv(y)
    if v is not None:
        p = p * v
    w = alpha * plan.spmv_t(p)
    if beta != 0.0:
        w = w + beta * z
    return w


def _assert_bundle_parity(X: CsrMatrix, vs: int = 32, c: int = 1,
                          seed: int = 0) -> CompiledSparseKernels:
    """All six entry points bit-identical to the interpreted plan ops."""
    rng = np.random.default_rng(seed)
    plan = SpmvPlan(X)
    bundle = CompiledSparseKernels(X, plan, vs=vs, c=c)
    y = rng.normal(size=X.n)
    p = rng.normal(size=X.m)
    v = rng.normal(size=X.m)
    z = rng.normal(size=X.n)
    assert np.array_equal(bundle.spmv(y), plan.spmv(y))
    assert np.array_equal(bundle.spmv_t(p), plan.spmv_t(p))
    for kv, kz in ((None, None), (v, None), (None, z), (v, z)):
        beta = 0.0 if kz is None else -1.5
        got = bundle.fused(y, v=kv, z=kz, alpha=2.5, beta=beta)
        want = _interpreted_fused(plan, y, v=kv, z=kz, alpha=2.5, beta=beta)
        assert np.array_equal(got, want)
    return bundle


# ------------------------------------------------------- direct bundle parity
class TestBundleParity:
    @pytest.mark.parametrize("vs", VS_GRID)
    @pytest.mark.parametrize("c", C_GRID)
    def test_specialization_grid(self, vs, c):
        X = random_csr(60, 18, 0.25, rng=7)
        _assert_bundle_parity(X, vs=vs, c=c, seed=vs * 10 + c)

    def test_single_row_matrix(self):
        _assert_bundle_parity(random_csr(1, 12, 0.5, rng=3))

    def test_single_column_matrix(self):
        _assert_bundle_parity(random_csr(40, 1, 0.5, rng=4))

    def test_all_rows_empty(self):
        X = random_csr(30, 10, 0.0, rng=5)
        assert X.nnz == 0
        _assert_bundle_parity(X)

    def test_mostly_empty_rows(self):
        # density low enough that most rows carry no entries: exercises
        # the NONEMPTY/STARTS compaction against reduceat's semantics.
        X = random_csr(200, 12, 0.01, rng=6)
        assert X.nnz < X.m
        _assert_bundle_parity(X)

    def test_fused_beta_requires_z(self):
        X = random_csr(10, 5, 0.4, rng=8)
        bundle = CompiledSparseKernels(X)
        with pytest.raises(ValueError, match="beta != 0 requires z"):
            bundle.fused(np.ones(X.n), beta=0.5)

    def test_dense_matrix_rejected(self):
        with pytest.raises(TypeError):
            CompiledSparseKernels(np.eye(4))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), m=st.integers(1, 120),
           n=st.integers(1, 40),
           density=st.sampled_from([0.0, 0.02, 0.1, 0.3, 0.8]),
           vs=st.sampled_from(VS_GRID), c=st.sampled_from(C_GRID))
    def test_fuzz_structures(self, seed, m, n, density, vs, c):
        X = random_csr(m, n, density, rng=seed)
        _assert_bundle_parity(X, vs=vs, c=c, seed=seed)


# ----------------------------------------------------- structure-keyed cache
class TestCodeCacheSemantics:
    def setup_method(self):
        clear_sparse_code_cache()

    def test_value_mutation_never_recompiles(self):
        X = random_csr(50, 15, 0.2, rng=11)
        b1 = CompiledSparseKernels(X)
        assert b1.fresh_compiles == 6
        size = sparse_code_cache_size()
        assert size == 6

        mutated = _clone(X)
        mutated.values[:] = np.random.default_rng(1).normal(size=X.nnz)
        b2 = CompiledSparseKernels(mutated)
        assert b2.tag == b1.tag
        assert b2.fresh_compiles == 0
        assert sparse_code_cache_size() == size
        # ... and the rebound constants still compute the right answer
        _assert_bundle_parity(mutated)

    def test_structure_mutation_recompiles(self):
        X = random_csr(50, 15, 0.2, rng=12)
        b1 = CompiledSparseKernels(X)
        size = sparse_code_cache_size()

        shuffled = _clone(X)
        shuffled.col_idx[0] = (shuffled.col_idx[0] + 1) % X.n
        b2 = CompiledSparseKernels(shuffled)
        assert b2.tag != b1.tag
        assert b2.fresh_compiles == 6
        assert sparse_code_cache_size() == 2 * size

    def test_same_structure_different_vs_recompiles(self):
        X = random_csr(30, 10, 0.3, rng=13)
        CompiledSparseKernels(X, vs=32, c=1)
        size = sparse_code_cache_size()
        b2 = CompiledSparseKernels(X, vs=64, c=1)
        assert b2.fresh_compiles == 6
        assert sparse_code_cache_size() == 2 * size


# ----------------------------------------------------------- engine dispatch
class TestEngineCompiledDispatch:
    def _pattern(self, X, rng, with_v=True, with_z=True):
        kw = {}
        if with_v:
            kw["v"] = rng.normal(size=X.m)
        if with_z:
            kw["z"] = rng.normal(size=X.n)
            kw["beta"] = 0.75
        return GenericPattern(X, rng.normal(size=X.n), alpha=1.25, **kw)

    def test_compiled_engine_matches_interpreted_engine(self):
        rng = np.random.default_rng(21)
        X = random_csr(120, 30, 0.15, rng=21)
        p = self._pattern(X, rng)
        compiled = PatternEngine(compile_kernels=True)
        interp = PatternEngine(compile_kernels=False)
        for _ in range(3):       # cold + warm-compiled iterations
            a = compiled.evaluate_pattern(p, "fused")
            b = interp.evaluate_pattern(p, "fused")
            assert np.array_equal(a.output, b.output)
            assert np.array_equal(a.output, p.reference())
        assert compiled.stats().compiled_kernels_built == 1
        assert interp.stats().compiled_kernels_built == 0

    def test_parity_sweep_200_patterns(self):
        """Engine bit-identity over >= 200 random sparse patterns."""
        compiled = PatternEngine(compile_kernels=True)
        interp = PatternEngine(compile_kernels=False)
        rng = np.random.default_rng(2015)
        for i in range(200):
            m = int(rng.integers(1, 150))
            n = int(rng.integers(1, 50))
            X = random_csr(m, n, float(rng.uniform(0.0, 0.5)),
                           rng=int(rng.integers(0, 2**31)))
            p = self._pattern(X, rng, with_v=bool(rng.random() < 0.5),
                              with_z=bool(rng.random() < 0.5))
            a = compiled.evaluate_pattern(p, "fused")
            b = interp.evaluate_pattern(p, "fused")
            assert np.array_equal(a.output, b.output), f"pattern {i}"
        assert compiled.stats().compile_fallbacks == 0

    def test_engine_value_mutation_rebuilds_bundle_not_code(self):
        clear_sparse_code_cache()
        engine = PatternEngine(compile_kernels=True)
        X = random_csr(60, 20, 0.2, rng=22)
        y = np.random.default_rng(22).normal(size=X.n)
        engine.evaluate(X, y, strategy="fused")
        assert engine.stats().compiled_kernels_built == 1
        code_cached = sparse_code_cache_size()

        X.values *= 2.0          # new content fingerprint, same structure
        res = engine.evaluate(X, y, strategy="fused")
        s = engine.stats()
        assert s.compiled_kernels_built == 2      # new bundle (new constants)
        assert sparse_code_cache_size() == code_cached   # zero fresh compiles
        assert np.array_equal(res.output,
                              GenericPattern(X, y).reference())

    def test_invalidate_drops_compiled_bundle(self):
        engine = PatternEngine(compile_kernels=True)
        X = random_csr(40, 12, 0.3, rng=23)
        y = np.ones(X.n)
        engine.evaluate(X, y, strategy="fused")
        kinds = engine.stats().artifact_kinds
        assert kinds.get("compiled:sparse") == 1
        engine.invalidate(X)
        assert "compiled:sparse" not in engine.stats().artifact_kinds


# ------------------------------------------------------- fallback regression
class TestCompileFallback:
    """Pinned regression: compile failure must never reach the caller."""

    def test_failure_degrades_to_interpreted(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("synthetic generator failure")

        monkeypatch.setattr(codegen, "CompiledSparseKernels", boom)
        engine = PatternEngine(compile_kernels=True)
        X = random_csr(80, 25, 0.2, rng=31)
        y = np.random.default_rng(31).normal(size=X.n)

        with pytest.warns(RuntimeWarning, match="falling back"):
            res = engine.evaluate(X, y, strategy="fused")
        assert np.array_equal(res.output, GenericPattern(X, y).reference())
        s = engine.stats()
        assert s.compile_fallbacks == 1
        assert s.compiled_kernels_built == 0

        # negative cache: the second call neither retries nor re-warns
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            res2 = engine.evaluate(X, y, strategy="fused")
        assert np.array_equal(res2.output, res.output)
        assert engine.stats().compile_fallbacks == 1

    def test_fallback_counter_in_report(self, monkeypatch):
        monkeypatch.setattr(codegen, "CompiledSparseKernels",
                            lambda *a, **k: (_ for _ in ()).throw(
                                ValueError("nope")))
        engine = PatternEngine(compile_kernels=True)
        X = random_csr(20, 8, 0.4, rng=32)
        with pytest.warns(RuntimeWarning):
            engine.evaluate(X, np.ones(X.n), strategy="fused")
        assert "1 compile fallbacks" in engine.stats().report()


# ------------------------------------------------------------- pin semantics
class TestPinnedFingerprint:
    def test_pin_skips_hashing_and_freezes(self):
        engine = PatternEngine(compile_kernels=True)
        X = random_csr(70, 22, 0.2, rng=41)
        y = np.ones(X.n)
        engine.pin(X)
        engine.evaluate(X, y, strategy="fused")
        engine.evaluate(X, y, strategy="fused")
        assert engine.stats().pinned_fingerprint_hits >= 2
        with pytest.raises(ValueError):       # frozen: mutation must raise
            X.values[0] = 99.0
        engine.unpin(X)
        X.values[0] = 99.0                    # writability restored

    def test_invalidate_unpins(self):
        engine = PatternEngine()
        X = random_csr(30, 10, 0.3, rng=42)
        engine.pin(X)
        engine.invalidate(X)
        X.values[0] = 1.0                     # must not raise

    def test_pin_dense_matrix(self):
        # ndarrays aren't weakref-able: pin falls back to a strong ref
        engine = PatternEngine()
        X = np.random.default_rng(43).normal(size=(20, 8))
        engine.pin(X)
        with pytest.raises(ValueError):
            X[0, 0] = 1.0
        engine.unpin(X)
        X[0, 0] = 1.0

    def test_compiled_for_pinned(self):
        engine = PatternEngine(compile_kernels=True)
        X = random_csr(50, 16, 0.25, rng=44)
        y = np.ones(X.n)
        assert engine.compiled_for_pinned(X) is None     # not pinned
        engine.pin(X)
        assert engine.compiled_for_pinned(X) is None     # pinned, no bundle
        engine.evaluate(X, y, strategy="fused")
        bundle = engine.compiled_for_pinned(X)
        assert isinstance(bundle, CompiledSparseKernels)
        engine.unpin(X)
        assert engine.compiled_for_pinned(X) is None     # unpinned again

    def test_compiled_for_pinned_never_builds(self):
        engine = PatternEngine(compile_kernels=True)
        X = random_csr(30, 10, 0.3, rng=45)
        engine.pin(X)
        engine.compiled_for_pinned(X)
        assert engine.stats().compiled_kernels_built == 0


# ----------------------------------------------------- stats + trace surface
class TestObservability:
    def test_artifact_kind_composition(self):
        engine = PatternEngine(compile_kernels=True)
        X = random_csr(40, 14, 0.3, rng=51)
        engine.evaluate(X, np.ones(X.n), strategy="fused")
        kinds = engine.stats().artifact_kinds
        assert kinds.get("compiled:sparse") == 1
        assert kinds.get("profile:fused-sparse") == 1
        report = engine.stats().report()
        assert "artifact LRU composition:" in report
        assert "compiled:sparse: 1 entries" in report
        assert "sparse AOT:" in report

    def test_prometheus_exports_compiled_counters(self):
        engine = PatternEngine(compile_kernels=True)
        X = random_csr(30, 10, 0.3, rng=52)
        engine.evaluate(X, np.ones(X.n), strategy="fused")
        text = ServeMetrics().to_prometheus(engine_stats=engine.stats())
        assert "repro_engine_compiled_kernels_built_total 1" in text
        assert "repro_engine_compile_fallbacks_total 0" in text
        assert ('repro_engine_artifact_entries{kind="compiled:sparse"} 1'
                in text)

    def _attribution_for(self, compile_kernels: bool) -> dict:
        tracer = trace.install()
        try:
            engine = PatternEngine(compile_kernels=compile_kernels)
            X = random_csr(200, 40, 0.2, rng=53)
            y = np.ones(X.n)
            for _ in range(4):
                engine.evaluate(X, y, strategy="fused")
        finally:
            trace.uninstall()
        measured = sum(s.duration_ms for s in tracer.spans
                       if s.name == "evaluate")
        return attribution(tracer.spans, measured)

    def test_attribution_splits_compiled_kernel_time(self):
        att = self._attribution_for(compile_kernels=True)
        assert att["kernel_compiled_ms"] > 0.0
        assert att["kernel_compiled_ms"] <= att["kernel_execute_ms"] + 1e-9
        text = attribution_text(att)
        assert "compiled:" in text
        assert "interpreted:" in text

    def test_attribution_interpreted_run_has_zero_compiled(self):
        att = self._attribution_for(compile_kernels=False)
        assert att["kernel_compiled_ms"] == 0.0
        assert att["kernel_interpreted_ms"] > 0.0


# ------------------------------------------------------------- lint coverage
class TestGeneratedSourcesLintClean:
    @pytest.mark.parametrize("density", [0.0, 0.02, 0.3])
    @pytest.mark.parametrize("vs,c", [(32, 1), (64, 4)])
    def test_bundle_sources_are_clean(self, density, vs, c):
        X = random_csr(48, 12, density, rng=61)
        bundle = CompiledSparseKernels(X, vs=vs, c=c)
        assert len(bundle.sources) == 6
        for name, src in bundle.sources.items():
            findings = check_sparse_source(src, filename=name)
            assert findings == [], f"{name}: {findings}"

    def test_tag_is_structure_only(self):
        X = random_csr(30, 10, 0.3, rng=62)
        mutated = _clone(X)
        mutated.values[:] += 1.0
        assert sparse_structure_tag(X) == sparse_structure_tag(mutated)
        shuffled = _clone(X)
        shuffled.col_idx[0] = (shuffled.col_idx[0] + 1) % X.n
        assert sparse_structure_tag(X) != sparse_structure_tag(shuffled)
