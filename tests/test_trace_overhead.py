"""Disabled tracing must stay under 5% of a warm evaluate_many loop.

The guard multiplies the measured per-site cost of the disabled
``trace.span`` fast path by the number of span sites one warm evaluation
actually crosses (counted with a real tracer), and compares against the
measured warm per-call time.  That keeps the bound meaningful without
depending on the difference of two noisy end-to-end timings.
"""

import time

import numpy as np

from repro import trace
from repro.core.engine import PatternEngine, PatternRequest
from repro.sparse import random_csr


def _warm_engine():
    X = random_csr(5000, 128, 0.02, rng=0)
    engine = PatternEngine()
    rng = np.random.default_rng(0)
    for _ in range(3):
        engine.evaluate(X, rng.normal(size=128), strategy="fused")
    return engine, X


def _requests(X, n):
    rng = np.random.default_rng(1)
    return [PatternRequest(X, rng.normal(size=X.shape[1]), strategy="fused")
            for _ in range(n)]


def test_disabled_span_sites_under_5_percent_of_warm_call():
    assert trace.active() is None
    engine, X = _warm_engine()

    # spans per warm call, counted on the real instrumentation
    with trace.capture() as tracer:
        engine.evaluate_many(_requests(X, 4))
    sites_per_call = len(tracer.snapshot()) / 4

    # measured warm per-call time of the *untraced* loop
    reqs = _requests(X, 16)
    t0 = time.perf_counter()
    engine.evaluate_many(reqs)
    per_call_s = (time.perf_counter() - t0) / len(reqs)

    # measured per-site cost of the disabled fast path
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with trace.span("overhead", "test", probe=1):
            pass
    per_site_s = (time.perf_counter() - t0) / n

    overhead = per_site_s * sites_per_call
    assert overhead < 0.05 * per_call_s, (
        f"disabled tracing costs {1e6 * overhead:.2f} us over "
        f"{sites_per_call:.0f} sites vs {1e6 * per_call_s:.1f} us/call")


def test_disabled_span_allocates_nothing():
    assert trace.active() is None
    assert trace.span("a", "b") is trace.span("c", "d") is trace.NOOP_SPAN
