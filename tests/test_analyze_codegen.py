"""Codegen linter: Listing 2 register rules on generated and mutated source."""

import re

import pytest

from repro.analyze import check_codegen_source, check_specialization
from repro.analyze.check import DEFAULT_GRID, parse_grid
from repro.kernels.codegen import generate_source


def mutate(src, pattern, replacement, count=1):
    out, n = re.subn(pattern, replacement, src, count=count)
    assert n == count, f"pattern {pattern!r} not found"
    return out


class TestCleanOutput:
    @pytest.mark.parametrize("vs,tl", DEFAULT_GRID)
    def test_default_grid_is_clean(self, vs, tl):
        assert check_specialization(vs * tl, vs, tl) == []

    def test_degenerate_single_register(self):
        assert check_specialization(5, 5, 1) == []

    def test_findings_carry_filename(self):
        src = mutate(generate_source(8, 4, 2), r"s \+= l_X2 @ l_y2", "pass")
        (finding,) = check_codegen_source(src, filename="gen.py")
        assert finding.file == "gen.py"
        assert finding.kernel == "mtmvm_8_4_2"


class TestNonconstantIndex:
    def test_variable_slice_bound(self):
        src = mutate(generate_source(8, 4, 2),
                     r"l_y1 = y\[0:4\]", "vs = 4\n    l_y1 = y[0:vs]")
        kinds = {f.kind for f in check_codegen_source(src)}
        assert "codegen-nonconstant-index" in kinds

    def test_computed_index(self):
        src = mutate(generate_source(8, 4, 2),
                     r"l_X2 = X\[:, 4:8\]", "l_X2 = X[:, 2 * 2:8]")
        kinds = {f.kind for f in check_codegen_source(src)}
        assert "codegen-nonconstant-index" in kinds

    def test_full_row_slice_is_allowed(self):
        # X[:, lo:hi] keeps its bare `:` row slice — not a violation
        assert check_specialization(8, 4, 2) == []


class TestCoverage:
    def test_overlapping_slices(self):
        src = mutate(generate_source(8, 4, 2), r"l_y2 = y\[4:8\]",
                     "l_y2 = y[2:6]")
        findings = check_codegen_source(src)
        assert {f.kind for f in findings} == {"codegen-coverage"}
        assert any("l_y2" in f.message for f in findings)

    def test_missing_register(self):
        src = mutate(generate_source(12, 4, 3), r"    l_X3 = X\[:, 8:12\]\n",
                     "")
        findings = check_codegen_source(src)
        assert any(f.kind == "codegen-coverage" and "l_X" in f.message
                   for f in findings)

    def test_gap_in_tiling(self):
        src = generate_source(12, 4, 3)
        src = mutate(src, r"l_y2 = y\[4:8\]", "l_y2 = y[0:4]")
        findings = check_codegen_source(src)
        assert {f.kind for f in findings} == {"codegen-coverage"}

    def test_out_slice_out_of_order(self):
        src = generate_source(8, 4, 2)
        src = mutate(src, r"out\[0:4\] \+= alpha \* l_w1",
                     "out[4:8] += alpha * l_w1")
        src = mutate(src, r"out\[4:8\] \+= alpha \* l_w2",
                     "out[0:4] += alpha * l_w2")
        findings = check_codegen_source(src)
        assert {f.kind for f in findings} == {"codegen-coverage"}

    def test_name_key_mismatch(self):
        src = mutate(generate_source(8, 4, 2), r"mtmvm_8_4_2", "mtmvm_8_4_3")
        (finding,) = check_codegen_source(src)
        assert finding.kind == "codegen-coverage"
        assert "n=8 != VS*TL" in finding.message

    def test_unparseable_source(self):
        (finding,) = check_codegen_source("def broken(:\n")
        assert finding.kind == "codegen-coverage"
        assert "does not parse" in finding.message


class TestAccumulation:
    def test_dropped_chain_link(self):
        src = mutate(generate_source(12, 4, 3), r"    s \+= l_X2 @ l_y2\n",
                     "")
        findings = check_codegen_source(src)
        assert {f.kind for f in findings} == {"codegen-accumulation"}

    def test_reinitialized_accumulator(self):
        src = mutate(generate_source(8, 4, 2), r"s \+= l_X2 @ l_y2",
                     "s = l_X2 @ l_y2")
        findings = check_codegen_source(src)
        assert {f.kind for f in findings} == {"codegen-accumulation"}
        assert any("initialized exactly once" in f.message for f in findings)

    def test_out_of_order_chain(self):
        src = mutate(generate_source(12, 4, 3),
                     r"s \+= l_X2 @ l_y2\n    s \+= l_X3 @ l_y3",
                     "s += l_X3 @ l_y3\n    s += l_X2 @ l_y2")
        findings = check_codegen_source(src)
        assert {f.kind for f in findings} == {"codegen-accumulation"}

    def test_v_elementwise_rebind_is_allowed(self):
        # `s = s * v` under `if v is not None:` is the sanctioned rebind
        assert check_specialization(16, 8, 2) == []


class TestGridParsing:
    def test_parse_round_trip(self):
        assert parse_grid("2x2,8x4") == ((2, 2), (8, 4))

    def test_rejects_malformed_entry(self):
        with pytest.raises(ValueError, match="must be VSxTL"):
            parse_grid("2x2,banana")

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            parse_grid("0x4")
