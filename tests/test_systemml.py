"""SystemML layer: DAG, rewriter, memory manager, scheduler, runner."""

import numpy as np
import pytest

from repro.gpu.device import GTX_TITAN
from repro.data import higgs_like, regression_targets
from repro.sparse import random_csr
from repro.sparse.ops import fused_pattern_reference, spmv, spmv_t
from repro.systemml import (Add, EwMul, FusedPattern, GpuMemoryManager,
                            HybridScheduler, Input, MatVec, OutOfDeviceMemory,
                            Smul, SystemMLSession, Transpose, count_nodes,
                            fused_nodes, profile_linreg_breakdown, rewrite,
                            table6_comparison)


@pytest.fixture
def env(rng):
    X = random_csr(60, 25, 0.2, rng=1)
    return {
        "X": X,
        "y": rng.normal(size=25),
        "v": rng.normal(size=60),
        "z": rng.normal(size=25),
        "h": rng.normal(size=60),
    }


class TestDag:
    def test_eval_matvec(self, env):
        expr = MatVec(Input("X"), Input("y"))
        np.testing.assert_allclose(expr.eval(env),
                                   spmv(env["X"], env["y"]))

    def test_eval_transpose_matvec(self, env):
        expr = MatVec(Transpose(Input("X")), Input("h"))
        np.testing.assert_allclose(expr.eval(env),
                                   spmv_t(env["X"], env["h"]))

    def test_unbound_input(self):
        with pytest.raises(KeyError, match="unbound"):
            Input("missing").eval({})

    def test_walk_and_count(self, env):
        expr = Add(Smul(2.0, Input("z")), Input("z"))
        assert count_nodes(expr) == 4
        assert count_nodes(expr, Input) == 2


class TestRewriter:
    def _check(self, expr, env, expected):
        rewritten = rewrite(expr)
        assert len(fused_nodes(rewritten)) == 1
        np.testing.assert_allclose(rewritten.eval(env), expected,
                                   rtol=1e-10, atol=1e-12)

    def test_xt_y(self, env):
        expr = MatVec(Transpose(Input("X")), Input("h"))
        self._check(expr, env, spmv_t(env["X"], env["h"]))

    def test_xtxy(self, env):
        X = Input("X")
        expr = MatVec(Transpose(X), MatVec(X, Input("y")))
        self._check(expr, env,
                    fused_pattern_reference(env["X"], env["y"]))

    def test_full_pattern_with_alpha_beta(self, env):
        X = Input("X")
        expr = Add(
            Smul(2.0, MatVec(Transpose(X),
                             EwMul(Input("v"), MatVec(X, Input("y"))))),
            Smul(0.5, Input("z")))
        self._check(expr, env,
                    fused_pattern_reference(env["X"], env["y"], env["v"],
                                            env["z"], 2.0, 0.5))

    def test_v_on_either_side(self, env):
        X = Input("X")
        expr = MatVec(Transpose(X),
                      EwMul(MatVec(X, Input("y")), Input("v")))
        self._check(expr, env,
                    fused_pattern_reference(env["X"], env["y"], env["v"]))

    def test_z_term_order_irrelevant(self, env):
        X = Input("X")
        core = MatVec(Transpose(X), MatVec(X, Input("y")))
        expr = Add(Smul(0.1, Input("z")), core)
        self._check(expr, env,
                    fused_pattern_reference(env["X"], env["y"],
                                            z=env["z"], beta=0.1))

    def test_different_matrices_not_fused(self, env, rng):
        """t(A) %*% (B %*% y) with A != B must NOT fuse."""
        env = dict(env)
        env["B"] = random_csr(60, 25, 0.2, rng=9)
        expr = MatVec(Transpose(Input("X")),
                      MatVec(Input("B"), Input("y")))
        rewritten = rewrite(expr)
        fused = fused_nodes(rewritten)
        # fuses only as the degenerate t(X) %*% w form, never as XTXY
        assert all(not f.inner or f.X is not None for f in fused)
        expected = spmv_t(env["X"], spmv(env["B"], env["y"]))
        np.testing.assert_allclose(rewritten.eval(env), expected,
                                   rtol=1e-10)

    def test_nested_smul_collapsed(self, env):
        X = Input("X")
        expr = Smul(2.0, Smul(3.0, MatVec(Transpose(X),
                                          MatVec(X, Input("y")))))
        rewritten = rewrite(expr)
        nodes = fused_nodes(rewritten)
        assert len(nodes) == 1 and nodes[0].alpha == 6.0


class TestMemoryManager:
    def test_upload_once(self):
        mm = GpuMemoryManager(GTX_TITAN)
        mm.register("A", 1e6)
        first = mm.request("A")
        second = mm.request("A")
        assert first > 0.0 and second == 0.0
        assert mm.stats.h2d_count == 1

    def test_lru_eviction(self):
        mm = GpuMemoryManager(GTX_TITAN, capacity_bytes=2.5e6)
        for k in ("A", "B", "C"):
            mm.register(k, 1e6)
        mm.request("A")
        mm.request("B")
        mm.request("C")                     # evicts A (least recently used)
        assert not mm.is_resident("A")
        assert mm.is_resident("B") and mm.is_resident("C")
        assert mm.stats.evictions == 1

    def test_pinned_never_evicted(self):
        mm = GpuMemoryManager(GTX_TITAN, capacity_bytes=2.5e6)
        mm.register("P", 2e6, pinned=True)
        mm.register("B", 1e6)
        mm.request("P")
        with pytest.raises(OutOfDeviceMemory):
            mm.request("B")
        assert mm.is_resident("P")

    def test_block_larger_than_device(self):
        mm = GpuMemoryManager(GTX_TITAN, capacity_bytes=1e6)
        mm.register("huge", 2e6)
        with pytest.raises(OutOfDeviceMemory, match="exceeds device"):
            mm.request("huge")

    def test_dirty_sync(self):
        mm = GpuMemoryManager(GTX_TITAN)
        mm.register("A", 1e6)
        mm.request("A")
        assert mm.sync_to_host("A") == 0.0      # clean: no download
        mm.mark_device_dirty("A")
        assert mm.sync_to_host("A") > 0.0
        assert mm.stats.d2h_count == 1

    def test_host_dirty_forces_reupload(self):
        mm = GpuMemoryManager(GTX_TITAN)
        mm.register("A", 1e6)
        mm.request("A")
        mm.mark_host_dirty("A")
        assert mm.request("A") > 0.0

    def test_jni_and_conversion_charged(self):
        mm = GpuMemoryManager(GTX_TITAN, via_jni=True)
        mm.register("S", 1e7, needs_conversion=True)
        mm.request("S")
        assert mm.stats.jni_ms > 0.0
        assert mm.stats.conversion_ms > 0.0
        assert mm.stats.total_ms > mm.stats.h2d_ms

    def test_unregistered_request(self):
        mm = GpuMemoryManager(GTX_TITAN)
        with pytest.raises(KeyError):
            mm.request("ghost")

    def test_free(self):
        mm = GpuMemoryManager(GTX_TITAN)
        mm.register("A", 1e6)
        mm.request("A")
        mm.free("A")
        assert not mm.is_resident("A")


class TestScheduler:
    def test_gpu_chosen_when_cheaper(self):
        mm = GpuMemoryManager(GTX_TITAN)
        mm.register("A", 1e4)
        sched = HybridScheduler(mm)
        d = sched.decide("op", ["A"], gpu_kernel_ms=0.01, cpu_ms=10.0)
        assert d.target == "gpu"
        assert mm.is_resident("A")

    def test_cpu_chosen_when_transfer_dominates(self):
        mm = GpuMemoryManager(GTX_TITAN)
        mm.register("A", 1e9)               # ~83 ms PCIe
        sched = HybridScheduler(mm)
        d = sched.decide("op", ["A"], gpu_kernel_ms=0.01, cpu_ms=1.0)
        assert d.target == "cpu"
        assert not mm.is_resident("A")

    def test_resident_operand_flips_decision(self):
        mm = GpuMemoryManager(GTX_TITAN)
        mm.register("A", 1e8)
        sched = HybridScheduler(mm)
        first = sched.decide("op", ["A"], gpu_kernel_ms=0.5, cpu_ms=2.0)
        assert first.target == "cpu"
        mm.request("A")                     # now resident
        second = sched.decide("op", ["A"], gpu_kernel_ms=0.5, cpu_ms=2.0)
        assert second.target == "gpu"
        assert sched.gpu_fraction == 0.5


class TestEndToEnd:
    def test_table2_breakdown_shape(self):
        X = random_csr(2000, 50, 0.1, rng=10)
        y, _ = regression_targets(X, rng=11)
        row = profile_linreg_breakdown(X, y, "toy", max_iterations=20)
        assert row.pattern_pct + row.blas1_pct == pytest.approx(100.0)
        assert row.pattern_pct > 50.0

    def test_table6_shape(self):
        X = higgs_like(scale=0.002, rng=12)
        y, _ = regression_targets(X, rng=13)
        out = table6_comparison(X, y, max_iterations=10)
        assert out["fused_kernel_speedup"] > out["total_speedup"]
        assert out["total_speedup"] > 0.5

    def test_session_modes_agree_numerically(self):
        X = higgs_like(scale=0.001, rng=14)
        y, _ = regression_targets(X, rng=15)
        g = SystemMLSession("gpu-fused").run_linreg_cg(X, y,
                                                       max_iterations=8)
        c = SystemMLSession("cpu").run_linreg_cg(X, y, max_iterations=8)
        np.testing.assert_allclose(g.w, c.w, rtol=1e-10)
        assert g.transfer_ms > 0.0 and c.transfer_ms == 0.0

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            SystemMLSession("fpga")
