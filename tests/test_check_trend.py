"""benchmarks/check_trend.py: the CI benchmark-trend gate."""

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_trend",
    pathlib.Path(__file__).parent.parent / "benchmarks" / "check_trend.py")
check_trend = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_trend)


def write_bench(directory, name, **metrics):
    directory.mkdir(exist_ok=True)
    doc = {"experiment": name, "series": [{"per_call_ms": 1.0}],
           "notes": ["text"], **metrics}
    (directory / f"BENCH_{name}.json").write_text(json.dumps(doc))


def run(tmp_path, fresh, baseline, *extra):
    return check_trend.main([
        "--fresh", str(tmp_path / fresh),
        "--baseline", str(tmp_path / baseline),
        "--summary", str(tmp_path / "summary.md"), *extra])


def test_equal_and_improved_metrics_pass(tmp_path, capsys):
    write_bench(tmp_path / "base", "a", speedup_x=2.0, other_x=1.0)
    write_bench(tmp_path / "fresh", "a", speedup_x=3.0, other_x=1.0)
    assert run(tmp_path, "fresh", "base") == 0
    out = capsys.readouterr().out
    assert "improved" in out and "| `speedup_x` |" in out
    summary = (tmp_path / "summary.md").read_text()
    assert "Benchmark trend" in summary and "✅" in summary


def test_regression_beyond_2x_fails(tmp_path, capsys):
    write_bench(tmp_path / "base", "a", speedup_x=4.0)
    write_bench(tmp_path / "fresh", "a", speedup_x=1.9)   # > 2x drop
    assert run(tmp_path, "fresh", "base") == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_regression_within_2x_passes(tmp_path):
    write_bench(tmp_path / "base", "a", speedup_x=4.0)
    write_bench(tmp_path / "fresh", "a", speedup_x=2.1)   # noisy but < 2x
    assert run(tmp_path, "fresh", "base") == 0


def test_custom_max_regression(tmp_path):
    write_bench(tmp_path / "base", "a", speedup_x=4.0)
    write_bench(tmp_path / "fresh", "a", speedup_x=2.1)
    assert run(tmp_path, "fresh", "base", "--max-regression", "1.5") == 1


def test_metric_missing_from_fresh_fails(tmp_path, capsys):
    write_bench(tmp_path / "base", "a", speedup_x=2.0)
    write_bench(tmp_path / "fresh", "a")                  # metric vanished
    assert run(tmp_path, "fresh", "base") == 1
    assert "missing" in capsys.readouterr().err


def test_required_file_missing_fails(tmp_path, capsys):
    write_bench(tmp_path / "base", "a", speedup_x=2.0)
    write_bench(tmp_path / "fresh", "a", speedup_x=2.0)
    assert run(tmp_path, "fresh", "base",
               "--require", "BENCH_missing.json") == 1
    assert "required fresh result missing" in capsys.readouterr().err


def test_new_metric_and_new_file_never_fail(tmp_path):
    write_bench(tmp_path / "base", "a", speedup_x=2.0)
    write_bench(tmp_path / "fresh", "a", speedup_x=2.0, brand_new_x=0.1)
    write_bench(tmp_path / "fresh", "b", another_x=0.5)
    assert run(tmp_path, "fresh", "base") == 0


def test_non_ratio_keys_are_ignored(tmp_path, capsys):
    write_bench(tmp_path / "base", "a", speedup_x=2.0, iterations=30,
                p99_ms=100.0)
    write_bench(tmp_path / "fresh", "a", speedup_x=2.0, iterations=5,
                p99_ms=900.0)                             # 9x wall noise: ok
    assert run(tmp_path, "fresh", "base") == 0
    out = capsys.readouterr().out
    assert "p99_ms" not in out and "iterations" not in out


def test_committed_baselines_self_compare_green(tmp_path):
    results = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
    assert check_trend.main([
        "--fresh", str(results), "--baseline", str(results),
        "--summary", str(tmp_path / "s.md"),
        "--require", "BENCH_profile.json", "--require", "BENCH_serve.json",
        "--require", "BENCH_trace.json"]) == 0


def test_unreadable_fresh_dir_exits_with_message(tmp_path):
    write_bench(tmp_path / "base", "a", speedup_x=2.0)
    with pytest.raises(SystemExit, match="not a directory"):
        run(tmp_path, "nonexistent", "base")
