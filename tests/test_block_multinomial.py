"""Block (lockstep-CG) multinomial training via the multi-RHS kernel."""

import numpy as np
import pytest

from repro.ml import MLRuntime, multinomial_logreg
from repro.sparse import random_csr


@pytest.fixture(scope="module")
def multiclass():
    X = random_csr(600, 15, 0.4, rng=1)
    rng = np.random.default_rng(2)
    labels = np.argmax(X.to_dense() @ rng.normal(size=(15, 3)), axis=1)
    return X, labels


class TestBlockMultinomial:
    def test_matches_sequential_fit(self, multiclass):
        X, labels = multiclass
        blk = multinomial_logreg(X, labels, max_newton=15, block=True)
        seq = multinomial_logreg(X, labels, max_newton=15, block=False)
        np.testing.assert_allclose(blk.W, seq.W, atol=1e-4)
        assert (blk.predict(X) == seq.predict(X)).mean() > 0.99

    def test_accuracy(self, multiclass):
        X, labels = multiclass
        blk = multinomial_logreg(X, labels, max_newton=15, block=True)
        assert (blk.predict(X) == labels).mean() > 0.9

    def test_block_spends_less_pattern_time(self, multiclass):
        """The whole point: one X pass per CG step instead of K."""
        X, labels = multiclass
        rt_b = MLRuntime("gpu-fused")
        multinomial_logreg(X, labels, rt_b, max_newton=10, block=True)
        rt_s = MLRuntime("gpu-fused")
        multinomial_logreg(X, labels, rt_s, max_newton=10, block=False)
        assert rt_b.ledger.by_category["pattern"] < \
            0.7 * rt_s.ledger.by_category["pattern"]

    def test_block_on_cpu_backend_still_correct(self, multiclass):
        X, labels = multiclass
        blk = multinomial_logreg(X, labels, MLRuntime("cpu"),
                                 max_newton=10, block=True)
        assert (blk.predict(X) == labels).mean() > 0.9

    def test_pattern_multi_runtime_op(self, multiclass, rng):
        """rt.pattern_multi agrees column-wise with rt.pattern."""
        X, _ = multiclass
        k = 3
        Y = rng.normal(size=(X.n, k))
        V = np.abs(rng.normal(size=(X.m, k)))
        Z = rng.normal(size=(X.n, k))
        for backend in ("cpu", "gpu-baseline", "gpu-fused"):
            rt = MLRuntime(backend)
            multi = rt.pattern_multi(X, Y, V=V, Z=Z, beta=0.5)
            single = np.column_stack([
                MLRuntime(backend).pattern(X, Y[:, j], v=V[:, j],
                                           z=Z[:, j], beta=0.5)
                for j in range(k)])
            np.testing.assert_allclose(multi, single, rtol=1e-10,
                                       err_msg=backend)
