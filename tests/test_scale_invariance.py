"""Scale-invariance of the model (the check DESIGN.md §6 promises).

Benchmarks run at reduced row counts; the reported *ratios* are only
meaningful if model times scale ~linearly with problem size so fused-vs-
baseline speedups are stable across scales.
"""

import numpy as np
import pytest

from repro import evaluate
from repro.sparse import random_csr
from repro.data.synthetic import synthetic_dense


class TestSparseScaleInvariance:
    @pytest.fixture(scope="class")
    def measurements(self):
        rng = np.random.default_rng(0)
        out = {}
        for m in (25_000, 50_000, 100_000):
            X = random_csr(m, 512, 0.01, rng=m)
            y = rng.normal(size=512)
            fused = evaluate(X, y, strategy="fused")
            base = evaluate(X, y, strategy="cusparse")
            out[m] = (X.nnz, fused.time_ms, base.time_ms)
        return out

    def test_fused_time_linear_in_nnz(self, measurements):
        per_nnz = [t / nnz for nnz, t, _ in measurements.values()]
        # constant per-nnz cost within 35% across a 4x scale range
        # (fixed launch costs bias the smallest size upward)
        assert max(per_nnz) < 1.35 * min(per_nnz)

    def test_speedup_stable_across_scales(self, measurements):
        speedups = [b / f for _, f, b in measurements.values()]
        assert max(speedups) < 1.4 * min(speedups)

    def test_speedup_grows_with_scale(self, measurements):
        """Fixed overheads amortize, so larger inputs show >= speedups —
        scaled-down benches *understate* the paper, never inflate it."""
        ms = sorted(measurements)
        s = [measurements[m][2] / measurements[m][1] for m in ms]
        assert s[0] <= s[-1] * 1.1


class TestDenseScaleInvariance:
    def test_dense_time_linear_in_rows(self):
        rng = np.random.default_rng(1)
        times = {}
        for m in (10_000, 20_000, 40_000):
            X = synthetic_dense(256, m=m, rng=m)
            y = rng.normal(size=256)
            times[m] = evaluate(X, y, strategy="fused").time_ms
        per_row = [t / m for m, t in times.items()]
        assert max(per_row) < 1.3 * min(per_row)
