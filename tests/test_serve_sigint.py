"""SIGINT handling: graceful shutdown, no leaked scheduler threads.

The regression this guards: ``PatternServer.stop()`` used to latch itself
as stopped on entry, so a ``KeyboardInterrupt`` landing mid-join (the first
Ctrl-C during ``repro serve``'s drain) made every retry return immediately
with the scheduler thread still alive.  ``stop()`` now only latches after
all joins complete, and the CLI catches ``KeyboardInterrupt``, defers
further SIGINTs, finishes the drain, and exits 130.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import cli
from repro.core.engine import PatternEngine
from repro.serve import PatternServer, ServeRequest, ServerConfig
from repro.sparse import random_csr

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def serve_threads():
    return [t for t in threading.enumerate()
            if t.name.startswith("repro-serve")]


def wait_for_no_serve_threads(timeout=5.0):
    deadline = time.monotonic() + timeout
    while serve_threads() and time.monotonic() < deadline:
        time.sleep(0.01)
    return serve_threads()


def test_stop_retried_after_interrupted_join_completes_drain(monkeypatch):
    server = PatternServer(PatternEngine(), ServerConfig(workers=1))
    X = random_csr(400, 32, 0.05, rng=0)
    y = np.random.default_rng(0).normal(size=32)
    assert server.evaluate(ServeRequest(X, y)).status == "ok"

    real_join = threading.Thread.join
    calls = {"n": 0}

    def interrupting_join(self, timeout=None):
        if self.name == "repro-serve-scheduler" and calls["n"] == 0:
            calls["n"] += 1
            raise KeyboardInterrupt
        return real_join(self, timeout)

    monkeypatch.setattr(threading.Thread, "join", interrupting_join)
    with pytest.raises(KeyboardInterrupt):
        server.stop()
    # the interrupted stop must NOT have latched completion
    assert not server._shutdown_complete
    server.stop()                           # the retry finishes the drain
    assert server._shutdown_complete
    monkeypatch.undo()
    assert not wait_for_no_serve_threads()


def test_cli_keyboard_interrupt_drains_and_returns_130(
        tmp_path, capsys, monkeypatch):
    workload = tmp_path / "wl.json"
    assert cli.main(["loadgen", str(workload), "--requests", "20",
                     "--matrices", "2", "--rows", "300", "--cols", "32",
                     "--mode", "closed"]) == 0

    # _run_trace resolves run_workload from the package at call time
    def interrupted_run(server, trace, verify=False):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.serve.run_workload", interrupted_run)
    code = cli.main(["serve", str(workload)])
    err = capsys.readouterr().err
    assert code == 130
    assert "interrupted" in err and "shut down cleanly" in err
    assert not wait_for_no_serve_threads()  # no leaked scheduler/workers


def test_sigint_subprocess_exits_130_without_traceback(tmp_path):
    """A real SIGINT mid-replay: graceful one-line exit, status 130."""
    workload = tmp_path / "wl.json"
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "loadgen", str(workload),
         "--requests", "8000", "--matrices", "8", "--rows", "2500",
         "--cols", "64", "--mode", "closed"],
        check=True, env={**os.environ, "PYTHONPATH": SRC},
        capture_output=True, timeout=120)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(workload)],
        env={**os.environ, "PYTHONPATH": SRC},
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    time.sleep(2.0)                         # let the replay get going
    proc.send_signal(signal.SIGINT)
    try:
        _, err = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        pytest.fail("serve did not shut down after SIGINT")
    assert proc.returncode == 130, err
    assert "interrupted" in err
    assert "Traceback" not in err
