"""Atomic-contention model and the event-to-time cost model."""

import numpy as np
import pytest

from repro.gpu import (CostModel, GTX_TITAN, PerfCounters,
                       effective_addresses, global_atomic_batch, merge,
                       shared_atomic_batch, uniform_weights)
from repro.gpu.atomics import contended_chain


class TestEffectiveAddresses:
    def test_uniform(self):
        assert effective_addresses(np.ones(100)) == pytest.approx(100.0)

    def test_single_hot_address(self):
        w = np.zeros(100)
        w[0] = 1000
        assert effective_addresses(w) == pytest.approx(1.0)

    def test_skew_reduces_effective_count(self):
        skewed = np.array([100.0, 1, 1, 1])
        assert effective_addresses(skewed) < 4.0

    def test_empty(self):
        assert effective_addresses(np.zeros(5)) == 1.0


class TestChains:
    def test_uniform_chain(self):
        assert contended_chain(1000, uniform_weights(100)) == pytest.approx(10.0)

    def test_single_address_fully_serial(self):
        assert contended_chain(1000, np.array([1.0])) == pytest.approx(1000.0)

    def test_zero_ops(self):
        assert contended_chain(0, uniform_weights(8)) == 0.0


class TestBatches:
    def test_global_batch_contention(self):
        b = global_atomic_batch(10_000, uniform_weights(10), 1000)
        assert b.ops == 10_000
        assert b.degree == pytest.approx(100.0)

    def test_no_contention_when_spread(self):
        b = global_atomic_batch(100, uniform_weights(10_000), 100_000)
        assert b.degree == pytest.approx(1.0)

    def test_shared_batch(self):
        b = shared_atomic_batch(1000, 10, 640)
        assert b.serialized >= b.ops
        assert b.degree == pytest.approx(64.0)

    def test_empty_batches(self):
        assert global_atomic_batch(0, uniform_weights(4), 10).ops == 0.0
        assert shared_atomic_batch(0, 4, 32).serialized == 0.0


class TestCounters:
    def test_add_and_merge(self):
        a = PerfCounters(global_load_transactions=10, flops=5)
        b = PerfCounters(global_load_transactions=3, kernel_launches=1)
        m = merge(a, b)
        assert m.global_load_transactions == 13
        assert m.flops == 5 and m.kernel_launches == 1
        a.add(b)
        assert a.global_load_transactions == 13

    def test_scaled(self):
        c = PerfCounters(global_load_transactions=4, barriers=2)
        s = c.scaled(2.5)
        assert s.global_load_transactions == 10
        assert c.global_load_transactions == 4

    def test_global_bytes(self):
        c = PerfCounters(global_load_transactions=2,
                         global_store_transactions=1)
        assert c.global_bytes() == 3 * 128


class TestCostModel:
    def test_memory_bound_time(self):
        cm = CostModel(GTX_TITAN)
        c = PerfCounters(global_load_transactions=1e6)   # 128 MB
        t = cm.time_ms(c, occupancy_fraction=1.0)
        assert t == pytest.approx(128e6 / 288e9 * 1e3, rel=0.01)

    def test_low_occupancy_slower(self):
        cm = CostModel(GTX_TITAN)
        c = PerfCounters(global_load_transactions=1e6)
        fast = cm.time_ms(c, occupancy_fraction=1.0)
        slow = cm.time_ms(c, occupancy_fraction=0.05)
        assert slow > 2.0 * fast

    def test_bandwidth_efficiency_saturates(self):
        cm = CostModel(GTX_TITAN)
        assert cm.bandwidth_efficiency(0.5) == 1.0
        assert cm.bandwidth_efficiency(0.9) == 1.0
        assert cm.bandwidth_efficiency(0.0) == pytest.approx(
            cm.min_bandwidth_fraction)

    def test_derate_slows_memory(self):
        cm = CostModel(GTX_TITAN)
        c = PerfCounters(global_load_transactions=1e6)
        assert cm.time_ms(c, 1.0, 0.5) == pytest.approx(
            2.0 * cm.time_ms(c, 1.0, 1.0), rel=0.01)

    def test_lock_chain_dominates_cas_chain(self):
        cm = CostModel(GTX_TITAN)
        lock = PerfCounters(atomic_lock_chain=1000)
        cas = PerfCounters(atomic_cas_chain=1000)
        assert cm.time_ms(lock) > 100 * cm.time_ms(cas)

    def test_phases_overlap_but_atomics_add(self):
        cm = CostModel(GTX_TITAN)
        c = PerfCounters(global_load_transactions=1e6, flops=1e6,
                         atomic_lock_chain=1e4)
        bd = cm.breakdown(c)
        assert bd.total_ms == pytest.approx(
            max(bd.memory_ms, bd.shared_ms, bd.compute_ms)
            + bd.atomic_ms + bd.launch_ms + bd.sync_ms)
        assert bd.memory_ms > bd.compute_ms

    def test_launch_and_sync_costs(self):
        cm = CostModel(GTX_TITAN)
        c = PerfCounters(kernel_launches=2, barriers=10)
        bd = cm.breakdown(c)
        assert bd.launch_ms == pytest.approx(2 * 5.0 / 1e3)
        assert bd.sync_ms == pytest.approx(10 * 0.6 / 1e3)

    def test_as_dict_keys(self):
        bd = CostModel(GTX_TITAN).breakdown(PerfCounters())
        d = bd.as_dict()
        assert set(d) == {"memory_ms", "shared_ms", "compute_ms",
                          "atomic_ms", "launch_ms", "sync_ms", "total_ms"}
