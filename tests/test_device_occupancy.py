"""Device specs, launch validation, and the occupancy calculator."""

import pytest

from repro.gpu import (GTX_TITAN, K20X, TINY_CC35, DeviceSpec, LaunchConfig,
                       Occupancy, best_block_size, get_device, grid_for_rows,
                       occupancy)


class TestDeviceSpec:
    def test_presets_valid(self):
        for dev in (GTX_TITAN, K20X, TINY_CC35):
            dev.validate()

    def test_get_device(self):
        assert get_device("gtx-titan").num_sms == 14
        with pytest.raises(KeyError, match="unknown device"):
            get_device("h100")

    def test_with_override(self):
        d = GTX_TITAN.with_(num_sms=8)
        assert d.num_sms == 8
        assert GTX_TITAN.num_sms == 14   # original untouched

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GTX_TITAN.with_(warp_size=33).validate()
        with pytest.raises(ValueError):
            GTX_TITAN.with_(max_threads_per_block=4096).validate()

    def test_bandwidth_conversions(self):
        assert GTX_TITAN.global_bandwidth_bytes_per_ms == pytest.approx(
            288e9 / 1e3)
        assert GTX_TITAN.total_cores == 14 * 192


class TestLaunchConfig:
    def test_valid_launch(self):
        lc = LaunchConfig(28, 640, shared_bytes=8832,
                          registers_per_thread=43, vector_size=8)
        lc.validate(GTX_TITAN)
        assert lc.vectors_per_block == 80
        assert lc.total_threads == 28 * 640

    def test_block_too_large(self):
        with pytest.raises(ValueError, match="block_size"):
            LaunchConfig(1, 2048).validate(GTX_TITAN)

    def test_too_much_shared_memory(self):
        with pytest.raises(ValueError, match="shared memory"):
            LaunchConfig(1, 128, shared_bytes=100_000).validate(GTX_TITAN)

    def test_register_spill_rejected(self):
        with pytest.raises(ValueError, match="spilling"):
            LaunchConfig(1, 128, registers_per_thread=300).validate(GTX_TITAN)

    def test_vector_size_must_divide(self):
        with pytest.raises(ValueError, match="vector_size"):
            LaunchConfig(1, 100, vector_size=16).validate(GTX_TITAN)

    def test_grid_for_rows(self):
        # 128 threads, VS=4 -> 32 vectors/block; C=2 -> 64 rows/block
        assert grid_for_rows(640, 128, 4, 2) == 10
        assert grid_for_rows(1, 128, 4, 2) == 1


class TestOccupancy:
    def test_paper_example(self):
        """The paper's §4.3 config: VS=8, BS=640, 43 regs, 8832B shared
        -> 2 blocks/SM x 14 SMs = the 28 blocks the paper reports."""
        occ = occupancy(GTX_TITAN, 640, 43, 8832)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "registers"
        assert occ.warps_per_sm == 40

    def test_thread_limited(self):
        occ = occupancy(GTX_TITAN, 1024, 16, 0)
        assert occ.blocks_per_sm == 2       # 2048 threads / 1024
        assert occ.threads_per_sm == 2048
        assert occ.fraction(GTX_TITAN) == 1.0

    def test_shared_memory_limited(self):
        occ = occupancy(GTX_TITAN, 128, 16, 24 * 1024)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "shared-memory"

    def test_unschedulable_shared(self):
        occ = occupancy(GTX_TITAN, 128, 16, 64 * 1024)
        assert occ.blocks_per_sm == 0
        assert occ.fraction(GTX_TITAN) == 0.0

    def test_register_spill_unschedulable(self):
        occ = occupancy(GTX_TITAN, 128, 256, 0)
        assert occ.blocks_per_sm == 0

    def test_monotone_in_registers(self):
        """More registers per thread never increases occupancy."""
        prev = None
        for regs in (16, 32, 64, 128, 255):
            w = occupancy(GTX_TITAN, 256, regs, 0).warps_per_sm
            if prev is not None:
                assert w <= prev
            prev = w

    def test_best_block_size_maximizes_warps(self):
        bs, occ = best_block_size(GTX_TITAN, 43,
                                  lambda b: (b // 8 + 1000) * 8)
        candidates = [w * 32 for w in range(1, 33)]
        for c in candidates:
            o = occupancy(GTX_TITAN, c, 43, (c // 8 + 1000) * 8)
            assert o.warps_per_sm <= occ.warps_per_sm

    def test_best_block_size_no_feasible(self):
        with pytest.raises(ValueError, match="no schedulable"):
            best_block_size(GTX_TITAN, 43, lambda b: 10**6)

    def test_tiny_device_limits(self):
        occ = occupancy(TINY_CC35, 256, 16, 0)
        assert occ.blocks_per_sm >= 1
        assert occ.threads_per_sm <= TINY_CC35.max_threads_per_sm
