"""Reference sparse ops against dense NumPy ground truth."""

import numpy as np
import pytest

from repro.sparse import (CsrMatrix, fused_pattern_reference, random_csr,
                          row_norms_sq, spmm, spmv, spmv_t)


class TestSpmv:
    def test_matches_dense(self, small_csr, rng):
        y = rng.normal(size=small_csr.n)
        np.testing.assert_allclose(spmv(small_csr, y),
                                   small_csr.to_dense() @ y, rtol=1e-12)

    def test_empty_rows(self):
        X = CsrMatrix((3, 2), np.array([1.0]), np.array([1]),
                      np.array([0, 0, 1, 1]))
        np.testing.assert_array_equal(spmv(X, np.array([1.0, 2.0])),
                                      [0.0, 2.0, 0.0])

    def test_all_empty(self):
        X = CsrMatrix.empty((4, 3))
        np.testing.assert_array_equal(spmv(X, np.ones(3)), np.zeros(4))

    def test_wrong_shape_raises(self, small_csr):
        with pytest.raises(ValueError, match="shape"):
            spmv(small_csr, np.ones(small_csr.n + 1))

    def test_duplicate_columns_accumulate(self):
        X = CsrMatrix((1, 3), np.array([2.0, 3.0]), np.array([1, 1]),
                      np.array([0, 2]))
        assert spmv(X, np.array([0.0, 1.0, 0.0]))[0] == 5.0


class TestSpmvT:
    def test_matches_dense(self, small_csr, rng):
        p = rng.normal(size=small_csr.m)
        np.testing.assert_allclose(spmv_t(small_csr, p),
                                   small_csr.to_dense().T @ p, rtol=1e-12)

    def test_empty_matrix(self):
        X = CsrMatrix.empty((4, 3))
        np.testing.assert_array_equal(spmv_t(X, np.ones(4)), np.zeros(3))

    def test_wrong_shape_raises(self, small_csr):
        with pytest.raises(ValueError, match="shape"):
            spmv_t(small_csr, np.ones(small_csr.m - 1))


class TestPatternReference:
    @pytest.mark.parametrize("alpha,beta,use_v", [
        (1.0, 0.0, False), (2.5, 0.0, True), (1.0, 0.7, False),
        (-1.5, 0.3, True), (0.0, 1.0, True),
    ])
    def test_sparse_matches_dense(self, small_csr, rng, alpha, beta, use_v):
        m, n = small_csr.shape
        y = rng.normal(size=n)
        v = rng.normal(size=m) if use_v else None
        z = rng.normal(size=n) if beta else None
        d = small_csr.to_dense()
        p = d @ y
        if use_v:
            p = p * v
        expected = alpha * (d.T @ p) + (beta * z if beta else 0.0)
        got = fused_pattern_reference(small_csr, y, v, z, alpha, beta)
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_dense_input(self, rng):
        X = rng.normal(size=(30, 8))
        y = rng.normal(size=8)
        got = fused_pattern_reference(X, y)
        np.testing.assert_allclose(got, X.T @ (X @ y), rtol=1e-12)

    def test_beta_without_z_raises(self, small_csr, rng):
        with pytest.raises(ValueError, match="requires z"):
            fused_pattern_reference(small_csr, rng.normal(size=small_csr.n),
                                    beta=1.0)


class TestUtility:
    def test_spmm_columns(self, small_csr, rng):
        B = rng.normal(size=(small_csr.n, 3))
        np.testing.assert_allclose(spmm(small_csr, B),
                                   small_csr.to_dense() @ B, rtol=1e-12)

    def test_spmm_vector(self, small_csr, rng):
        y = rng.normal(size=small_csr.n)
        np.testing.assert_allclose(spmm(small_csr, y), spmv(small_csr, y))

    def test_row_norms_sq(self):
        # distinct entries: squared norms match the dense squares (with
        # duplicates, (a+b)^2 != a^2+b^2 and to_dense sums the entries)
        X = random_csr(120, 30, 0.2, rng=3, distinct=True)
        expected = (X.to_dense() ** 2).sum(axis=1)
        np.testing.assert_allclose(row_norms_sq(X), expected, rtol=1e-12)


class TestVectorizedFormulations:
    """Satellites of the kernel-profile PR: the vectorized rewrites must
    match the element-at-a-time formulations they replaced, exactly."""

    def test_row_norms_sq_matches_add_at(self):
        # the old formulation accumulated with np.add.at over row ids
        X = random_csr(150, 40, 0.25, rng=17)
        old = np.zeros(X.m)
        row_ids = np.repeat(np.arange(X.m), np.diff(X.row_off))
        np.add.at(old, row_ids, X.values ** 2)
        got = row_norms_sq(X)
        np.testing.assert_allclose(got, old, rtol=0, atol=1e-12)

    def test_row_norms_sq_empty_rows(self):
        X = CsrMatrix((3, 2), np.array([2.0]), np.array([1]),
                      np.array([0, 0, 1, 1]))
        np.testing.assert_array_equal(row_norms_sq(X), [0.0, 4.0, 0.0])

    def test_spmm_exactly_matches_per_column_spmv(self):
        # the segmented-reduction spmm must be bit-identical to a column
        # loop of spmv calls (same reduceat order per column)
        rng = np.random.default_rng(23)
        X = random_csr(90, 25, 0.2, rng=23)
        B = rng.normal(size=(X.n, 4))
        got = spmm(X, B)
        for j in range(B.shape[1]):
            assert np.array_equal(got[:, j], spmv(X, B[:, j])), f"col {j}"

    def test_spmm_empty_matrix_and_zero_k(self):
        X = CsrMatrix.empty((4, 3))
        np.testing.assert_array_equal(spmm(X, np.ones((3, 2))),
                                      np.zeros((4, 2)))
        Y = random_csr(5, 3, 0.5, rng=1)
        assert spmm(Y, np.ones((3, 0))).shape == (5, 0)

    def test_spmm_wrong_rows_raises(self, small_csr):
        with pytest.raises(ValueError):
            spmm(small_csr, np.ones((small_csr.n + 1, 2)))
