"""The seeded-bug corpus: every mutant is flagged with the right kind,
statically AND dynamically, and the two verdicts agree.

This is the analyzer's acceptance gate: no finding class exists that only
the static checker or only the sanitizer can see.  Each fixture module
declares its ``EXPECTED_KIND`` and which launch ``SIGNATURE`` it uses.
"""

import importlib.util
import inspect
from pathlib import Path

import pytest

from repro.analyze import analyze_file
from repro.analyze.sanitizer import alg1_launch, alg2_launch
from repro.cli import main

CORPUS = Path(__file__).parent / "badkernels"
FIXTURES = sorted(p for p in CORPUS.glob("*.py") if p.name != "__init__.py")

LAUNCHERS = {"alg1": alg1_launch, "alg2": alg2_launch}


def load_module(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def fixture_kernel(mod):
    return next(fn for name, fn in sorted(vars(mod).items())
                if inspect.isgeneratorfunction(fn)
                and name.startswith(("alg1_", "alg2_")))


def test_corpus_is_nonempty():
    assert len(FIXTURES) >= 4
    kinds = set()
    for path in FIXTURES:
        kinds.add(load_module(path).EXPECTED_KIND)
    # the corpus must exercise every race/barrier finding class
    assert kinds == {"shared-race", "global-race", "divergent-barrier"}


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_static_flags_expected_kind(path):
    mod = load_module(path)
    kinds = {f.kind for f in analyze_file(str(path))}
    assert kinds == {mod.EXPECTED_KIND}


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_dynamic_reproduces_expected_kind(path):
    mod = load_module(path)
    kinds = LAUNCHERS[mod.SIGNATURE](fixture_kernel(mod))
    assert kinds == {mod.EXPECTED_KIND}


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_static_and_dynamic_agree(path):
    mod = load_module(path)
    static = {f.kind for f in analyze_file(str(path))}
    dynamic = LAUNCHERS[mod.SIGNATURE](fixture_kernel(mod))
    assert static == dynamic == {mod.EXPECTED_KIND}


def test_cli_flags_whole_corpus(capsys):
    rc = main(["check"] + [str(p) for p in FIXTURES])
    assert rc == 1
    out = capsys.readouterr().out
    for path in FIXTURES:
        assert path.name in out or str(path) in out


def test_cli_json_lists_every_expected_kind(capsys):
    import json
    rc = main(["check", "--json"] + [str(p) for p in FIXTURES])
    assert rc == 1
    findings = json.loads(capsys.readouterr().out)
    reported = {(Path(f["file"]).name, f["kind"]) for f in findings}
    for path in FIXTURES:
        mod = load_module(path)
        assert (path.name, mod.EXPECTED_KIND) in reported
