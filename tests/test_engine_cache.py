"""Unit tests for the PatternEngine session layer: cache mechanics, LRU
bounds, invalidation, stats accounting, and the batched API."""

import numpy as np
import pytest

from repro.core.engine import (BatchResult, PatternEngine, PatternRequest,
                               fingerprint_device, fingerprint_matrix)
from repro.core.api import evaluate as evaluate_uncached
from repro.kernels import codegen
from repro.kernels.base import GpuContext
from repro.gpu.device import GTX_TITAN, K20X
from repro.sparse import CsrMatrix, random_csr


@pytest.fixture
def engine():
    return PatternEngine()


def _vec(n, seed=0):
    return np.random.default_rng(seed).normal(size=n)


class TestPlanCache:
    def test_second_call_hits(self, engine, small_csr):
        engine.evaluate(small_csr, _vec(small_csr.n, 1))
        engine.evaluate(small_csr, _vec(small_csr.n, 2))
        s = engine.stats()
        assert (s.plan_hits, s.plan_misses) == (1, 1)
        assert s.cold_calls == 1 and s.warm_calls == 1

    def test_structurally_identical_matrices_share_entries(self, engine):
        A = random_csr(150, 30, 0.2, rng=3)
        B = random_csr(150, 30, 0.2, rng=3)       # same seed -> same data
        engine.evaluate(A, _vec(30))
        engine.evaluate(B, _vec(30))
        assert engine.stats().plan_hits == 1

    def test_different_pattern_shape_misses(self, engine, small_csr):
        y = _vec(small_csr.n)
        engine.evaluate(small_csr, y)
        engine.evaluate(small_csr, y, v=_vec(small_csr.m))
        engine.evaluate(small_csr, y, z=y, beta=0.5)
        assert engine.stats().plan_misses == 3

    def test_alpha_beta_values_do_not_fragment_the_cache(self, engine,
                                                         small_csr):
        y = _vec(small_csr.n)
        engine.evaluate(small_csr, y, z=y, beta=0.5)
        engine.evaluate(small_csr, y, z=y, beta=2.5, alpha=3.0)
        s = engine.stats()
        assert (s.plan_hits, s.plan_misses) == (1, 1)

    def test_lru_eviction_bound(self):
        engine = PatternEngine(max_plans=2)
        for seed in range(4):
            X = random_csr(100, 20, 0.2, rng=seed)
            engine.evaluate(X, _vec(20))
        s = engine.stats()
        assert s.plan_entries == 2
        assert s.evictions == 2

    def test_unknown_strategy_raises(self, engine, small_csr):
        with pytest.raises(ValueError, match="unknown strategy"):
            engine.evaluate(small_csr, _vec(small_csr.n),
                            strategy="quantum")

    def test_auto_resolves_like_executor(self, engine, rng):
        wide = rng.normal(size=(50, 6000))        # beyond the dense limit
        engine.evaluate(wide, rng.normal(size=6000))
        entry = next(iter(engine._plans.values()))
        assert entry.strategy == "cusparse"

    def test_check_mode_verifies(self, small_csr):
        engine = PatternEngine(check=True)
        res = engine.evaluate(small_csr, _vec(small_csr.n),
                              v=_vec(small_csr.m), alpha=1.5)
        ref = evaluate_uncached(small_csr, _vec(small_csr.n),
                                v=_vec(small_csr.m), alpha=1.5)
        np.testing.assert_array_equal(res.output, ref.output)


class TestInvalidation:
    def test_invalidate_drops_matrix_state(self, engine, small_csr):
        y = _vec(small_csr.n)
        engine.evaluate(small_csr, y, strategy="cusparse-explicit")
        removed = engine.invalidate(small_csr)
        # one plan entry + transpose + csrmv profile + spmv plan + XT profile
        assert removed == 5
        engine.evaluate(small_csr, y, strategy="cusparse-explicit")
        s = engine.stats()
        assert s.plan_misses == 2 and s.transposes_built == 2

    def test_invalidate_unknown_matrix_is_noop(self, engine, small_csr):
        engine.evaluate(small_csr, _vec(small_csr.n))
        other = random_csr(60, 10, 0.3, rng=9)
        assert engine.invalidate(other) == 0
        assert engine.stats().plan_entries == 1

    def test_clear_preserves_counters(self, engine, small_csr):
        engine.evaluate(small_csr, _vec(small_csr.n))
        engine.clear()
        s = engine.stats()
        assert s.plan_entries == 0 and s.bytes_cached == 0
        assert s.calls == 1


class TestArtifacts:
    def test_transpose_bytes_accounted(self, engine, small_csr):
        engine.evaluate(small_csr, _vec(small_csr.n),
                        strategy="cusparse-explicit")
        s = engine.stats()
        XT = small_csr.transpose_csr()
        expected = XT.values.nbytes + XT.col_idx.nbytes + XT.row_off.nbytes
        # the transpose plus the (smaller) kernel profiles and spmv plan
        assert s.artifact_bytes >= expected
        assert s.artifact_bytes <= expected + 64 * 1024
        assert s.bytes_cached >= s.artifact_bytes

    def test_artifact_lru_bound(self):
        engine = PatternEngine(max_artifact_bytes=1)   # room for one only
        for seed in range(3):
            X = random_csr(120, 25, 0.2, rng=seed)
            engine.evaluate(X, _vec(25), strategy="cusparse-explicit")
        s = engine.stats()
        assert s.transposes_built == 3
        assert len(engine._artifacts) == 1             # bound enforced

    def test_dense_codegen_compiled_once(self):
        codegen.clear_cache()
        engine = PatternEngine()
        X = np.random.default_rng(2).normal(size=(64, 48))
        y = _vec(48)
        engine.evaluate(X, y, strategy="fused")
        engine.evaluate(X, _vec(48, 5), strategy="fused")
        assert engine.stats().kernels_compiled == 1


class TestBatched:
    def test_results_in_request_order_and_bit_identical(self, engine,
                                                        small_csr):
        reqs = [PatternRequest(small_csr, _vec(small_csr.n, s))
                for s in range(6)]
        out = engine.evaluate_many(reqs, max_workers=4)
        assert [b.index for b in out] == list(range(6))
        for s, b in enumerate(out):
            ref = evaluate_uncached(small_csr, _vec(small_csr.n, s))
            np.testing.assert_array_equal(b.result.output, ref.output)
            assert b.wall_ms >= 0.0
            assert isinstance(b, BatchResult)

    def test_warm_batch_reports_cached(self, engine, small_csr):
        y = _vec(small_csr.n)
        engine.evaluate(small_csr, y)                  # pre-warm the plan
        out = engine.evaluate_many(
            [PatternRequest(small_csr, _vec(small_csr.n, s))
             for s in range(4)], max_workers=2)
        assert all(b.cached for b in out)

    def test_serial_worker_cold_flags(self, small_csr):
        engine = PatternEngine()
        out = engine.evaluate_many(
            [PatternRequest(small_csr, _vec(small_csr.n, s))
             for s in range(3)], max_workers=1)
        assert [b.cached for b in out] == [False, True, True]

    def test_accepts_dicts_and_patterns(self, engine, small_csr):
        from repro.core.pattern import GenericPattern
        out = engine.evaluate_many([
            {"X": small_csr, "y": _vec(small_csr.n)},
            GenericPattern(small_csr, _vec(small_csr.n, 1)),
        ])
        assert len(out) == 2

    def test_rejects_garbage_requests(self, engine):
        with pytest.raises(TypeError, match="requests must be"):
            engine.evaluate_many([42])

    def test_empty_batch(self, engine):
        assert engine.evaluate_many([]) == []

    def test_many_workers_consistent_under_contention(self, engine):
        mats = [random_csr(150, 30, 0.2, rng=s) for s in range(4)]
        reqs = [PatternRequest(mats[i % 4], _vec(30, i)) for i in range(24)]
        out = engine.evaluate_many(reqs, max_workers=8)
        for i, b in enumerate(out):
            ref = evaluate_uncached(mats[i % 4], _vec(30, i))
            np.testing.assert_array_equal(b.result.output, ref.output)


class TestFingerprints:
    def test_matrix_fingerprint_is_content_based(self, small_csr):
        clone = CsrMatrix(small_csr.shape, small_csr.values.copy(),
                          small_csr.col_idx.copy(),
                          small_csr.row_off.copy())
        assert fingerprint_matrix(small_csr) == fingerprint_matrix(clone)
        clone.values[0] += 1.0
        assert fingerprint_matrix(small_csr) != fingerprint_matrix(clone)

    def test_dense_fingerprint_handles_views(self, rng):
        X = rng.normal(size=(30, 20))
        assert fingerprint_matrix(X) == fingerprint_matrix(X.copy())
        assert fingerprint_matrix(X.T) != fingerprint_matrix(X)

    def test_device_fingerprint_differs_across_specs(self):
        assert (fingerprint_device(GpuContext(GTX_TITAN))
                != fingerprint_device(GpuContext(K20X)))
        assert (fingerprint_device(GpuContext(GTX_TITAN,
                                              use_texture_cache=False))
                != fingerprint_device(GpuContext(GTX_TITAN)))


class TestStatsReport:
    def test_report_mentions_key_quantities(self, engine, small_csr):
        engine.evaluate(small_csr, _vec(small_csr.n),
                        strategy="cusparse-explicit")
        engine.evaluate(small_csr, _vec(small_csr.n, 1),
                        strategy="cusparse-explicit")
        text = engine.stats().report()
        for token in ("hit-rate", "bytes cached", "amortized speedup",
                      "transposes built"):
            assert token in text

    def test_amortized_speedup_tracks_transpose_saving(self, engine,
                                                       medium_csr):
        for s in range(5):
            engine.evaluate(medium_csr, _vec(medium_csr.n, s),
                            strategy="cusparse-explicit")
        s = engine.stats()
        assert s.amortized_speedup > 1.5
        assert s.warm_ms_per_call < s.cold_ms_per_call
