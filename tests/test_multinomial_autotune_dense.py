"""Multinomial logistic regression and the dense autotuner."""

import numpy as np
import pytest

from repro.ml import MLRuntime, multinomial_logreg
from repro.core.pattern import Instantiation
from repro.sparse import random_csr
from repro.tuning import autotune_dense, tune_dense


@pytest.fixture(scope="module")
def multiclass():
    X = random_csr(600, 15, 0.4, rng=1)
    rng = np.random.default_rng(2)
    W = rng.normal(size=(15, 3))
    labels = np.argmax(X.to_dense() @ W, axis=1)
    return X, labels


class TestMultinomial:
    def test_training_accuracy(self, multiclass):
        X, labels = multiclass
        res = multinomial_logreg(X, labels, max_newton=15)
        assert (res.predict(X) == labels).mean() > 0.9

    def test_probabilities_normalized(self, multiclass):
        X, labels = multiclass
        res = multinomial_logreg(X, labels, max_newton=5)
        proba = res.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-12)
        assert (proba >= 0).all()

    def test_string_classes(self, multiclass):
        X, labels = multiclass
        named = np.array(["ant", "bee", "cow"])[labels]
        res = multinomial_logreg(X, named, max_newton=5)
        assert set(res.predict(X)) <= {"ant", "bee", "cow"}

    def test_uses_full_pattern_per_class(self, multiclass):
        X, labels = multiclass
        rt = MLRuntime("gpu-fused")
        multinomial_logreg(X, labels, rt, max_newton=3, max_cg=5)
        assert Instantiation.FULL in rt.ledger.instantiations
        # each of the three classes issues at least one gradient
        assert rt.ledger.instantiations[Instantiation.XT_Y] >= 3

    def test_validation(self, multiclass):
        X, _ = multiclass
        with pytest.raises(ValueError, match="two classes"):
            multinomial_logreg(X, np.zeros(X.m))
        with pytest.raises(ValueError, match="shape"):
            multinomial_logreg(X, np.zeros(3))

    def test_dense_input(self, rng):
        X = rng.normal(size=(300, 10))
        labels = np.argmax(X @ rng.normal(size=(10, 3)), axis=1)
        res = multinomial_logreg(X, labels, max_newton=10)
        assert (res.predict(X) == labels).mean() > 0.85


class TestDenseAutotune:
    @pytest.fixture(scope="class")
    def result(self):
        return autotune_dense(20_000, 256)

    def test_space_covers_tl_range(self, result):
        tls = {s.thread_load for s in result.settings}
        assert len(tls) > 10
        assert len(result.settings) > 50

    def test_model_within_the_good_region(self, result):
        """The §3.3 dense rules (BS=128, Eq. 6) pay an inter-warp barrier
        penalty under our cost model when they choose VS > 32, so unlike the
        sparse case (Fig. 6: <2%) the pick is not always near-optimal — but
        it must beat the median setting comfortably and stay within 2x of
        the sweep optimum."""
        times = sorted(s.time_ms for s in result.settings)
        median = times[len(times) // 2]
        assert result.model_setting.time_ms < median
        assert result.model_gap < 1.0

    def test_best_is_min(self, result):
        assert result.best.time_ms == min(s.time_ms
                                          for s in result.settings)
        assert result.worst.time_ms >= result.best.time_ms

    def test_settings_cover_row(self, result):
        for s in result.settings:
            assert s.vector_size * s.thread_load >= 256

    def test_narrow_matrix(self):
        res = autotune_dense(5000, 28)
        assert res.model_params.block_size == 1024
        assert res.model_gap < 1.0

    def test_agrees_with_analytic_params(self):
        res = autotune_dense(10_000, 512)
        p = tune_dense(10_000, 512)
        assert res.model_setting.thread_load == p.thread_load
        assert res.model_setting.block_size == p.block_size
