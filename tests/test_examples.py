"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; each must execute without
errors on a fresh checkout.  They print their own verification lines (and
contain asserts), so a zero exit status is a meaningful check.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """Keep this file in sync with the examples directory."""
    assert len(ALL_EXAMPLES) >= 7


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}")
    assert proc.stdout.strip(), f"{script} produced no output"
