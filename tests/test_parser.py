"""The DML expression parser and its interaction with the rewriter."""

import numpy as np
import pytest

from repro.sparse import random_csr
from repro.sparse.ops import fused_pattern_reference, spmv, spmv_t
from repro.systemml import (DmlSyntaxError, fused_nodes, parse_assignment,
                            parse_expression, rewrite)
from repro.systemml.dag import Add, EwMul, Input, MatVec, Smul, Transpose


@pytest.fixture
def env(rng):
    X = random_csr(50, 12, 0.3, rng=1)
    return {"X": X, "V": X,
            "y": rng.normal(size=12), "p": rng.normal(size=12),
            "v": rng.normal(size=50), "z": rng.normal(size=12)}


class TestParsing:
    def test_simple_matvec(self, env):
        node = parse_expression("X %*% y")
        assert isinstance(node, MatVec)
        np.testing.assert_allclose(node.eval(env),
                                   spmv(env["X"], env["y"]))

    def test_transpose(self, env):
        node = parse_expression("t(X)")
        assert isinstance(node, Transpose)

    def test_precedence_matmul_over_ewmul(self, env):
        # v * X %*% y  ==  v * (X %*% y)
        node = parse_expression("v * X %*% y")
        assert isinstance(node, EwMul)
        np.testing.assert_allclose(
            node.eval(env), env["v"] * spmv(env["X"], env["y"]))

    def test_scalar_multiple(self, env):
        node = parse_expression("2.5 * y")
        assert isinstance(node, Smul) and node.alpha == 2.5

    def test_scalar_on_right(self, env):
        node = parse_expression("y * 3")
        assert isinstance(node, Smul) and node.alpha == 3.0

    def test_scalar_folding(self):
        node = parse_expression("2 * 3 * y")
        assert isinstance(node, Smul) and node.alpha == 6.0

    def test_unary_minus(self, env):
        node = parse_expression("-y")
        np.testing.assert_allclose(node.eval(env), -env["y"])

    def test_subtraction_desugars(self, env):
        node = parse_expression("y - z")
        np.testing.assert_allclose(node.eval(env), env["y"] - env["z"])

    def test_scientific_notation(self):
        node = parse_expression("1e-3 * y")
        assert node.alpha == pytest.approx(1e-3)

    def test_assignment(self):
        name, node = parse_assignment("q = X %*% y")
        assert name == "q"
        assert isinstance(node, MatVec)

    def test_parentheses(self, env):
        # v has length m, so (X %*% y + v) is well-formed
        node = parse_expression("t(X) %*% (X %*% y + v)")
        expected = spmv_t(env["X"], spmv(env["X"], env["y"]) + env["v"])
        np.testing.assert_allclose(node.eval(env), expected, rtol=1e-10)


class TestErrors:
    @pytest.mark.parametrize("src", [
        "t(3)", "1 + X", "X %*% 3", "X +", "X @ y", "(X", "X) ", "",
        "3.5", "= y", "2bad = y",
    ])
    def test_rejected(self, src):
        with pytest.raises((DmlSyntaxError, ValueError)):
            if "=" in src:
                parse_assignment(src)
            else:
                parse_expression(src)

    def test_error_has_position(self):
        with pytest.raises(DmlSyntaxError, match="position"):
            parse_expression("X %*% )")


class TestParseThenRewrite:
    def test_listing1_statement_fuses(self, env):
        """The paper's hot statement, straight from text to fused kernel."""
        _, node = parse_assignment(
            "q = t(V) %*% (V %*% p) + 0.001 * p")
        r = rewrite(node)
        assert len(fused_nodes(r)) == 1
        f = fused_nodes(r)[0]
        assert f.inner and f.beta == pytest.approx(0.001)
        expected = fused_pattern_reference(env["V"], env["p"],
                                           z=env["p"], beta=0.001)
        np.testing.assert_allclose(r.eval(env), expected, rtol=1e-10)

    def test_full_pattern_with_subtraction(self, env):
        node = parse_expression(
            "2 * t(X) %*% (v * (X %*% y)) - 0.5 * z")
        r = rewrite(node)
        f = fused_nodes(r)
        assert len(f) == 1
        assert f[0].alpha == 2.0 and f[0].beta == -0.5
        expected = fused_pattern_reference(env["X"], env["y"], env["v"],
                                           env["z"], 2.0, -0.5)
        np.testing.assert_allclose(r.eval(env), expected, rtol=1e-10)

    def test_same_name_matrices_fuse_across_nodes(self, env):
        """The parser creates distinct Input nodes per mention; the
        rewriter must still recognize the same matrix by name."""
        node = parse_expression("t(X) %*% (X %*% y)")
        r = rewrite(node)
        assert len(fused_nodes(r)) == 1
        assert fused_nodes(r)[0].inner

    def test_different_names_do_not_fuse_as_inner(self, env, rng):
        env = dict(env)
        env["B"] = random_csr(50, 12, 0.3, rng=9)
        node = parse_expression("t(X) %*% (B %*% y)")
        r = rewrite(node)
        inner_fused = [f for f in fused_nodes(r) if f.inner]
        assert not inner_fused
        expected = spmv_t(env["X"], spmv(env["B"], env["y"]))
        np.testing.assert_allclose(r.eval(env), expected, rtol=1e-10)
