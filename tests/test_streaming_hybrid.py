"""Out-of-core streaming and hybrid CPU/GPU execution of the pattern."""

import numpy as np
import pytest

from repro.core import GenericPattern, HybridExecutor, StreamingExecutor, \
    plan_blocks
from repro.gpu.device import GTX_TITAN
from repro.kernels.base import GpuContext
from repro.sparse import random_csr
from repro.sparse.ops import fused_pattern_reference


@pytest.fixture(scope="module")
def problem():
    X = random_csr(8000, 200, 0.03, rng=1)
    rng = np.random.default_rng(2)
    y = rng.normal(size=200)
    v = rng.normal(size=8000)
    z = rng.normal(size=200)
    return X, y, v, z


class TestRowBlocks:
    def test_row_block_content(self, small_csr):
        sub = small_csr.row_block(10, 30)
        np.testing.assert_allclose(sub.to_dense(),
                                   small_csr.to_dense()[10:30])

    def test_row_block_bounds(self, small_csr):
        with pytest.raises(ValueError):
            small_csr.row_block(5, 3)
        with pytest.raises(ValueError):
            small_csr.row_block(0, small_csr.m + 1)

    def test_pattern_additive_over_blocks(self, small_csr, rng):
        """The decomposition streaming relies on."""
        y = rng.normal(size=small_csr.n)
        mid = small_csr.m // 2
        a = fused_pattern_reference(small_csr.row_block(0, mid), y)
        b = fused_pattern_reference(small_csr.row_block(mid, small_csr.m), y)
        np.testing.assert_allclose(a + b,
                                   fused_pattern_reference(small_csr, y),
                                   rtol=1e-9)

    def test_plan_blocks_cover_all_rows(self, problem):
        X, *_ = problem
        blocks = plan_blocks(X, X.nbytes() / 5)
        assert blocks[0][0] == 0 and blocks[-1][1] == X.m
        for (s1, e1), (s2, e2) in zip(blocks, blocks[1:]):
            assert e1 == s2
        assert len(blocks) >= 5

    def test_plan_blocks_budget_respected(self, problem):
        X, *_ = problem
        budget = X.nbytes() / 4
        for s, e in plan_blocks(X, budget):
            if e - s > 1:      # single-row blocks may legitimately exceed
                assert X.row_block(s, e).nbytes() <= budget

    def test_plan_blocks_invalid_budget(self, problem):
        with pytest.raises(ValueError):
            plan_blocks(problem[0], 0)


class TestStreaming:
    def test_streamed_result_exact(self, problem):
        X, y, v, z = problem
        p = GenericPattern(X, y, v=v, z=z, alpha=1.5, beta=-0.3)
        rep = StreamingExecutor(budget_bytes=X.nbytes() / 6).evaluate(p)
        expected = fused_pattern_reference(X, y, v, z, 1.5, -0.3)
        np.testing.assert_allclose(rep.output, expected, rtol=1e-9)
        assert rep.blocks >= 6

    def test_single_block_when_it_fits(self, problem):
        X, y, *_ = problem
        p = GenericPattern(X, y)
        rep = StreamingExecutor().evaluate(p)     # default: 40% of 6 GB
        assert rep.blocks == 1

    def test_overlap_beats_serial(self, problem):
        X, y, *_ = problem
        p = GenericPattern(X, y)
        ex = StreamingExecutor(budget_bytes=X.nbytes() / 10)
        rep = ex.evaluate(p)
        assert rep.overlapped_ms < ex.serial_time_ms(rep)

    def test_dense_input_streams_too(self, rng):
        X = rng.normal(size=(3000, 64))
        y = rng.normal(size=64)
        p = GenericPattern(X, y)
        rep = StreamingExecutor(
            budget_bytes=X.nbytes / 4).evaluate(p)
        np.testing.assert_allclose(rep.output, X.T @ (X @ y), rtol=1e-9)
        assert rep.blocks >= 4

    def test_outer_pattern_rejected(self, problem):
        X, *_ = problem
        p = GenericPattern(X, np.ones(X.m), inner=False)
        with pytest.raises(ValueError, match="inner"):
            StreamingExecutor().evaluate(p)


class TestHybrid:
    def test_result_exact_at_any_split(self, problem):
        X, y, v, z = problem
        p = GenericPattern(X, y, v=v, z=z, alpha=2.0, beta=0.5)
        expected = fused_pattern_reference(X, y, v, z, 2.0, 0.5)
        for f in (0.0, 0.3, 0.7, 1.0):
            rep = HybridExecutor().evaluate(p, fraction=f)
            np.testing.assert_allclose(rep.output, expected, rtol=1e-9,
                                       err_msg=f"f={f}")

    def test_endpoints(self, problem):
        X, y, *_ = problem
        p = GenericPattern(X, y)
        ex = HybridExecutor()
        pure_gpu = ex.evaluate(p, 1.0)
        pure_cpu = ex.evaluate(p, 0.0)
        assert pure_gpu.cpu_ms == 0.0 and pure_gpu.gpu_ms > 0.0
        assert pure_cpu.gpu_ms == 0.0 and pure_cpu.cpu_ms > 0.0

    def test_optimal_never_worse_than_endpoints(self, problem):
        X, y, *_ = problem
        p = GenericPattern(X, y)
        ex = HybridExecutor()
        f = ex.optimal_split(p)
        opt = ex.evaluate(p, f)
        assert opt.makespan_ms <= ex.evaluate(p, 1.0).makespan_ms + 1e-9
        assert opt.makespan_ms <= ex.evaluate(p, 0.0).makespan_ms + 1e-9

    def test_slow_gpu_shifts_split_to_cpu(self, problem):
        """With a crippled device the optimal split moves toward the CPU."""
        X, y, *_ = problem
        p = GenericPattern(X, y)
        fast = HybridExecutor().optimal_split(p)
        slow_dev = GTX_TITAN.with_(global_bandwidth_gbps=2.0,
                                   kernel_launch_us=0.0)
        slow = HybridExecutor(ctx=GpuContext(slow_dev)).optimal_split(p)
        assert slow < fast or slow < 1.0

    def test_invalid_fraction(self, problem):
        X, y, *_ = problem
        p = GenericPattern(X, y)
        with pytest.raises(ValueError):
            HybridExecutor().evaluate(p, fraction=1.5)

    def test_balance_metric(self, problem):
        X, y, *_ = problem
        p = GenericPattern(X, y)
        rep = HybridExecutor().evaluate(p, 0.5)
        assert 0.0 <= rep.balance <= 1.0
