"""Kernel tracing, matrix/dataset I/O, and the command-line interface."""

import numpy as np
import pytest

from repro import evaluate
from repro.cli import main as cli_main
from repro.data import (from_scipy, load_csr, load_dataset, save_csr,
                        save_dataset, to_scipy)
from repro.gpu import summarize, tracing
from repro.gpu.device import GTX_TITAN
from repro.kernels.base import GpuContext
from repro.ml import MLRuntime, linreg_cg
from repro.data.synthetic import regression_targets
from repro.sparse import random_csr


class TestTracing:
    def test_trace_records_kernels(self, medium_csr, rng):
        ctx = GpuContext(GTX_TITAN)
        y = rng.normal(size=medium_csr.n)
        with tracing(ctx) as trace:
            evaluate(medium_csr, y, strategy="cusparse", ctx=ctx)
        assert len(trace) == 2           # csrmv + csrmv_transpose
        names = [r.name for r in trace]
        assert "cusparse.csrmv" in names

    def test_trace_detached_after_context(self, medium_csr, rng):
        ctx = GpuContext(GTX_TITAN)
        y = rng.normal(size=medium_csr.n)
        with tracing(ctx) as trace:
            evaluate(medium_csr, y, strategy="fused", ctx=ctx)
        n = len(trace)
        evaluate(medium_csr, y, strategy="fused", ctx=ctx)
        assert len(trace) == n           # no recording outside the context

    def test_summary_aggregates(self, medium_csr, rng):
        ctx = GpuContext(GTX_TITAN)
        y = rng.normal(size=medium_csr.n)
        with tracing(ctx) as trace:
            for _ in range(3):
                evaluate(medium_csr, y, strategy="fused", ctx=ctx)
        report = summarize(trace)
        assert report.total_calls == 3
        k = report.kernels[0]
        assert k.calls == 3
        assert k.total_ms == pytest.approx(3 * k.mean_ms)
        assert report.fraction(k.name) == pytest.approx(1.0)

    def test_report_text_and_lookup(self, medium_csr, rng):
        ctx = GpuContext(GTX_TITAN)
        y = rng.normal(size=medium_csr.n)
        with tracing(ctx) as trace:
            evaluate(medium_csr, y, strategy="cusparse", ctx=ctx)
        report = summarize(trace)
        text = report.to_text()
        assert "cusparse.csrmv" in text and "calls" in text
        assert report["cusparse.csrmv"].calls == 1
        with pytest.raises(KeyError):
            report["nonexistent"]

    def test_ml_run_trace_shows_pattern_dominance(self, rng):
        """An end-to-end CG trace: the fused pattern must dominate."""
        ctx = GpuContext(GTX_TITAN)
        X = random_csr(20_000, 256, 0.02, rng=1)
        y, _ = regression_targets(X, rng=2)
        with tracing(ctx) as trace:
            linreg_cg(X, y, MLRuntime("gpu-fused", ctx=ctx),
                      max_iterations=10, include_transfer=False)
        report = summarize(trace)
        hot = report.kernels[0]
        assert hot.name.startswith("fused.")
        # the fused pattern is the single hottest kernel (at this small
        # scale BLAS-1 launch overheads keep its share below Table 2's 83%+)
        assert report.fraction(hot.name) > 0.3
        assert hot.total_ms >= max(k.total_ms for k in report.kernels)


class TestIo:
    def test_csr_roundtrip(self, tmp_path, small_csr):
        p = tmp_path / "x.npz"
        save_csr(p, small_csr)
        loaded = load_csr(p)
        assert loaded == small_csr

    def test_load_rejects_wrong_kind(self, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez(p, a=np.ones(3))
        with pytest.raises(ValueError, match="not a saved CSR"):
            load_csr(p)

    def test_dataset_roundtrip_sparse(self, tmp_path, small_csr, rng):
        y = rng.normal(size=small_csr.m)
        w = rng.normal(size=small_csr.n)
        p = tmp_path / "d.npz"
        save_dataset(p, small_csr, y, w_true=w)
        X2, y2, extras = load_dataset(p)
        assert X2 == small_csr
        np.testing.assert_array_equal(y2, y)
        np.testing.assert_array_equal(extras["w_true"], w)

    def test_dataset_roundtrip_dense(self, tmp_path, rng):
        X = rng.normal(size=(20, 5))
        y = rng.normal(size=20)
        p = tmp_path / "d.npz"
        save_dataset(p, X, y)
        X2, y2, extras = load_dataset(p)
        np.testing.assert_array_equal(X2, X)
        assert extras == {}

    def test_reserved_extra_name(self, tmp_path, small_csr, rng):
        with pytest.raises(ValueError, match="reserved"):
            save_dataset(tmp_path / "d.npz", small_csr,
                         rng.normal(size=small_csr.m),
                         values=np.ones(3))

    def test_scipy_interop(self, small_csr, rng):
        S = to_scipy(small_csr)
        y = rng.normal(size=small_csr.n)
        np.testing.assert_allclose(S @ y, small_csr.to_dense() @ y,
                                   rtol=1e-12)
        back = from_scipy(S)
        assert back == small_csr


class TestCli:
    def test_evaluate_synthetic(self, capsys):
        rc = cli_main(["evaluate", "2000x128:0.05",
                       "--strategies", "fused", "cusparse"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fused" in out and "speedup" in out

    def test_evaluate_from_file(self, tmp_path, capsys, small_csr):
        p = tmp_path / "x.npz"
        save_csr(p, small_csr)
        rc = cli_main(["evaluate", str(p), "--strategies", "fused",
                       "--with-v", "--beta", "0.5"])
        assert rc == 0

    def test_tune_sparse(self, capsys):
        rc = cli_main(["tune", "5000x300:0.02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VS=" in out and "variant=" in out

    def test_generate_and_script(self, tmp_path, capsys):
        data = tmp_path / "d.npz"
        rc = cli_main(["generate", "kdd", str(data), "--scale", "0.0005",
                       "--targets"])
        assert rc == 0
        dml = tmp_path / "s.dml"
        dml.write_text('V = read($1); y = read($2);\n'
                       'r = t(V) %*% y;\nwrite(r, "r");\n')
        rc = cli_main(["script", str(dml), str(data)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "output 'r'" in out

    def test_bad_matrix_spec(self):
        with pytest.raises(SystemExit):
            cli_main(["evaluate", "not-a-spec"])

    def test_generate_sweep_matrix(self, tmp_path):
        p = tmp_path / "m.npz"
        rc = cli_main(["generate", "sweep", str(p), "--m", "500",
                       "--n", "64"])
        assert rc == 0
        X = load_csr(p)
        assert X.shape == (500, 64)

    def test_report_command_stubbed(self, tmp_path, monkeypatch, capsys):
        import repro.bench.report as report_mod

        written = {}

        def fake_generate(path):
            written["path"] = path
            return "stub"

        monkeypatch.setattr(report_mod, "generate", fake_generate)
        out = tmp_path / "E.md"
        rc = cli_main(["report", "--output", str(out)])
        assert rc == 0
        assert written["path"] == str(out)

    def test_tune_with_sweep(self, capsys):
        rc = cli_main(["tune", "3000x200:0.02", "--sweep"])
        assert rc == 0
        assert "model gap" in capsys.readouterr().out
