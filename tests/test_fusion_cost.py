"""Cost-model ground-truthing: predicted counters == executed counters.

The optimizer costs candidates by *probing* the kernel model with
zero-valued vectors (structure decides the counters, values never do).
These tests pin that contract three ways:

1. the probe's fused counters equal the counters of the kernel that
   actually runs when the candidate's lowered DAG executes;
2. cell-wise counters follow the closed-form transaction model across a
   small (n, VS, TL) grid, independent of input values;
3. the sparse Eq.-1 model's atomic counts match the SIMT engine's
   *replayed* per-thread atomics for the same launch geometry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.counters import PerfCounters
from repro.gpu.memory import coalesced_transactions
from repro.gpu.occupancy import Occupancy
from repro.gpu.simt import SimtEngine
from repro.kernels.cellwise import CellwiseProgram, cellwise_params, fused_cellwise
from repro.kernels.simt_kernels import run_alg2
from repro.kernels.sparse_fused import fused_pattern_sparse
from repro.sparse.generate import random_csr
from repro.sparse.ops import spmv, spmv_t
from repro.tuning.sparse_params import (
    SPARSE_KERNEL_REGISTERS,
    SparseParams,
    shared_bytes_needed,
)
from repro.systemml.fusion import (
    SHIPPED_DML,
    cost_candidate,
    enumerate_candidates,
    evaluate_dag,
    index_dag,
    infer_shapes,
    lower,
    make_env,
)

SCRIPTS = sorted(SHIPPED_DML)


@pytest.mark.parametrize("name", SCRIPTS)
def test_probe_counters_match_executed_counters(name):
    """Zero-probe cost counters == real-value execution counters, exactly."""
    spec = SHIPPED_DML[name]
    X = random_csr(120, 32, 0.08, rng=6)
    env = make_env(spec, X, rng=13)
    root = spec.parse()
    index = index_dag(root)
    shapes = infer_shapes(index, env)
    cands = enumerate_candidates(index, shapes)
    assert cands, name
    for cand in cands:
        pc = cost_candidate(cand, env, shapes, index)
        lowered = lower(root, [cand])
        results = []
        evaluate_dag(lowered, env, results=results)
        fused = [r for r in results if r.name.startswith("fused.")]
        assert len(fused) == 1, (name, cand.label, [r.name for r in results])
        assert fused[0].counters.as_dict() == pc.fused_counters.as_dict(), \
            (name, cand.label)
        assert fused[0].time_ms == pc.fused.time_ms


@pytest.mark.parametrize("name", SCRIPTS)
def test_unfused_cost_matches_member_execution(name):
    """The unfused estimate prices one kernel per non-transpose member."""
    spec = SHIPPED_DML[name]
    X = random_csr(90, 24, 0.1, rng=8)
    env = make_env(spec, X, rng=14)
    root = spec.parse()
    index = index_dag(root)
    shapes = infer_shapes(index, env)
    for cand in enumerate_candidates(index, shapes):
        pc = cost_candidate(cand, env, shapes, index)
        n_kernels = sum(1 for m in cand.members
                        if type(m).__name__ != "Transpose")
        assert pc.unfused.launches == n_kernels, (name, cand.label)
        assert pc.unfused.time_ms > pc.fused.time_ms or \
            pc.saving_ms <= 0.0  # consistency of the saving signal
        # the fused form always launches fewer kernels
        assert pc.fused.launches < pc.unfused.launches or n_kernels == 1


@pytest.mark.parametrize("n,vs,tl", [(8, 4, 2), (16, 4, 4), (32, 8, 4),
                                     (24, 8, 3), (64, 16, 4)])
def test_cellwise_counter_model_on_grid(n, vs, tl):
    """Cell-wise counters follow the closed form on an (n, VS, TL) grid
    and are invariant to the input values (the probing premise)."""
    program = CellwiseProgram(
        expr=("add", ("ewmul", ("in", 0), ("in", 1)),
              ("smul", 0.5, ("in", 2))),
        n_inputs=3)
    rng = np.random.default_rng(n)
    real = [rng.standard_normal(n) for _ in range(3)]
    zero = [np.zeros(n) for _ in range(3)]
    res_real = fused_cellwise(program, real, vs=vs, tl=tl)
    res_zero = fused_cellwise(program, zero, vs=vs, tl=tl)
    assert res_real.counters.as_dict() == res_zero.counters.as_dict()
    assert res_real.time_ms == res_zero.time_ms
    c = res_real.counters
    assert c.global_load_transactions == \
        coalesced_transactions(3 * n * 8)
    assert c.global_store_transactions == coalesced_transactions(n * 8)
    assert c.flops == program.op_count * n
    assert c.kernel_launches == 1


def test_cellwise_params_tile_the_width():
    for n in (1, 2, 3, 4, 7, 8, 12, 16, 33, 64, 100):
        vs, tl = cellwise_params(n)
        assert vs * tl >= n
        assert tl <= 4


def test_probe_counters_value_independent_eq1():
    """Eq.-1 sparse counters depend only on structure, never on values."""
    X = random_csr(64, 20, 0.2, rng=9)
    rng = np.random.default_rng(10)
    y_real, v_real, z_real = (rng.standard_normal(20), rng.standard_normal(64),
                              rng.standard_normal(20))
    real = fused_pattern_sparse(X, y_real, v=v_real, z=z_real,
                                alpha=1.5, beta=0.5)
    zero = fused_pattern_sparse(X, np.zeros(20), v=np.zeros(64),
                                z=np.zeros(20), alpha=1.5, beta=0.5)
    assert real.counters.as_dict() == zero.counters.as_dict()
    assert real.time_ms == zero.time_ms


# --------------------------------------------------- SIMT replay parity --

def _small_params(n, VS=4, BS=32, grid=2, C=1):
    occ = Occupancy(blocks_per_sm=1, warps_per_block=max(1, BS // 32),
                    limited_by="test")
    return SparseParams(
        vector_size=VS, block_size=BS, coarsening=C, grid_size=grid,
        shared_bytes=shared_bytes_needed(BS, VS, n),
        registers=SPARSE_KERNEL_REGISTERS, variant="shared", occupancy=occ)


@pytest.mark.parametrize("beta", [0.0, 0.5])
def test_sparse_model_atomics_match_simt_replay(beta):
    """Model atomic counts == SIMT per-thread replay counts.

    The counter model claims ``nnz`` shared atomics (one per scatter) and
    ``grid * n`` global atomics for the mirror flush, plus ``n`` more when
    the ``beta * z`` epilogue is live.  Replaying Algorithm 2 thread by
    thread on the SIMT engine must produce exactly those counts.
    """
    m, n, VS, BS, GRID = 32, 24, 4, 32, 2
    X = random_csr(m, n, 0.25, rng=7)
    rng = np.random.default_rng(8)
    y, v, z = (rng.standard_normal(n), rng.standard_normal(m),
               rng.standard_normal(n))
    C = max(1, -(-m // (GRID * (BS // VS))))
    params = _small_params(n, VS=VS, BS=BS, grid=GRID, C=C)

    res = fused_pattern_sparse(X, y, v=v, z=z, alpha=1.5, beta=beta,
                               params=params)
    eng = SimtEngine()
    w = run_alg2(eng, X, y, v=v, z=z, alpha=1.5, beta=beta,
                 VS=VS, block_size=BS, grid_size=GRID, variant="shared")

    expect_shared = X.nnz
    expect_global = GRID * n + (n if beta else 0)
    assert eng.stats.atomic_shared == expect_shared
    assert eng.stats.atomic_global == expect_global
    assert res.counters.atomic_shared_ops == expect_shared
    assert res.counters.atomic_global_ops == expect_global
    # and both agree with the reference numerics
    ref = 1.5 * spmv_t(X, v * spmv(X, y)) + beta * z
    assert np.allclose(w, ref)
    assert np.allclose(np.asarray(res.output), ref)


def test_probe_grid_matches_simt_across_shapes():
    """Sweep a small (m, n) grid: model shared/global atomics track the
    replayed counts for every shape."""
    for m, n, density in [(16, 8, 0.4), (24, 16, 0.25), (48, 12, 0.15)]:
        X = random_csr(m, n, density, rng=m + n)
        y = np.random.default_rng(m).standard_normal(n)
        VS, BS, GRID = 4, 32, 2
        C = max(1, -(-m // (GRID * (BS // VS))))
        params = _small_params(n, VS=VS, BS=BS, grid=GRID, C=C)
        res = fused_pattern_sparse(X, y, params=params)
        eng = SimtEngine()
        run_alg2(eng, X, y, VS=VS, block_size=BS, grid_size=GRID,
                 variant="shared")
        assert res.counters.atomic_shared_ops == eng.stats.atomic_shared, \
            (m, n)
        assert res.counters.atomic_global_ops == eng.stats.atomic_global, \
            (m, n)


def test_counters_add_is_fieldwise():
    a, b = PerfCounters(), PerfCounters()
    a.flops, b.flops = 3.0, 4.0
    a.kernel_launches, b.kernel_launches = 1, 2
    a.add(b)
    assert a.flops == 7.0 and a.kernel_launches == 3
