"""Workload traces: synthesis determinism, validation, replay semantics."""

import json

import numpy as np
import pytest

from repro.core.engine import PatternEngine
from repro.serve import (PatternServer, ServerConfig, build_matrices,
                         format_report, load_workload, materialize_request,
                         materialize_requests, percentile, run_workload,
                         save_workload, synthesize_workload, zipf_weights)


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        w = zipf_weights(8, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert all(a > b for a, b in zip(w, w[1:]))

    def test_zero_skew_is_uniform(self):
        assert np.allclose(zipf_weights(5, 0.0), 0.2)

    def test_needs_a_rank(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestSynthesize:
    def test_deterministic_given_seed(self):
        kw = dict(matrices=4, requests=30, rows=200, cols=16, seed=7,
                  rate_rps=50.0, deadline_ms=100.0, deadline_spread=0.5)
        assert synthesize_workload(**kw) == synthesize_workload(**kw)
        other = synthesize_workload(**{**kw, "seed": 8})
        assert other != synthesize_workload(**kw)

    def test_structure(self):
        t = synthesize_workload(matrices=3, requests=20, rows=100, cols=8,
                                sparsity=0.2, rate_rps=100.0,
                                deadline_ms=50.0, strategy="cusparse")
        assert t["version"] == 1 and t["mode"] == "open"
        assert len(t["matrices"]) == 3 and len(t["requests"]) == 20
        assert {m["spec"] for m in t["matrices"]} == {"100x8:0.2"}
        arrivals = [r["at_ms"] for r in t["requests"]]
        assert arrivals == sorted(arrivals) and arrivals[-1] > 0
        assert all(r["strategy"] == "cusparse" for r in t["requests"])
        assert all(r["deadline_ms"] == 50.0 for r in t["requests"])

    def test_burst_when_no_rate(self):
        t = synthesize_workload(matrices=2, requests=5, rows=50, cols=8)
        assert all(r["at_ms"] == 0.0 for r in t["requests"])

    def test_json_serializable(self):
        t = synthesize_workload(matrices=2, requests=5, rows=50, cols=8)
        assert json.loads(json.dumps(t)) == t

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            synthesize_workload(mode="oscillating")
        with pytest.raises(ValueError, match="at least one"):
            synthesize_workload(matrices=0)
        with pytest.raises(ValueError, match="deadline_spread"):
            synthesize_workload(deadline_spread=1.0)


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        t = synthesize_workload(matrices=2, requests=6, rows=80, cols=8)
        path = tmp_path / "trace.json"
        save_workload(path, t)
        assert load_workload(path) == t

    @pytest.mark.parametrize("mutate, msg", [
        (lambda t: t.update(version=99), "version"),
        (lambda t: t.update(mode="poke"), "mode"),
        (lambda t: t.update(matrices=[]), "no matrices"),
        (lambda t: t.update(requests=[]), "no requests"),
        (lambda t: t["matrices"][0].pop("spec"), "missing 'spec'"),
        (lambda t: t["requests"][0].update(matrix="ghost"),
         "unknown matrix"),
    ])
    def test_rejects_malformed(self, tmp_path, mutate, msg):
        t = synthesize_workload(matrices=2, requests=6, rows=80, cols=8)
        mutate(t)
        path = tmp_path / "bad.json"
        save_workload(path, t)
        with pytest.raises(ValueError, match=msg):
            load_workload(path)

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_workload(path)

    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="JSON object"):
            load_workload(path)


class TestMaterialize:
    def test_matrices_match_spec_and_seed(self):
        t = synthesize_workload(matrices=3, requests=5, rows=120, cols=16,
                                sparsity=0.1, seed=3)
        mats = build_matrices(t)
        assert set(mats) == {"m0", "m1", "m2"}
        for X in mats.values():
            assert X.shape == (120, 16)
        again = build_matrices(t)
        for name in mats:
            assert np.array_equal(mats[name].values, again[name].values)

    def test_requests_are_seed_deterministic(self):
        t = synthesize_workload(matrices=2, requests=4, rows=60, cols=8,
                                beta=0.5)
        mats = build_matrices(t)
        r1 = materialize_request(t["requests"][0], mats["m0"])
        r2 = materialize_request(t["requests"][0], mats["m0"])
        assert np.array_equal(r1.y, r2.y)
        assert r1.beta == 0.5 and r1.z is not None

    def test_zero_beta_drops_z(self):
        t = synthesize_workload(matrices=1, requests=2, rows=60, cols=8,
                                beta=0.0)
        reqs = materialize_requests(t)
        assert all(r.z is None for r in reqs)

    def test_materialize_requests_order(self):
        t = synthesize_workload(matrices=2, requests=7, rows=60, cols=8)
        reqs = materialize_requests(t)
        assert len(reqs) == 7


class TestPercentile:
    def test_exact(self):
        vals = list(range(1, 101))
        assert percentile(vals, 0.50) == pytest.approx(50.5)
        assert percentile(vals, 1.00) == 100.0
        assert percentile([], 0.99) == 0.0


class TestRunWorkload:
    @pytest.fixture()
    def server(self):
        srv = PatternServer(PatternEngine(), ServerConfig(
            queue_capacity=64, max_batch=8, workers=2))
        yield srv
        srv.stop()

    def test_open_burst_with_verify(self, server):
        t = synthesize_workload(matrices=2, requests=12, rows=150, cols=12,
                                sparsity=0.2, seed=5)
        report = run_workload(server, t, verify=True)
        assert report["completed"] == 12
        assert report["by_status"] == {"ok": 12}
        assert report["divergent"] == 0
        assert report["latency_ms"]["p99"] >= report["latency_ms"]["p50"] > 0

    def test_closed_loop(self, server):
        t = synthesize_workload(matrices=2, requests=10, rows=100, cols=10,
                                mode="closed", concurrency=3, seed=2)
        report = run_workload(server, t)
        assert report["mode"] == "closed"
        assert report["completed"] == 10
        assert report["divergent"] is None     # verify off
        assert report["warm_fraction"] >= 0.0

    def test_paced_open_loop(self, server):
        t = synthesize_workload(matrices=1, requests=5, rows=80, cols=8,
                                rate_rps=500.0, seed=4)
        report = run_workload(server, t)
        assert report["completed"] == 5
        # pacing means the wall clock covers the arrival span
        assert report["wall_s"] * 1e3 >= t["requests"][-1]["at_ms"]

    def test_format_report_lines(self, server):
        t = synthesize_workload(matrices=1, requests=4, rows=80, cols=8)
        text = format_report(run_workload(server, t, verify=True))
        for needle in ("mode:", "latency:", "p99", "warm:",
                       "0 divergent outputs"):
            assert needle in text
