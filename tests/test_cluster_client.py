"""Cluster clients over the router's socket front door, plus loadgen.

Covers the three client surfaces against one live cluster: the blocking
:class:`SocketClusterClient` (pipelined rid-matched futures), the asyncio
:class:`AsyncClusterClient`, and the trace-driven
:func:`run_cluster_workload` loadgen path with bit-identity verification.
Transport loss on the client side resolves ``error`` responses — same
no-exceptions contract the rest of the serving stack keeps.
"""

import asyncio

import numpy as np
import pytest

from repro.cluster import (AsyncClusterClient, ClusterClient, ClusterConfig,
                           ClusterRequest, ShardRouter, SocketClusterClient,
                           STATUS_ERROR, WorkerConfig, run_cluster_workload,
                           format_cluster_report)
from repro.core.api import evaluate as evaluate_uncached
from repro.serve.loadgen import synthesize_workload
from repro.sparse import random_csr

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def cluster():
    router = ShardRouter(ClusterConfig(
        shards=2, heartbeat_interval_s=0.1,
        worker=WorkerConfig(max_batch=8, batch_linger_ms=0.5)))
    port = router.listen()
    yield router, port
    router.stop()


# ------------------------------------------------------------ socket client
def test_socket_client_roundtrip(cluster):
    router, port = cluster
    X = random_csr(150, 24, 0.08, rng=10)
    rng = np.random.default_rng(10)
    y = rng.normal(size=X.n)
    with SocketClusterClient(port=port) as client:
        fp = client.register(X)
        resp = client.evaluate(ClusterRequest(fp, y, strategy="fused"),
                               timeout=60)
        assert resp.ok, resp
        ref = evaluate_uncached(X, y, strategy="fused")
        assert np.array_equal(resp.result.output, ref.output)


def test_socket_client_pipelines_many(cluster):
    router, port = cluster
    X = random_csr(150, 24, 0.08, rng=11)
    rng = np.random.default_rng(11)
    with SocketClusterClient(port=port) as client:
        fp = client.register(X)
        futures = [client.submit(
            ClusterRequest(fp, rng.normal(size=X.n), strategy="fused"))
            for _ in range(20)]
        responses = [f.result(timeout=60) for f in futures]
        assert all(r.ok for r in responses)
        assert {r.id for r in responses}      # distinct router ids


def test_socket_client_metrics_and_ping(cluster):
    router, port = cluster
    with SocketClusterClient(port=port) as client:
        pong = client.ping()
        assert pong["shards"] == 2
        snap = client.metrics()
        assert "aggregate" in snap and "counters" in snap


def test_socket_client_close_resolves_pending(cluster):
    router, port = cluster
    client = SocketClusterClient(port=port)
    X = random_csr(150, 24, 0.08, rng=12)
    fp = client.register(X)
    future = client.submit(ClusterRequest(fp, np.zeros(X.n)))
    client.close()
    resp = future.result(timeout=10)
    # either the reply won the race or the close failed it -- never a hang
    assert resp.status in ("ok", STATUS_ERROR)


# ------------------------------------------------------------- async client
def test_async_client_roundtrip(cluster):
    router, port = cluster

    async def scenario():
        client = await AsyncClusterClient.connect(port=port)
        try:
            X = random_csr(150, 24, 0.08, rng=13)
            rng = np.random.default_rng(13)
            y = rng.normal(size=X.n)
            fp = await client.register(X)
            resp = await client.evaluate(
                ClusterRequest(fp, y, strategy="fused"))
            assert resp.ok, resp
            ref = evaluate_uncached(X, y, strategy="fused")
            assert np.array_equal(resp.result.output, ref.output)
            # concurrent submissions share the one connection
            many = await asyncio.gather(*[
                client.evaluate(ClusterRequest(
                    fp, rng.normal(size=X.n), strategy="fused"))
                for _ in range(10)])
            assert all(r.ok for r in many)
            pong = await client.ping()
            assert pong["shards"] == 2
            snap = await client.metrics()
            assert snap["counters"]["submitted"] >= 11
        finally:
            await client.close()

    asyncio.run(scenario())


# ------------------------------------------------------------------ loadgen
def test_loadgen_replay_verified_zero_divergence(cluster):
    router, _ = cluster
    trace = synthesize_workload(matrices=4, requests=40, rows=150, cols=24,
                                mode="open", strategy="fused", seed=20)
    report = run_cluster_workload(ClusterClient(router), trace, verify=True)
    assert report["by_status"].get("ok") == 40
    assert report["divergent"] == 0
    assert sum(report["by_shard"].values()) == 40
    text = format_cluster_report(report)
    assert "verified:    0 divergent" in text
    assert "shards:" in text


def test_loadgen_closed_loop(cluster):
    router, _ = cluster
    trace = synthesize_workload(matrices=2, requests=20, rows=150, cols=24,
                                mode="closed", concurrency=4,
                                strategy="fused", seed=21)
    report = run_cluster_workload(router, trace)
    assert report["completed"] == 20
    assert report["mode"] == "closed"
    assert report["divergent"] is None
