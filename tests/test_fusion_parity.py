"""Differential plan-testing harness: every candidate vs the unfused DAG.

The optimizer is only trustworthy if *every* plan it could pick computes the
same answer as the unfused baseline.  These tests sweep each enumerated
candidate in isolation (lowered solo), the chosen plan, and the legacy
pattern-matched path, asserting bit-identity on seeded inputs for every
shipped DML script — plus randomized DAGs via hypothesis.

Bit-identity holds because the simulated kernels reduce in the same order
as the NumPy reference on these paths: sparse Eq. 1, cell-wise chains and
row-aggregations are all evaluated with the identical floating-point
association.  (Dense Eq. 1 uses a tiled ``mtmvm`` reduction that is only
approximately equal, so the sweeps bind X sparse.)
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.generate import random_csr
from repro.systemml.dag import Add, EwMul, Input, MatVec, Smul, Transpose
from repro.systemml.parser import parse_expression
from repro.systemml.rewriter import rewrite
from repro.systemml.fusion import (
    SHIPPED_DML,
    clone_dag,
    enumerate_candidates,
    evaluate_dag,
    index_dag,
    infer_shapes,
    lower,
    make_env,
    optimize,
)

SCRIPTS = sorted(SHIPPED_DML)


def _sparse_env(name, m=200, n=48, density=0.06, rng=3):
    spec = SHIPPED_DML[name]
    X = random_csr(m, n, density, rng=rng)
    env = make_env(spec, X, rng=11)
    return spec.parse(), env


def _candidates(root, env):
    index = index_dag(root)
    shapes = infer_shapes(index, env)
    return enumerate_candidates(index, shapes)


@pytest.mark.parametrize("name", SCRIPTS)
def test_every_candidate_bit_identical_solo(name):
    """Each candidate, lowered alone, matches the unfused baseline bitwise."""
    root, env = _sparse_env(name)
    baseline = np.asarray(root.eval(env), dtype=np.float64)
    cands = _candidates(root, env)
    assert cands, f"no candidates enumerated for {name}"
    for cand in cands:
        lowered = lower(root, [cand])
        got_eval = np.asarray(lowered.eval(env), dtype=np.float64)
        got_exec = np.asarray(evaluate_dag(lowered, env), dtype=np.float64)
        assert np.array_equal(got_eval, baseline), (name, cand.label, "eval")
        assert np.array_equal(got_exec, baseline), (name, cand.label, "exec")


@pytest.mark.parametrize("name", SCRIPTS)
def test_chosen_plan_bit_identical(name):
    """The cost-selected plan matches the baseline bitwise end to end."""
    root, env = _sparse_env(name)
    baseline = np.asarray(root.eval(env), dtype=np.float64)
    plan = optimize(root, env, expression=SHIPPED_DML[name].dml)
    lowered = plan.lowered()
    got = np.asarray(evaluate_dag(lowered, env), dtype=np.float64)
    assert np.array_equal(got, baseline), name
    assert plan.baseline.time_ms > 0.0


@pytest.mark.parametrize("name", SCRIPTS)
def test_pattern_path_agrees(name):
    """The legacy hand-matched rewriter path agrees with both others."""
    root, env = _sparse_env(name)
    baseline = np.asarray(root.eval(env), dtype=np.float64)
    patterned = rewrite(clone_dag(root))
    got = np.asarray(evaluate_dag(patterned, env), dtype=np.float64)
    assert np.array_equal(got, baseline), name


@pytest.mark.parametrize("name", ["linreg-cg", "logreg", "svm"])
def test_eq1_rediscovered_by_cost(name):
    """The acceptance criterion: cost selection alone rediscovers Eq. 1.

    No pattern matching is consulted — the optimizer picks the fused
    Eq.-1 kernel purely because the counter model says it is cheaper.
    """
    root, env = _sparse_env(name)
    plan = optimize(root, env, expression=SHIPPED_DML[name].dml)
    kinds = [c.kind for c in plan.chosen_candidates()]
    assert "eq1" in kinds, (name, kinds)
    assert plan.saving_ms > 0.0


@pytest.mark.parametrize("name", ["cg-update", "row-scale"])
def test_dense_cellwise_paths_bit_identical(name):
    """Cell-wise / row-agg fusion is bitwise even with a dense matrix."""
    spec = SHIPPED_DML[name]
    rng = np.random.default_rng(4)
    X = rng.standard_normal((60, 24))
    env = make_env(spec, X, rng=12)
    root = spec.parse()
    baseline = np.asarray(root.eval(env), dtype=np.float64)
    for cand in _candidates(root, env):
        lowered = lower(root, [cand])
        got = np.asarray(evaluate_dag(lowered, env), dtype=np.float64)
        assert np.array_equal(got, baseline), (name, cand.label)
    plan = optimize(root, env, expression=spec.dml)
    got = np.asarray(evaluate_dag(plan.lowered(), env), dtype=np.float64)
    assert np.array_equal(got, baseline), name


def test_expression_strings_parse_to_same_shape():
    """Sanity: the shipped scripts parse and produce n- or m-vectors."""
    X = random_csr(40, 12, 0.2, rng=0)
    for name in SCRIPTS:
        spec = SHIPPED_DML[name]
        root = spec.parse()
        env = make_env(spec, X, rng=1)
        out = np.asarray(root.eval(env))
        assert out.ndim == 1 and out.shape[0] in X.shape, name


# ------------------------------------------------------------ hypothesis --
# Random DAG generation over a square sparse matrix so every vector role
# (rows/cols) has the same length and any wiring is shape-valid.

_N = 24
_ALPHAS = (0.5, -1.0, 0.25, 2.0, 0.001)


@st.composite
def random_dags(draw):
    n_leaves = draw(st.integers(min_value=2, max_value=4))
    pool: list = [Input(f"v{i}") for i in range(n_leaves)]
    if draw(st.booleans()):
        mat = Input("X")
        if draw(st.booleans()):
            mat = Transpose(mat)
        vec = pool[draw(st.integers(0, len(pool) - 1))]
        pool.append(MatVec(mat, vec))
    n_ops = draw(st.integers(min_value=1, max_value=6))
    for _ in range(n_ops):
        op = draw(st.sampled_from(("add", "ewmul", "smul")))
        a = pool[draw(st.integers(0, len(pool) - 1))]
        if op == "smul":
            pool.append(Smul(draw(st.sampled_from(_ALPHAS)), a))
        else:
            b = pool[draw(st.integers(0, len(pool) - 1))]
            pool.append(Add(a, b) if op == "add" else EwMul(a, b))
    return pool[-1]


@given(root=random_dags())
@settings(max_examples=40, deadline=None)
def test_random_dag_candidates_bit_identical(root):
    """Every candidate in a random DAG (sharing, aliasing, diamonds
    included) is bit-identical to the unfused evaluation, and so is the
    full optimized plan."""
    X = random_csr(_N, _N, 0.15, rng=5)
    rng = np.random.default_rng(9)
    env = {"X": X}
    for nd in root.walk():
        if isinstance(nd, Input) and nd.name not in env:
            env[nd.name] = rng.standard_normal(_N)
    baseline = np.asarray(root.eval(env), dtype=np.float64)
    for cand in _candidates(root, env):
        lowered = lower(root, [cand])
        got = np.asarray(evaluate_dag(lowered, env), dtype=np.float64)
        assert np.array_equal(got, baseline), cand.label
    plan = optimize(root, env)
    got = np.asarray(evaluate_dag(plan.lowered(), env), dtype=np.float64)
    assert np.array_equal(got, baseline)


def test_parse_matches_hand_built_dag():
    """The parser and hand construction produce equivalent DAGs."""
    X = random_csr(30, 30, 0.2, rng=2)
    rng = np.random.default_rng(3)
    env = {"X": X, "y": rng.standard_normal(30), "p": rng.standard_normal(30)}
    parsed = parse_expression("t(X) %*% (X %*% p) + 0.001 * p")
    hand = Add(MatVec(Transpose(Input("X")), MatVec(Input("X"), Input("p"))),
               Smul(0.001, Input("p")))
    assert np.array_equal(np.asarray(parsed.eval(env)),
                          np.asarray(hand.eval(env)))
