"""Differential tests: SIMT-interpreted Algorithms 1-3 vs vectorized kernels.

The per-thread generator kernels follow the paper's pseudocode line by line;
the vectorized kernels must produce the same numbers (up to floating-point
reassociation) on the same inputs, across launch geometries.
"""

import numpy as np
import pytest

from repro.gpu import SimtEngine
from repro.kernels.simt_kernels import (alg1_xt_spmv, run_alg2, run_alg3)
from repro.sparse import CsrMatrix, random_csr, spmv, spmv_t
from repro.sparse.ops import fused_pattern_reference


@pytest.fixture
def engine():
    return SimtEngine()


class TestAlg1:
    @pytest.mark.parametrize("vs,bs,grid", [(2, 16, 2), (4, 32, 3),
                                            (8, 32, 1), (1, 8, 4)])
    def test_matches_reference(self, engine, rng, vs, bs, grid):
        X = random_csr(60, 24, 0.2, rng=1)
        p = rng.normal(size=X.m)
        w = np.zeros(X.n)
        vectors = grid * (bs // vs)
        C = max(1, -(-X.m // vectors))
        engine.launch(alg1_xt_spmv, grid, bs,
                      (X.values, X.col_idx, X.row_off, p, w, X.m, X.n,
                       vs, C, ),
                      shared_doubles=X.n)
        np.testing.assert_allclose(w, spmv_t(X, p), rtol=1e-10, atol=1e-12)

    def test_insufficient_coarsening_misses_rows(self, engine, rng):
        """If C is too small to cover all rows, tail rows are dropped —
        the launch geometry invariant the tuner (Eq. 5) guarantees."""
        X = random_csr(64, 10, 0.3, rng=2)
        p = rng.normal(size=X.m)
        w = np.zeros(X.n)
        engine.launch(alg1_xt_spmv, 1, 8,
                      (X.values, X.col_idx, X.row_off, p, w, X.m, X.n,
                       2, 1),
                      shared_doubles=X.n)
        assert not np.allclose(w, spmv_t(X, p))


class TestAlg2:
    @pytest.mark.parametrize("variant", ["shared", "global"])
    @pytest.mark.parametrize("vs,bs,grid", [(2, 16, 3), (4, 32, 2),
                                            (8, 64, 2)])
    def test_full_pattern(self, engine, rng, variant, vs, bs, grid):
        X = random_csr(70, 30, 0.15, rng=3)
        y = rng.normal(size=X.n)
        v = rng.normal(size=X.m)
        z = rng.normal(size=X.n)
        w = run_alg2(engine, X, y, v, z, alpha=1.7, beta=-0.4, VS=vs,
                     block_size=bs, grid_size=grid, variant=variant)
        expected = fused_pattern_reference(X, y, v, z, 1.7, -0.4)
        np.testing.assert_allclose(w, expected, rtol=1e-9, atol=1e-11)

    def test_no_v_no_z(self, engine, rng):
        X = random_csr(50, 20, 0.2, rng=4)
        y = rng.normal(size=X.n)
        w = run_alg2(engine, X, y, VS=4, block_size=32, grid_size=2)
        np.testing.assert_allclose(w, spmv_t(X, spmv(X, y)), rtol=1e-9)

    def test_empty_rows_handled(self, engine, rng):
        X = CsrMatrix((6, 8),
                      np.array([1.0, 2.0, 3.0]),
                      np.array([0, 3, 7]),
                      np.array([0, 1, 1, 1, 2, 3, 3]))
        y = rng.normal(size=8)
        w = run_alg2(engine, X, y, VS=2, block_size=8, grid_size=1)
        np.testing.assert_allclose(w, spmv_t(X, spmv(X, y)), rtol=1e-10)

    def test_matches_vectorized_kernel(self, engine, rng):
        """The headline differential: interpreted == vectorized."""
        from repro.kernels import fused_pattern_sparse
        X = random_csr(80, 25, 0.2, rng=5)
        y = rng.normal(size=X.n)
        v = rng.normal(size=X.m)
        z = rng.normal(size=X.n)
        fast = fused_pattern_sparse(X, y, v, z, 2.0, 0.5)
        simt = run_alg2(engine, X, y, v, z, 2.0, 0.5, VS=4,
                        block_size=32, grid_size=3)
        np.testing.assert_allclose(fast.output, simt, rtol=1e-9, atol=1e-11)


class TestAlg3:
    @pytest.mark.parametrize("vs,tl,bs,grid", [
        (8, 4, 32, 2),      # 32 columns
        (16, 2, 32, 3),     # 32 columns, wider vectors
        (4, 8, 16, 2),      # deep thread load
    ])
    def test_dense_fused(self, engine, rng, vs, tl, bs, grid):
        n = vs * tl
        X = rng.normal(size=(40, n))
        y = rng.normal(size=n)
        v = rng.normal(size=40)
        z = rng.normal(size=n)
        w = run_alg3(engine, X, y, v, z, alpha=1.2, beta=0.3, VS=vs, TL=tl,
                     block_size=bs, grid_size=grid)
        expected = 1.2 * X.T @ ((X @ y) * v) + 0.3 * z
        np.testing.assert_allclose(w, expected, rtol=1e-9, atol=1e-11)

    def test_vs_above_warp_uses_shared_reduction(self, engine, rng):
        """VS = 64 > 32 exercises the inter-warp reduction (Alg 3 L16-22)."""
        vs, tl = 64, 2
        n = vs * tl
        X = rng.normal(size=(10, n))
        y = rng.normal(size=n)
        w = run_alg3(engine, X, y, VS=vs, TL=tl, block_size=64, grid_size=2)
        np.testing.assert_allclose(w, X.T @ (X @ y), rtol=1e-9)
        assert engine.stats.barriers > 0

    def test_matches_vectorized_kernel(self, engine, rng):
        from repro.kernels import fused_pattern_dense
        from repro.tuning import tune_dense
        m, n = 60, 64
        X = rng.normal(size=(m, n))
        y = rng.normal(size=n)
        v = rng.normal(size=m)
        fast = fused_pattern_dense(X, y, v=v, alpha=1.5)
        simt = run_alg3(engine, X, y, v=v, alpha=1.5, VS=16, TL=4,
                        block_size=32, grid_size=4)
        np.testing.assert_allclose(fast.output, simt, rtol=1e-9)

    def test_geometry_validation(self, engine, rng):
        X = rng.normal(size=(10, 30))
        with pytest.raises(ValueError, match="padded"):
            run_alg3(engine, X, rng.normal(size=30), VS=8)
        X2 = rng.normal(size=(10, 32))
        with pytest.raises(ValueError, match="VS \\* TL"):
            run_alg3(engine, X2, rng.normal(size=32), VS=8, TL=2)


class TestEngineCachedPlans:
    """Engine-cached plans replayed through the SIMT interpreter.

    The PatternEngine memoizes the §3.3-tuned ``VS/BS/C`` launch parameters;
    replaying those exact cached parameters through the per-thread
    Algorithm 2/3 interpreters must reproduce the warm engine output — the
    cache stores a *valid* plan, not just a fast one.
    """

    @pytest.fixture
    def titan_simt(self):
        from repro.gpu.device import GTX_TITAN
        return SimtEngine(GTX_TITAN)      # tuned BS targets the Titan

    def _cached_entry(self, pattern_engine, strategy="fused"):
        entries = [e for e in pattern_engine._plans.values()
                   if e.strategy == strategy]
        assert len(entries) == 1
        return entries[0]

    def test_cached_sparse_params_replay_through_alg2(self, titan_simt, rng):
        from repro.core.engine import PatternEngine
        X = random_csr(70, 28, 0.2, rng=6)
        y = rng.normal(size=X.n)
        v = rng.normal(size=X.m)
        z = rng.normal(size=X.n)
        pe = PatternEngine()
        pe.evaluate(X, y, v=v, z=z, alpha=1.7, beta=-0.4, strategy="fused")
        warm = pe.evaluate(X, y, v=v, z=z, alpha=1.7, beta=-0.4,
                           strategy="fused")
        assert pe.stats().plan_hits == 1

        sp = self._cached_entry(pe).params
        simt = run_alg2(titan_simt, X, y, v, z, alpha=1.7, beta=-0.4,
                        VS=sp.vector_size, block_size=sp.block_size,
                        grid_size=sp.grid_size, C=sp.coarsening,
                        variant=sp.variant)
        np.testing.assert_allclose(simt, warm.output, rtol=1e-9, atol=1e-11)

    def test_cached_dense_params_replay_through_alg3(self, titan_simt, rng):
        from repro.core.engine import PatternEngine
        m, n = 60, 48
        X = rng.normal(size=(m, n))
        y = rng.normal(size=n)
        v = rng.normal(size=m)
        pe = PatternEngine()
        pe.evaluate(X, y, v=v, alpha=1.5, strategy="fused")
        warm = pe.evaluate(X, y, v=v, alpha=1.5, strategy="fused")

        dp = self._cached_entry(pe).params
        Xp = np.zeros((m, dp.padded_n))
        Xp[:, :n] = X
        yp = np.zeros(dp.padded_n)
        yp[:n] = y
        simt = run_alg3(titan_simt, Xp, yp, v=v, alpha=1.5,
                        VS=dp.vector_size, TL=dp.thread_load,
                        block_size=dp.block_size, grid_size=dp.grid_size,
                        C=dp.coarsening)
        np.testing.assert_allclose(simt[:n], warm.output, rtol=1e-9)

    def test_cached_plan_stays_valid_after_mutation_rekey(self, titan_simt,
                                                          rng):
        """In-place mutation re-keys the plan; the *new* cached parameters
        must replay correctly on the mutated matrix (no stale-plan reuse)."""
        from repro.core.engine import PatternEngine
        X = random_csr(70, 28, 0.2, rng=8)
        y = rng.normal(size=X.n)
        pe = PatternEngine()
        pe.evaluate(X, y, strategy="fused")
        X.values *= 1.75                       # mutate in place
        pe.evaluate(X, y, strategy="fused")    # must miss and re-tune
        warm = pe.evaluate(X, y, strategy="fused")
        assert pe.stats().plan_misses == 2

        entries = [e for e in pe._plans.values() if e.strategy == "fused"]
        sp = entries[-1].params
        simt = run_alg2(titan_simt, X, y,
                        VS=sp.vector_size, block_size=sp.block_size,
                        grid_size=sp.grid_size, C=sp.coarsening,
                        variant=sp.variant)
        np.testing.assert_allclose(simt, warm.output, rtol=1e-9, atol=1e-11)
