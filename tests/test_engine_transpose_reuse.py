"""Regression tests: the csr2csc transpose is built exactly once per session.

Figure 2's amortization claim, promoted to a session-layer guarantee: under
the ``cusparse-explicit`` strategy the engine pays the device-side
transposition on the first call only.  N iterations of LR-CG must launch
``cusparse.csr2csc`` once, and warm-call PerfCounters must no longer carry
the conversion's launches, loads, or model time.
"""

import numpy as np
import pytest

from repro.core.engine import PatternEngine
from repro.kernels.base import GpuContext
from repro.kernels.sparse_baseline import csr2csc_kernel
from repro.ml.linreg import linreg_cg
from repro.ml.runtime import MLRuntime
from repro.sparse import random_csr

ITERATIONS = 12


@pytest.fixture
def traced_ctx():
    return GpuContext(trace=[])


def _targets(X, seed=3):
    rng = np.random.default_rng(seed)
    return X.to_dense() @ rng.normal(size=X.n) + 0.01 * rng.normal(size=X.m)


class TestLinRegTransposeReuse:
    def test_transpose_launched_once_across_cg_iterations(self, traced_ctx):
        X = random_csr(800, 60, 0.05, rng=21)
        rt = MLRuntime("gpu-fused", ctx=traced_ctx,
                       strategy="cusparse-explicit")
        res = linreg_cg(X, _targets(X), runtime=rt,
                        max_iterations=ITERATIONS, include_transfer=False)
        assert res.iterations == ITERATIONS

        conversions = [r for r in traced_ctx.trace
                       if r.name == "cusparse.csr2csc"]
        assert len(conversions) == 1, (
            "csr2csc must run once per session, not once per iteration")

        s = rt.engine.stats()
        assert s.transposes_built == 1
        # every pattern/xt_mv statement after the two cold ones is warm
        assert s.warm_calls == s.calls - 2
        assert s.hit_rate > 0.8

    def test_warm_iterations_cost_exactly_cold_minus_conversion(self):
        X = random_csr(800, 60, 0.05, rng=21)
        rng = np.random.default_rng(1)
        engine = PatternEngine()
        for _ in range(ITERATIONS):           # the CG hot statement
            p = rng.normal(size=X.n)
            engine.evaluate(X, p, z=p, beta=1e-3,
                            strategy="cusparse-explicit")
        s = engine.stats()
        trans_ms = csr2csc_kernel(X, GpuContext()).time_ms
        assert (s.cold_calls, s.warm_calls) == (1, ITERATIONS - 1)
        assert s.cold_ms_per_call > s.warm_ms_per_call
        # the cold call is exactly one warm chain plus the conversion
        assert s.cold_model_ms - s.warm_ms_per_call \
            == pytest.approx(trans_ms, rel=1e-9)

    def test_fused_backend_never_transposes(self, traced_ctx):
        X = random_csr(800, 60, 0.05, rng=21)
        rt = MLRuntime("gpu-fused", ctx=traced_ctx)
        linreg_cg(X, _targets(X), runtime=rt, max_iterations=ITERATIONS,
                  include_transfer=False)
        assert not [r for r in traced_ctx.trace
                    if r.name == "cusparse.csr2csc"]
        assert rt.engine.stats().transposes_built == 0


class TestWarmCallCounters:
    def test_warm_counters_drop_the_conversion(self):
        X = random_csr(600, 80, 0.08, rng=5)
        y = np.random.default_rng(0).normal(size=X.n)
        engine = PatternEngine()
        cold = engine.evaluate(X, y, z=y, beta=1e-3,
                               strategy="cusparse-explicit")
        warm = engine.evaluate(X, y, z=y, beta=1e-3,
                               strategy="cusparse-explicit")
        trans = csr2csc_kernel(X, GpuContext())

        # the cold call is exactly the warm chain plus the conversion
        assert cold.time_ms == pytest.approx(warm.time_ms + trans.time_ms)
        assert cold.counters.kernel_launches == \
            warm.counters.kernel_launches + trans.counters.kernel_launches
        assert cold.counters.global_load_transactions == pytest.approx(
            warm.counters.global_load_transactions
            + trans.counters.global_load_transactions)
        # numerics are unaffected by the cached artifact
        np.testing.assert_array_equal(cold.output, warm.output)

    def test_shared_engine_across_runtimes_shares_the_transpose(self):
        X = random_csr(800, 60, 0.05, rng=21)
        engine = PatternEngine()
        rt1 = MLRuntime("gpu-fused", engine=engine,
                        strategy="cusparse-explicit")
        rt2 = MLRuntime("gpu-fused", engine=engine,
                        strategy="cusparse-explicit")
        linreg_cg(X, _targets(X), runtime=rt1, max_iterations=4,
                  include_transfer=False)
        linreg_cg(X, _targets(X), runtime=rt2, max_iterations=4,
                  include_transfer=False)
        assert engine.stats().transposes_built == 1

    def test_mutation_forces_a_rebuild(self):
        X = random_csr(600, 80, 0.08, rng=5)
        y = np.random.default_rng(0).normal(size=X.n)
        engine = PatternEngine()
        engine.evaluate(X, y, strategy="cusparse-explicit")
        X.values[: X.nnz // 2] *= 1.5
        res = engine.evaluate(X, y, strategy="cusparse-explicit")
        assert engine.stats().transposes_built == 2
        from repro.core.api import evaluate as evaluate_uncached
        ref = evaluate_uncached(X, y, strategy="cusparse-explicit")
        np.testing.assert_array_equal(res.output, ref.output)
