"""The §3.3 analytical tuner: Eq. 4/5/6, register table, autotuner."""

import numpy as np
import pytest

from repro.gpu.device import GTX_TITAN, TINY_CC35
from repro.sparse import random_csr
from repro.tuning import (MAX_THREAD_LOAD, autotune_sparse,
                          max_dense_columns, max_shared_columns,
                          registers_for_thread_load, select_coarsening,
                          select_vector_size, select_vector_size_dense,
                          shared_bytes_needed, tune_dense, tune_sparse,
                          wasted_warps)


class TestEq4VectorSize:
    @pytest.mark.parametrize("mu,expected", [
        (0.5, 1), (1.0, 1), (2.0, 1),      # mu <= 2: otherwise-branch
        (3.0, 2), (4.0, 2),                 # 4 >= mu > 2
        (5.0, 4), (8.0, 4),
        (10.0, 8), (16.0, 8),
        (20.0, 16), (32.0, 16),
        (33.0, 32), (100.0, 32),            # mu > 32
    ])
    def test_eq4_cases(self, mu, expected):
        assert select_vector_size(mu) == expected


class TestEq6DenseVectorSize:
    def test_wide_rows_use_full_block(self):
        assert select_vector_size_dense(2048, 16, 128) == 128

    @pytest.mark.parametrize("n,tl,expected", [
        (32, 1, 32), (28, 1, 32), (17, 1, 32),
        (16, 1, 16), (9, 1, 16), (8, 1, 8), (2, 1, 2),
        (200, 7, 32),                        # the paper's example
    ])
    def test_power_of_two_selection(self, n, tl, expected):
        assert select_vector_size_dense(n, tl, 128) == expected

    def test_wasted_warps_paper_example(self):
        # paper: BS=128, TL=2, n=200 -> 1 wasted warp; TL=7, VS=32 -> 0
        assert wasted_warps(200, 2, 128) == 1
        assert wasted_warps(200, 7, 32) == 0


class TestRegisterTable:
    def test_endpoints_match_paper(self):
        assert registers_for_thread_load(1) == 23
        assert registers_for_thread_load(40) == 255

    def test_monotone(self):
        regs = [registers_for_thread_load(tl)
                for tl in range(1, MAX_THREAD_LOAD + 1)]
        assert regs == sorted(regs)

    def test_invalid(self):
        with pytest.raises(ValueError):
            registers_for_thread_load(0)


class TestSparseTuner:
    def test_paper_configuration(self):
        """500k x 1k at 0.01 (mu~10): the paper reports VS=8, BS=640,
        28 blocks, ~223 rows per vector."""
        X = random_csr(500_000, 1000, 0.01, rng=0)
        p = tune_sparse(X, GTX_TITAN)
        assert p.vector_size == 8
        assert p.block_size == 640
        assert p.variant == "shared"
        assert p.occupancy.blocks_per_sm == 2
        assert p.grid_size == 28
        assert 180 <= p.coarsening <= 260      # paper: 223

    def test_shared_bytes_formula(self):
        # (BS/VS + n) * 8: the paper's 8,832 B for BS=640, VS=8, n=1024
        assert shared_bytes_needed(640, 8, 1024) == 8832

    def test_variant_switch_at_shared_limit(self):
        limit = max_shared_columns(GTX_TITAN)
        assert 4000 < limit < 7000              # paper: "close to 6K"
        X_small = random_csr(1000, 512, 0.02, rng=1)
        assert tune_sparse(X_small).variant == "shared"
        X_wide = random_csr(200, 50_000, 0.0005, rng=2)
        assert tune_sparse(X_wide).variant == "global"

    def test_force_variant(self):
        X = random_csr(1000, 128, 0.05, rng=3)
        assert tune_sparse(X, force_variant="global").variant == "global"
        with pytest.raises(ValueError, match="variant"):
            tune_sparse(X, force_variant="bogus")

    def test_coarsening_covers_all_rows(self):
        X = random_csr(10_000, 256, 0.02, rng=4)
        p = tune_sparse(X)
        vectors = p.grid_size * (p.block_size // p.vector_size)
        assert vectors * p.coarsening >= X.m

    def test_launch_validates(self):
        X = random_csr(5000, 300, 0.02, rng=5)
        tune_sparse(X).launch().validate(GTX_TITAN)

    def test_tiny_device(self):
        X = random_csr(500, 100, 0.05, rng=6)
        p = tune_sparse(X, TINY_CC35)
        p.launch().validate(TINY_CC35)


class TestDenseTuner:
    def test_narrow_matrix_exception(self):
        """n <= 32: BS=1024 and TL=1 (the paper's special case)."""
        p = tune_dense(10_000, 28)
        assert p.block_size == 1024
        assert p.thread_load == 1

    def test_coverage_invariant(self):
        for n in (33, 64, 200, 777, 2048):
            p = tune_dense(5000, n)
            assert p.vector_size * p.thread_load >= n
            assert p.padded_n == p.vector_size * p.thread_load
            assert p.thread_load <= MAX_THREAD_LOAD
            p.launch().validate(GTX_TITAN)

    def test_register_limit_respected(self):
        for n in (100, 1000, 5000):
            p = tune_dense(1000, n)
            assert p.registers <= 255

    def test_too_wide_raises(self):
        with pytest.raises(ValueError, match="cuBLAS"):
            tune_dense(100, max_dense_columns() + 2000)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            tune_dense(0, 10)


class TestAutotune:
    @pytest.fixture(scope="class")
    def result(self):
        X = random_csr(20_000, 512, 0.01, rng=7)
        return autotune_sparse(X)

    def test_search_space_size(self, result):
        assert len(result.settings) > 500     # paper: ~1,200

    def test_model_near_optimum(self, result):
        assert result.model_gap < 0.10        # paper: < 2% at full scale

    def test_best_not_worse_than_model(self, result):
        assert result.best.time_ms <= result.model_setting.time_ms

    def test_performance_range_is_wide(self, result):
        assert result.worst.time_ms > 1.5 * result.best.time_ms

    def test_model_rank_reported(self, result):
        assert 0.0 <= result.model_rank_fraction <= 1.0
