"""Consistent-hash ring properties: balance, stability, determinism.

The routing guarantees the cluster layer is built on:

* keys spread across N shards within sane bounds (no shard starves or
  absorbs everything) — virtual nodes do the smoothing;
* adding/removing one shard remaps only the keys that must move (the
  consistent-hashing point — a modulo router would remap nearly all);
* replica sets are deterministic, start at the primary, and never repeat
  a shard.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing, ring_point

KEYS = [f"fp-{i:04d}" for i in range(2000)]


def spread(ring, keys):
    counts = dict.fromkeys(ring.shards, 0)
    for k in keys:
        counts[ring.primary(k)] += 1
    return counts


# ------------------------------------------------------------------ balance
@pytest.mark.parametrize("shards", [2, 3, 4, 8])
def test_distribution_within_bounds(shards):
    ring = HashRing(range(shards), vnodes=64)
    counts = spread(ring, KEYS)
    expected = len(KEYS) / shards
    assert len(counts) == shards
    for shard, n in counts.items():
        # 64 vnodes keeps every shard within ~3x of fair share either way
        assert expected / 3 <= n <= expected * 3, (shard, counts)


def test_all_shards_reachable():
    ring = HashRing(range(4))
    assert set(spread(ring, KEYS)) == {0, 1, 2, 3}
    assert all(n > 0 for n in spread(ring, KEYS).values())


# ---------------------------------------------------------------- stability
def test_add_shard_minimal_remap():
    before = HashRing(range(4), vnodes=64)
    after = HashRing(range(4), vnodes=64)
    after.add(4)
    moved = sum(before.primary(k) != after.primary(k) for k in KEYS)
    # ideal is 1/5 of keys; allow 2x slack, but far below full reshuffle
    assert moved <= len(KEYS) * 2 / 5, moved
    # every key that moved, moved TO the new shard
    for k in KEYS:
        if before.primary(k) != after.primary(k):
            assert after.primary(k) == 4


def test_remove_shard_minimal_remap():
    before = HashRing(range(4), vnodes=64)
    after = HashRing(range(4), vnodes=64)
    after.remove(2)
    for k in KEYS:
        if before.primary(k) != 2:
            # keys not owned by the removed shard never move
            assert after.primary(k) == before.primary(k)
        else:
            assert after.primary(k) != 2


def test_remove_last_shard_refused():
    ring = HashRing([0])
    with pytest.raises(ValueError):
        ring.remove(0)


def test_remove_unknown_shard_refused():
    ring = HashRing(range(2))
    with pytest.raises(KeyError):
        ring.remove(7)


# ------------------------------------------------------------ replica sets
@settings(max_examples=200, deadline=None)
@given(key=st.text(min_size=1, max_size=40),
       shards=st.integers(min_value=1, max_value=8),
       r=st.integers(min_value=1, max_value=10))
def test_replica_set_deterministic_and_distinct(key, shards, r):
    ring = HashRing(range(shards), vnodes=32)
    reps = ring.replicas(key, r)
    # deterministic: a fresh identical ring agrees exactly
    assert reps == HashRing(range(shards), vnodes=32).replicas(key, r)
    # distinct shards, primary first, capped at the shard count
    assert len(reps) == len(set(reps)) == min(r, shards)
    assert reps[0] == ring.primary(key)
    assert all(s in ring for s in reps)


@settings(max_examples=100, deadline=None)
@given(keys=st.lists(st.text(min_size=1, max_size=20), min_size=1,
                     max_size=50, unique=True))
def test_primary_stable_across_instances(keys):
    a = HashRing(range(5), vnodes=16)
    b = HashRing(range(5), vnodes=16)
    assert [a.primary(k) for k in keys] == [b.primary(k) for k in keys]


def test_ring_point_accepts_str_and_bytes():
    assert ring_point("abc") == ring_point(b"abc")
    assert ring_point("abc") != ring_point("abd")


def test_vnodes_smooth_distribution():
    """More vnodes -> strictly no worse worst-case imbalance on average."""
    coarse = spread(HashRing(range(4), vnodes=4), KEYS)
    fine = spread(HashRing(range(4), vnodes=128), KEYS)
    expected = len(KEYS) / 4
    worst = lambda counts: max(abs(n - expected) for n in counts.values())
    assert worst(fine) <= worst(coarse)
