"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.base import GpuContext
from repro.gpu.device import GTX_TITAN
from repro.sparse.generate import random_csr


#: default per-test deadline for multi-process cluster tests: generous
#: enough for a loaded shared runner, small enough that a wedged worker
#: (a future that never resolves) fails the one test instead of eating
#: the whole job's timeout ceiling
CLUSTER_TEST_TIMEOUT_S = 120


def pytest_collection_modifyitems(config, items):
    """Scope a per-test deadline to every cluster-marked test.

    The ``timeout`` marker is enforced by ``pytest-timeout`` when it is
    installed (the CI ``[test]`` extra ships it) and is inert otherwise,
    so local runs without the plugin behave unchanged.  Tests that set
    their own ``timeout`` marker keep it.
    """
    for item in items:
        if item.get_closest_marker("cluster") is not None \
                and item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(CLUSTER_TEST_TIMEOUT_S))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def ctx() -> GpuContext:
    return GpuContext(GTX_TITAN)


@pytest.fixture
def small_csr():
    """A 200 x 40 sparse matrix with mixed row lengths."""
    return random_csr(200, 40, 0.15, rng=7)


@pytest.fixture
def medium_csr():
    """A 5k x 300 sparse matrix, the scale kernels are usually tested at."""
    return random_csr(5000, 300, 0.02, rng=11)
