"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.base import GpuContext
from repro.gpu.device import GTX_TITAN
from repro.sparse.generate import random_csr


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def ctx() -> GpuContext:
    return GpuContext(GTX_TITAN)


@pytest.fixture
def small_csr():
    """A 200 x 40 sparse matrix with mixed row lengths."""
    return random_csr(200, 40, 0.15, rng=7)


@pytest.fixture
def medium_csr():
    """A 5k x 300 sparse matrix, the scale kernels are usually tested at."""
    return random_csr(5000, 300, 0.02, rng=11)
