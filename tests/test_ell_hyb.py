"""ELL/HYB formats and their SpMV kernels."""

import numpy as np
import pytest

from repro.kernels import csrmv, ellmv, hybmv
from repro.sparse import (CsrMatrix, EllMatrix, HybMatrix, ell_spmv,
                          hyb_spmv, power_law_csr, random_csr)


@pytest.fixture
def skewed():
    return power_law_csr(5000, 400, nnz_target=40_000, alpha=1.6, rng=1)


class TestEll:
    def test_roundtrip(self, small_csr):
        E = EllMatrix.from_csr(small_csr)
        np.testing.assert_allclose(E.to_dense(), small_csr.to_dense())
        assert E.to_csr() == small_csr or np.allclose(
            E.to_csr().to_dense(), small_csr.to_dense())

    def test_width_is_max_row(self, small_csr):
        E = EllMatrix.from_csr(small_csr)
        assert E.width == int(small_csr.row_nnz.max())
        assert E.nnz == small_csr.nnz

    def test_explicit_width_too_small(self, small_csr):
        with pytest.raises(ValueError, match="HybMatrix"):
            EllMatrix.from_csr(small_csr, width=1)

    def test_padding_fraction(self, skewed):
        E = EllMatrix.from_csr(skewed)
        assert 0.0 < E.padding_fraction < 1.0
        expected = 1.0 - skewed.nnz / (skewed.m * E.width)
        assert E.padding_fraction == pytest.approx(expected)

    def test_spmv_matches(self, small_csr, rng):
        E = EllMatrix.from_csr(small_csr)
        y = rng.normal(size=small_csr.n)
        np.testing.assert_allclose(ell_spmv(E, y),
                                   small_csr.to_dense() @ y, rtol=1e-10)

    def test_padding_must_be_zero(self):
        with pytest.raises(ValueError, match="padding"):
            EllMatrix((2, 3), np.array([[1.0, 2.0], [3.0, 4.0]]),
                      np.array([[0, -1], [1, 2]]))

    def test_spmv_shape_check(self, small_csr):
        E = EllMatrix.from_csr(small_csr)
        with pytest.raises(ValueError):
            ell_spmv(E, np.ones(small_csr.n + 1))


class TestHyb:
    def test_split_preserves_matrix(self, skewed):
        H = HybMatrix.from_csr(skewed)
        np.testing.assert_allclose(H.to_dense(), skewed.to_dense())
        assert H.nnz == skewed.nnz
        assert 0.0 < H.tail_fraction < 1.0

    def test_uniform_rows_no_tail(self):
        X = random_csr(100, 40, 0.1, rng=2)
        H = HybMatrix.from_csr(X, width=int(X.row_nnz.max()))
        assert H.tail.nnz == 0

    def test_spmv_matches(self, skewed, rng):
        H = HybMatrix.from_csr(skewed)
        y = rng.normal(size=skewed.n)
        np.testing.assert_allclose(hyb_spmv(H, y),
                                   skewed.to_dense() @ y, rtol=1e-10)

    def test_explicit_width(self, skewed):
        H = HybMatrix.from_csr(skewed, width=3)
        assert H.ell.width == 3
        np.testing.assert_allclose(H.to_dense(), skewed.to_dense())


class TestFormatKernels:
    def test_ellmv_correct(self, skewed, rng):
        y = rng.normal(size=skewed.n)
        res = ellmv(EllMatrix.from_csr(skewed), y)
        np.testing.assert_allclose(res.output, skewed.to_dense() @ y,
                                   rtol=1e-10)
        assert res.counters.kernel_launches == 1

    def test_hybmv_correct(self, skewed, rng):
        y = rng.normal(size=skewed.n)
        res = hybmv(HybMatrix.from_csr(skewed), y)
        np.testing.assert_allclose(res.output, skewed.to_dense() @ y,
                                   rtol=1e-10)
        assert res.counters.kernel_launches == 2   # ELL + tail

    def test_ell_pays_for_padding(self, skewed, rng):
        """On skewed rows ELL's traffic scales with m x width."""
        y = rng.normal(size=skewed.n)
        ell_res = ellmv(EllMatrix.from_csr(skewed), y)
        csr_res = csrmv(skewed, y)
        assert ell_res.counters.global_load_transactions > \
            csr_res.counters.global_load_transactions

    def test_hyb_beats_ell_on_skew(self, skewed, rng):
        y = rng.normal(size=skewed.n)
        assert hybmv(HybMatrix.from_csr(skewed), y).time_ms < \
            ellmv(EllMatrix.from_csr(skewed), y).time_ms

    def test_ell_competitive_on_uniform(self, rng):
        X = random_csr(2000, 64, 0.25, rng=3)
        y = rng.normal(size=64)
        ell_t = ellmv(EllMatrix.from_csr(X), y).time_ms
        csr_t = csrmv(X, y).time_ms
        assert ell_t < 2.0 * csr_t
