"""Block power iteration (multi-RHS consumer) against exact eigenpairs."""

import numpy as np
import pytest

from repro.ml import hits, subspace_iteration
from repro.sparse import random_csr


@pytest.fixture(scope="module")
def graph():
    return random_csr(800, 100, 0.05, rng=1)


class TestSubspaceIteration:
    def test_eigenvalues_match_exact(self, graph):
        res = subspace_iteration(graph, r=4, rng=0, max_iterations=500,
                                 tol=1e-11)
        A = graph.to_dense()
        exact = np.linalg.eigvalsh(A.T @ A)[::-1][:4]
        np.testing.assert_allclose(res.eigenvalues, exact, rtol=1e-6)

    def test_vectors_orthonormal(self, graph):
        res = subspace_iteration(graph, r=5, rng=0, max_iterations=100)
        G = res.vectors.T @ res.vectors
        np.testing.assert_allclose(G, np.eye(5), atol=1e-9)

    def test_eigenvalues_descending(self, graph):
        res = subspace_iteration(graph, r=6, rng=0, max_iterations=100)
        assert np.all(np.diff(res.eigenvalues) <= 1e-9)

    def test_leading_vector_agrees_with_hits(self, graph):
        res = subspace_iteration(graph, r=1, rng=0, max_iterations=500,
                                 tol=1e-12)
        h = hits(graph, max_iterations=500, tol=1e-12)
        cos = abs(float(res.vectors[:, 0] @ h.authorities))
        assert cos > 1.0 - 1e-8

    def test_singular_values(self, graph):
        res = subspace_iteration(graph, r=3, rng=0, max_iterations=200)
        np.testing.assert_allclose(res.singular_values ** 2,
                                   res.eigenvalues, rtol=1e-12)

    def test_r_validation(self, graph):
        with pytest.raises(ValueError):
            subspace_iteration(graph, r=0)
        with pytest.raises(ValueError):
            subspace_iteration(graph, r=graph.n + 1)

    def test_model_time_accumulates(self, graph):
        short = subspace_iteration(graph, r=2, rng=0, max_iterations=3,
                                   tol=0.0)
        long = subspace_iteration(graph, r=2, rng=0, max_iterations=12,
                                  tol=0.0)
        assert long.total_time_ms > 2.0 * short.total_time_ms
