"""Sparse-matrix generators and dataset builders."""

import numpy as np
import pytest

from repro.data import (classification_labels, higgs_like, kdd_like,
                        regression_targets, synthetic_dense,
                        synthetic_sparse)
from repro.sparse import banded_csr, power_law_csr, random_csr


class TestRandomCsr:
    def test_shape_and_density(self):
        X = random_csr(2000, 100, 0.05, rng=0)
        assert X.shape == (2000, 100)
        assert X.density == pytest.approx(0.05, rel=0.15)

    def test_columns_sorted_within_rows(self):
        X = random_csr(500, 64, 0.1, rng=1)
        for r in range(0, 500, 37):
            _, cols = X.row_slice(r)
            assert np.all(np.diff(cols) >= 0)

    def test_distinct_mode_unique_columns(self):
        X = random_csr(300, 32, 0.2, rng=2, distinct=True)
        for r in range(300):
            _, cols = X.row_slice(r)
            assert np.unique(cols).size == cols.size

    def test_deterministic_with_seed(self):
        a = random_csr(100, 20, 0.1, rng=5)
        b = random_csr(100, 20, 0.1, rng=5)
        assert a == b

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError, match="sparsity"):
            random_csr(10, 10, 1.5)

    def test_full_density(self):
        X = random_csr(10, 10, 1.0, rng=3, distinct=True)
        assert X.nnz == 100


class TestOtherGenerators:
    def test_power_law_skew(self):
        X = power_law_csr(400, 50, nnz_target=2000, alpha=1.8, rng=4)
        counts = np.sort(X.row_nnz)[::-1]
        # top decile of rows holds a disproportionate share of non-zeros
        assert counts[:40].sum() > 0.3 * X.nnz
        assert X.nnz <= 2000

    def test_banded_balanced(self):
        X = banded_csr(100, 100, bandwidth=5, rng=5)
        assert X.row_nnz.max() - X.row_nnz.min() <= 5
        np.testing.assert_allclose(X.to_dense(),
                                   np.triu(np.tril(np.ones(0)))
                                   if False else X.to_dense())


class TestDatasets:
    def test_kdd_like_statistics(self):
        X = kdd_like(scale=0.001, rng=6)
        assert X.m == 15009 and X.n == 29890
        # mean row length close to the real data set's ~28
        assert 20 < X.mean_row_nnz < 40
        # power-law column popularity: hot columns exist
        counts = X.column_counts()
        assert counts.max() > 10 * max(1.0, counts.mean())

    def test_kdd_scale_validation(self):
        with pytest.raises(ValueError, match="scale"):
            kdd_like(scale=0.0)
        with pytest.raises(ValueError, match="scale"):
            kdd_like(scale=1.5)

    def test_higgs_like_shape(self):
        X = higgs_like(scale=0.001, rng=7)
        assert X.shape == (11000, 28)
        # low-level features are positive (lognormal)
        assert (X[:, :21] > 0).all()

    def test_synthetic_sweep_builders(self):
        Xs = synthetic_sparse(128, m=1000, rng=8)
        assert Xs.shape == (1000, 128)
        Xd = synthetic_dense(64, m=500, rng=9)
        assert Xd.shape == (500, 64)

    def test_regression_targets(self):
        X = synthetic_dense(16, m=200, rng=10)
        y, w = regression_targets(X, noise=0.0, rng=11)
        np.testing.assert_allclose(y, X @ w)

    def test_regression_targets_sparse(self, small_csr):
        y, w = regression_targets(small_csr, noise=0.0, rng=12)
        np.testing.assert_allclose(y, small_csr.to_dense() @ w, rtol=1e-10)

    def test_classification_labels(self, small_csr):
        t = classification_labels(small_csr, rng=13)
        assert set(np.unique(t)) <= {-1.0, 1.0}
        # roughly balanced around the median split
        assert 0.3 < (t > 0).mean() < 0.7
