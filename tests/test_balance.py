"""Workload-balance metrics (the paper's load-balance challenge)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpu.balance import gini, vector_load_cv, warp_idle_fraction
from repro.sparse import banded_csr, power_law_csr, random_csr
from repro.tuning import select_coarsening, tune_sparse


class TestWarpIdle:
    def test_perfectly_balanced_rows(self):
        assert warp_idle_fraction(np.full(64, 7), vector_size=8) == 0.0

    def test_single_hot_row_in_warp(self):
        # 4 rows per warp (VS=8): one row of 40, three of 0
        rows = np.array([40, 0, 0, 0])
        assert warp_idle_fraction(rows, 8) == pytest.approx(0.75)

    def test_empty(self):
        assert warp_idle_fraction(np.array([]), 4) == 0.0

    def test_vs32_one_row_per_warp_never_idles(self):
        rows = np.array([100, 1, 50, 3])
        assert warp_idle_fraction(rows, 32) == 0.0

    def test_skew_ordering(self):
        """banded < uniform < power-law, matching intuition."""
        b = banded_csr(2000, 100, bandwidth=8, rng=0)
        u = random_csr(2000, 100, 0.08, rng=1)
        p = power_law_csr(2000, 100, nnz_target=u.nnz, alpha=1.7, rng=2)
        vs = 8
        assert warp_idle_fraction(b.row_nnz, vs) \
            < warp_idle_fraction(u.row_nnz, vs) \
            < warp_idle_fraction(p.row_nnz, vs)

    def test_larger_vs_reduces_idle(self):
        """Eq. 4 picks a larger VS for longer rows partly because a whole
        warp on one row cannot idle against its siblings."""
        X = power_law_csr(2000, 200, nnz_target=30_000, alpha=1.5, rng=3)
        assert warp_idle_fraction(X.row_nnz, 32) \
            <= warp_idle_fraction(X.row_nnz, 2)


class TestVectorLoadCv:
    def test_coarsening_concentrates_load(self):
        """More rows per vector -> lower relative variance (Eq. 5's goal)."""
        X = power_law_csr(20_000, 256, nnz_target=200_000, alpha=1.5, rng=4)
        cv_many_vectors = vector_load_cv(X.row_nnz, 10_000)
        cv_few_vectors = vector_load_cv(X.row_nnz, 100)
        assert cv_few_vectors < cv_many_vectors

    def test_model_coarsening_keeps_cv_low(self):
        X = random_csr(50_000, 512, 0.01, rng=5)
        params = tune_sparse(X)
        vectors = params.grid_size * (params.block_size
                                      // params.vector_size)
        assert vector_load_cv(X.row_nnz, vectors) < 0.25

    def test_degenerate(self):
        assert vector_load_cv(np.array([]), 10) == 0.0
        assert vector_load_cv(np.zeros(8), 4) == 0.0


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(100, 3.0)) == pytest.approx(0.0, abs=1e-9)

    def test_single_owner_close_to_one(self):
        v = np.zeros(1000)
        v[0] = 1.0
        assert gini(v) > 0.99

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini(np.array([-1.0, 2.0]))

    @settings(max_examples=80, deadline=None)
    @given(hnp.arrays(np.float64, st.integers(1, 60),
                      elements=st.floats(0, 1e6)))
    def test_bounds(self, v):
        g = gini(v)
        assert -1e-9 <= g <= 1.0
