"""Counter-parity and bit-identity guarantees of the kernel-profile layer.

The PR's contract:

* a kernel call given a precomputed profile must produce ``KernelResult``
  counters *field-equal* (and outputs *byte-equal*) to the same call with no
  profile — across a 200-pattern sweep of every strategy, sparse and dense;
* :class:`~repro.sparse.ops.SpmvPlan`-backed ``spmv``/``spmv_t`` are
  bit-identical to the plain reference ops (hypothesis property);
* in-place mutation of a matrix rebuilds the profile (content fingerprints),
  so the engine never serves a stale template.
"""

from dataclasses import fields

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import evaluate as evaluate_uncached
from repro.core.engine import PatternEngine
from repro.core.pattern import GenericPattern
from repro.core.plans import ExplicitTransposePlan
from repro.kernels import (dense_baseline, dense_fused, sparse_baseline,
                           sparse_fused, sparse_multi, sparse_scalar)
from repro.kernels.base import DEFAULT_CONTEXT
from repro.sparse import CsrMatrix, SpmvPlan, random_csr, spmv, spmv_t
from repro.tuning.sparse_params import tune_sparse

SPARSE_STRATEGIES = ("auto", "fused", "cusparse", "cusparse-explicit",
                     "bidmat-gpu", "bidmat-cpu")
DENSE_STRATEGIES = ("auto", "fused", "cusparse", "bidmat-gpu", "bidmat-cpu")
PATTERNS_PER_CHUNK = 25


def _random_case(rng):
    sparse = rng.random() < 0.6
    if sparse:
        m = int(rng.integers(30, 300))
        n = int(rng.integers(8, 80))
        X = random_csr(m, n, float(rng.uniform(0.05, 0.4)),
                       rng=int(rng.integers(0, 2**31)))
        strategy = SPARSE_STRATEGIES[int(rng.integers(
            0, len(SPARSE_STRATEGIES)))]
    else:
        m = int(rng.integers(16, 120))
        n = int(rng.integers(8, 100))
        X = rng.normal(size=(m, n))
        strategy = DENSE_STRATEGIES[int(rng.integers(
            0, len(DENSE_STRATEGIES)))]
    y = rng.normal(size=n)
    v = rng.normal(size=m) if rng.random() < 0.5 else None
    z = rng.normal(size=n) if rng.random() < 0.5 else None
    alpha = float(rng.uniform(-2.0, 2.0))
    beta = float(rng.uniform(0.1, 2.0)) if z is not None else 0.0
    return X, y, v, z, alpha, beta, strategy


def assert_counters_equal(a, b, context="", exact=True):
    """Field-by-field equality of two PerfCounters.

    ``exact=False`` allows float-summation reordering (rel 1e-12) — needed
    only for the explicit-transpose route, where the engine merges the
    ``csr2csc`` step's counters in a different chain order than the plan
    (a pre-existing artifact of the engine's artifact charging, not of the
    profile layer).
    """
    for f in fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if exact:
            assert va == vb, f"{context}: counter {f.name}: {va} != {vb}"
        else:
            assert va == pytest.approx(vb, rel=1e-12), \
                f"{context}: counter {f.name}: {va} != {vb}"


# -------------------------------------------------- engine-level 200 sweep
@pytest.mark.parametrize("chunk", range(8))
def test_profiled_counters_match_unprofiled_sweep(chunk):
    """8 chunks x 25 patterns: engine (cached-profile) calls vs uncached.

    The cold engine call builds the profile inline; the warm call reuses the
    cached one; ``api.evaluate`` never sees a cache.  All three must agree on
    every counter field and every output byte.  The one *intended* warm
    difference predates this PR: ``cusparse-explicit`` stops charging the
    cached ``csr2csc`` conversion (Fig. 2 amortization), so its warm
    reference is the amortized plan, not the cold call.
    """
    rng = np.random.default_rng(7000 + chunk)
    engine = PatternEngine()
    for case in range(PATTERNS_PER_CHUNK):
        X, y, v, z, alpha, beta, strategy = _random_case(rng)
        ref = evaluate_uncached(X, y, v=v, z=z, alpha=alpha, beta=beta,
                                strategy=strategy)
        cold = engine.evaluate(X, y, v=v, z=z, alpha=alpha, beta=beta,
                               strategy=strategy)
        warm = engine.evaluate(X, y, v=v, z=z, alpha=alpha, beta=beta,
                               strategy=strategy)
        context = f"chunk={chunk} case={case} strategy={strategy}"
        explicit = cold.name == "cusparse+csr2csc"
        # chain() order differs for the explicit route (the engine chains
        # the transpose outside the plan), so that route is compared to
        # within float-summation reordering; every other route is exact
        assert_counters_equal(cold.counters, ref.counters, context,
                              exact=not explicit)
        assert cold.time_ms == pytest.approx(ref.time_ms, rel=1e-12), context
        if warm.name == "cusparse+csr2csc":
            plan = ExplicitTransposePlan(engine.ctx, amortized=True)
            p = GenericPattern(X, y, v=v, z=z, alpha=alpha, beta=beta)
            plan.evaluate(p)                 # builds XT, uncharged
            warm_ref = plan.evaluate(p)      # amortized steady state
        else:
            warm_ref = ref
        assert_counters_equal(warm.counters, warm_ref.counters, context)
        assert warm.time_ms == pytest.approx(warm_ref.time_ms,
                                             rel=1e-12), context
        assert np.array_equal(warm.output, warm_ref.output), context
        assert np.array_equal(warm.output, ref.output), context
    assert engine.stats().profiles_built > 0


# ----------------------------------------------- kernel-level direct parity
class TestDirectKernelParity:
    """Explicit profile= argument vs profile=None on each kernel family."""

    def _check(self, fn, X, *args, profile, **kw):
        a = fn(X, *args, **kw)
        b = fn(X, *args, profile=profile, **kw)
        assert_counters_equal(a.counters, b.counters, fn.__name__)
        assert a.time_ms == b.time_ms
        out_a, out_b = a.output, b.output
        if isinstance(out_a, np.ndarray):
            assert np.array_equal(out_a, out_b)

    @pytest.fixture()
    def X(self):
        return random_csr(150, 40, 0.15, rng=42)

    @pytest.fixture()
    def rng(self):
        return np.random.default_rng(7)

    def test_sparse_fused_family(self, X, rng):
        prof = sparse_fused.profile_sparse_fused(X)
        y, p = rng.normal(size=X.n), rng.normal(size=X.m)
        v, z = rng.normal(size=X.m), rng.normal(size=X.n)
        self._check(sparse_fused.xt_spmv_fused, X, p, profile=prof)
        self._check(sparse_fused.fused_pattern_sparse, X, y, v, z,
                    1.7, 0.3, profile=prof)
        self._check(sparse_fused.fused_xtxy_sparse, X, y, profile=prof)

    def test_sparse_fused_global_variant(self, rng):
        X = random_csr(80, 3000, 0.01, rng=5)
        params = tune_sparse(X, DEFAULT_CONTEXT.device,
                             force_variant="global")
        prof = sparse_fused.profile_sparse_fused(X, params=params)
        assert prof.variant == "global"
        y = rng.normal(size=X.n)
        a = sparse_fused.fused_pattern_sparse(X, y, params=params)
        b = sparse_fused.fused_pattern_sparse(X, y, profile=prof)
        assert_counters_equal(a.counters, b.counters, "global variant")
        assert np.array_equal(a.output, b.output)

    def test_csrmv_family(self, X, rng):
        prof = sparse_baseline.profile_csrmv(X)
        y, p = rng.normal(size=X.n), rng.normal(size=X.m)
        self._check(sparse_baseline.csrmv, X, y, profile=prof)
        self._check(sparse_baseline.csrmv, X, y, profile=prof, texture=True)
        self._check(sparse_baseline.csrmv_transpose, X, p, profile=prof)
        self._check(sparse_baseline.bidmat_spmv, X, y, profile=prof)
        self._check(sparse_baseline.bidmat_spmv_transpose, X, p,
                    profile=prof)
        a = sparse_baseline.csr2csc_kernel(X)
        b = sparse_baseline.csr2csc_kernel(X, profile=prof)
        assert_counters_equal(a.counters, b.counters, "csr2csc")

    def test_scalar_kernel(self, X, rng):
        prof = sparse_scalar.profile_csrmv_scalar(X)
        self._check(sparse_scalar.csrmv_scalar, X, rng.normal(size=X.n),
                    profile=prof)

    def test_multi_rhs(self, X, rng):
        prof = sparse_fused.profile_sparse_fused(X)
        Y = rng.normal(size=(X.n, 3))
        V = rng.normal(size=(X.m, 3))
        Z = rng.normal(size=(X.n, 3))
        self._check(sparse_multi.fused_pattern_multi, X, Y, V, Z, 1.2, 0.4,
                    profile=prof)

    def test_dense_fused(self, rng):
        Xd = rng.normal(size=(64, 50))
        prof = dense_fused.profile_dense_fused(Xd)
        y, v, z = (rng.normal(size=50), rng.normal(size=64),
                   rng.normal(size=50))
        self._check(dense_fused.fused_pattern_dense, Xd, y, v, z, 1.1, 0.6,
                    profile=prof)
        self._check(dense_fused.fused_xtxy_dense, Xd, y, profile=prof)

    def test_gemv_family(self, rng):
        Xd = rng.normal(size=(48, 33))
        prof = dense_baseline.profile_gemv(Xd)
        y, p = rng.normal(size=33), rng.normal(size=48)
        self._check(dense_baseline.gemv_n, Xd, y, profile=prof)
        self._check(dense_baseline.gemv_t, Xd, p, profile=prof)
        self._check(dense_baseline.bidmat_gemv_n, Xd, y, profile=prof)
        self._check(dense_baseline.bidmat_gemv_t, Xd, p, profile=prof)


# ------------------------------------------------ hypothesis: SpmvPlan bits
class TestSpmvPlanBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), m=st.integers(1, 120),
           n=st.integers(1, 60), density=st.floats(0.0, 0.5))
    def test_planned_spmv_bit_identical(self, seed, m, n, density):
        X = random_csr(m, n, density, rng=seed)
        plan = SpmvPlan(X)
        rng = np.random.default_rng(seed)
        y = rng.normal(size=n)
        p = rng.normal(size=m)
        got = plan.spmv(y)
        want = spmv(X, y)
        assert got.dtype == want.dtype and np.array_equal(got, want)
        got_t = plan.spmv_t(p)
        want_t = spmv_t(X, p)
        assert got_t.dtype == want_t.dtype and np.array_equal(got_t, want_t)

    def test_plan_scratch_reuse_stays_identical(self):
        X = random_csr(200, 50, 0.2, rng=3)
        plan = SpmvPlan(X)
        rng = np.random.default_rng(3)
        for _ in range(5):        # repeated calls reuse the scratch buffer
            y = rng.normal(size=X.n)
            assert np.array_equal(plan.spmv(y), spmv(X, y))
            p = rng.normal(size=X.m)
            assert np.array_equal(plan.spmv_t(p), spmv_t(X, p))

    def test_empty_and_degenerate(self):
        X = CsrMatrix.empty((4, 3))
        plan = SpmvPlan(X)
        assert np.array_equal(plan.spmv(np.ones(3)), np.zeros(4))
        assert np.array_equal(plan.spmv_t(np.ones(4)), np.zeros(3))


# -------------------------------------------- invalidation: no stale profile
class TestProfileInvalidation:
    def test_mutation_rebuilds_profile(self):
        engine = PatternEngine()
        X = random_csr(120, 30, 0.2, rng=11)
        rng = np.random.default_rng(11)
        y = rng.normal(size=X.n)
        engine.evaluate(X, y, strategy="fused")
        built_before = engine.stats().profiles_built
        assert built_before > 0
        X.values[0] *= 3.0                     # in-place mutation
        res = engine.evaluate(X, y, strategy="fused")
        ref = evaluate_uncached(X, y, strategy="fused")
        assert np.array_equal(res.output, ref.output)
        assert_counters_equal(res.counters, ref.counters, "post-mutation")
        assert engine.stats().profiles_built > built_before

    def test_column_counts_cache_is_readonly(self):
        X = random_csr(50, 20, 0.3, rng=1)
        counts = X.column_counts()
        assert counts is X.column_counts()     # cached
        with pytest.raises(ValueError):
            counts[0] = 99                      # shared: must be immutable

    @pytest.mark.parametrize("strategy", ["fused", "cusparse-explicit"])
    def test_mutation_between_served_batches(self, strategy):
        """In-place mutation between server batches drops the cached
        profile: the post-mutation batch must be bit-identical to a cold
        engine, and the serving engine must rebuild (content fingerprints
        make stale artifacts unreachable, not merely unlikely)."""
        from repro.serve import PatternServer, ServeRequest, ServerConfig

        X = random_csr(140, 24, 0.2, rng=21)
        rng = np.random.default_rng(21)
        ys = [rng.normal(size=X.n) for _ in range(4)]

        with PatternServer(config=ServerConfig(max_batch=4)) as server:
            warmup = [server.evaluate(ServeRequest(X, y, strategy=strategy))
                      for y in ys]
            assert all(r.ok for r in warmup)
            built_before = server.engine.snapshot().profiles_built

            X.values *= 1.5                    # in-place content mutation
            served = [server.evaluate(ServeRequest(X, y, strategy=strategy))
                      for y in ys]
            stats = server.engine.snapshot()

        cold = PatternEngine()
        for y, resp in zip(ys, served):
            assert resp.ok
            ref = cold.evaluate(X, y, strategy=strategy)
            assert np.array_equal(resp.result.output, ref.output)
        # the serving engine really rebuilt rather than serving stale bits
        assert stats.profiles_built > built_before
