"""Seeded mutant: two methods acquire the same pair of locks in opposite
orders.  Two threads running link() and unlink() concurrently can each
grab their first lock and wait forever for the other's."""

import threading

EXPECTED_KIND = "lock-order-cycle"


class DualIndex:
    """Forward/reverse index whose maintenance paths disagree on order."""

    def __init__(self):
        self._fwd_lock = threading.Lock()
        self._rev_lock = threading.Lock()
        self._fwd = {}
        self._rev = {}

    def link(self, key, value):
        with self._fwd_lock:
            with self._rev_lock:
                self._fwd[key] = value
                self._rev[value] = key

    def unlink(self, value):
        with self._rev_lock:          # BUG: reverse of link()'s order
            with self._fwd_lock:
                key = self._rev.pop(value, None)
                if key is not None:
                    self._fwd.pop(key, None)


def build():
    return DualIndex()


def drive(obj):
    # sequential execution witnesses both orders without deadlocking
    obj.link("a", 1)
    obj.unlink(1)
