"""Seeded mutant: ``Condition.notify`` after the lock was already
dropped — raises ``RuntimeError`` at runtime and the wakeup is lost."""

import threading

EXPECTED_KIND = "notify-without-lock"


class Mailbox:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._items = []

    def post(self, item):
        with self._lock:
            self._items.append(item)
        self._ready.notify()                # BUG: lock already released

    def drain_nowait(self):
        with self._lock:
            items, self._items = self._items, []
            return items


def build():
    return Mailbox()


def drive(obj):
    try:
        obj.post("x")
    except RuntimeError:
        pass
