"""Seeded mutant: bare ``acquire()`` with a raise path before the
``release()`` — the exception leaks the lock and every later caller
deadlocks."""

import threading

EXPECTED_KIND = "release-on-exception"


class Ledger:
    def __init__(self):
        self._lock = threading.Lock()
        self._balance = 0

    def deposit(self, n):
        with self._lock:
            self._balance += n

    def withdraw(self, n):
        self._lock.acquire()                # BUG: no try/finally
        if n > self._balance:
            raise ValueError("insufficient funds")
        self._balance -= n
        self._lock.release()


def build():
    return Ledger()


def drive(obj):
    obj.deposit(5)
    try:
        obj.withdraw(10)                    # raises with the lock held
    except ValueError:
        pass
