"""Seeded mutant: a socket recv inside the critical section.  Every
other thread contending on the lock stalls for the full network
timeout."""

import socket
import threading

EXPECTED_KIND = "lock-held-blocking"

#: the dynamic verdict: any lock held longer than this was blocking
WITNESS = {"hold_threshold_ms": 25.0}


class LinkPoller:
    def __init__(self):
        self._lock = threading.Lock()
        self._sock = None

    def attach(self, sock):
        with self._lock:
            self._sock = sock

    def poll_once(self):
        with self._lock:
            try:
                return self._sock.recv(1)   # BUG: blocking recv under lock
            except OSError:
                return b""


def build():
    return LinkPoller()


def drive(obj):
    a, b = socket.socketpair()
    try:
        a.settimeout(0.05)                  # recv stalls ~50ms > threshold
        obj.attach(a)
        obj.poll_once()
    finally:
        a.close()
        b.close()
