"""Seeded mutant: a shared counter is written under its lock but read
bare on the fast path — a racing reader can see torn/stale state."""

import threading

EXPECTED_KIND = "atomicity"

WATCH_ATTRS = ["_count"]


class SharedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def inc(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count            # BUG: read without the lock


def build():
    return SharedCounter()


def drive(obj):
    obj.inc()
    obj.peek()
