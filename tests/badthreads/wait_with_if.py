"""Seeded mutant: ``Condition.wait`` guarded by ``if`` instead of
``while`` — a spurious wakeup or stolen notification leaves the caller
proceeding on a false predicate."""

import threading

EXPECTED_KIND = "wait-not-in-loop"


class Gate:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._open = False

    def release_waiters(self):
        with self._cond:
            self._open = True
            self._cond.notify_all()

    def await_open(self, timeout=0.02):
        with self._cond:
            if not self._open:              # BUG: must be a while loop
                self._cond.wait(timeout)
            return self._open


def build():
    return Gate()


def drive(obj):
    obj.await_open(0.02)                    # times out: wait site executes
    obj.release_waiters()
    obj.await_open(0.02)
