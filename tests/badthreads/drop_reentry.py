"""Seeded mutant: check-then-act split across two critical sections of
the same lock — between the lookup and the insert another thread may
have inserted, and the second section blindly overwrites."""

import threading

EXPECTED_KIND = "lock-drop-reentry"

WITNESS = {"track_reentry": True}


class PlanCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._plans = {}
        self._builds = 0

    def lookup(self, key):
        with self._lock:
            plan = self._plans.get(key)
        if plan is None:
            plan = ("compiled", key)
            with self._lock:                # BUG: world changed meanwhile
                self._builds += 1
                self._plans[key] = plan
        return plan


def build():
    return PlanCache()


def drive(obj):
    obj.lookup("k")
    obj.lookup("k")
