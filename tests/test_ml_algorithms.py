"""The five ML algorithms: convergence, correctness, backend equivalence."""

import numpy as np
import pytest

from repro.data import classification_labels, regression_targets
from repro.ml import (MLRuntime, glm_irls, hits, linreg_cg,
                      logreg_trust_region, svm_primal)
from repro.core.pattern import Instantiation
from repro.sparse import random_csr


@pytest.fixture(scope="module")
def reg_problem():
    X = random_csr(400, 30, 0.3, rng=1)
    rng = np.random.default_rng(2)
    w_true = rng.normal(size=30)
    y = X.to_dense() @ w_true + 0.01 * rng.normal(size=400)
    return X, y, w_true


@pytest.fixture(scope="module")
def cls_problem():
    X = random_csr(500, 20, 0.4, rng=3)
    t = classification_labels(X, rng=4)
    return X, t


class TestLinReg:
    def test_solves_normal_equations(self, reg_problem):
        X, y, _ = reg_problem
        res = linreg_cg(X, y, eps=1e-3, max_iterations=200)
        d = X.to_dense()
        w_ref = np.linalg.solve(d.T @ d + 1e-3 * np.eye(30), d.T @ y)
        np.testing.assert_allclose(res.w, w_ref, rtol=1e-4, atol=1e-6)

    def test_residual_decreases(self, reg_problem):
        X, y, _ = reg_problem
        res = linreg_cg(X, y, max_iterations=50)
        assert res.residual_norm_sq < res.initial_norm_sq

    def test_iteration_cap(self, reg_problem):
        X, y, _ = reg_problem
        res = linreg_cg(X, y, max_iterations=3, tolerance=0.0)
        assert res.iterations == 3

    def test_backends_agree(self, reg_problem):
        X, y, _ = reg_problem
        ws = {}
        for backend in ("cpu", "gpu-baseline", "gpu-fused"):
            ws[backend] = linreg_cg(X, y, MLRuntime(backend),
                                    max_iterations=20).w
        np.testing.assert_allclose(ws["cpu"], ws["gpu-fused"], rtol=1e-12)
        np.testing.assert_allclose(ws["gpu-baseline"], ws["gpu-fused"],
                                   rtol=1e-12)

    def test_fused_backend_faster(self, reg_problem):
        X, y, _ = reg_problem
        f = linreg_cg(X, y, MLRuntime("gpu-fused"), max_iterations=20)
        b = linreg_cg(X, y, MLRuntime("gpu-baseline"), max_iterations=20)
        assert f.total_time_ms < b.total_time_ms

    def test_transfer_charged_once(self, reg_problem):
        X, y, _ = reg_problem
        rt = MLRuntime("gpu-fused")
        linreg_cg(X, y, rt, max_iterations=10)
        # X + y upload + w download
        assert rt.ledger.op_counts["transfer"] == 3

    def test_uses_paper_instantiations(self, reg_problem):
        X, y, _ = reg_problem
        rt = MLRuntime("gpu-fused")
        linreg_cg(X, y, rt, max_iterations=5)
        used = set(rt.ledger.instantiations)
        assert Instantiation.XT_Y in used
        assert Instantiation.XT_X_Y_BZ in used

    def test_y_shape_validated(self, reg_problem):
        X, _, _ = reg_problem
        with pytest.raises(ValueError, match="y must have shape"):
            linreg_cg(X, np.ones(7))


class TestLogReg:
    def test_converges_and_separates(self, cls_problem):
        X, t = cls_problem
        res = logreg_trust_region(X, t, lam=1.0)
        acc = (np.sign(X.to_dense() @ res.w) == t).mean()
        assert acc > 0.9
        assert res.grad_norm < 1e-3

    def test_matches_scipy_optimum(self, cls_problem):
        from scipy.optimize import minimize
        X, t = cls_problem
        d = X.to_dense()
        lam = 1.0

        def f(w):
            return (np.logaddexp(0, -t * (d @ w)).sum()
                    + 0.5 * lam * w @ w)

        res = logreg_trust_region(X, t, lam=lam, max_newton=50)
        ref = minimize(f, np.zeros(X.n), method="L-BFGS-B",
                       options={"maxiter": 500})
        assert res.final_loss == pytest.approx(ref.fun, rel=1e-5)

    def test_label_validation(self, cls_problem):
        X, _ = cls_problem
        with pytest.raises(ValueError, match="-1/\\+1"):
            logreg_trust_region(X, np.zeros(X.m))

    def test_uses_full_pattern(self, cls_problem):
        X, t = cls_problem
        rt = MLRuntime("gpu-fused")
        logreg_trust_region(X, t, rt, max_newton=3)
        assert Instantiation.FULL in rt.ledger.instantiations


class TestGlm:
    @pytest.mark.parametrize("family", ["gaussian", "poisson", "binomial"])
    def test_families_converge(self, family, rng):
        X = random_csr(400, 15, 0.4, rng=5)
        d = X.to_dense()
        w_true = 0.3 * rng.normal(size=15)
        eta = np.clip(d @ w_true, -3, 3)
        if family == "gaussian":
            target = eta + 0.01 * rng.normal(size=400)
        elif family == "poisson":
            target = rng.poisson(np.exp(eta)).astype(float)
        else:
            target = (rng.random(400) < 1 / (1 + np.exp(-eta))).astype(float)
        res = glm_irls(X, target, family)
        assert res.deviance_proxy < 1e-4 or res.iterations >= 3
        # recovered linear predictor correlates with the truth
        corr = np.corrcoef(d @ res.w, eta)[0, 1]
        assert corr > 0.8

    def test_gaussian_equals_least_squares(self, rng):
        X = random_csr(300, 10, 0.5, rng=6)
        d = X.to_dense()
        y = d @ rng.normal(size=10)
        res = glm_irls(X, y, "gaussian")
        w_ref, *_ = np.linalg.lstsq(d, y, rcond=None)
        np.testing.assert_allclose(res.w, w_ref, rtol=1e-5, atol=1e-7)

    def test_invalid_family(self, small_csr):
        with pytest.raises(ValueError, match="family"):
            glm_irls(small_csr, np.ones(small_csr.m), "gamma")

    def test_weighted_pattern_traced(self, rng):
        X = random_csr(200, 8, 0.5, rng=7)
        target = np.abs(rng.poisson(2.0, size=200)).astype(float)
        rt = MLRuntime("gpu-fused")
        glm_irls(X, target, "poisson", rt, max_irls=2, max_cg=4)
        assert Instantiation.XT_V_X_Y in rt.ledger.instantiations


class TestSvm:
    def test_separates(self, cls_problem):
        X, t = cls_problem
        res = svm_primal(X, t, lam=1.0)
        acc = (np.sign(X.to_dense() @ res.w) == t).mean()
        assert acc > 0.9
        assert 0 < res.n_support <= X.m

    def test_objective_decreases_vs_zero(self, cls_problem):
        X, t = cls_problem
        res = svm_primal(X, t, lam=1.0)
        obj_zero = float(len(t))       # all margins violated at w=0
        assert res.objective < obj_zero

    def test_stronger_regularization_smaller_weights(self, cls_problem):
        X, t = cls_problem
        w_weak = svm_primal(X, t, lam=0.1).w
        w_strong = svm_primal(X, t, lam=100.0).w
        assert np.linalg.norm(w_strong) < np.linalg.norm(w_weak)

    def test_label_validation(self, cls_problem):
        X, _ = cls_problem
        with pytest.raises(ValueError):
            svm_primal(X, np.full(X.m, 2.0))


class TestHits:
    @pytest.fixture(scope="class")
    def graph(self):
        X = random_csr(200, 200, 0.03, rng=8)
        X.values[:] = np.abs(X.values)
        return X

    def test_converges_to_leading_eigenvector(self, graph):
        res = hits(graph, max_iterations=300, tol=1e-12)
        A = graph.to_dense()
        _, evecs = np.linalg.eigh(A.T @ A)
        lead = evecs[:, -1]
        cos = abs(res.authorities @ lead)
        assert cos > 1.0 - 1e-6

    def test_modes_agree(self, graph):
        fused = hits(graph, mode="fused", max_iterations=300, tol=1e-12)
        alt = hits(graph, mode="alternating", max_iterations=300, tol=1e-12)
        np.testing.assert_allclose(np.abs(fused.authorities),
                                   np.abs(alt.authorities), atol=1e-5)

    def test_scores_normalized(self, graph):
        res = hits(graph, max_iterations=50)
        assert np.linalg.norm(res.authorities) == pytest.approx(1.0)
        assert np.linalg.norm(res.hubs) == pytest.approx(1.0)

    def test_top_k_helpers(self, graph):
        res = hits(graph, max_iterations=50)
        top = res.top_authorities(5)
        assert len(top) == 5
        assert res.authorities[top[0]] == res.authorities.max()

    def test_invalid_mode(self, graph):
        with pytest.raises(ValueError, match="mode"):
            hits(graph, mode="spectral")

    def test_alternating_uses_xt_y(self, graph):
        rt = MLRuntime("gpu-fused")
        hits(graph, rt, max_iterations=3, mode="alternating")
        assert Instantiation.XT_Y in rt.ledger.instantiations


class TestRuntime:
    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            MLRuntime("quantum")

    def test_ledger_fractions(self, reg_problem):
        X, y, _ = reg_problem
        rt = MLRuntime("cpu", cpu_threads=1)
        linreg_cg(X, y, rt, max_iterations=10, include_transfer=False)
        total = rt.ledger.total_ms
        parts = sum(rt.ledger.by_category.values())
        assert total == pytest.approx(parts)
        assert 0.0 < rt.ledger.compute_fraction("pattern") <= 1.0

    def test_ledger_reset(self):
        rt = MLRuntime("cpu")
        rt.ledger.charge("blas1", 1.0)
        rt.ledger.reset()
        assert rt.ledger.total_ms == 0.0
