"""Unit coverage for the host concurrency analyzer: model extraction
(lock inventory, condition aliasing, held-set tracking, context
propagation), checker precision dampers, suppression handling, and the
shipped-code-is-clean gate."""

import textwrap

import pytest

from repro.analyze.host import (HOST_MODULE_FILES, analyze_host_file,
                                extract_classes, lock_order_edges,
                                parse_suppressions, run_host_check)
from repro.analyze.host.hostcheckers import check_class
from repro.analyze.host.hostmodel import CONDITION, EVENT, LOCK, RLOCK


def extract_one(source: str):
    classes = extract_classes(textwrap.dedent(source))
    assert len(classes) == 1
    return classes[0]


def kinds_of(source: str) -> set:
    return {f.kind for f in check_class(extract_one(source))}


class TestExtraction:
    def test_lock_inventory_kinds(self):
        cls = extract_one("""
            import threading
            class C:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.RLock()
                    self._cv = threading.Condition(self._a)
                    self._ev = threading.Event()
        """)
        assert cls.locks["_a"].kind == LOCK
        assert cls.locks["_b"].kind == RLOCK
        assert cls.locks["_cv"].kind == CONDITION
        assert cls.locks["_ev"].kind == EVENT

    def test_condition_aliases_to_underlying_lock(self):
        cls = extract_one("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._not_empty = threading.Condition(self._lock)
                    self._not_full = threading.Condition(self._lock)
                    self._items = []
                def push(self, v):
                    with self._not_full:
                        self._items.append(v)
                def pop(self):
                    with self._not_empty:
                        return self._items.pop()
        """)
        assert cls.canonical("_not_empty") == "_lock"
        assert cls.canonical("_not_full") == "_lock"
        # both critical sections guard _items under the *same* canonical
        # lock, so the lockset intersection is non-empty: no finding
        assert not check_class(cls)

    def test_bare_condition_owns_its_lock(self):
        cls = extract_one("""
            import threading
            class C:
                def __init__(self):
                    self._cv = threading.Condition()
        """)
        assert cls.canonical("_cv") == "_cv"

    def test_held_set_tracks_with_nesting(self):
        cls = extract_one("""
            import threading
            class C:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                def m(self):
                    with self._a:
                        with self._b:
                            pass
        """)
        edges = lock_order_edges(cls)
        assert set(edges) == {("_a", "_b")}

    def test_init_accesses_are_exempt(self):
        # bare writes in __init__ happen before publication
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._x = 0
                def bump(self):
                    with self._lock:
                        self._x += 1
        """) == set()

    def test_nested_function_bodies_are_skipped(self):
        # the callback body runs later under an unknown context; taking
        # its bare read at face value would be a false positive
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._x = 0
                def bump(self):
                    with self._lock:
                        self._x += 1
                def watcher(self):
                    def cb():
                        return self._x
                    return cb
        """) == set()

    def test_context_propagation_through_locked_helper(self):
        # the _locked-suffix helper pattern: bare accesses are fine
        # because every caller already holds the lock
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._counts = {}
                def record(self, k):
                    with self._lock:
                        self._bump_locked(k)
                def snapshot(self):
                    with self._lock:
                        self._bump_locked(None)
                        return dict(self._counts)
                def _bump_locked(self, k):
                    if k is not None:
                        self._counts[k] = self._counts.get(k, 0) + 1
        """) == set()

    def test_thread_target_is_an_entry_point(self):
        # a private method only *referenced* (Thread target) is an entry:
        # its bare write races with the locked writer
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = 0
                    self._t = threading.Thread(target=self._loop)
                def set_state(self, v):
                    with self._lock:
                        self._state = v
                def _loop(self):
                    self._state = 1
        """) == {"atomicity"}

    def test_event_attrs_exempt_from_atomicity(self):
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._stop = threading.Event()
                def stop(self):
                    with self._lock:
                        self._stop.set()
                def running(self):
                    return not self._stop.is_set()
        """) == set()


class TestCheckerDampers:
    def test_unlocked_only_attr_is_quiet(self):
        # never written under a lock -> single-thread state, no finding
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ticks = 0
                def loop_body(self):
                    self._ticks += 1
                def read(self):
                    return self._ticks
        """) == set()

    def test_condition_wait_does_not_block_its_own_lock(self):
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)
                    self._ready = False
                def consume(self):
                    with self._cv:
                        while not self._ready:
                            self._cv.wait(0.1)
                def produce(self):
                    with self._cv:
                        self._ready = True
                        self._cv.notify_all()
        """) == set()

    def test_wait_holding_second_lock_is_blocking(self):
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._a = threading.Lock()
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)
                    self._ready = False
                def consume(self):
                    with self._a:
                        with self._cv:
                            while not self._ready:
                                self._cv.wait(0.1)
        """) == {"lock-held-blocking"}

    def test_wait_for_is_exempt_from_loop_rule(self):
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)
                    self._ready = False
                def consume(self):
                    with self._cv:
                        self._cv.wait_for(lambda: self._ready, 0.1)
        """) == set()

    def test_try_finally_release_is_safe(self):
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._x = 0
                def m(self):
                    self._lock.acquire()
                    try:
                        self._x += 1
                    finally:
                        self._lock.release()
                def read(self):
                    with self._lock:
                        return self._x
        """) == set()

    def test_reentry_requires_write_in_later_section(self):
        # read in CS1, read again in CS2: no reentry hazard
        assert kinds_of("""
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._d = {}
                def peek_twice(self, k):
                    with self._lock:
                        a = self._d.get(k)
                    with self._lock:
                        b = self._d.get(k)
                    return a, b
        """) == set()


class TestSuppressions:
    SOURCE = textwrap.dedent("""
        import threading
        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self._x = 0
            def bump(self):
                with self._lock:
                    self._x += 1
            def peek(self):
                # analyze: allow(atomicity)
                return self._x
    """)

    def test_parse_suppressions(self):
        supp = parse_suppressions(self.SOURCE)
        assert frozenset({"atomicity"}) in supp.values()

    def test_suppressed_finding_is_reported_separately(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(self.SOURCE)
        active, suppressed = analyze_host_file(str(path))
        assert active == []
        assert [f.kind for f in suppressed] == ["atomicity"]

    def test_method_scoped_allow_on_def_line(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(self.SOURCE.replace(
            "            def peek(self):",
            "            def peek(self):  # analyze: allow(all)").replace(
            "                # analyze: allow(atomicity)\n", ""))
        active, suppressed = analyze_host_file(str(path))
        assert active == []
        assert len(suppressed) == 1

    def test_unrelated_allow_does_not_mask(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(self.SOURCE.replace("allow(atomicity)",
                                            "allow(lock-order-cycle)"))
        active, _ = analyze_host_file(str(path))
        assert [f.kind for f in active] == ["atomicity"]


class TestShippedCode:
    def test_shipped_host_modules_are_clean(self):
        active, suppressed = run_host_check()
        assert active == [], "\n".join(f.describe() for f in active)
        # the deliberate patterns stay visible as suppressions
        assert suppressed

    def test_every_host_module_exists(self):
        import os
        for path in HOST_MODULE_FILES:
            assert os.path.exists(path), path

    def test_shipped_lock_order_graph_is_acyclic(self):
        from repro.analyze.host import host_classes
        from repro.analyze.host.hostcheckers import _cycles
        for path in HOST_MODULE_FILES:
            for cls in host_classes(path):
                assert _cycles(lock_order_edges(cls)) == []

    def test_missing_path_exits_with_one_liner(self):
        with pytest.raises(SystemExit, match="host module not found"):
            run_host_check(["/nonexistent/mod.py"])
