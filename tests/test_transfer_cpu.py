"""Host-link transfer model and the CPU roofline model."""

import pytest

from repro.gpu import CORE_I7, CpuCostModel, CpuSpec, GTX_TITAN, \
    TransferModel


class TestTransferModel:
    def test_pcie_time_linear_plus_latency(self):
        t = TransferModel(GTX_TITAN)
        one_gb = t.pcie_ms(1e9)
        assert one_gb == pytest.approx(
            GTX_TITAN.pcie_latency_us / 1e3
            + 1e9 / GTX_TITAN.pcie_bandwidth_bytes_per_ms)
        assert t.pcie_ms(0) == 0.0

    def test_jni_slower_than_pcie_per_byte(self):
        t = TransferModel(GTX_TITAN)
        nbytes = 1e8
        assert t.jni_ms(nbytes) > 0
        # JNI heap copy is slower than the PCIe link itself
        assert t.jni_ms(nbytes) > t.pcie_ms(nbytes) - \
            GTX_TITAN.pcie_latency_us / 1e3

    def test_h2d_composition(self):
        t = TransferModel(GTX_TITAN)
        nbytes = 5e7
        plain = t.h2d_ms(nbytes)
        with_jni = t.h2d_ms(nbytes, via_jni=True)
        full = t.h2d_ms(nbytes, via_jni=True, convert=True)
        assert plain < with_jni < full
        assert full == pytest.approx(plain + t.jni_ms(nbytes)
                                     + t.conversion_ms(nbytes))

    def test_kdd_transfer_magnitude(self):
        """The paper reports 939 ms to ship KDD2010 (~6.3 GB CSR) to the
        device; our PCIe model should land in the same order."""
        t = TransferModel(GTX_TITAN)
        kdd_bytes = 423_865_484 * 12 + (15_009_374 + 1) * 4
        ms = t.pcie_ms(kdd_bytes)
        assert 200 < ms < 2000


class TestCpuModel:
    def test_memory_bound_time(self):
        cpu = CpuCostModel()
        t = cpu.time_ms(21e9, flops=0, calls=0)   # 21 GB at 21 GB/s
        assert t == pytest.approx(1000.0, rel=0.05)

    def test_gather_fraction_slows(self):
        cpu = CpuCostModel()
        stream = cpu.time_ms(1e9, gather_fraction=0.0, calls=0)
        gather = cpu.time_ms(1e9, gather_fraction=1.0, calls=0)
        assert gather > 2.0 * stream

    def test_single_thread_slower(self):
        full = CpuCostModel().time_ms(1e9, calls=0)
        one = CpuCostModel(threads=1).time_ms(1e9, calls=0)
        assert one > 1.5 * full

    def test_compute_bound_branch(self):
        cpu = CpuCostModel()
        t = cpu.time_ms(1e3, flops=1e9, calls=0)
        assert t == pytest.approx(1e9 / (CORE_I7.peak_gflops * 1e6),
                                  rel=0.05)

    def test_call_overhead(self):
        cpu = CpuCostModel()
        assert cpu.time_ms(0, calls=10) == pytest.approx(
            10 * CORE_I7.call_overhead_us / 1e3)

    def test_custom_spec(self):
        fast = CpuSpec(stream_bandwidth_gbps=100.0,
                       single_thread_bandwidth_gbps=50.0)
        assert CpuCostModel(fast).time_ms(1e9, calls=0) < \
            CpuCostModel().time_ms(1e9, calls=0)
