"""Tracing must never change results: traced outputs are bit-identical."""

import numpy as np

from repro import trace
from repro.core.engine import PatternEngine, PatternRequest
from repro.serve import PatternServer, ServeRequest, ServerConfig
from repro.sparse import random_csr


def _inputs(n_requests=6):
    X = random_csr(2000, 96, 0.03, rng=7)
    rng = np.random.default_rng(7)
    ys = [rng.normal(size=96) for _ in range(n_requests)]
    return X, ys


def test_engine_outputs_bit_identical_with_tracing():
    X, ys = _inputs()
    baseline = [PatternEngine().evaluate(X, y, z=y, beta=1e-3,
                                         strategy="auto").output
                for y in ys]
    with trace.capture() as tracer:
        traced = [PatternEngine().evaluate(X, y, z=y, beta=1e-3,
                                           strategy="auto").output
                  for y in ys]
    assert tracer.snapshot()                    # tracing actually happened
    for b, t in zip(baseline, traced):
        assert np.array_equal(b, t)             # exact, not approx


def test_evaluate_many_bit_identical_with_tracing():
    X, ys = _inputs()
    reqs = [PatternRequest(X, y, strategy="fused") for y in ys]
    base = [r.result.output for r in PatternEngine().evaluate_many(reqs)]
    with trace.capture():
        traced = [r.result.output
                  for r in PatternEngine().evaluate_many(reqs)]
    for b, t in zip(base, traced):
        assert np.array_equal(b, t)


def test_serve_outputs_bit_identical_with_tracing():
    X, ys = _inputs()
    cfg = ServerConfig(workers=2, max_batch=4)

    def run():
        with PatternServer(PatternEngine(), cfg) as server:
            return [server.evaluate(ServeRequest(X, y)).result.output
                    for y in ys]

    base = run()
    with trace.capture():
        traced = run()
    for b, t in zip(base, traced):
        assert np.array_equal(b, t)
