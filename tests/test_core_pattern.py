"""GenericPattern, classification (Table 1), and the public API."""

import numpy as np
import pytest

from repro import (GenericPattern, Instantiation, TABLE1, evaluate, mvtmv,
                   pattern_of, xt_mv)
from repro.core.pattern import algorithms_using
from repro.sparse import random_csr


class TestClassification:
    def test_xtxy(self, small_csr, rng):
        p = GenericPattern(small_csr, rng.normal(size=small_csr.n))
        assert p.classify() is Instantiation.XT_X_Y

    def test_with_v(self, small_csr, rng):
        p = GenericPattern(small_csr, rng.normal(size=small_csr.n),
                           v=rng.normal(size=small_csr.m))
        assert p.classify() is Instantiation.XT_V_X_Y

    def test_with_z(self, small_csr, rng):
        p = GenericPattern(small_csr, rng.normal(size=small_csr.n),
                           z=rng.normal(size=small_csr.n), beta=0.1)
        assert p.classify() is Instantiation.XT_X_Y_BZ

    def test_full(self, small_csr, rng):
        p = GenericPattern(small_csr, rng.normal(size=small_csr.n),
                           v=rng.normal(size=small_csr.m),
                           z=rng.normal(size=small_csr.n), beta=0.1)
        assert p.classify() is Instantiation.FULL

    def test_xt_y(self, small_csr, rng):
        p = GenericPattern(small_csr, rng.normal(size=small_csr.m),
                           inner=False)
        assert p.classify() is Instantiation.XT_Y

    def test_pattern_of_helper(self, small_csr, rng):
        inst = pattern_of(small_csr, rng.normal(size=small_csr.n))
        assert inst is Instantiation.XT_X_Y


class TestValidation:
    def test_y_length_inner(self, small_csr):
        with pytest.raises(ValueError, match="y must have shape"):
            GenericPattern(small_csr, np.ones(small_csr.m))  # m != n here

    def test_y_length_outer(self, small_csr):
        with pytest.raises(ValueError, match="y must have shape"):
            GenericPattern(small_csr, np.ones(small_csr.n), inner=False)

    def test_v_with_outer_rejected(self, small_csr):
        with pytest.raises(ValueError, match="v is only meaningful"):
            GenericPattern(small_csr, np.ones(small_csr.m),
                           v=np.ones(small_csr.m), inner=False)

    def test_beta_needs_z(self, small_csr):
        with pytest.raises(ValueError, match="requires z"):
            GenericPattern(small_csr, np.ones(small_csr.n), beta=2.0)

    def test_z_shape(self, small_csr):
        with pytest.raises(ValueError, match="z must have shape"):
            GenericPattern(small_csr, np.ones(small_csr.n),
                           z=np.ones(3), beta=1.0)


class TestTable1Registry:
    def test_all_instantiations_present(self):
        assert set(TABLE1) == set(Instantiation)

    def test_paper_cells(self):
        assert algorithms_using(Instantiation.XT_Y) == {
            "LR", "GLM", "LogReg", "SVM", "HITS"}
        assert algorithms_using(Instantiation.FULL) == {"LogReg"}
        assert "SVM" in algorithms_using(Instantiation.XT_X_Y_BZ)
        assert "GLM" in algorithms_using(Instantiation.XT_V_X_Y)


class TestReference:
    def test_inner_reference(self, small_csr, rng):
        y = rng.normal(size=small_csr.n)
        v = rng.normal(size=small_csr.m)
        p = GenericPattern(small_csr, y, v=v, alpha=2.0)
        d = small_csr.to_dense()
        np.testing.assert_allclose(p.reference(), 2.0 * d.T @ ((d @ y) * v),
                                   rtol=1e-10)

    def test_outer_reference(self, small_csr, rng):
        y = rng.normal(size=small_csr.m)
        p = GenericPattern(small_csr, y, alpha=-1.0, inner=False)
        np.testing.assert_allclose(p.reference(),
                                   -small_csr.to_dense().T @ y, rtol=1e-10)

    def test_dense_matrix_pattern(self, rng):
        X = rng.normal(size=(40, 12))
        p = GenericPattern(X, rng.normal(size=12))
        assert not p.is_sparse
        np.testing.assert_allclose(p.reference(), X.T @ (X @ p.y),
                                   rtol=1e-12)


class TestPublicApi:
    def test_evaluate_checks_against_reference(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        res = evaluate(medium_csr, y, strategy="fused", check=True)
        assert res.time_ms > 0

    def test_all_strategies_agree(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        v = rng.normal(size=medium_csr.m)
        z = rng.normal(size=medium_csr.n)
        outs = {}
        for s in ("fused", "cusparse", "cusparse-explicit", "bidmat-gpu",
                  "bidmat-cpu"):
            outs[s] = evaluate(medium_csr, y, v=v, z=z, alpha=1.5, beta=0.5,
                               strategy=s).output
        ref = outs.pop("fused")
        for s, o in outs.items():
            np.testing.assert_allclose(o, ref, rtol=1e-9, atol=1e-11,
                                       err_msg=s)

    def test_mvtmv_alias(self, medium_csr, rng):
        y = rng.normal(size=medium_csr.n)
        np.testing.assert_allclose(mvtmv(medium_csr, y).output,
                                   evaluate(medium_csr, y).output)

    def test_xt_mv(self, medium_csr, rng):
        p = rng.normal(size=medium_csr.m)
        res = xt_mv(medium_csr, p, alpha=3.0)
        np.testing.assert_allclose(
            res.output, 3.0 * medium_csr.to_dense().T @ p, rtol=1e-9)

    def test_unknown_strategy(self, medium_csr, rng):
        with pytest.raises(ValueError, match="unknown strategy"):
            evaluate(medium_csr, rng.normal(size=medium_csr.n),
                     strategy="tpu")

    def test_auto_falls_back_for_wide_dense(self, rng):
        """Beyond the register limit the executor must pick the unfused
        route (the paper's explicit recommendation)."""
        from repro.core.executor import PatternExecutor
        from repro.tuning import MAX_THREAD_LOAD
        X = rng.normal(size=(20, MAX_THREAD_LOAD * 128 + 200))
        ex = PatternExecutor()
        p = GenericPattern(X, rng.normal(size=X.shape[1]))
        assert ex.choose_strategy(p) == "cusparse"
        res = ex.evaluate(p, "auto")
        np.testing.assert_allclose(res.output, X.T @ (X @ p.y), rtol=1e-9)

    def test_check_detects_divergence(self, medium_csr, rng, monkeypatch):
        from repro.core import executor as ex_mod
        ex = ex_mod.PatternExecutor(check=True)
        p = GenericPattern(medium_csr, rng.normal(size=medium_csr.n))
        plan = ex.plan_for(p, "fused")
        orig = plan.evaluate

        def corrupted(pattern):
            r = orig(pattern)
            r.output = r.output + 1.0
            return r

        monkeypatch.setattr(plan, "evaluate", corrupted)
        with pytest.raises(AssertionError, match="diverged"):
            ex.evaluate(p, "fused")
