"""Unit tests for the SLO scheduling core (repro.serve.sched).

Pure-function coverage of the ``edf`` policy's building blocks: tier
parsing and resolution, the pinned deterministic shed order, the EWMA cost
model with its cold fallback chain, weighted-fair EDF batch picking, and
the preempting admission offer.  No PatternServer here — every decision is
exercised as plain data so failures localize to the scheduling layer.
"""

import math

import pytest

from repro.serve import (AdmissionQueue, CostModel, TierSpec, default_tiers,
                         form_batches, parse_tiers, pick_next_batch,
                         plan_batches, resolve_tier, shed_order,
                         shed_sort_key)
from repro.serve.request import _Ticket
from repro.serve.sched import DEFAULT_TIER


def ticket(i: int, key: str = "m", *, tier: str = "",
           enq: float | None = None,
           deadline: float | None = None) -> _Ticket:
    return _Ticket(id=i, request=None, key=(key, "auto"),
                   enqueued_at=float(i) if enq is None else enq,
                   deadline_at=deadline, tier=tier)


TIERS = {
    "interactive": TierSpec("interactive", weight=3.0, rank=0),
    "batch": TierSpec("batch", weight=1.0, rank=1),
}


class TestTiers:
    def test_parse_tiers_full_spec(self):
        tiers = parse_tiers("interactive:3:50,batch:1")
        assert tiers["interactive"] == TierSpec("interactive", weight=3.0,
                                                rank=0, slo_ms=50.0)
        assert tiers["batch"] == TierSpec("batch", weight=1.0, rank=1)

    def test_parse_tiers_rank_follows_position(self):
        tiers = parse_tiers("gold,silver,bronze")
        assert [tiers[n].rank for n in ("gold", "silver", "bronze")] \
            == [0, 1, 2]

    def test_parse_tiers_rejects_bad_specs(self):
        for spec in ("", ",", "a:b:c:d", ":3", "x:0", "x:-1", "x:1:0",
                     "a:1,a:2"):
            with pytest.raises(ValueError):
                parse_tiers(spec)

    def test_tier_spec_validation(self):
        with pytest.raises(ValueError):
            TierSpec("")
        with pytest.raises(ValueError):
            TierSpec("t", weight=0.0)
        with pytest.raises(ValueError):
            TierSpec("t", rank=-1)
        with pytest.raises(ValueError):
            TierSpec("t", slo_ms=0.0)

    def test_default_tiers_shape(self):
        tiers = default_tiers()
        assert tiers["interactive"].weight > tiers["batch"].weight
        assert tiers["interactive"].rank < tiers["batch"].rank

    def test_resolve_known_and_default(self):
        assert resolve_tier("batch", TIERS) is TIERS["batch"]
        assert resolve_tier("", TIERS).name == DEFAULT_TIER

    def test_resolve_unknown_degrades_below_everything(self):
        spec = resolve_tier("mystery", TIERS)
        assert spec.rank > max(t.rank for t in TIERS.values())
        assert spec.weight == 1.0


class TestShedOrder:
    """The deterministic shed contract, pinned.

    Victims: lowest tier first (highest rank), then latest deadline first
    (deadline-less count as latest), then latest arrival, then id.
    """

    def test_lowest_tier_sheds_first(self):
        ts = [ticket(0, tier="interactive", deadline=5.0),
              ticket(1, tier="batch", deadline=1.0)]
        assert [t.id for t in shed_order(ts, TIERS)] == [1, 0]

    def test_latest_deadline_sheds_first_within_tier(self):
        ts = [ticket(0, tier="batch", deadline=1.0),
              ticket(1, tier="batch", deadline=9.0),
              ticket(2, tier="batch", deadline=None),
              ticket(3, tier="batch", deadline=4.0)]
        assert [t.id for t in shed_order(ts, TIERS)] == [2, 1, 3, 0]

    def test_latest_arrival_breaks_deadline_ties(self):
        ts = [ticket(0, tier="batch", enq=1.0),
              ticket(1, tier="batch", enq=3.0),
              ticket(2, tier="batch", enq=2.0)]
        assert [t.id for t in shed_order(ts, TIERS)] == [1, 2, 0]

    def test_full_mixed_order_pinned(self):
        ts = [ticket(0, tier="interactive", deadline=2.0),
              ticket(1, tier="interactive", deadline=None),
              ticket(2, tier="batch", deadline=1.0),
              ticket(3, tier="batch", deadline=None),
              ticket(4, tier="batch", deadline=7.0)]
        # batch deadline-less, batch d=7, batch d=1, int deadline-less,
        # int d=2 — the interactive tier is always the last to shed
        assert [t.id for t in shed_order(ts, TIERS)] == [3, 4, 2, 1, 0]

    def test_key_max_is_first_victim(self):
        ts = [ticket(i, tier=("batch" if i % 2 else "interactive"),
                     deadline=float(i)) for i in range(6)]
        first = shed_order(ts, TIERS)[0]
        assert shed_sort_key(first, TIERS) == \
            max(shed_sort_key(t, TIERS) for t in ts)

    def test_unknown_tier_sheds_before_configured_ones(self):
        ts = [ticket(0, tier="batch"), ticket(1, tier="free-loader")]
        assert [t.id for t in shed_order(ts, TIERS)] == [1, 0]


class TestCostModel:
    def test_cold_predicts_none(self):
        assert CostModel().predict(("m", "auto")) is None

    def test_per_key_ewma(self):
        cm = CostModel(alpha=0.5)
        cm.observe(("a", "auto"), 10.0)
        assert cm.predict(("a", "auto")) == 10.0
        cm.observe(("a", "auto"), 20.0)
        assert cm.predict(("a", "auto")) == pytest.approx(15.0)

    def test_global_fallback_for_unknown_key(self):
        cm = CostModel()
        cm.observe(("a", "auto"), 8.0)
        assert cm.predict(("never-seen", "auto")) == pytest.approx(8.0)

    def test_phase_aggregate_is_last_resort(self):
        cm = CostModel()
        cm.observe_phases({"engine.evaluate": {"count": 4,
                                               "total_ms": 20.0}})
        assert cm.predict(("x", "auto")) == pytest.approx(5.0)
        cm.observe(("a", "auto"), 9.0)         # global now beats phase
        assert cm.predict(("x", "auto")) == pytest.approx(9.0)
        assert cm.predict(("a", "auto")) == pytest.approx(9.0)

    def test_irrelevant_phases_ignored(self):
        cm = CostModel()
        cm.observe_phases(None)
        cm.observe_phases({"other.phase": {"count": 3, "total_ms": 9.0}})
        cm.observe_phases({"engine.evaluate": {"count": 0, "total_ms": 0.0}})
        assert cm.predict(("x", "auto")) is None

    def test_key_count_is_bounded_lru(self):
        cm = CostModel(max_keys=2)
        for name in ("a", "b", "c"):
            cm.observe((name, "auto"), 1.0)
        assert cm.snapshot()["keys"] == 2
        cm.observe(("d", "auto"), 50.0)        # "b" evicted, global moves
        assert cm.predict(("b", "auto")) == cm.predict(("nope", "auto"))

    def test_negative_observation_ignored(self):
        cm = CostModel()
        cm.observe(("a", "auto"), -1.0)
        assert cm.predict(("a", "auto")) is None
        assert cm.snapshot()["observations"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(max_keys=0)


class TestPickNextBatch:
    def test_empty_backlog_returns_none(self):
        assert pick_next_batch([], tiers=TIERS, fair_vt={}) is None

    def test_max_batch_validation(self):
        with pytest.raises(ValueError):
            pick_next_batch([ticket(0)], tiers=TIERS, fair_vt={},
                            max_batch=0)

    def test_interactive_overtakes_earlier_batch_arrivals(self):
        # FIFO would serve the batch tier first (it arrived first); the
        # tiered picker dispatches interactive ahead of it
        ts = [ticket(i, "bulk", tier="batch") for i in range(4)] \
            + [ticket(9, "hot", tier="interactive", enq=9.0)]
        fifo = form_batches(list(ts), "fifo", 4)
        assert fifo[0][0].tier == "batch"
        backlog = list(ts)
        batch = pick_next_batch(backlog, tiers=TIERS, fair_vt={},
                                max_batch=4, now=100.0)
        assert [t.id for t in batch] == [9]
        assert len(backlog) == 4               # picked tickets removed

    def test_weighted_fair_share_roughly_three_to_one(self):
        ts = [ticket(i, "int", tier="interactive") for i in range(40)] \
            + [ticket(100 + i, "bat", tier="batch") for i in range(40)]
        batches = plan_batches(ts, tiers=TIERS, max_batch=4, now=0.0)
        head = ["int" if b[0].tier == "interactive" else "bat"
                for b in batches[:12]]
        # both tiers served from the start (no starvation) and the 3:1
        # weighting shows up as a ~3:1 batch ratio while both are backlogged
        assert "bat" in head[:4]
        assert 8 <= head.count("int") <= 10

    def test_no_starvation_under_interactive_flood(self):
        ts = [ticket(i, "int", tier="interactive") for i in range(64)] \
            + [ticket(100 + i, "bat", tier="batch") for i in range(8)]
        batches = plan_batches(ts, tiers=TIERS, max_batch=8, now=0.0)
        last_batch_tier = max(i for i, b in enumerate(batches)
                              if b[0].tier == "batch")
        # the batch tier's work is done well before the flood drains
        assert last_batch_tier < len(batches) - 2
        got = sorted(t.id for b in batches for t in b)
        assert got == sorted(t.id for t in ts)  # exactly-once dispatch

    def test_edf_picks_earliest_deadline_group(self):
        ts = [ticket(0, "late", tier="batch", deadline=50.0),
              ticket(1, "never", tier="batch", deadline=None),
              ticket(2, "soon", tier="batch", deadline=10.0)]
        batch = pick_next_batch(ts, tiers=TIERS, fair_vt={}, now=0.0)
        assert [t.id for t in batch] == [2]

    def test_deadline_less_group_goes_last(self):
        ts = [ticket(0, "never", tier="batch", deadline=None, enq=0.0),
              ticket(1, "soon", tier="batch", deadline=99.0, enq=5.0)]
        batch = pick_next_batch(ts, tiers=TIERS, fair_vt={}, now=0.0)
        assert [t.id for t in batch] == [1]

    def test_cost_capped_batch_protects_waiting_deadline(self):
        # 10 ms/request predicted cost; a batch-tier straggler's deadline
        # is 25 ms out, so the interactive group's batch stops at 2 even
        # though 8 tickets and max_batch=8 would allow more
        cm = CostModel()
        cm.observe(("hot", "auto"), 10.0)
        ts = [ticket(i, "hot", tier="interactive") for i in range(8)] \
            + [ticket(99, "bulk", tier="batch", deadline=1000.025)]
        batch = pick_next_batch(ts, tiers=TIERS, fair_vt={}, cost_model=cm,
                                max_batch=8, now=1000.0)
        assert [t.tier for t in batch] == ["interactive"] * 2

    def test_blown_deadlines_do_not_cap_the_batch(self):
        cm = CostModel()
        cm.observe(("hot", "auto"), 10.0)
        ts = [ticket(i, "hot", tier="interactive") for i in range(8)] \
            + [ticket(99, "bulk", tier="batch", deadline=999.0)]
        batch = pick_next_batch(ts, tiers=TIERS, fair_vt={}, cost_model=cm,
                                max_batch=8, now=1000.0)   # 999 already past
        assert len(batch) == 8

    def test_cold_model_falls_back_to_size_only(self):
        ts = [ticket(i, "hot", tier="interactive") for i in range(8)] \
            + [ticket(99, "bulk", tier="batch", deadline=1000.025)]
        batch = pick_next_batch(ts, tiers=TIERS, fair_vt={},
                                cost_model=CostModel(),    # cold: None
                                max_batch=8, now=1000.0)
        assert len(batch) == 8

    def test_idle_tier_cannot_bank_credit(self):
        # the batch tier went idle (its vt entry was dropped) while
        # interactive ran far ahead; on return it re-enters at the active
        # floor, so it gets its fair share from now on rather than an
        # unbounded catch-up burst
        fair_vt = {"interactive": 100.0}
        ts = [ticket(0, "int", tier="interactive"),
              ticket(1, "bat", tier="batch")]
        pick_next_batch(list(ts), tiers=TIERS, fair_vt=fair_vt, now=0.0)
        assert fair_vt["batch"] >= 100.0

    def test_idle_tier_entry_is_dropped(self):
        fair_vt = {"interactive": 5.0, "batch": 7.0}
        pick_next_batch([ticket(0, "bat", tier="batch")], tiers=TIERS,
                        fair_vt=fair_vt, now=0.0)
        assert "interactive" not in fair_vt

    def test_plan_batches_dispatches_exactly_once(self):
        ts = [ticket(i, "abc"[i % 3], tier=("batch" if i % 2 else
                                            "interactive"))
              for i in range(23)]
        batches = plan_batches(ts, tiers=TIERS, max_batch=4, now=0.0)
        got = sorted(t.id for b in batches for t in b)
        assert got == list(range(23))

    def test_form_batches_edf_policy(self):
        ts = [ticket(0, "bulk", tier="batch"),
              ticket(1, "hot", tier="interactive", enq=1.0)]
        batches = form_batches(ts, "edf", 8, tiers=TIERS)
        assert [t.id for t in batches[0]] == [1]


class TestPreemptingOffer:
    def key(self, t):
        return shed_sort_key(t, TIERS)

    def test_appends_when_space(self):
        q = AdmissionQueue(2)
        admitted, victim = q.offer_preempting(ticket(0, tier="batch"),
                                              self.key)
        assert admitted and victim is None

    def test_evicts_worst_queued_item_when_full(self):
        q = AdmissionQueue(2)
        a, b = ticket(0, tier="batch"), ticket(1, tier="batch")
        assert q.offer(a) and q.offer(b)
        newcomer = ticket(2, tier="interactive", enq=2.0)
        admitted, victim = q.offer_preempting(newcomer, self.key)
        assert admitted and victim is b        # latest batch arrival sheds
        assert q.drain(wait_s=0.0) == [a, newcomer]

    def test_refuses_newcomer_that_ranks_worst(self):
        q = AdmissionQueue(2)
        assert q.offer(ticket(0, tier="interactive"))
        assert q.offer(ticket(1, tier="interactive", enq=1.0))
        admitted, victim = q.offer_preempting(ticket(2, tier="batch",
                                                     enq=2.0), self.key)
        assert not admitted and victim is None
        assert len(q) == 2

    def test_earlier_deadline_beats_queued_same_tier(self):
        q = AdmissionQueue(1)
        waiting = ticket(0, tier="batch", deadline=math.inf)
        assert q.offer(waiting)
        urgent = ticket(1, tier="batch", deadline=5.0, enq=1.0)
        admitted, victim = q.offer_preempting(urgent, self.key)
        assert admitted and victim is waiting

    def test_closed_queue_refuses(self):
        q = AdmissionQueue(1)
        q.close()
        admitted, victim = q.offer_preempting(ticket(0), self.key)
        assert not admitted and victim is None
