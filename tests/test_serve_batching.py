"""Unit tests for the serve building blocks: batcher, queue, metrics.

All pure/threaded-but-local components — no PatternServer here, so failures
localize to the exact layer (batch formation, admission semantics, or the
metrics/export path) rather than the whole serving stack.
"""

import json
import threading
import time

import pytest

from repro.serve import AdmissionQueue, Histogram, ServeMetrics, form_batches
from repro.serve.metrics import BATCH_SIZE_BUCKETS
from repro.serve.request import _Ticket


def ticket(i: int, key: str) -> _Ticket:
    return _Ticket(id=i, request=None, key=(key, "auto"),
                   enqueued_at=float(i), deadline_at=None)


class TestFormBatches:
    def test_empty(self):
        assert form_batches([], "fifo", 4) == []
        assert form_batches([], "fingerprint", 4) == []

    def test_fifo_preserves_arrival_order(self):
        ts = [ticket(i, "ab"[i % 2]) for i in range(5)]
        batches = form_batches(ts, "fifo", 2)
        assert [[t.id for t in b] for b in batches] == [[0, 1], [2, 3], [4]]

    def test_fingerprint_groups_by_key(self):
        ts = [ticket(0, "a"), ticket(1, "b"), ticket(2, "a"),
              ticket(3, "b"), ticket(4, "a")]
        batches = form_batches(ts, "fingerprint", 16)
        # groups ordered by earliest arrival; arrival order kept inside
        assert [[t.id for t in b] for b in batches] == [[0, 2, 4], [1, 3]]

    def test_fingerprint_respects_max_batch(self):
        ts = [ticket(i, "a") for i in range(5)] + [ticket(9, "b")]
        batches = form_batches(ts, "fingerprint", 2)
        assert [len(b) for b in batches] == [2, 2, 1, 1]

    def test_every_ticket_dispatched_exactly_once(self):
        ts = [ticket(i, "abc"[i % 3]) for i in range(17)]
        for policy in ("fifo", "fingerprint"):
            got = sorted(t.id for b in form_batches(ts, policy, 4) for t in b)
            assert got == list(range(17))

    def test_strategy_is_part_of_the_key(self):
        a = _Ticket(id=0, request=None, key=("m", "fused"),
                    enqueued_at=0.0, deadline_at=None)
        b = _Ticket(id=1, request=None, key=("m", "cusparse"),
                    enqueued_at=1.0, deadline_at=None)
        assert len(form_batches([a, b], "fingerprint", 8)) == 2

    def test_bad_arguments(self):
        with pytest.raises(ValueError, match="policy"):
            form_batches([ticket(0, "a")], "random", 4)
        with pytest.raises(ValueError, match="max_batch"):
            form_batches([ticket(0, "a")], "fifo", 0)


class TestAdmissionQueue:
    def test_offer_and_fifo_drain(self):
        q = AdmissionQueue(4)
        for i in range(3):
            assert q.offer(i)
        assert len(q) == 3
        assert q.drain(wait_s=0.0) == [0, 1, 2]
        assert len(q) == 0

    def test_nonblocking_offer_sheds_when_full(self):
        q = AdmissionQueue(2)
        assert q.offer(1) and q.offer(2)
        assert not q.offer(3)                 # shed
        assert q.drain(wait_s=0.0) == [1, 2]  # original order kept

    def test_blocking_offer_times_out(self):
        q = AdmissionQueue(1)
        q.offer(1)
        t0 = time.monotonic()
        assert not q.offer(2, block=True, timeout=0.05)
        assert time.monotonic() - t0 >= 0.04

    def test_blocking_offer_wakes_on_drain(self):
        q = AdmissionQueue(1)
        q.offer("first")
        done = []

        def producer():
            done.append(q.offer("second", block=True, timeout=2.0))

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.02)
        assert q.drain(wait_s=0.1) == ["first"]
        t.join(timeout=2.0)
        assert done == [True]
        assert q.drain(wait_s=0.5) == ["second"]

    def test_drain_respects_max_items(self):
        q = AdmissionQueue(8)
        for i in range(6):
            q.offer(i)
        assert q.drain(max_items=4, wait_s=0.0) == [0, 1, 2, 3]
        assert q.drain(max_items=4, wait_s=0.0) == [4, 5]

    def test_drain_lingers_to_accumulate(self):
        q = AdmissionQueue(8)
        q.offer("early")

        def late():
            time.sleep(0.03)
            q.offer("late")

        t = threading.Thread(target=late)
        t.start()
        out = q.drain(wait_s=0.5, linger_s=0.25)
        t.join()
        assert out == ["early", "late"]

    def test_close_fails_future_offers_and_wakes_waiters(self):
        q = AdmissionQueue(1)
        q.offer(1)
        results = []

        def blocked():
            results.append(q.offer(2, block=True, timeout=5.0))

        t = threading.Thread(target=blocked)
        t.start()
        time.sleep(0.02)
        q.close()
        t.join(timeout=2.0)
        assert results == [False]
        assert q.closed
        assert not q.offer(3)
        # items enqueued before close still drain (shutdown rejects them)
        assert q.reject_pending() == [1]

    def test_reject_pending_empties_atomically(self):
        q = AdmissionQueue(4)
        q.offer("a")
        q.offer("b")
        assert q.reject_pending() == ["a", "b"]
        assert len(q) == 0
        assert q.reject_pending() == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


class TestHistogram:
    def test_streaming_stats(self):
        h = Histogram((1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(555.5)
        assert h.min == 0.5 and h.max == 500.0
        assert h.counts == [1, 1, 1, 1]       # one overflow

    def test_percentile_bounds(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        assert h.percentile(0.0) == 0.0
        p50, p99 = h.percentile(0.5), h.percentile(0.99)
        assert 0.0 < p50 <= p99 <= h.max
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_empty_histogram(self):
        h = Histogram()
        assert h.percentile(0.99) == 0.0
        d = h.to_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["max"] == 0.0

    def test_to_dict_buckets_sum_to_count(self):
        h = Histogram(BATCH_SIZE_BUCKETS)
        for v in (1, 3, 3, 200):
            h.observe(v)
        d = h.to_dict()
        assert sum(d["buckets"].values()) + d["overflow"] == d["count"]


class TestServeMetrics:
    def _loaded(self) -> ServeMetrics:
        m = ServeMetrics()
        m.inc("submitted", 3)
        m.inc("admitted", 2)
        m.inc("completed", 2)
        m.inc("shed")
        m.observe_wait(1.5)
        m.observe_batch(2, [0.8, 0.9])
        m.observe_latency(2.3)
        m.observe_latency(4.1)
        return m

    def test_snapshot_counts(self):
        snap = self._loaded().snapshot(queue_depth=5, in_flight=1)
        assert snap["counters"]["submitted"] == 3
        assert snap["counters"]["shed"] == 1
        assert snap["counters"]["batches"] == 1
        assert snap["gauges"] == {"queue_depth": 5, "in_flight": 1}
        assert snap["histograms"]["service_ms"]["count"] == 2
        assert snap["histograms"]["latency_ms"]["count"] == 2
        assert "engine" not in snap            # no engine stats passed

    def test_json_round_trips(self):
        parsed = json.loads(self._loaded().to_json(indent=None))
        assert parsed["counters"]["completed"] == 2

    def test_prometheus_format(self):
        text = self._loaded().to_prometheus(queue_depth=2, in_flight=1)
        assert text.endswith("\n")
        assert 'repro_serve_requests_total{status="shed"} 1' in text
        assert "repro_serve_queue_depth 2" in text
        assert "# TYPE repro_serve_latency_ms histogram" in text
        # cumulative `le` buckets: the +Inf bucket equals the count
        lines = text.splitlines()
        inf = next(ln for ln in lines
                   if ln.startswith('repro_serve_latency_ms_bucket{le="+Inf"'))
        count = next(ln for ln in lines
                     if ln.startswith("repro_serve_latency_ms_count"))
        assert inf.split()[-1] == count.split()[-1] == "2"
        # cumulative counts never decrease across bucket bounds
        vals = [int(ln.split()[-1]) for ln in lines
                if ln.startswith("repro_serve_latency_ms_bucket")]
        assert vals == sorted(vals)

    def test_prometheus_engine_block(self):
        from repro.core.engine import PatternEngine
        from repro.sparse import random_csr
        import numpy as np
        eng = PatternEngine()
        X = random_csr(40, 10, 0.3, rng=0)
        eng.evaluate(X, np.ones(10), strategy="fused")
        built = eng.snapshot().profiles_built
        assert built > 0
        text = ServeMetrics().to_prometheus(engine_stats=eng.snapshot())
        assert f"repro_engine_profiles_built_total {built}" in text
        assert "repro_engine_plan_hit_rate" in text

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ServeMetrics().inc("nonexistent")
