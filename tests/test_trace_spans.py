"""Span-tree structure: nesting, thread propagation, counters, retention."""

import threading

import numpy as np
import pytest

from repro import trace
from repro.trace import Tracer, validate_chrome


def by_name(spans, name):
    return [s for s in spans if s.name == name]


def test_module_span_is_noop_when_uninstalled():
    assert trace.active() is None
    sp = trace.span("anything", "test")
    assert sp is trace.NOOP_SPAN
    with sp as inner:                      # enter/exit/set/count all inert
        inner.set("key", 1)
        inner.count(n=2)
    assert trace.current_id() is None


def test_thread_local_nesting():
    with trace.capture() as tracer:
        with trace.span("outer", "test") as outer:
            with trace.span("inner", "test"):
                assert trace.current_id() is not None
            with trace.span("sibling", "test"):
                pass
        with trace.span("top", "test"):
            pass
    spans = {s.name: s for s in tracer.snapshot()}
    assert spans["outer"].parent_id is None
    assert spans["inner"].parent_id == outer.id
    assert spans["sibling"].parent_id == outer.id
    assert spans["top"].parent_id is None
    assert all(s.t1 >= s.t0 for s in spans.values())


def test_explicit_parent_crosses_threads():
    with trace.capture() as tracer:
        with trace.span("root", "test"):
            parent = trace.current_id()

            def work():
                # thread-local nesting cannot cross the hop: without the
                # explicit parent this span would be a root in its thread
                with trace.span("hop", "test", parent=parent):
                    with trace.span("nested", "test"):
                        pass

            t = threading.Thread(target=work, name="hop-thread")
            t.start()
            t.join()
    spans = {s.name: s for s in tracer.snapshot()}
    assert spans["hop"].parent_id == spans["root"].id
    assert spans["nested"].parent_id == spans["hop"].id
    assert spans["hop"].tid != spans["root"].tid
    assert spans["hop"].thread_name == "hop-thread"


def test_args_and_counters_accumulate():
    with trace.capture() as tracer:
        with trace.span("k", "kernel", variant="csr") as sp:
            sp.set("hit", True)
            sp.count(nnz=100, bytes=10)
            sp.count(nnz=50)
    (s,) = tracer.snapshot()
    assert s.args == {"variant": "csr", "hit": True}
    assert s.counters == {"nnz": 150, "bytes": 10}


def test_add_span_synthetic_and_clamped():
    tracer = Tracer()
    t = tracer.clock()
    tracer.add_span("queue-wait", "serve", t, t + 0.25, args={"rid": 7})
    backwards = tracer.add_span("neg", "serve", t, t - 1.0)
    assert backwards.duration_ms == 0.0          # t1 clamped to t0
    qw = by_name(tracer.snapshot(), "queue-wait")[0]
    assert qw.duration_ms == pytest.approx(250.0)
    assert qw.args["rid"] == 7


def test_retention_cap_keeps_totals_exact():
    with trace.capture(Tracer(max_spans=3)) as tracer:
        for _ in range(10):
            with trace.span("tick", "test"):
                pass
    assert len(tracer.snapshot()) == 3
    assert tracer.dropped == 7
    totals = tracer.phase_totals()
    assert totals["test.tick"]["count"] == 10    # aggregates survive drops
    tracer.clear()
    assert tracer.snapshot() == [] and tracer.dropped == 0


def test_capture_restores_previous_tracer():
    outer = trace.install()
    try:
        with trace.capture() as inner:
            assert trace.active() is inner
        assert trace.active() is outer
    finally:
        trace.uninstall()
    assert trace.active() is None


def test_serve_span_tree_crosses_worker_threads():
    """Request spans parent under batch spans despite the thread hops."""
    from repro.core.engine import PatternEngine
    from repro.serve import PatternServer, ServeRequest, ServerConfig
    from repro.sparse import random_csr

    X = random_csr(300, 32, 0.05, rng=0)
    rng = np.random.default_rng(1)
    with trace.capture() as tracer:
        with PatternServer(PatternEngine(),
                           ServerConfig(workers=2, max_batch=4)) as server:
            futures = [server.submit(ServeRequest(X, rng.normal(size=32)))
                       for _ in range(8)]
            for f in futures:
                assert f.result().status == "ok"
    spans = tracer.snapshot()
    batches = {s.id: s for s in by_name(spans, "batch")
               if s.category == "serve"}
    assert batches
    requests = by_name(spans, "request")
    assert len(requests) == 8
    engine_batches = {s.id: s for s in by_name(spans, "batch")
                      if s.category == "engine"}
    for r in requests:
        assert r.parent_id in engine_batches
    # per-request synthetic spans hang off the serve batch that ran them
    for name in ("queue-wait", "completion"):
        synth = by_name(spans, name)
        assert len(synth) == 8
        assert all(s.parent_id in batches for s in synth)
    # admission runs on the submitting thread, batches on worker threads
    tids = {s.tid for s in by_name(spans, "admission")}
    assert tids == {threading.get_ident()}
    assert any(s.tid != threading.get_ident() for s in batches.values())
    # the whole tree exports to valid Chrome trace JSON
    assert validate_chrome(trace.to_chrome(spans)) == len(spans)


def test_validate_chrome_rejects_malformed():
    with pytest.raises(ValueError):
        validate_chrome([])
    with pytest.raises(ValueError):
        validate_chrome({"traceEvents": [{"ph": "X"}]})
    with pytest.raises(ValueError):
        validate_chrome({"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 1,
             "ts": -5, "dur": 1, "cat": "c"}]})
    ok = {"traceEvents": [
        {"name": "p", "ph": "M", "pid": 1, "tid": 0, "args": {}},
        {"name": "x", "ph": "X", "pid": 1, "tid": 1,
         "ts": 0.0, "dur": 2.5, "cat": "c", "args": {}}]}
    assert validate_chrome(ok) == 1
