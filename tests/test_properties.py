"""Property-based tests (hypothesis) on core data structures and kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import GenericPattern, PatternExecutor
from repro.gpu.atomics import contended_chain, effective_addresses
from repro.gpu.device import GTX_TITAN
from repro.gpu.memory import (coalesced_transactions,
                              warp_segment_transactions)
from repro.gpu.occupancy import occupancy
from repro.kernels import fused_pattern_sparse, get_kernel
from repro.sparse import CooMatrix, CsrMatrix, csr_to_csc, csc_to_csr, \
    spmv, spmv_t
from repro.tuning import (registers_for_thread_load, select_vector_size,
                          select_vector_size_dense, tune_dense)


# ---------------------------------------------------------------- strategies
@st.composite
def csr_matrices(draw, max_m=30, max_n=20):
    m = draw(st.integers(1, max_m))
    n = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, m * n))
    if nnz:
        rows = draw(hnp.arrays(np.int64, nnz,
                               elements=st.integers(0, m - 1)))
        cols = draw(hnp.arrays(np.int64, nnz,
                               elements=st.integers(0, n - 1)))
        vals = draw(hnp.arrays(
            np.float64, nnz,
            elements=st.floats(-100, 100, allow_nan=False,
                               allow_infinity=False)))
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float64)
    return CooMatrix((m, n), rows, cols, vals).to_csr()


def vec(n, lo=-50.0, hi=50.0):
    return hnp.arrays(np.float64, n,
                      elements=st.floats(lo, hi, allow_nan=False,
                                         allow_infinity=False))


# ------------------------------------------------------------------- formats
class TestFormatProperties:
    @settings(max_examples=60, deadline=None)
    @given(csr_matrices())
    def test_csr_invariants_hold(self, X):
        X.validate()
        assert X.row_nnz.sum() == X.nnz
        assert X.column_counts().sum() == X.nnz

    @settings(max_examples=60, deadline=None)
    @given(csr_matrices())
    def test_csc_roundtrip(self, X):
        assert csc_to_csr(csr_to_csc(X)) == X

    @settings(max_examples=60, deadline=None)
    @given(csr_matrices())
    def test_transpose_involution(self, X):
        assert X.transpose_csr().transpose_csr() == X

    @settings(max_examples=40, deadline=None)
    @given(csr_matrices(), st.data())
    def test_spmv_linear_in_y(self, X, data):
        y1 = data.draw(vec(X.n))
        y2 = data.draw(vec(X.n))
        a = data.draw(st.floats(-10, 10, allow_nan=False))
        lhs = spmv(X, a * y1 + y2)
        rhs = a * spmv(X, y1) + spmv(X, y2)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(csr_matrices(), st.data())
    def test_spmv_transpose_adjoint(self, X, data):
        """<Xy, p> == <y, X^T p> — the adjoint identity."""
        y = data.draw(vec(X.n))
        p = data.draw(vec(X.m))
        lhs = float(spmv(X, y) @ p)
        rhs = float(y @ spmv_t(X, p))
        assert lhs == pytest.approx(rhs, rel=1e-8, abs=1e-6)


# ------------------------------------------------------------------- kernels
class TestKernelProperties:
    @settings(max_examples=25, deadline=None)
    @given(csr_matrices(max_m=25, max_n=15), st.data())
    def test_fused_matches_reference_everywhere(self, X, data):
        y = data.draw(vec(X.n))
        v = data.draw(st.one_of(st.none(), vec(X.m)))
        beta = data.draw(st.sampled_from([0.0, 0.5, -1.0]))
        z = data.draw(vec(X.n)) if beta else None
        alpha = data.draw(st.floats(-5, 5, allow_nan=False))
        res = fused_pattern_sparse(X, y, v, z, alpha, beta)
        p = GenericPattern(X, y, v=v, z=z, alpha=alpha, beta=beta)
        np.testing.assert_allclose(res.output, p.reference(),
                                   rtol=1e-8, atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(csr_matrices(max_m=25, max_n=15), st.data())
    def test_strategies_agree(self, X, data):
        y = data.draw(vec(X.n))
        ex = PatternExecutor()
        p = GenericPattern(X, y)
        outs = [ex.evaluate(p, s).output
                for s in ("fused", "cusparse", "bidmat-gpu", "bidmat-cpu")]
        for o in outs[1:]:
            np.testing.assert_allclose(o, outs[0], rtol=1e-8, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 16), st.integers(1, 8), st.data())
    def test_generated_kernel_equals_matmul(self, vs, tl, data):
        n = vs * tl
        m = data.draw(st.integers(1, 12))
        X = data.draw(hnp.arrays(np.float64, (m, n),
                                 elements=st.floats(-10, 10,
                                                    allow_nan=False)))
        y = data.draw(vec(n))
        out = np.zeros(n)
        get_kernel(n, vs, tl)(X, y, None, 1.0, out)
        np.testing.assert_allclose(out, X.T @ (X @ y), rtol=1e-8, atol=1e-6)


# --------------------------------------------------------------------- model
class TestModelProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.floats(0.01, 1000.0))
    def test_eq4_returns_power_of_two(self, mu):
        vs = select_vector_size(mu)
        assert vs in (1, 2, 4, 8, 16, 32)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 4096), st.integers(1, 40))
    def test_eq6_vector_covers_row(self, n, tl):
        vs = select_vector_size_dense(n, tl, 128)
        assert vs >= 1
        # within a block, vs*tl covers n whenever vs < block (the BS branch
        # delegates coverage to the whole block)
        if vs < 128:
            assert vs * tl >= min(n, vs * tl)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 40))
    def test_register_table_within_limits(self, tl):
        assert 23 <= registers_for_thread_load(tl) <= 255

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 5000), st.integers(33, 4000))
    def test_dense_tuner_total_coverage(self, m, n):
        p = tune_dense(m, n, GTX_TITAN)
        vectors = p.grid_size * (p.block_size // p.vector_size)
        assert vectors * p.coarsening >= m
        assert p.vector_size * p.thread_load >= n

    @settings(max_examples=100, deadline=None)
    @given(st.integers(32, 1024), st.integers(1, 255), st.integers(0, 49152))
    def test_occupancy_within_device_limits(self, bs, regs, shm):
        occ = occupancy(GTX_TITAN, bs, regs, shm)
        assert occ.blocks_per_sm >= 0
        assert occ.threads_per_sm <= GTX_TITAN.max_threads_per_sm \
            + GTX_TITAN.warp_size  # block-granularity rounding headroom
        assert occ.warps_per_sm <= GTX_TITAN.max_warps_per_sm

    @settings(max_examples=100, deadline=None)
    @given(hnp.arrays(np.float64, st.integers(1, 50),
                      elements=st.floats(0, 1e6)))
    def test_effective_addresses_bounds(self, w):
        eff = effective_addresses(w)
        assert 1.0 <= eff <= max(1.0, float((w > 0).sum())) + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(st.floats(0, 1e9), st.integers(1, 10**6))
    def test_chain_at_most_ops(self, ops, n_addr):
        chain = contended_chain(ops, np.ones(n_addr))
        assert 0.0 <= chain <= ops + 1e-6

    @settings(max_examples=100, deadline=None)
    @given(st.floats(0, 1e9))
    def test_coalesced_monotone(self, nbytes):
        t = coalesced_transactions(nbytes)
        assert t >= 0
        assert t <= coalesced_transactions(nbytes + 128)

    @settings(max_examples=60, deadline=None)
    @given(hnp.arrays(np.int64, st.integers(1, 200),
                      elements=st.integers(0, 500)),
           st.sampled_from([1, 2, 4, 8, 16, 32]))
    def test_warp_grouping_never_exceeds_per_row(self, rows, group):
        """Grouping rows into warps can only merge traffic, never add more
        than one misalignment line per group."""
        grouped = warp_segment_transactions(rows, 8, group)
        n_groups = -(-len(rows) // group)
        upper = coalesced_transactions(float(rows.sum() * 8)) + n_groups \
            + len(rows)
        assert grouped <= upper + 1e-9
