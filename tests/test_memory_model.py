"""Memory-system models: coalescing, gathers, bank conflicts, caches."""

import numpy as np
import pytest

from repro.gpu import (CacheModel, GTX_TITAN, coalesced_transactions,
                       gather_transactions, segment_transactions,
                       shared_bank_conflict_replays,
                       uncoalesced_transactions)
from repro.gpu.memory import warp_segment_transactions


class TestCoalesced:
    def test_exact_multiple(self):
        assert coalesced_transactions(256) == 2
        assert coalesced_transactions(128) == 1

    def test_partial_line_rounds_up(self):
        assert coalesced_transactions(129) == 2
        assert coalesced_transactions(1) == 1

    def test_zero(self):
        assert coalesced_transactions(0) == 0.0


class TestGather:
    def test_contiguous_indices_coalesce(self):
        # 32 consecutive doubles span two 128B lines
        idx = np.arange(32)
        assert gather_transactions(idx) == 2

    def test_scattered_indices_full_cost(self):
        # one index per line: every access is its own transaction
        idx = np.arange(32) * 16
        assert gather_transactions(idx) == 32

    def test_repeated_index_single_line(self):
        idx = np.zeros(32, dtype=np.int64)
        assert gather_transactions(idx) == 1

    def test_partial_warp(self):
        idx = np.arange(10)
        assert gather_transactions(idx) == 1

    def test_empty(self):
        assert gather_transactions(np.array([], dtype=np.int64)) == 0.0


class TestSegments:
    def test_single_long_segment(self):
        # 100 doubles = 800 B -> 7 lines + 0.5 misalignment
        assert segment_transactions(np.array([100])) == pytest.approx(7.5)

    def test_zero_length_segments_free(self):
        assert segment_transactions(np.array([0, 0, 0])) == 0.0

    def test_warp_grouping_merges_short_rows(self):
        """16 rows of 2 nnz each, processed by one warp, share a stream:
        32 doubles = 2 lines + 1 misalignment, instead of 16 separate rows."""
        rows = np.full(16, 2)
        grouped = warp_segment_transactions(rows, 8, rows_per_group=16)
        per_row = segment_transactions(rows, 8)
        assert grouped == 3.0
        assert grouped < per_row

    def test_warp_grouping_group_of_one(self):
        rows = np.array([64])
        assert warp_segment_transactions(rows, 8, rows_per_group=1) == 5.0

    def test_uncoalesced(self):
        assert uncoalesced_transactions(100) == 100.0
        assert uncoalesced_transactions(-5) == 0.0


class TestBankConflicts:
    def test_unit_stride_conflict_free_for_doubles(self):
        # stride 1 double = 2 words -> 16 distinct banks -> 2-way conflict
        assert shared_bank_conflict_replays(1) == 1

    def test_stride16_fully_serialized(self):
        assert shared_bank_conflict_replays(16) == 31

    def test_odd_stride_conflict_light(self):
        # odd word strides hit all banks
        assert shared_bank_conflict_replays(0) == 0


class TestCacheModel:
    def test_small_rows_fully_hit(self):
        cache = CacheModel(GTX_TITAN)
        frac = cache.second_pass_hit_fraction(np.array([10, 20, 30]), 4)
        assert np.all(frac == 1.0)

    def test_huge_rows_miss(self):
        cache = CacheModel(GTX_TITAN)
        frac = cache.second_pass_hit_fraction(np.array([10_000_000]), 64)
        assert frac[0] < 0.1

    def test_disabled_cache(self):
        cache = CacheModel(GTX_TITAN, enabled=False)
        frac = cache.second_pass_hit_fraction(np.array([10]), 1)
        assert np.all(frac == 0.0)
        assert cache.texture_hit_ratio() == 0.0

    def test_more_active_vectors_less_budget(self):
        cache = CacheModel(GTX_TITAN)
        rows = np.array([40_000])
        few = cache.second_pass_hit_fraction(rows, 2)
        many = cache.second_pass_hit_fraction(rows, 2000)
        assert few[0] >= many[0]
