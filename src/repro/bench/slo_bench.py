"""Builder for the SLO-aware scheduling experiment (EDF + tiers vs FIFO).

The scenario the ``edf`` policy exists for: a mixed-tenant burst where a
small interactive minority (latency-SLO-carrying requests, high fair-share
weight) is queued behind a large batch majority.  FIFO dispatch serves the
backlog in arrival order, so interactive requests drawn late in the burst
wait for nearly the whole makespan and blow any meaningful SLO; weighted
fair sharing plus earliest-deadline-first group picking drains the
interactive tier at ~its weighted share of capacity, so its p99 lands at a
small fraction of the makespan.

Both policies process the *identical* request stream on identically
configured engines; only dispatch order changes, so outputs stay
bit-identical (verified per request against uncached ``api.evaluate``).

The SLO threshold is self-calibrating: the FIFO run goes first, and the
interactive SLO is set to ``SLO_FRACTION`` of its measured makespan.  That
makes the gate machine-independent — under FIFO, interactive arrivals are
uniform over the backlog, so by construction only ~``SLO_FRACTION`` of
them can meet the threshold, while the tiered scheduler has several-fold
headroom.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.api import evaluate as evaluate_uncached
from ..core.engine import PatternEngine
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from ..serve import (PatternServer, ServerConfig, build_matrices,
                     materialize_requests, percentile, synthesize_workload,
                     tiers_from_trace)
from .harness import ExperimentResult, register, resolve_scale

POLICIES = ("fifo", "edf")
#: interactive share of the request stream (minority tenant)
INTERACTIVE_SHARE = 0.15
#: interactive fair-share weight (batch weight is 1)
INTERACTIVE_WEIGHT = 6.0
#: interactive SLO as a fraction of the measured FIFO makespan
SLO_FRACTION = 0.45


@register("slo")
def slo_attainment(scale: float | None = None,
                   ctx: GpuContext = DEFAULT_CONTEXT,
                   requests: int = 200, n_matrices: int = 6,
                   zipf: float = 1.1, max_batch: int = 8,
                   workers: int = 1) -> ExperimentResult:
    """Tiered EDF scheduling vs FIFO on a mixed-tenant burst."""
    scale = resolve_scale(0.2) if scale is None else scale
    rows = max(1500, int(40_000 * scale))
    res = ExperimentResult(
        "slo",
        f"SLO-aware scheduling: {requests} Zipf({zipf})-skewed requests "
        f"over {n_matrices} matrices ({rows}x256), "
        f"{100 * INTERACTIVE_SHARE:.0f}% interactive (weight "
        f"{INTERACTIVE_WEIGHT:g}) vs batch, one-worker backlog drain",
        ("policy", "completed", "dropped", "interactive_p50_ms",
         "interactive_p99_ms", "batch_p99_ms", "slo_attainment",
         "throughput_rps", "divergent"),
    )
    tier_mix = {
        "interactive": {"share": INTERACTIVE_SHARE, "slo_ms": None,
                        "weight": INTERACTIVE_WEIGHT, "rank": 0},
        "batch": {"share": 1.0 - INTERACTIVE_SHARE, "slo_ms": None,
                  "weight": 1.0, "rank": 1},
    }
    trace = synthesize_workload(
        matrices=n_matrices, requests=requests, zipf=zipf, rows=rows,
        cols=256, sparsity=0.02, mode="open", rate_rps=None,
        strategy="fused", beta=1e-3, seed=7, tier_mix=tier_mix)
    matrices = build_matrices(trace)
    tiers = tiers_from_trace(trace)
    reqs = materialize_requests(trace, matrices)
    interactive = [e["tier"] == "interactive" for e in trace["requests"]]

    # per-request bit-identity references (uncached, no session state)
    refs = [evaluate_uncached(r.X, r.y, v=r.v, z=r.z, alpha=r.alpha,
                              beta=r.beta, strategy=r.strategy,
                              ctx=ctx).output
            for r in reqs]

    slo_ms: float | None = None          # set after the FIFO run
    stats: dict[str, dict] = {}
    for policy in POLICIES:
        if policy == "edf" and slo_ms is not None:
            # stamp the calibrated SLO so the server-side tier accounting
            # (metrics attainment, Prometheus export) is exercised too
            for r, is_int in zip(reqs, interactive):
                r.slo_ms = slo_ms if is_int else None
        engine = PatternEngine(ctx)
        server = PatternServer(engine, ServerConfig(
            queue_capacity=len(reqs), max_batch=max_batch,
            batch_linger_ms=1.0, workers=workers, policy=policy,
            tiers=tiers), start=False)
        # backlog replay: enqueue the whole burst, then open the floodgate
        # (latency = resolution - floodgate instant, as in serve_bench)
        futures = [server.submit(r) for r in reqs]
        t0 = time.monotonic()
        server.start()
        responses = [f.result(timeout=300.0) for f in futures]
        wall_s = time.monotonic() - t0
        server.stop()

        ok = [r for r in responses if r.ok]
        divergent = sum(
            not np.array_equal(resp.result.output, ref)
            for resp, ref in zip(responses, refs) if resp.ok)
        lat = [(f.resolved_at - t0) * 1e3 if r.ok else None
               for f, r in zip(futures, responses)]
        if slo_ms is None:               # first (FIFO) run calibrates
            slo_ms = SLO_FRACTION * wall_s * 1e3
        int_lat = [v for v, is_int in zip(lat, interactive)
                   if is_int and v is not None]
        bat_lat = [v for v, is_int in zip(lat, interactive)
                   if not is_int and v is not None]
        n_int = sum(interactive)
        attainment = sum(v <= slo_ms for v in int_lat) / n_int if n_int \
            else 0.0
        stats[policy] = {"attainment": attainment,
                         "int_p99": percentile(int_lat, 0.99)}
        res.add(policy, len(ok), len(responses) - len(ok),
                percentile(int_lat, 0.50), percentile(int_lat, 0.99),
                percentile(bat_lat, 0.99), attainment,
                len(ok) / wall_s if wall_s > 0 else 0.0, divergent)

    ratio = stats["fifo"]["int_p99"] / max(stats["edf"]["int_p99"], 1e-9)
    res.notes.append(
        f"interactive SLO {slo_ms:.1f} ms ({SLO_FRACTION:g}x the FIFO "
        f"makespan): tiered EDF attains "
        f"{100 * stats['edf']['attainment']:.1f}% vs FIFO's "
        f"{100 * stats['fifo']['attainment']:.1f}% (targets >= 95% / "
        f"<= 80%); interactive p99 {ratio:.2f}x better under EDF")
    res.notes.append(
        f"server config: {workers} worker, max_batch={max_batch}, burst "
        "arrival; identical engines and request streams, so outputs are "
        "bit-identical across policies — only dispatch order differs")
    res.notes.append(
        "weighted fair sharing drains the interactive tier at "
        f"~{INTERACTIVE_WEIGHT / (INTERACTIVE_WEIGHT + 1):.0%} of capacity "
        "while the batch backlog persists, then yields it all back — no "
        "starvation either way (pinned by tests/test_serve_sched.py)")
    return res
