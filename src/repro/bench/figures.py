"""Builders for the paper's figures (2, 3, 4, 5, 6).

Each builder returns an :class:`~repro.bench.harness.ExperimentResult` whose
rows mirror the paper's plotted series.  Paper values are quoted in the
result notes for side-by-side comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from ..core.api import evaluate, xt_mv
from ..core.executor import PatternExecutor
from ..core.pattern import GenericPattern
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from ..kernels.sparse_baseline import csr2csc_kernel, csrmv, \
    csrmv_via_explicit_transpose
from ..data.synthetic import (DENSE_SWEEP_COLUMNS, SPARSE_SWEEP_COLUMNS,
                              SWEEP_ROWS, SWEEP_SPARSITY, synthetic_dense,
                              synthetic_sparse)
from ..sparse.csr import CsrMatrix
from ..tuning.autotune import autotune_sparse
from .harness import ExperimentResult, register, resolve_scale

BASELINES = ("cusparse", "bidmat-gpu", "bidmat-cpu")


def _sweep_matrix(n: int, scale: float, seed: int) -> CsrMatrix:
    m = max(1000, int(SWEEP_ROWS * scale))
    return synthetic_sparse(n, m=m, sparsity=SWEEP_SPARSITY, rng=seed)


@register("figure2")
def figure2(scale: float | None = None,
            ctx: GpuContext = DEFAULT_CONTEXT) -> ExperimentResult:
    """Fig. 2: ``X^T x y`` sparse — speedup vs cuSPARSE, load transactions,
    and iterations to amortize an explicit transposition."""
    scale = resolve_scale(0.2) if scale is None else scale
    res = ExperimentResult(
        "figure2",
        "X^T x y (sparse, 500k rows scaled, sparsity 0.01): fused vs "
        "cuSPARSE",
        ("n", "fused_ms", "cusparse_ms", "speedup",
         "fused_loads", "cusparse_loads", "load_ratio", "amortize_iters"),
    )
    rng = np.random.default_rng(42)
    for n in SPARSE_SWEEP_COLUMNS:
        X = _sweep_matrix(n, scale, seed=n)
        p = rng.normal(size=X.m)
        fused = xt_mv(X, p, strategy="fused", ctx=ctx)
        base = xt_mv(X, p, strategy="cusparse", ctx=ctx)
        trans = csr2csc_kernel(X, ctx)
        spmv_xt, _ = csrmv_via_explicit_transpose(
            X, p, ctx, XT=X.transpose_csr())
        amortize = int(np.ceil(trans.time_ms / max(spmv_xt.time_ms, 1e-9)))
        res.add(n, fused.time_ms, base.time_ms,
                base.time_ms / fused.time_ms,
                fused.counters.global_load_transactions,
                base.counters.global_load_transactions,
                base.counters.global_load_transactions
                / fused.counters.global_load_transactions,
                amortize)
    sp = res.column("speedup")
    res.notes.append(
        f"measured: avg speedup {np.mean(sp):.1f}x, max {max(sp):.1f}x at "
        f"n={res.rows[int(np.argmax(sp))][0]}; paper: avg ~35x, max 67x at "
        "the low end, load ratio ~3.5x, speedup decreasing with n")
    return res


def _pattern_sweep(title: str, make_pattern, columns, scale: float,
                   ctx: GpuContext, sparse: bool) -> ExperimentResult:
    res = ExperimentResult(
        title.split(":")[0], title,
        ("n", "fused_ms") + tuple(f"{b}_x" for b in BASELINES),
    )
    ex = PatternExecutor(ctx)
    for n in columns:
        p = make_pattern(n)
        fused = ex.evaluate(p, "fused")
        ratios = []
        for b in BASELINES:
            r = ex.evaluate(p, b)
            ratios.append(r.time_ms / fused.time_ms)
        res.add(n, fused.time_ms, *ratios)
    return res


@register("figure3")
def figure3(scale: float | None = None,
            ctx: GpuContext = DEFAULT_CONTEXT) -> ExperimentResult:
    """Fig. 3: ``X^T x (X x y)`` sparse — speedups vs the three baselines."""
    scale = resolve_scale(0.2) if scale is None else scale
    rng = np.random.default_rng(43)

    def make(n: int) -> GenericPattern:
        X = _sweep_matrix(n, scale, seed=1000 + n)
        return GenericPattern(X, rng.normal(size=n))

    res = _pattern_sweep(
        "figure3: X^T x (X x y) (sparse): fused vs baselines",
        make, SPARSE_SWEEP_COLUMNS, scale, ctx, sparse=True)
    means = [float(np.mean(res.column(f"{b}_x"))) for b in BASELINES]
    res.notes.append(
        f"measured avg: cuSPARSE {means[0]:.1f}x, BIDMat-GPU {means[1]:.1f}x,"
        f" BIDMat-CPU {means[2]:.1f}x; paper: 20.33x / 14.66x / 9.28x")
    return res


@register("figure4")
def figure4(scale: float | None = None,
            ctx: GpuContext = DEFAULT_CONTEXT) -> ExperimentResult:
    """Fig. 4: the complete pattern (sparse) — speedups vs baselines."""
    scale = resolve_scale(0.2) if scale is None else scale
    rng = np.random.default_rng(44)

    def make(n: int) -> GenericPattern:
        X = _sweep_matrix(n, scale, seed=2000 + n)
        return GenericPattern(X, rng.normal(size=n), v=rng.normal(size=X.m),
                              z=rng.normal(size=n), alpha=1.7, beta=0.3)

    res = _pattern_sweep(
        "figure4: alpha*X^T(v.(Xy)) + beta*z (sparse): fused vs baselines",
        make, SPARSE_SWEEP_COLUMNS, scale, ctx, sparse=True)
    means = [float(np.mean(res.column(f"{b}_x"))) for b in BASELINES]
    res.notes.append(
        f"measured avg: cuBLAS/cuSPARSE {means[0]:.1f}x, BIDMat-GPU "
        f"{means[1]:.1f}x, BIDMat-CPU {means[2]:.1f}x; paper: 26.21x / "
        "19.62x / 13.41x (slightly above Fig. 3, extra BLAS-1 launches)")
    return res


@register("figure5")
def figure5(scale: float | None = None,
            ctx: GpuContext = DEFAULT_CONTEXT) -> ExperimentResult:
    """Fig. 5: ``X^T x (X x y)`` dense — speedups vs cuBLAS and BIDMat."""
    scale = resolve_scale(0.04) if scale is None else scale
    rng = np.random.default_rng(45)

    def make(n: int) -> GenericPattern:
        m = max(1000, int(SWEEP_ROWS * scale))
        X = synthetic_dense(n, m=m, rng=3000 + n)
        return GenericPattern(X, rng.normal(size=n))

    res = _pattern_sweep(
        "figure5: X^T x (X x y) (dense): fused vs baselines",
        make, DENSE_SWEEP_COLUMNS, scale, ctx, sparse=False)
    means = [float(np.mean(res.column(f"{b}_x"))) for b in BASELINES]
    res.notes.append(
        f"measured avg: cuBLAS {means[0]:.1f}x, BIDMat-GPU {means[1]:.1f}x, "
        f"BIDMat-CPU {means[2]:.1f}x; paper: 4.27x / 2.18x / 15.33x "
        "(smaller dense gains: the win is loading X once)")
    return res


@register("figure6")
def figure6(scale: float | None = None,
            ctx: GpuContext = DEFAULT_CONTEXT) -> ExperimentResult:
    """Fig. 6: exhaustive parameter sweep vs the analytical model's pick."""
    scale = resolve_scale(0.2) if scale is None else scale
    X = _sweep_matrix(1024, scale, seed=4000)
    at = autotune_sparse(X, ctx.device, ctx)
    res = ExperimentResult(
        "figure6",
        "autotune sweep on 500k x 1k (scaled) sparse, sparsity 0.01",
        ("quantity", "value"),
    )
    res.add("settings_explored", len(at.settings))
    res.add("best_time_ms", at.best.time_ms)
    res.add("model_time_ms", at.model_setting.time_ms)
    res.add("worst_time_ms", at.worst.time_ms)
    res.add("model_gap_pct", 100.0 * at.model_gap)
    res.add("model_rank_pct", 100.0 * at.model_rank_fraction)
    res.add("model_VS", at.model_params.vector_size)
    res.add("model_BS", at.model_params.block_size)
    res.add("model_RpV", at.model_params.coarsening)
    res.add("model_grid", at.model_params.grid_size)
    res.notes.append(
        "paper: ~1,200 settings, model within 2% of the optimum; example "
        "config VS=8, BS=640, 28 blocks, 223 rows/vector, 43 regs/thread, "
        "8,832B shared memory")
    return res
