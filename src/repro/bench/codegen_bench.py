"""Builder for the AOT sparse-kernel compilation experiment.

Measures what the specialized-codegen PR buys on the warm path of an
iterative solver: the same fused-pattern series as the profile experiment
(``q = X^T(Xy) + beta*y`` on the Fig. 3 sweep matrix), per-call wall time
across dispatch levels:

* ``numeric_floor`` — the planned ``spmv``/``spmv_t`` arithmetic timed on
  its own: the price of the numbers, nothing else;
* ``compiled_direct`` — the generated
  :class:`~repro.kernels.codegen.CompiledSparseKernels` fused entry point
  called directly: how close the flat specialization-constant source gets
  to the floor;
* ``warm_interpreted_e2e`` — a warm ``compile_kernels=False`` engine:
  content fingerprint + interpreted kernel every call (the pre-PR warm
  path);
* ``warm_compiled_unpinned_e2e`` — a warm compiling engine without a pin:
  the compiled kernel pays off, but the full content hash still dominates;
* ``warm_compiled_e2e`` — the full PR: pinned fingerprint (no hashing) +
  compiled kernel, the path an iterative solver sits on from iteration 2.

Every engine output is asserted **bit-identical** to every other before
any timing is reported — a speedup from a wrong answer is not a speedup.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.engine import PatternEngine
from ..data.synthetic import SWEEP_ROWS, SWEEP_SPARSITY, synthetic_sparse
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from ..kernels.codegen import CompiledSparseKernels
from ..sparse.ops import SpmvPlan
from ..tuning.sparse_params import tune_sparse
from .harness import ExperimentResult, register, resolve_scale


@register("codegen")
def codegen_warm_path(scale: float | None = None,
                      ctx: GpuContext = DEFAULT_CONTEXT,
                      iterations: int = 30) -> ExperimentResult:
    """Warm-path cost of compiled vs interpreted sparse dispatch."""
    scale = resolve_scale(0.2) if scale is None else scale
    res = ExperimentResult(
        "codegen",
        f"AOT sparse-kernel compilation: {iterations} fused-pattern calls "
        "(q = X^T(Xy) + beta*y), compiled vs interpreted warm dispatch",
        ("series", "per_call_ms", "overhead_vs_floor_ms"),
    )
    m = max(1000, int(SWEEP_ROWS * scale))
    X = synthetic_sparse(1024, m=m, sparsity=SWEEP_SPARSITY, rng=99)
    rng = np.random.default_rng(7)
    vectors = [rng.normal(size=X.n) for _ in range(iterations)]
    beta = 1e-3

    params = tune_sparse(X, ctx.device)
    splan = SpmvPlan(X)
    bundle = CompiledSparseKernels(X, splan, vs=params.vector_size,
                                   c=params.coarsening)

    def numeric_floor():
        for y in vectors:
            p = splan.spmv(y)
            w = splan.spmv_t(p)
            w = w + beta * y

    def compiled_direct():
        for y in vectors:
            bundle.fused(y, z=y, beta=beta)

    interp = PatternEngine(ctx, compile_kernels=False)
    compiled = PatternEngine(ctx, compile_kernels=True)
    unpinned = PatternEngine(ctx, compile_kernels=True)
    compiled.pin(X)

    # absorb the one cold call per engine, and prove bit-identity of the
    # three dispatch levels before timing anything
    outs = [eng.evaluate(X, vectors[0], z=vectors[0], beta=beta,
                         strategy="fused").output
            for eng in (interp, compiled, unpinned)]
    direct = bundle.fused(vectors[0], z=vectors[0], beta=beta)
    for other in (*outs[1:], direct):
        if not np.array_equal(outs[0], other):
            raise AssertionError(
                "compiled dispatch is not bit-identical to interpreted")

    def warm_e2e(engine):
        def run():
            for y in vectors:
                engine.evaluate(X, y, z=y, beta=beta, strategy="fused")
        return run

    def per_call_ms(fn, repeats: int = 3) -> float:
        fn()                                   # warm caches / allocator
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, (time.perf_counter() - t0) / iterations * 1e3)
        return best

    floor = per_call_ms(numeric_floor)
    series = {
        "numeric_floor": floor,
        "compiled_direct": per_call_ms(compiled_direct),
        "warm_interpreted_e2e": per_call_ms(warm_e2e(interp)),
        "warm_compiled_unpinned_e2e": per_call_ms(warm_e2e(unpinned)),
        "warm_compiled_e2e": per_call_ms(warm_e2e(compiled)),
    }
    for name, per_call in series.items():
        res.add(name, per_call, max(0.0, per_call - floor))

    st = compiled.stats()
    speedup = (series["warm_interpreted_e2e"]
               / max(series["warm_compiled_e2e"], 1e-9))
    pin_x = (series["warm_compiled_unpinned_e2e"]
             / max(series["warm_compiled_e2e"], 1e-9))
    res.notes.append(
        f"warm compiled evaluate(): {series['warm_compiled_e2e']:.3f} "
        f"ms/call vs {series['warm_interpreted_e2e']:.3f} ms/call "
        f"interpreted ({speedup:.1f}x; target >= 2x), numeric floor "
        f"{floor:.3f} ms/call")
    res.notes.append(
        f"pinned fingerprint removes the per-call content hash: "
        f"{series['warm_compiled_unpinned_e2e']:.3f} -> "
        f"{series['warm_compiled_e2e']:.3f} ms/call ({pin_x:.1f}x); "
        f"{st.pinned_fingerprint_hits} pinned hits, "
        f"{st.compiled_kernels_built} bundle built, "
        f"{st.compile_fallbacks} fallbacks")
    res.notes.append(
        "all dispatch levels bit-identical on the shared probe vector "
        "(asserted before timing)")
    compiled.unpin(X)
    return res
