"""Builder for the PatternEngine amortization experiment.

Models the iterative-workload scenario the session cache exists for: 100
LR-CG-style iterations (the hot statement of Listing 1, ``q = X^T (X p) +
eps * p``, with ``p`` changing every iteration) on one fixed matrix.

* **cold** — every iteration pays the full per-call price, exactly like
  calling :func:`repro.core.api.evaluate` afresh: plan selection, §3.3
  tuning, and (for the explicit-transpose route) the ``csr2csc`` conversion
  Figure 2 shows must be amortized.
* **warm** — the same series through one :class:`~repro.core.engine.
  PatternEngine` session: the first call is cold, the rest reuse the cached
  plan, parameters, and transpose.

A serial-vs-batched wall-clock comparison of :meth:`evaluate_many` goes in
the result notes (wall time, not model time — threads do not change the
simulated device).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.api import evaluate as evaluate_uncached
from ..core.engine import PatternEngine, PatternRequest
from ..data.synthetic import SWEEP_ROWS, SWEEP_SPARSITY, synthetic_sparse
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from .harness import ExperimentResult, register, resolve_scale

ITERATIONS = 100
STRATEGIES = ("fused", "cusparse", "cusparse-explicit")


@register("engine")
def engine_amortization(scale: float | None = None,
                        ctx: GpuContext = DEFAULT_CONTEXT,
                        iterations: int = ITERATIONS) -> ExperimentResult:
    """Cold-vs-warm model time for an LR-CG-style iteration series."""
    scale = resolve_scale(0.2) if scale is None else scale
    res = ExperimentResult(
        "engine",
        f"PatternEngine session cache: {iterations} LR-CG-style iterations "
        "(q = X^T(Xp) + eps*p), cold per-call vs warm session",
        ("strategy", "cold_call_ms", "warm_call_ms", "cold_total_ms",
         "warm_total_ms", "amortized_x", "hit_rate", "transposes_built"),
    )
    m = max(1000, int(SWEEP_ROWS * scale))
    X = synthetic_sparse(1024, m=m, sparsity=SWEEP_SPARSITY, rng=99)
    rng = np.random.default_rng(7)
    vectors = [rng.normal(size=X.n) for _ in range(iterations)]

    for strategy in STRATEGIES:
        # cold: a fresh, uncached evaluation per iteration (api.evaluate)
        cold_total = sum(
            evaluate_uncached(X, p, z=p, beta=1e-3, strategy=strategy,
                              ctx=ctx).time_ms
            for p in vectors)

        # warm: the same series through one engine session
        engine = PatternEngine(ctx)
        warm_total = sum(
            engine.evaluate(X, p, z=p, beta=1e-3, strategy=strategy).time_ms
            for p in vectors)
        st = engine.stats()
        res.add(strategy, st.cold_ms_per_call, st.warm_ms_per_call,
                cold_total, warm_total, cold_total / warm_total,
                st.hit_rate, st.transposes_built)

    # serial vs batched wall clock through the thread pool
    engine = PatternEngine(ctx)
    reqs = [PatternRequest(X, p, z=p, beta=1e-3, strategy="fused")
            for p in vectors[:16]]
    t0 = time.perf_counter()
    engine.evaluate_many(reqs, max_workers=1)
    serial_wall = (time.perf_counter() - t0) * 1e3
    t0 = time.perf_counter()
    engine.evaluate_many(reqs, max_workers=4)
    batched_wall = (time.perf_counter() - t0) * 1e3
    res.notes.append(
        f"batched evaluation (16 requests, wall-clock): serial "
        f"{serial_wall:.1f} ms vs 4 workers {batched_wall:.1f} ms "
        f"({serial_wall / max(batched_wall, 1e-9):.2f}x)")
    res.notes.append(
        "cold = fresh api.evaluate() per iteration (plan + tuning + "
        "csr2csc re-paid every call); warm = one PatternEngine session "
        "(first call cold, rest cached) — the Fig. 2 amortization claim "
        "as a session-layer guarantee")
    return res
