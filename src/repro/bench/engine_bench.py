"""Builder for the PatternEngine amortization experiment.

Models the iterative-workload scenario the session cache exists for: 100
LR-CG-style iterations (the hot statement of Listing 1, ``q = X^T (X p) +
eps * p``, with ``p`` changing every iteration) on one fixed matrix.

* **cold** — every iteration pays the full per-call price, exactly like
  calling :func:`repro.core.api.evaluate` afresh: plan selection, §3.3
  tuning, and (for the explicit-transpose route) the ``csr2csc`` conversion
  Figure 2 shows must be amortized.
* **warm** — the same series through one :class:`~repro.core.engine.
  PatternEngine` session: the first call is cold, the rest reuse the cached
  plan, parameters, and transpose.

A serial-vs-batched wall-clock comparison of :meth:`evaluate_many` goes in
the result notes (wall time, not model time — threads do not change the
simulated device).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.api import evaluate as evaluate_uncached
from ..core.engine import PatternEngine, PatternRequest
from ..data.synthetic import SWEEP_ROWS, SWEEP_SPARSITY, synthetic_sparse
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from .harness import ExperimentResult, register, resolve_scale

ITERATIONS = 100
STRATEGIES = ("fused", "cusparse", "cusparse-explicit")


@register("engine")
def engine_amortization(scale: float | None = None,
                        ctx: GpuContext = DEFAULT_CONTEXT,
                        iterations: int = ITERATIONS) -> ExperimentResult:
    """Cold-vs-warm model time for an LR-CG-style iteration series."""
    scale = resolve_scale(0.2) if scale is None else scale
    res = ExperimentResult(
        "engine",
        f"PatternEngine session cache: {iterations} LR-CG-style iterations "
        "(q = X^T(Xp) + eps*p), cold per-call vs warm session",
        ("strategy", "cold_call_ms", "warm_call_ms", "cold_total_ms",
         "warm_total_ms", "amortized_x", "hit_rate", "transposes_built"),
    )
    m = max(1000, int(SWEEP_ROWS * scale))
    X = synthetic_sparse(1024, m=m, sparsity=SWEEP_SPARSITY, rng=99)
    rng = np.random.default_rng(7)
    vectors = [rng.normal(size=X.n) for _ in range(iterations)]

    for strategy in STRATEGIES:
        # cold: a fresh, uncached evaluation per iteration (api.evaluate)
        cold_total = sum(
            evaluate_uncached(X, p, z=p, beta=1e-3, strategy=strategy,
                              ctx=ctx).time_ms
            for p in vectors)

        # warm: the same series through one engine session
        engine = PatternEngine(ctx)
        warm_total = sum(
            engine.evaluate(X, p, z=p, beta=1e-3, strategy=strategy).time_ms
            for p in vectors)
        st = engine.stats()
        res.add(strategy, st.cold_ms_per_call, st.warm_ms_per_call,
                cold_total, warm_total, cold_total / warm_total,
                st.hit_rate, st.transposes_built)

    # serial vs batched wall clock through the thread pool
    engine = PatternEngine(ctx)
    reqs = [PatternRequest(X, p, z=p, beta=1e-3, strategy="fused")
            for p in vectors[:16]]
    t0 = time.perf_counter()
    engine.evaluate_many(reqs, max_workers=1)
    serial_wall = (time.perf_counter() - t0) * 1e3
    t0 = time.perf_counter()
    engine.evaluate_many(reqs, max_workers=4)
    batched_wall = (time.perf_counter() - t0) * 1e3
    res.notes.append(
        f"batched evaluation (16 requests, wall-clock): serial "
        f"{serial_wall:.1f} ms vs 4 workers {batched_wall:.1f} ms "
        f"({serial_wall / max(batched_wall, 1e-9):.2f}x)")
    res.notes.append(
        "cold = fresh api.evaluate() per iteration (plan + tuning + "
        "csr2csc re-paid every call); warm = one PatternEngine session "
        "(first call cold, rest cached) — the Fig. 2 amortization claim "
        "as a session-layer guarantee")
    return res


@register("profile")
def profile_amortization(scale: float | None = None,
                         ctx: GpuContext = DEFAULT_CONTEXT,
                         iterations: int = 30) -> ExperimentResult:
    """Kernel-profile amortization on the Fig. 3 sparse sweep workload.

    Wall-clock (host) cost of the *counter model* per call, across three
    warmth levels of the fused strategy:

    * ``cold_full`` — fresh :func:`repro.core.api.evaluate` per call: strategy
      choice, §3.3 tuning, and the full structure inspection every iteration;
    * ``warm_unprofiled`` — the pre-profile session state: tuned parameters
      are reused but the kernel still rebuilds its counter template (the
      O(nnz) row-segment/gather inspection) on every call;
    * ``warm_profiled`` — the template and the planned SpMV come from the
      session cache; the call only closes the template over the scalars.

    ``model_overhead_ms`` is the per-call wall time minus the numeric floor
    (the planned ``spmv``/``spmv_t`` arithmetic timed on its own).  The
    end-to-end rows compare the full engine warm path (content fingerprint +
    profiled call) against the equivalent pre-profile warm path (fingerprint
    + unprofiled call).
    """
    from ..core.engine import fingerprint_matrix
    from ..core.pattern import GenericPattern
    from ..core.plans import FusedPlan
    from ..kernels.sparse_fused import profile_sparse_fused
    from ..tuning.sparse_params import tune_sparse

    scale = resolve_scale(0.2) if scale is None else scale
    res = ExperimentResult(
        "profile",
        f"Kernel-profile amortization: {iterations} fused-pattern calls "
        "(q = X^T(Xy) + beta*y) on the Fig. 3 sparse sweep matrix",
        ("series", "per_call_ms", "model_overhead_ms"),
    )
    m = max(1000, int(SWEEP_ROWS * scale))
    X = synthetic_sparse(1024, m=m, sparsity=SWEEP_SPARSITY, rng=99)
    rng = np.random.default_rng(7)
    vectors = [rng.normal(size=X.n) for _ in range(iterations)]
    beta = 1e-3

    params = tune_sparse(X, ctx.device)
    prof = profile_sparse_fused(X, ctx, params)
    plan = FusedPlan(ctx)
    patterns = [GenericPattern(X, y, z=y, beta=beta) for y in vectors]
    splan = prof.spmv_plan

    def numeric_floor():
        for y in vectors:
            p = splan.spmv(y)
            w = splan.spmv_t(p)
            w = w + beta * y

    def cold_full():
        for y in vectors:
            evaluate_uncached(X, y, z=y, beta=beta, strategy="fused",
                              ctx=ctx)

    def warm_unprofiled():
        for pat in patterns:
            plan.evaluate(pat, params=params)

    def warm_profiled():
        for pat in patterns:
            plan.evaluate(pat, params=params, profile=prof)

    def pre_profile_e2e():
        for pat in patterns:
            fingerprint_matrix(X)
            plan.evaluate(pat, params=params)

    engine = PatternEngine(ctx)
    engine.evaluate(X, vectors[0], z=vectors[0], beta=beta,
                    strategy="fused")          # absorb the one cold call

    def engine_e2e():
        for y in vectors:
            engine.evaluate(X, y, z=y, beta=beta, strategy="fused")

    def per_call_ms(fn, repeats: int = 3) -> float:
        fn()                                   # warm caches / allocator
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, (time.perf_counter() - t0) / iterations * 1e3)
        return best

    floor = per_call_ms(numeric_floor)
    series = {
        "numeric_floor": floor,
        "cold_full": per_call_ms(cold_full),
        "warm_unprofiled": per_call_ms(warm_unprofiled),
        "warm_profiled": per_call_ms(warm_profiled),
        "pre_profile_warm_e2e": per_call_ms(pre_profile_e2e),
        "engine_warm_e2e": per_call_ms(engine_e2e),
    }
    for name, per_call in series.items():
        res.add(name, per_call, max(0.0, per_call - floor))

    # the profiled overhead routinely measures at/below zero (it is within
    # the run-to-run noise of the numeric floor), so clamp the denominator
    # at the timing resolution (1% of the floor) and report a lower bound
    resolution = max(0.01 * floor, 1e-6)
    unprof_overhead = max(series["warm_unprofiled"] - floor, 0.0)
    prof_overhead = max(series["warm_profiled"] - floor, resolution)
    model_x = unprof_overhead / prof_overhead
    e2e_x = series["pre_profile_warm_e2e"] / max(series["engine_warm_e2e"],
                                                 1e-9)
    res.notes.append(
        f"warm counter-model overhead: {unprof_overhead:.3f} ms/call "
        f"unprofiled vs {max(series['warm_profiled'] - floor, 0.0):.3f} "
        f"ms/call profiled (>= {model_x:.0f}x reduction at the "
        f"{resolution:.3f} ms timing resolution; target >= 5x)")
    res.notes.append(
        f"end-to-end warm evaluate(): {series['pre_profile_warm_e2e']:.3f} "
        f"ms/call pre-profile vs {series['engine_warm_e2e']:.3f} ms/call "
        f"with cached profiles ({e2e_x:.2f}x; target >= 1.5x)")
    res.notes.append(
        "host wall-clock on the simulated-device counter model; outputs and "
        "counters are bit-identical across all series (see "
        "tests/test_profile_parity.py)")
    return res
