"""Fusion-plan optimizer experiment: cost-based plans vs fixed strategies.

Runs every shipped DML script (:data:`repro.systemml.fusion.SHIPPED_DML`)
three ways on the same seeded sparse matrix — unfused operator-at-a-time,
the hand-matched pattern rewriter, and the cost-based optimizer
(``fuse="auto"``) — and compares summed *model* kernel milliseconds.  The
reproduced claim is SystemML-style plan selection (arXiv:1801.00829): the
optimizer must rediscover the Eq.-1 fusion on the regression scripts
purely from the counter model, and may only ever match or beat the fixed
strategies, never lose to them.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import PatternEngine
from ..sparse.generate import random_csr
from ..systemml.fusion import (
    SHIPPED_DML,
    clone_dag,
    evaluate_dag,
    make_env,
    optimize,
)
from ..systemml.rewriter import rewrite
from .harness import ExperimentResult, register, resolve_scale


def _model_ms(root, env, engine=None) -> float:
    results: list = []
    evaluate_dag(root, env, engine=engine, results=results)
    return sum(r.time_ms for r in results)


@register("fusion")
def fusion_plans(scale: float | None = None) -> ExperimentResult:
    """Per-script model time for unfused / pattern / auto execution."""
    scale = resolve_scale(scale if scale is not None else 1.0)
    rows = max(500, int(100_000 * scale))
    cols = max(32, int(256 * min(1.0, scale * 4)))
    X = random_csr(rows, cols, 0.01, rng=0)

    res = ExperimentResult(
        experiment="fusion",
        title=f"Cost-based fusion plans vs fixed strategies: shipped DML "
              f"scripts on {rows}x{cols}:0.01 (model ms)",
        columns=("script", "unfused_ms", "pattern_ms", "auto_ms",
                 "auto_speedup", "candidates", "chosen", "search"),
    )
    engine = PatternEngine()
    for name in sorted(SHIPPED_DML):
        spec = SHIPPED_DML[name]
        env = make_env(spec, X, rng=1)
        root = spec.parse()

        unfused_ms = _model_ms(root, env)
        pattern_ms = _model_ms(rewrite(clone_dag(root)), env, engine=engine)
        plan = optimize(root, env, engine=engine, expression=spec.dml)
        auto_ms = _model_ms(plan.lowered(), env, engine=engine)

        base = np.asarray(root.eval(env))
        got = np.asarray(evaluate_dag(plan.lowered(), env, engine=engine))
        assert np.array_equal(got, base), f"{name}: plan diverged"
        assert auto_ms <= unfused_ms + 1e-9, f"{name}: auto lost to unfused"

        res.add(name, unfused_ms, pattern_ms, auto_ms,
                unfused_ms / max(auto_ms, 1e-12),
                len(plan.candidates), len(plan.chosen), plan.search)

    res.notes = [
        "auto = cost-based fusion-plan optimizer (fuse='auto'); pattern = "
        "the hand-matched Eq.-1 rewriter; unfused = operator-at-a-time",
        "the optimizer rediscovers the Eq.-1 kernel on linreg-cg/logreg/svm "
        "from the counter model alone, and additionally fuses cell-wise "
        "regions the fixed rewriter cannot see (cg-update, row-scale)",
        "every auto plan is asserted bit-identical to the unfused baseline "
        "before timing is reported (tests/test_fusion_parity.py)",
        "model milliseconds on the simulated GTX Titan",
    ]
    return res
