"""Span-tracing experiment: phase attribution of a traced serve replay.

Replays a closed-loop loadgen workload through a :class:`PatternServer`
with a capturing :class:`repro.trace.Tracer` installed and decomposes the
measured per-request end-to-end latency into the traced phases (queue
wait, evaluation — split into profile builds and kernel execution — and
completion wait).  The reproduced quantity is *coverage*: the fraction of
measured latency the span tree explains, which the ``repro trace`` CLI
gates at 1 ± 0.1.
"""

from __future__ import annotations

from .. import trace
from ..core.engine import PatternEngine
from ..serve import (PatternServer, ServerConfig, run_workload,
                     synthesize_workload)
from .harness import ExperimentResult, register, resolve_scale


@register("trace")
def trace_attribution(scale: float | None = None,
                      requests: int = 120) -> ExperimentResult:
    """Traced replay -> per-phase latency decomposition + coverage."""
    scale = resolve_scale(scale if scale is not None else 1.0)
    rows = max(200, int(20_000 * scale))
    workload = synthesize_workload(matrices=4, requests=requests, rows=rows,
                                   cols=96, sparsity=0.03, mode="closed",
                                   seed=0)
    with trace.capture() as tracer:
        server = PatternServer(PatternEngine(),
                               ServerConfig(workers=2, max_batch=8))
        try:
            report = run_workload(server, workload)
        finally:
            server.stop()
    # arithmetic mean * count recovers the per-request latency sum exactly
    measured = report["latency_ms"]["mean"] * report["completed"]
    att = trace.attribution(tracer.snapshot(), measured)

    res = ExperimentResult(
        experiment="trace",
        title=f"Span-traced serve replay: {requests} closed-loop requests "
              f"over 4 matrices ({rows}x96:0.03), phase attribution of "
              "end-to-end latency",
        columns=("quantity", "value"),
    )
    for key in ("measured_ms", "attributed_ms", "coverage", "queue_wait_ms",
                "evaluate_ms", "profile_build_ms", "kernel_execute_ms",
                "evaluate_other_ms", "completion_ms"):
        res.add(key, att[key])
    res.add("spans", len(tracer.snapshot()))
    res.notes = [
        "coverage = (queue-wait + evaluate + completion-wait) / measured "
        "latency sum; the repro-trace CLI fails outside 1 +/- 0.1",
        "tracing is zero-cost when disabled (one global read per span "
        "site) and outputs are bit-identical either way "
        "(tests/test_trace_parity.py, tests/test_trace_overhead.py)",
        "host wall-clock latencies on the simulated-device counter model; "
        "span taxonomy in DESIGN.md §3.4",
    ]
    return res
