"""Builder for the sharded-cluster scaling experiment.

The scenario :mod:`repro.cluster` exists for: one engine's bounded
artifact LRU cannot hold the deployment's whole working set, so a single
server keeps re-paying the O(nnz) profile/transpose build as requests for
different matrices evict each other.  Sharding by content fingerprint
partitions the working set — each shard owns a disjoint slice small
enough to stay resident — so the *aggregate* cache capacity grows with
the shard count and the warm fraction climbs toward 1.

Two scenarios share one table:

* **scaling** — a near-uniform trace over more fingerprints than one
  shard's LRU holds, replayed against 1, 2 and 4 shards.  The headline is
  aggregate throughput 1 -> 4 shards (target >= 2.0x).  The per-shard
  artifact budget is held *constant* across shard counts (sized so the
  busiest 4-shard placement just fits), so the only thing that changes is
  how many fingerprints each engine juggles.  On a single-core host the
  entire win is cache residency — CPU parallelism would compound it on
  real multi-core deployments.
* **hotkey** — a Zipf-skewed trace whose head key dominates, replayed at
  replication 1 (all head traffic pinned to one shard) and replication 2
  (the router promotes the hot fingerprints and spreads them over their
  replica sets with power-of-two-choices).  The measured win is load
  concentration: the busiest shard's share of completed requests drops
  toward 1/replication for the head key.  On a single-core host that
  spread adds no capacity (all shards share the core), so throughput and
  latency stay flat here — on a real deployment the spread *is* the
  capacity win, exactly the 1.5D replication argument of
  arXiv:2203.07673.

Every run replays the *identical* seeded trace and is verified per
request against uncached :func:`repro.core.api.evaluate` — routing,
retries and replication never touch numerics, so outputs are
bit-identical (the ``divergent`` column must be all zeros).
"""

from __future__ import annotations

import numpy as np

from ..cluster import (ClusterConfig, HashRing, ShardRouter, WorkerConfig,
                       run_cluster_workload)
from ..core.engine import PatternEngine, fingerprint_matrix
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from ..serve import build_matrices, synthesize_workload
from .harness import ExperimentResult, register, resolve_scale

#: shard counts swept by the scaling scenario (headline: first -> last)
SHARD_COUNTS = (1, 2, 4)
#: artifact-LRU slack beyond the busiest shard's working set, in matrices
BUDGET_SLACK_MATRICES = 0.5
#: trace seed chosen so the 12 fingerprints place 3/3/3/3 on the 4-shard
#: ring — the scaling curve then measures cache capacity, not the luck of
#: consistent-hash placement (any seed works; a balanced one removes the
#: placement-variance term from the headline ratio)
SCALING_SEED = 21
HOTKEY_SEED = 7


def _probe_budget(matrices: dict, max_fps: int, strategy: str) -> int:
    """Per-shard artifact budget: busiest placement plus a little slack."""
    probe = PatternEngine()
    rng = np.random.default_rng(0)
    for X in matrices.values():
        probe.evaluate(X, rng.normal(size=X.n), strategy=strategy)
    per_matrix = probe.snapshot().artifact_bytes / len(matrices)
    return max(1, int((max_fps + BUDGET_SLACK_MATRICES) * per_matrix))


def _replay(trace: dict, shards: int, replication: int, budget: int,
            ctx: GpuContext, hot_threshold: float = 0.2,
            hot_min_requests: int = 16) -> dict:
    worker = WorkerConfig(max_batch=8, batch_linger_ms=0.5, policy="fifo",
                          max_artifact_bytes=budget)
    router = ShardRouter(ClusterConfig(
        shards=shards, replication=replication, worker=worker,
        hot_threshold=hot_threshold, hot_min_requests=hot_min_requests))
    try:
        return run_cluster_workload(router, trace, verify=True, ctx=ctx)
    finally:
        router.stop()


@register("cluster")
def cluster_scaling(scale: float | None = None,
                    ctx: GpuContext = DEFAULT_CONTEXT,
                    requests: int = 240, n_matrices: int = 12,
                    hot_requests: int = 200,
                    hot_matrices: int = 8) -> ExperimentResult:
    """Throughput vs shard count, plus hot-key replication vs pinning."""
    scale = resolve_scale(0.2) if scale is None else scale
    rows = max(2500, int(50_000 * scale))
    res = ExperimentResult(
        "cluster",
        f"sharded serving: {requests} near-uniform requests over "
        f"{n_matrices} matrices ({rows}x1024), per-shard artifact LRU "
        f"fixed at the busiest 4-shard working set "
        f"(+{BUDGET_SLACK_MATRICES:g}); hot-key scenario: {hot_requests} "
        f"Zipf(1.4) requests over {hot_matrices} matrices",
        ("scenario", "shards", "replication", "completed", "dropped",
         "throughput_rps", "p50_ms", "p99_ms", "warm_fraction",
         "max_shard_share", "replica_routed", "retried", "divergent"),
    )

    def max_share(rep: dict) -> float:
        if not rep["completed"]:
            return 0.0
        return max(rep["by_shard"].values()) / rep["completed"]

    # ---- scaling: near-uniform popularity, working set >> one shard's LRU
    trace = synthesize_workload(
        matrices=n_matrices, requests=requests, zipf=0.4, rows=rows,
        cols=1024, sparsity=0.02, mode="closed", concurrency=8,
        strategy="cusparse-explicit", beta=0.0, seed=SCALING_SEED)
    matrices = build_matrices(trace)
    # size the per-shard budget from the busiest placement at the largest
    # shard count, so the 4-shard working sets just fit and every smaller
    # cluster must thrash over the remainder
    ring = HashRing(range(max(SHARD_COUNTS)), vnodes=64)
    placement: dict = {}
    for X in matrices.values():
        shard = ring.primary(fingerprint_matrix(X))
        placement[shard] = placement.get(shard, 0) + 1
    budget = _probe_budget(matrices, max(placement.values()),
                           trace["requests"][0]["strategy"])

    rps: dict[int, float] = {}
    for shards in SHARD_COUNTS:
        rep = _replay(trace, shards, replication=2, budget=budget, ctx=ctx)
        rps[shards] = rep["throughput_rps"]
        res.add("scaling", shards, 2, rep["completed"],
                rep["requests"] - rep["completed"], rep["throughput_rps"],
                rep["latency_ms"]["p50"], rep["latency_ms"]["p99"],
                rep["warm_fraction"], max_share(rep),
                rep["replica_routed"], rep["retried"], rep["divergent"])

    # ---- hotkey: Zipf head pinned to one shard vs replicated over two.
    # generous budget: queueing at the hot shard, not eviction, is the
    # bottleneck under study
    hot_trace = synthesize_workload(
        matrices=hot_matrices, requests=hot_requests, zipf=1.4, rows=rows,
        cols=1024, sparsity=0.02, mode="closed", concurrency=8,
        strategy="cusparse-explicit", beta=0.0, seed=HOTKEY_SEED)
    hot_matrices_built = build_matrices(hot_trace)
    hot_budget = _probe_budget(
        hot_matrices_built, len(hot_matrices_built),
        hot_trace["requests"][0]["strategy"])
    hot_share: dict[int, float] = {}
    for replication in (1, 2):
        rep = _replay(hot_trace, shards=max(SHARD_COUNTS),
                      replication=replication, budget=hot_budget, ctx=ctx)
        hot_share[replication] = max_share(rep)
        res.add("hotkey", max(SHARD_COUNTS), replication, rep["completed"],
                rep["requests"] - rep["completed"], rep["throughput_rps"],
                rep["latency_ms"]["p50"], rep["latency_ms"]["p99"],
                rep["warm_fraction"], max_share(rep),
                rep["replica_routed"], rep["retried"], rep["divergent"])

    first, last = SHARD_COUNTS[0], SHARD_COUNTS[-1]
    scaling = rps[last] / max(rps[first], 1e-9)
    res.notes.append(
        f"aggregate throughput scales {scaling:.2f}x from {first} -> "
        f"{last} shards (target >= 2.0x) with a fixed per-shard artifact "
        f"budget ({budget} bytes): the win is partitioned cache "
        "residency, not CPU parallelism (single-core host; multi-core "
        "deployments compound it)")
    res.notes.append(
        f"hot-key replication: the busiest shard's completed-request "
        f"share drops {hot_share[1]:.2f} -> {hot_share[2]:.2f} "
        f"({hot_share[1] / max(hot_share[2], 1e-9):.2f}x less "
        "concentrated) once the router spreads promoted fingerprints "
        "over their replica sets (power-of-two-choices on outstanding "
        "depth); on this single-core host the spread adds no capacity, "
        "on multi-core deployments it is the capacity win")
    res.notes.append(
        "all runs replay the identical seeded trace; every completed "
        "request verified bit-identical to uncached evaluation "
        "(divergent column) — routing, retries and replication never "
        "touch numerics")
    return res
