"""Builder for the static-analysis correctness-gate experiment.

Re-runs the `repro check` scopes (shipped SIMT kernels, the generated
dense/cell-wise/sparse families) and cross-validates the seeded-bug
corpus, so EXPERIMENTS.md records the gate's verdict next to the
performance experiments instead of keeping a hand-maintained table the
report generator would silently drop.

The corpus rows need the repository checkout (``tests/badkernels``);
when the package runs installed without it, those rows degrade to a
note rather than failing the whole report.
"""

from __future__ import annotations

import importlib.util
import inspect
import re
from pathlib import Path

from ..analyze import analyze_file
from ..analyze.check import (DEFAULT_GRID, check_fusion_sources, check_grid,
                             check_shipped, check_sparse_codegen)
from ..analyze.sanitizer import alg1_launch, alg2_launch
from .harness import ExperimentResult, register

_LAUNCHERS = {"alg1": alg1_launch, "alg2": alg2_launch}

#: every codegen-fixture docstring names the kind its seeded bug must trip
#: (``Expected ``kind``.`` or ``... flag it as ``kind``.``); wording wraps
#: across lines in some fixtures, so match any whitespace run
_EXPECTED_RE = re.compile(r"(?:expected|as)\s+``([a-z-]+)``", re.IGNORECASE)


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _fixture_kernel(mod):
    return next(fn for name, fn in sorted(vars(mod).items())
                if inspect.isgeneratorfunction(fn)
                and name.startswith(("alg1_", "alg2_")))


def _simt_corpus_row(corpus: Path) -> tuple[str, int, str]:
    """Static + dynamic verdict over the SIMT mutants (race/barrier bugs)."""
    fixtures = sorted(p for p in corpus.glob("*.py")
                      if p.name != "__init__.py")
    findings = 0
    agree = 0
    for path in fixtures:
        mod = _load_module(path)
        static = {f.kind for f in analyze_file(str(path))}
        findings += len(analyze_file(str(path)))
        dynamic = _LAUNCHERS[mod.SIGNATURE](_fixture_kernel(mod))
        if static == dynamic == {mod.EXPECTED_KIND}:
            agree += 1
    return (f"badkernels SIMT corpus ({len(fixtures)} mutants)", findings,
            f"static == dynamic == expected on {agree}/{len(fixtures)}")


def _codegen_corpus_row(corpus: Path) -> tuple[str, int, str]:
    """Lint verdict over the text-level codegen mutants (dense + sparse)."""
    fixtures = sorted(corpus.glob("*.py"))
    findings = 0
    hit = 0
    for path in fixtures:
        expected = _EXPECTED_RE.search(path.read_text())
        kinds = {f.kind for f in analyze_file(str(path))}
        findings += len(analyze_file(str(path)))
        if expected and expected.group(1) in kinds:
            hit += 1
    return (f"badkernels codegen corpus ({len(fixtures)} mutants)", findings,
            f"documented kind hit on {hit}/{len(fixtures)}")


@register("analyze")
def analyze_gate(scale: float | None = None) -> ExperimentResult:
    """Static checker + sanitizer cross-validation as a recorded gate."""
    del scale                              # the gate has no size knob
    res = ExperimentResult(
        "analyze",
        "Static checker vs dynamic sanitizer on the SIMT and generated "
        "kernels (correctness gate)",
        ("scope", "static_findings", "verdict"),
    )
    clean = [
        ("shipped kernels (Alg. 1, Alg. 2 x2, Alg. 3, CSR-vector SpMV)",
         check_shipped()),
        (f"generated mtmvm_* grid ({len(DEFAULT_GRID)} specializations)",
         check_grid()),
        ("generated cellwise_* kernels from shipped fusion plans",
         check_fusion_sources()),
        ("generated sparse_* AOT family (4 structures x 2 specializations)",
         check_sparse_codegen()),
    ]
    for scope, findings in clean:
        res.add(scope, len(findings),
                "clean" if not findings else "FINDINGS — gate broken")

    corpus = Path("tests") / "badkernels"
    if corpus.is_dir():
        res.add(*_simt_corpus_row(corpus))
        res.add(*_codegen_corpus_row(corpus / "codegen"))
    else:
        res.notes.append(
            "seeded-bug corpus rows skipped: tests/badkernels not present "
            "(installed package without the repository checkout)")
    res.notes.append(
        "cross-validation contract (tests/test_badkernels.py): for each "
        "seeded SIMT mutant, the static finding kinds equal the kinds the "
        "sanitized launch observes; codegen mutants are text-level lint "
        "fixtures (no dynamic twin). CI gates `repro check` at exit 1 on "
        "findings with the corpus as a negative control.")
    return res
