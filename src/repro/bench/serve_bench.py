"""Builder for the serving-layer micro-batching experiment.

The scenario the `repro.serve` subsystem exists for: a burst of requests
whose matrix popularity follows a Zipf law (a few hot fingerprints, a long
tail), served by an engine whose artifact cache is — as in any real
deployment — *smaller than the working set*.  Naive FIFO dispatch
interleaves fingerprints, so nearly every request re-pays the O(nnz)
profile/SpMV-plan build as the LRU thrashes; fingerprint-aware
micro-batching makes same-matrix requests adjacent, so each group pays the
build once and the rest of the batch runs warm.

Both policies process the *identical* request stream on identically
configured engines; only dispatch adjacency differs, so outputs are
bit-identical (verified per request against uncached ``api.evaluate``).
The headline is the p50/p99 end-to-end latency and throughput ratio,
host wall-clock.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.api import evaluate as evaluate_uncached
from ..core.engine import PatternEngine
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from ..serve import (PatternServer, ServerConfig, build_matrices,
                     materialize_requests, percentile, synthesize_workload)
from .harness import ExperimentResult, register, resolve_scale

POLICIES = ("fifo", "fingerprint")
#: artifact-LRU budget as a multiple of one matrix's artifact footprint —
#: the cache deliberately holds ~2 of the workload's 8 fingerprints
BUDGET_MATRICES = 2.5


@register("serve")
def serve_latency(scale: float | None = None,
                  ctx: GpuContext = DEFAULT_CONTEXT,
                  requests: int = 240, n_matrices: int = 8,
                  zipf: float = 1.1, max_batch: int = 32,
                  workers: int = 2) -> ExperimentResult:
    """Fingerprint-aware batching vs naive FIFO on a Zipf-skewed burst."""
    scale = resolve_scale(0.2) if scale is None else scale
    rows = max(2500, int(100_000 * scale))
    res = ExperimentResult(
        "serve",
        f"PatternServer micro-batching: {requests} Zipf({zipf})-skewed "
        f"requests over {n_matrices} matrices ({rows}x512), artifact LRU "
        f"bounded to ~{BUDGET_MATRICES:g} working-set entries",
        ("policy", "completed", "dropped", "p50_ms", "p99_ms", "mean_ms",
         "throughput_rps", "plan_hit_rate", "profiles_built", "evictions",
         "divergent"),
    )
    # the expensive reusable artifact is the csr2csc transpose that the
    # explicit-transpose strategy needs: under FIFO interleaving the bounded
    # LRU evicts it between same-matrix requests and every rebuild is O(nnz)
    trace = synthesize_workload(
        matrices=n_matrices, requests=requests, zipf=zipf, rows=rows,
        cols=512, sparsity=0.01, mode="open", rate_rps=None,
        strategy="cusparse-explicit", beta=1e-3, seed=42)
    matrices = build_matrices(trace)
    reqs = materialize_requests(trace, matrices)

    # per-request bit-identity references (uncached, no session state)
    refs = [evaluate_uncached(r.X, r.y, v=r.v, z=r.z, alpha=r.alpha,
                              beta=r.beta, strategy=r.strategy,
                              ctx=ctx).output
            for r in reqs]

    # probe the per-matrix artifact footprint to size the bounded LRU
    probe = PatternEngine(ctx)
    for r in reqs[:len(matrices) * 4]:       # touch every fingerprint
        probe.evaluate(r.X, r.y, z=r.z, beta=r.beta, strategy=r.strategy)
    per_matrix = probe.snapshot().artifact_bytes / len(matrices)
    budget = max(1, int(BUDGET_MATRICES * per_matrix))

    p99 = {}
    for policy in POLICIES:
        engine = PatternEngine(ctx, max_artifact_bytes=budget)
        server = PatternServer(engine, ServerConfig(
            queue_capacity=len(reqs), max_batch=max_batch,
            batch_linger_ms=2.0, workers=workers, policy=policy),
            start=False)
        # backlog replay: enqueue the whole burst, then open the floodgate.
        # Every request "arrives" at t0 (the floodgate instant), so latency
        # is measured client-side as resolution - t0, not from the serial
        # pre-start submit loop (which would charge both policies for
        # submit-side fingerprinting and dilute the dispatch-order signal).
        futures = [server.submit(r) for r in reqs]
        t0 = time.monotonic()
        server.start()
        responses = [f.result(timeout=300.0) for f in futures]
        wall_s = time.monotonic() - t0
        server.stop()

        ok = [r for r in responses if r.ok]
        dropped = len(responses) - len(ok)
        divergent = sum(
            not np.array_equal(resp.result.output, ref)
            for resp, ref in zip(responses, refs) if resp.ok)
        lat = [(f.resolved_at - t0) * 1e3
               for f, r in zip(futures, responses) if r.ok]
        st = engine.snapshot()
        p99[policy] = percentile(lat, 0.99)
        res.add(policy, len(ok), dropped, percentile(lat, 0.50),
                p99[policy], float(np.mean(lat)) if lat else 0.0,
                len(ok) / wall_s if wall_s > 0 else 0.0,
                st.hit_rate, st.profiles_built, st.evictions, divergent)

    speedup = p99["fifo"] / max(p99["fingerprint"], 1e-9)
    res.notes.append(
        f"fingerprint-aware batching improves p99 latency "
        f"{speedup:.2f}x over naive FIFO at equal offered load "
        f"(target >= 1.5x); outputs bit-identical to uncached "
        f"evaluation in both policies")
    res.notes.append(
        f"server config: {workers} workers, max_batch={max_batch}, "
        f"burst arrival (all requests queued at t=0); artifact budget "
        f"{budget} bytes (~{BUDGET_MATRICES:g}/{n_matrices} matrices) "
        "forces LRU thrash under interleaved FIFO dispatch")
    res.notes.append(
        "host wall-clock latency (burst arrival -> response); model time "
        "is unchanged by batching — the win is amortized profile/plan/"
        "transpose construction, as in SystemML fusion-plan reuse "
        "(arXiv:1801.00829)")
    return res
