"""EXPERIMENTS.md generator: run every experiment, record paper-vs-measured.

Usage::

    python -m repro.bench.report [output_path]

Runs all registered experiments at the default scales (honouring
``REPRO_SCALE`` / ``REPRO_FULL_SCALE``) and writes the consolidated report.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from .harness import REGISTRY, ExperimentResult

#: paper-reported headline values per experiment, for the summary table
PAPER_HEADLINES: dict[str, str] = {
    "engine": "Fig. 2 amortization as a session guarantee (transpose built "
              "once; plans/tuning reused across iterations)",
    "profile": "structure-invariant inspection hoisted out of the iteration "
               "(SystemML-style plan reuse; no paper headline)",
    "serve": "fingerprint-aware micro-batching vs naive FIFO under a "
             "bounded artifact LRU (serving-layer extension; no paper "
             "headline)",
    "slo": "tiered EDF scheduling with weighted fair sharing: interactive "
           "tenants meet a latency SLO that arrival-order dispatch "
           "structurally cannot (serving-layer extension; no paper "
           "headline)",
    "cluster": "fingerprint-sharded serving: aggregate cache capacity "
               "scales with shard count; hot keys replicated across "
               "shards (distributed extension, cf. 1.5D replication "
               "arXiv:2203.07673; no paper headline)",
    "trace": "span-level phase attribution of serving latency "
             "(observability extension; no paper headline)",
    "fusion": "SystemML-style cost-based operator fusion: the optimizer "
              "rediscovers the Eq.-1 kernel from the counter model "
              "(plan-selection extension, arXiv:1801.00829; no paper "
              "headline)",
    "analyze": "static race/barrier/codegen checking of the fused kernels, "
               "cross-validated by a dynamic sanitizer (correctness gate; "
               "no paper headline)",
    "host-analyze": "lock-discipline checking of the serve/cluster/engine "
                    "host stack, cross-validated by a dynamic lock-order "
                    "witness (correctness gate; no paper headline)",
    "codegen": "specialized code generation for the fused kernel "
               "(Section 4 codegen, host-level analogue: specialization "
               "constants baked at compile time; no paper headline)",
    "figure2": "avg ~35x vs cuSPARSE, max 67x at small n; ~3.5x fewer loads",
    "figure3": "avg 20.33x / 14.66x / 9.28x vs cuSPARSE / BIDMat-GPU / "
               "BIDMat-CPU",
    "figure4": "avg 26.21x / 19.62x / 13.41x (full pattern)",
    "figure5": "avg 4.27x / 2.18x / 15.33x vs cuBLAS / BIDMat-GPU / "
               "BIDMat-CPU (dense)",
    "figure6": "~1,200 settings; model within 2% of optimum, top-1%",
    "table1": "5 instantiations x 5 algorithms coverage matrix",
    "table2": "pattern share of CPU time: KDD 82.9%, HIGGS 99.4%",
    "table4": "KDD2010: 110x / 72.6x / 66.9x vs cuSPARSE (50.5/78.3/85.2 ms "
              "fused)",
    "table5": "end-to-end LR-CG: HIGGS 4.8x (32 it), KDD 9x (100 it)",
    "table6": "SystemML: total 1.2x/1.9x, fused-kernel-only 11.2x/4.1x",
}


def measured_headline(name: str, res: ExperimentResult) -> str:
    """One-line summary of the measured outcome per experiment."""
    try:
        if name == "engine":
            rows = {r[0]: r for r in res.rows}
            exp = rows["cusparse-explicit"]
            return (f"explicit-transpose {exp[5]:.1f}x amortized over "
                    f"{res.title.split()[3]} iters, hit-rate {exp[6]:.2f}, "
                    f"{exp[7]:.0f} transpose built")
        if name == "profile":
            per_call = dict(zip(res.column("series"),
                                res.column("per_call_ms")))
            overhead = dict(zip(res.column("series"),
                                res.column("model_overhead_ms")))
            e2e = (per_call["pre_profile_warm_e2e"]
                   / per_call["engine_warm_e2e"])
            return (f"warm model overhead {overhead['warm_unprofiled']:.1f} "
                    f"-> {overhead['warm_profiled']:.2f} ms/call; warm "
                    f"e2e {e2e:.1f}x")
        if name == "analyze":
            rows = {r[0]: r for r in res.rows}
            clean = sum(r[1] for s, r in rows.items()
                        if not s.startswith("badkernels"))
            corpus = [r[2] for s, r in rows.items()
                      if s.startswith("badkernels")]
            return (f"{clean} findings over the shipped + generated "
                    f"scopes; corpus: {'; '.join(corpus) or 'skipped'}")
        if name == "host-analyze":
            rows = {r[0]: r for r in res.rows}
            active = sum(r[1] for s, r in rows.items()
                         if s.startswith("shipped"))
            extra = [r[2] for s, r in rows.items()
                     if not s.startswith("shipped")]
            return (f"{active} active findings over the shipped host "
                    f"stack; {'; '.join(extra) or 'corpus skipped'}")
        if name == "codegen":
            per_call = dict(zip(res.column("series"),
                                res.column("per_call_ms")))
            x = (per_call["warm_interpreted_e2e"]
                 / per_call["warm_compiled_e2e"])
            return (f"warm compiled e2e {per_call['warm_compiled_e2e']:.1f} "
                    f"ms/call vs {per_call['warm_interpreted_e2e']:.1f} "
                    f"interpreted ({x:.1f}x), at the "
                    f"{per_call['numeric_floor']:.1f} ms numeric floor")
        if name == "fusion":
            sp = dict(zip(res.column("script"), res.column("auto_speedup")))
            eq1 = min(sp[s] for s in ("linreg-cg", "logreg", "svm"))
            cell = min(sp[s] for s in ("cg-update", "row-scale"))
            return (f"auto >= {eq1:.1f}x vs unfused on the Eq.-1 scripts, "
                    f">= {cell:.1f}x on cell-wise scripts the fixed "
                    f"rewriter leaves unfused")
        if name == "figure2":
            sp = res.column("speedup")
            lr = res.column("load_ratio")
            return (f"avg {np.mean(sp):.1f}x, max {max(sp):.1f}x at "
                    f"n={res.rows[int(np.argmax(sp))][0]}; "
                    f"{np.mean(lr):.1f}x fewer loads")
        if name in ("figure3", "figure4", "figure5"):
            a = np.mean(res.column("cusparse_x"))
            b = np.mean(res.column("bidmat-gpu_x"))
            c = np.mean(res.column("bidmat-cpu_x"))
            return f"avg {a:.1f}x / {b:.1f}x / {c:.1f}x"
        if name == "figure6":
            q = dict(zip(res.column("quantity"), res.column("value")))
            return (f"{q['settings_explored']:.0f} settings; model gap "
                    f"{q['model_gap_pct']:.2f}%, rank "
                    f"{q['model_rank_pct']:.1f}%")
        if name == "table1":
            marks = sum(r[1:].count("x") for r in res.rows)
            return f"{marks} traced cells; paper coverage complete"
        if name == "table2":
            rows = {r[0]: r for r in res.rows}
            return (f"KDD-like {rows['KDD2010-like'][1]:.1f}%, HIGGS-like "
                    f"{rows['HIGGS-like'][1]:.1f}% pattern share")
        if name == "table4":
            sp = res.column("speedup")
            return (f"{sp[0]:.0f}x / {sp[1]:.0f}x / {sp[2]:.0f}x; fused "
                    f"{res.rows[0][1]:.2f}/{res.rows[1][1]:.2f}/"
                    f"{res.rows[2][1]:.2f} model-ms")
        if name == "table5":
            rows = {r[0]: r for r in res.rows}
            return (f"HIGGS-like {rows['HIGGS-like'][4]:.1f}x (32 it), "
                    f"KDD-like {rows['KDD2010-like'][4]:.1f}x (100 it)")
        if name == "cluster":
            cols = res.columns
            rps = {r[cols.index("shards")]: r[cols.index("throughput_rps")]
                   for r in res.rows if r[0] == "scaling"}
            shards = sorted(rps)
            warm = {r[cols.index("shards")]: r[cols.index("warm_fraction")]
                    for r in res.rows if r[0] == "scaling"}
            divergent = sum(r[cols.index("divergent")] for r in res.rows)
            return (f"{rps[shards[-1]] / rps[shards[0]]:.2f}x throughput "
                    f"{shards[0]} -> {shards[-1]} shards (warm "
                    f"{warm[shards[0]]:.2f} -> {warm[shards[-1]]:.2f}), "
                    f"{divergent} divergent outputs")
        if name == "serve":
            rows = {r[0]: r for r in res.rows}
            ratio = rows["fifo"][4] / rows["fingerprint"][4]
            return (f"p99 {rows['fifo'][4]:.1f} -> "
                    f"{rows['fingerprint'][4]:.1f} ms ({ratio:.1f}x), "
                    f"{rows['fingerprint'][10]:.0f} divergent outputs")
        if name == "slo":
            rows = {r[0]: r for r in res.rows}
            cols = res.columns
            att, p99 = cols.index("slo_attainment"), \
                cols.index("interactive_p99_ms")
            ratio = rows["fifo"][p99] / max(rows["edf"][p99], 1e-9)
            return (f"interactive SLO attainment "
                    f"{100 * rows['fifo'][att]:.0f}% -> "
                    f"{100 * rows['edf'][att]:.0f}% under tiered EDF; "
                    f"interactive p99 {ratio:.1f}x better")
        if name == "trace":
            q = dict(zip(res.column("quantity"), res.column("value")))
            return (f"coverage {100 * q['coverage']:.1f}% of "
                    f"{q['measured_ms']:.0f} ms over {q['spans']:.0f} "
                    f"spans; queue {q['queue_wait_ms']:.0f} ms, kernels "
                    f"{q['kernel_execute_ms']:.0f} ms")
        if name == "table6":
            rows = {r[0]: r for r in res.rows}
            return (f"total {rows['HIGGS-like'][2]:.1f}x/"
                    f"{rows['KDD2010-like'][2]:.1f}x, kernel-only "
                    f"{rows['HIGGS-like'][3]:.1f}x/"
                    f"{rows['KDD2010-like'][3]:.1f}x")
    except Exception as exc:  # pragma: no cover - report must not die
        return f"(summary unavailable: {exc})"
    return "see detail table"


HEADER = """# EXPERIMENTS — paper vs measured

Generated by `python -m repro.bench.report`.  Every table and figure of the
paper's evaluation section is regenerated by a builder in `repro.bench`
(wrapped by `benchmarks/bench_*.py` with shape assertions).  Times are
**model milliseconds** on the simulated GTX Titan: absolute values are not
comparable to the paper's hardware; orderings and ratios are the reproduced
quantities.

Scaling: sparse sweeps default to m = 100k rows (paper: 500k), dense to
m = 20k (paper: 500k), KDD-like stand-ins to 0.4% of the original
(60k x 120k, with device caches scaled proportionally so cache-pressure
phenomena survive the reduction — see DESIGN.md §5).  `REPRO_FULL_SCALE=1`
lifts all scales.

## Summary

| Experiment | Paper | Measured |
|---|---|---|
"""


NOTES = """
## Known deviations and why

* **Fig. 2-4 magnitudes run below the paper at reduced scale.**  Speedups
  grow with input size as fixed costs (kernel launches, barriers) amortize;
  the scale-invariance tests verify the ratios only *increase* toward the
  paper's operating point (m = 500k).  The shape claims — largest win at
  small n, monotone decline, cuSPARSE > BIDMat-GPU > BIDMat-CPU ordering —
  hold at every scale.
* **Fig. 2's load ratio measures ~5x vs the paper's ~3.5x.**  Our structural
  model charges cuSPARSE's transpose mode for the row-recovery and semaphore
  traffic explicitly; the paper's profiler counted only load transactions.
* **Fig. 6 rank: the model's pick is within 2% of the optimum (the paper's
  headline claim) but only at the ~26th percentile of settings.**  The model
  time surface is smoother than real silicon, so hundreds of settings tie
  within fractions of a percent; on hardware most of those ties spread out
  and the paper's "top 1%" emerges.
* **Table 5's KDD-like end-to-end speedup overshoots (24x vs 9x).**  With
  the proportionally scaled cache (DESIGN.md §5.5), the baseline's
  per-iteration transpose SpMV is fully pathological every iteration, while
  in the paper some of its cost hides behind other work; the HIGGS-like row
  (2.2x vs 4.8x) errs in the opposite, conservative direction.
* **Times are model milliseconds.**  Absolute values are meaningless against
  real hardware; every comparison in this file is a ratio of two numbers
  produced by the same machinery.
"""


#: experiments measuring host wall-clock (not model time) run first, before
#: the long model-time builders perturb the process (allocator arenas, CPU
#: caches) and skew the timed comparisons
WALL_CLOCK_FIRST = ("codegen", "profile", "serve", "slo", "cluster",
                    "trace")


def generate(path: str = "EXPERIMENTS.md") -> str:
    results: dict[str, ExperimentResult] = {}
    order = [n for n in WALL_CLOCK_FIRST if n in REGISTRY]
    order += [n for n in sorted(REGISTRY) if n not in order]
    for name in order:
        t0 = time.time()
        results[name] = REGISTRY[name](scale=None)
        print(f"{name}: done in {time.time() - t0:.1f}s", file=sys.stderr)

    lines = [HEADER]
    for name in sorted(results):
        lines.append(f"| {name} | {PAPER_HEADLINES.get(name, '-')} | "
                     f"{measured_headline(name, results[name])} |")
    lines.append(NOTES)
    lines.append("\n## Detail\n")
    for name in sorted(results):
        lines.append(results[name].to_markdown())
    text = "\n".join(lines)
    with open(path, "w") as f:
        f.write(text)
    return text


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    generate(out)
    print(f"wrote {out}", file=sys.stderr)
