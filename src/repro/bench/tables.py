"""Builders for the paper's tables (1, 2, 4, 5, 6)."""

from __future__ import annotations

import numpy as np

from ..core.executor import PatternExecutor
from ..core.pattern import TABLE1, GenericPattern, Instantiation
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from ..data.synthetic import (classification_labels, higgs_like, kdd_like,
                              regression_targets)
from ..ml import glm_irls, hits, linreg_cg, logreg_trust_region, svm_primal
from ..ml.runtime import MLRuntime
from ..sparse.generate import random_csr
from ..systemml.profiler import profile_linreg_breakdown
from ..systemml.runner import table6_comparison
from .harness import ExperimentResult, register, resolve_scale

_ALGOS = ("LR", "GLM", "LogReg", "SVM", "HITS")


def _trace_algorithms(seed: int = 0) -> dict[str, set[Instantiation]]:
    """Run every algorithm on small data, recording pattern usage."""
    rng = np.random.default_rng(seed)
    X = random_csr(300, 24, 0.25, rng=seed)
    y, _ = regression_targets(X, rng=seed + 1)
    t = classification_labels(X, rng=seed + 2)
    counts = np.clip(np.round(np.abs(y)), 0, 20)

    used: dict[str, set[Instantiation]] = {}

    rt = MLRuntime("gpu-fused")
    linreg_cg(X, y, rt, max_iterations=5, include_transfer=False)
    used["LR"] = set(rt.ledger.instantiations)

    rt = MLRuntime("gpu-fused")
    glm_irls(X, counts, "poisson", rt, max_irls=3, max_cg=5)
    used["GLM"] = set(rt.ledger.instantiations)
    # GLM also exercises the unweighted form on a Gaussian family
    rt2 = MLRuntime("gpu-fused")
    glm_irls(X, y, "gaussian", rt2, max_irls=2, max_cg=5)
    used["GLM"] |= set(rt2.ledger.instantiations)

    rt = MLRuntime("gpu-fused")
    logreg_trust_region(X, t, rt, max_newton=3, max_cg=5)
    used["LogReg"] = set(rt.ledger.instantiations)

    rt = MLRuntime("gpu-fused")
    svm_primal(X, t, rt, max_newton=3, max_cg=5)
    used["SVM"] = set(rt.ledger.instantiations)

    rt = MLRuntime("gpu-fused")
    hits(X, rt, max_iterations=5, mode="fused")
    used["HITS"] = set(rt.ledger.instantiations)
    rt2 = MLRuntime("gpu-fused")
    hits(X, rt2, max_iterations=5, mode="alternating")
    used["HITS"] |= set(rt2.ledger.instantiations)
    return used


#: which instantiations subsume which (a more general form exercises the
#: same fused code path plus extras, so using it covers the simpler row)
_SUBSUMES: dict[Instantiation, frozenset[Instantiation]] = {
    Instantiation.FULL: frozenset({Instantiation.XT_V_X_Y,
                                   Instantiation.XT_X_Y_BZ,
                                   Instantiation.XT_X_Y}),
    Instantiation.XT_V_X_Y: frozenset({Instantiation.XT_X_Y}),
    Instantiation.XT_X_Y_BZ: frozenset({Instantiation.XT_X_Y}),
}


def _covers(used: set[Instantiation], inst: Instantiation) -> bool:
    if inst in used:
        return True
    return any(inst in _SUBSUMES.get(u, frozenset()) for u in used)


@register("table1")
def table1(scale: float | None = None,
           ctx: GpuContext = DEFAULT_CONTEXT) -> ExperimentResult:
    """Table 1: which instantiations each ML algorithm actually executes."""
    used = _trace_algorithms()
    res = ExperimentResult(
        "table1", "pattern instantiations used by each algorithm (traced)",
        ("instantiation",) + _ALGOS,
    )
    for inst in Instantiation:
        marks = tuple("x" if _covers(used[a], inst) else ""
                      for a in _ALGOS)
        res.add(inst.value, *marks)
    # coverage check against the paper's table (superset is acceptable:
    # e.g. our GLM gradient also uses the XT_Y row)
    missing = []
    for inst, algos in TABLE1.items():
        for a in algos:
            if not _covers(used[a], inst):
                missing.append(f"{a}:{inst.name}")
    res.notes.append("paper coverage " + ("complete" if not missing else
                                          f"MISSING {missing}"))
    return res


@register("table2")
def table2(scale: float | None = None,
           ctx: GpuContext = DEFAULT_CONTEXT) -> ExperimentResult:
    """Table 2: single-threaded CPU time share of the pattern in LR-CG."""
    scale = resolve_scale(0.005) if scale is None else scale
    res = ExperimentResult(
        "table2", "CPU compute-time breakdown of LR-CG (single thread)",
        ("dataset", "pattern_pct", "blas1_pct", "total_pct"),
    )
    Xk = kdd_like(scale=scale, rng=10)
    yk, _ = regression_targets(Xk, rng=11)
    rk = profile_linreg_breakdown(Xk, yk, "KDD2010-like",
                                  max_iterations=100)
    res.add(rk.dataset, rk.pattern_pct, rk.blas1_pct, rk.total_pct)
    Xh = higgs_like(scale=scale, rng=12)
    yh, _ = regression_targets(Xh, rng=13)
    rh = profile_linreg_breakdown(Xh, yh, "HIGGS-like", max_iterations=32)
    res.add(rh.dataset, rh.pattern_pct, rh.blas1_pct, rh.total_pct)
    res.notes.append("paper: KDD2010 82.9% / 16.9% / 99.8%; "
                     "HIGGS 99.4% / 0.1% / 99.5%")
    return res


def _scaled_cache_ctx(ctx: GpuContext, scale: float) -> GpuContext:
    """Context whose caches shrink with the dataset scale.

    The KDD2010 phenomena (row-offset binary search missing L2, the output
    vector not fitting cache) depend on the *ratio* of data-structure sizes
    to cache capacity.  Scaling the dataset down without scaling the cache
    would silently erase them, so the KDD experiments run against a device
    with proportionally scaled L2/texture capacities (standard practice when
    shrinking simulation workloads).
    """
    dev = ctx.device.with_(
        l2_cache_bytes=max(8192, int(ctx.device.l2_cache_bytes * scale)),
        texture_cache_bytes_per_sm=max(
            2048, int(ctx.device.texture_cache_bytes_per_sm * scale)),
    )
    return GpuContext(dev, use_texture_cache=ctx.use_texture_cache,
                      use_l2_reuse=ctx.use_l2_reuse)


@register("table4")
def table4(scale: float | None = None,
           ctx: GpuContext = DEFAULT_CONTEXT) -> ExperimentResult:
    """Table 4: the three patterns on the ultra-sparse KDD2010 stand-in
    (large n: the fused kernel's global-memory aggregation variant)."""
    scale = resolve_scale(0.004) if scale is None else scale
    X = kdd_like(scale=scale, rng=20)
    rng = np.random.default_rng(21)
    ex = PatternExecutor(_scaled_cache_ctx(ctx, scale))
    res = ExperimentResult(
        "table4",
        f"KDD2010-like ({X.m} x {X.n}, nnz={X.nnz}): proposed vs "
        "cuBLAS/cuSPARSE (model ms)",
        ("pattern", "proposed_ms", "cusparse_ms", "speedup"),
    )
    p_m = rng.normal(size=X.m)
    patterns = [
        ("X^T y", GenericPattern(X, p_m, inner=False)),
        ("X^T (X y)", GenericPattern(X, rng.normal(size=X.n))),
        ("full", GenericPattern(X, rng.normal(size=X.n),
                                v=rng.normal(size=X.m),
                                z=rng.normal(size=X.n),
                                alpha=2.0, beta=0.5)),
    ]
    for name, p in patterns:
        fused = ex.evaluate(p, "fused")
        base = ex.evaluate(p, "cusparse")
        res.add(name, fused.time_ms, base.time_ms,
                base.time_ms / fused.time_ms)
    res.notes.append(
        "paper (ms): X^T y 50.5 vs 5552.1 (110x); X^T(Xy) 78.3 vs 5683.1 "
        "(72.6x); full 85.2 vs 5704.1 (66.9x); fused variant = 'global' "
        f"(n={X.n} exceeds the ~6K shared-memory limit)")
    return res


@register("table5")
def table5(scale: float | None = None,
           ctx: GpuContext = DEFAULT_CONTEXT) -> ExperimentResult:
    """Table 5: end-to-end LR-CG speedup (incl. PCIe transfer)."""
    scale = resolve_scale(0.004) if scale is None else scale
    res = ExperimentResult(
        "table5", "end-to-end LR-CG: fused kernels vs pure cuBLAS/cuSPARSE "
        "(both including host-device transfer)",
        ("dataset", "iterations", "fused_total_ms", "baseline_total_ms",
         "speedup", "transfer_ms"),
    )
    cases = []
    Xh = higgs_like(scale=max(scale, 0.005), rng=30)
    yh, _ = regression_targets(Xh, rng=31)
    cases.append(("HIGGS-like", Xh, yh, 32, ctx))
    Xk = kdd_like(scale=scale, rng=32)
    yk, _ = regression_targets(Xk, rng=33)
    cases.append(("KDD2010-like", Xk, yk, 100, _scaled_cache_ctx(ctx, scale)))
    for name, X, y, iters, case_ctx in cases:
        rt_f = MLRuntime("gpu-fused", ctx=case_ctx)
        rf = linreg_cg(X, y, rt_f, tolerance=0.0, max_iterations=iters)
        rt_b = MLRuntime("gpu-baseline", ctx=case_ctx)
        rb = linreg_cg(X, y, rt_b, tolerance=0.0, max_iterations=iters)
        if not np.allclose(rf.w, rb.w, rtol=1e-8, atol=1e-10):
            raise AssertionError("fused and baseline end-to-end diverged")
        res.add(name, rf.iterations, rf.total_time_ms, rb.total_time_ms,
                rb.total_time_ms / rf.total_time_ms,
                rt_f.ledger.by_category.get("transfer", 0.0))
    res.notes.append("paper: HIGGS 4.8x (32 iters), KDD2010 9x (100 iters); "
                     "KDD transfer 939 ms amortized over iterations")
    return res


@register("table6")
def table6(scale: float | None = None,
           ctx: GpuContext = DEFAULT_CONTEXT) -> ExperimentResult:
    """Table 6: SystemML-integrated end-to-end (JNI + memory manager)."""
    scale = resolve_scale(0.004) if scale is None else scale
    res = ExperimentResult(
        "table6", "GPU-enabled SystemML vs CPU SystemML on LR-CG",
        ("dataset", "iterations", "total_speedup", "fused_kernel_speedup",
         "gpu_transfer_ms"),
    )
    Xh = higgs_like(scale=max(scale, 0.005), rng=40)
    yh, _ = regression_targets(Xh, rng=41)
    th = table6_comparison(Xh, yh, max_iterations=32, ctx=ctx)
    res.add("HIGGS-like", int(th["iterations"]), th["total_speedup"],
            th["fused_kernel_speedup"], th["gpu_transfer_ms"])
    Xk = kdd_like(scale=scale, rng=42)
    yk, _ = regression_targets(Xk, rng=43)
    tk = table6_comparison(Xk, yk, max_iterations=100,
                           ctx=_scaled_cache_ctx(ctx, scale))
    res.add("KDD2010-like", int(tk["iterations"]), tk["total_speedup"],
            tk["fused_kernel_speedup"], tk["gpu_transfer_ms"])
    res.notes.append("paper: HIGGS total 1.2x / kernel 11.2x (32 iters); "
                     "KDD2010 total 1.9x / kernel 4.1x (100 iters) — "
                     "JNI + conversion overheads eat the kernel speedup")
    return res
