"""Benchmark harness reproducing every table and figure of the paper."""

from . import engine_bench, figures, tables  # noqa: F401 - registry
from .harness import REGISTRY, ExperimentResult, register, resolve_scale, \
    run_all

__all__ = ["REGISTRY", "ExperimentResult", "register", "resolve_scale",
           "run_all"]
