"""Benchmark harness reproducing every table and figure of the paper."""

from . import analyze_bench, cluster_bench, codegen_bench, engine_bench, \
    figures, fusion_bench, host_analyze_bench, serve_bench, slo_bench, \
    tables, trace_bench  # noqa: F401
from .harness import REGISTRY, ExperimentResult, register, resolve_scale, \
    run_all

__all__ = ["REGISTRY", "ExperimentResult", "register", "resolve_scale",
           "run_all"]
