"""Builder for the host-concurrency correctness-gate experiment.

Mirrors ``analyze_bench``: re-runs `repro check --scope host` over the
serve/cluster/engine stack, replays the seeded ``tests/badthreads``
corpus statically *and* under the dynamic lock witness, and live-drives
a witnessed :class:`PatternServer` to cross-validate the static
lock-order edges — so EXPERIMENTS.md records the host gate's verdict
next to the performance experiments.

The corpus and witness rows need the repository checkout; when the
package runs installed without it, they degrade to a note rather than
failing the whole report.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

from ..analyze.host import (HOST_MODULE_FILES, analyze_host_file,
                            host_classes)
from ..analyze.host.hostcheckers import lock_order_edges
from ..analyze.host.witness import (LockWitness, cross_validate,
                                    instrument_locks, qualify_edges,
                                    watch_attrs)
from .harness import ExperimentResult, register


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"badthreads_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _shipped_rows() -> list[tuple[str, int, str]]:
    """Active/suppressed split per host layer (serve, cluster, core)."""
    by_layer: dict[str, tuple[int, int]] = {}
    for path in HOST_MODULE_FILES:
        layer = Path(path).parent.name
        active, suppressed = analyze_host_file(path)
        a, s = by_layer.get(layer, (0, 0))
        by_layer[layer] = (a + len(active), s + len(suppressed))
    rows = []
    for layer in sorted(by_layer):
        active, suppressed = by_layer[layer]
        verdict = ("clean" if not active else "FINDINGS — gate broken")
        rows.append((f"shipped {layer}/ modules", active,
                     f"{verdict}; {suppressed} deliberate patterns "
                     f"suppressed in place"))
    return rows


def _corpus_row(corpus: Path) -> tuple[str, int, str]:
    """Static + dynamic verdict over the seeded concurrency mutants."""
    fixtures = sorted(corpus.glob("*.py"))
    findings = 0
    agree = 0
    for path in fixtures:
        mod = _load_module(path)
        active, _ = analyze_host_file(str(path))
        findings += len(active)
        witness = LockWitness(**getattr(mod, "WITNESS", {}))
        obj = mod.build()
        instrument_locks(witness, obj)
        if getattr(mod, "WATCH_ATTRS", None):
            watch_attrs(witness, obj, mod.WATCH_ATTRS)
        mod.drive(obj)
        static = {f.kind for f in active}
        if static == witness.dynamic_kinds() == {mod.EXPECTED_KIND}:
            agree += 1
    return (f"badthreads corpus ({len(fixtures)} mutants)", findings,
            f"static == witness == expected on {agree}/{len(fixtures)}")


def _witness_row() -> tuple[str, int, str]:
    """Live witnessed run of the serving stack vs the static edges."""
    import numpy as np

    from ..serve import PatternServer, ServeRequest
    from ..serve.server import __file__ as server_file
    from ..sparse import random_csr

    witness = LockWitness()
    server = PatternServer(start=False)
    instrument_locks(witness, server, server._queue, server.engine)
    server.start()
    try:
        gen = np.random.default_rng(0)
        for i in range(8):
            X = random_csr(60, 12, 0.2, rng=i % 3)
            server.evaluate(ServeRequest(X, gen.standard_normal(X.n),
                                         z=gen.standard_normal(X.n),
                                         beta=0.3))
    finally:
        server.stop()

    (cls,) = [c for c in host_classes(server_file)
              if c.name == "PatternServer"]
    static = qualify_edges(cls.name, lock_order_edges(cls))
    result = cross_validate(static, witness)
    verdict = ("all static edges confirmed, none inverted"
               if result.ok and not result.unobserved else
               f"INVERSIONS {sorted(result.inversions)}" if not result.ok
               else f"unobserved {sorted(result.unobserved)}")
    return (f"witnessed PatternServer run ({len(static)} static edges)",
            len(result.inversions), verdict)


@register("host-analyze")
def host_analyze_gate(scale: float | None = None) -> ExperimentResult:
    """Host lock-discipline checker + lock-order witness as a gate."""
    del scale                              # the gate has no size knob
    res = ExperimentResult(
        "host-analyze",
        "Host concurrency checker vs dynamic lock witness on the "
        "serve/cluster/engine stack (correctness gate)",
        ("scope", "active_findings", "verdict"),
    )
    for row in _shipped_rows():
        res.add(*row)

    corpus = Path("tests") / "badthreads"
    if corpus.is_dir():
        res.add(*_corpus_row(corpus))
        res.add(*_witness_row())
    else:
        res.notes.append(
            "seeded-mutant corpus and witness rows skipped: "
            "tests/badthreads not present (installed package without the "
            "repository checkout)")
    res.notes.append(
        "cross-validation contract (tests/test_badthreads.py, "
        "tests/test_host_witness.py): for each seeded mutant the static "
        "finding kinds equal what the instrumented run observes, and "
        "every static lock-order edge on the shipped server is witnessed "
        "in the claimed direction — an inversion would refute the static "
        "order. CI gates `repro check --scope host` at exit 1 with the "
        "corpus as a negative control.")
    return res
