"""Benchmark harness: experiment registry, series assembly, report output.

Every table and figure of the paper's evaluation section has a builder in
:mod:`repro.bench.figures` / :mod:`repro.bench.tables` returning an
:class:`ExperimentResult` — the named series/rows the paper plots, in model
milliseconds and speedup ratios.  ``benchmarks/bench_*.py`` wraps each
builder for pytest-benchmark and prints the series; ``EXPERIMENTS.md``
records paper-vs-measured values.

Scale control: builders take a ``scale`` in (0, 1] applied to the paper's
row counts; the ``REPRO_SCALE`` environment variable (default 0.2 for
sparse sweeps) overrides it globally, and ``REPRO_FULL_SCALE=1`` forces 1.0.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable


def resolve_scale(default: float) -> float:
    """Scale factor from the environment, else ``default``."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return 1.0
    env = os.environ.get("REPRO_SCALE")
    if env:
        s = float(env)
        if not 0 < s <= 1:
            raise ValueError("REPRO_SCALE must be in (0, 1]")
        return s
    return default


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure, ready to print or assert on."""

    experiment: str                       # e.g. "figure2"
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}")
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows]

    def to_markdown(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.3g}"
            return str(v)

        lines = [f"### {self.experiment}: {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for r in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in r) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines) + "\n"

    def print(self) -> None:  # noqa: A003 - bench console output
        print()
        print(self.to_markdown())


#: experiment name -> builder; populated by figures.py / tables.py imports
REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str):
    """Decorator adding a builder to the registry."""
    def deco(fn):
        REGISTRY[name] = fn
        return fn
    return deco


def run_all(**kwargs) -> dict[str, ExperimentResult]:
    """Run every registered experiment (used by the report generator)."""
    from . import (cluster_bench, engine_bench, figures,  # noqa: F401
                   serve_bench, slo_bench, tables, trace_bench)
    return {name: fn(**kwargs) for name, fn in sorted(REGISTRY.items())}
