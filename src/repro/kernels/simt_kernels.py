"""Per-thread SIMT renditions of the paper's Algorithms 1-3.

These generator kernels run under :class:`repro.gpu.simt.SimtEngine` and
follow the published pseudocode line by line: CSR-vector row assignment with
lane/vector ids, shared-memory mirrors of ``w`` with intra-block atomic
aggregation, shuffle-based intra-vector reductions, coarsened grid-stride row
loops, and the final inter-block atomic flush.

They are the semantic ground truth for the fast vectorized kernels in
:mod:`repro.kernels.sparse_fused` / :mod:`repro.kernels.dense_fused`:
differential tests assert both produce the same numbers on the same inputs.
"""

from __future__ import annotations

import numpy as np

from ..gpu.simt import BARRIER, ThreadCtx, warp_allreduce_sum


def alg1_xt_spmv(ctx: ThreadCtx, values, col_idx, row_off, p, w,
                 m: int, n: int, VS: int, C: int):
    """Algorithm 1: ``w += X^T x p`` (shared-memory mirror variant)."""
    tid = ctx.tid
    lid, vid = tid % VS, tid // VS
    NV = ctx.block_size // VS
    row = ctx.block_id * NV + vid
    for i in range(tid, n, ctx.block_size):        # SD[1:n] <- 0
        ctx.shared[i] = 0.0
    yield BARRIER
    for _ in range(C):
        if row < m:
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):
                ctx.atomic_add_shared(int(col_idx[i]), values[i] * p[row])
        row += ctx.grid_threads // VS
    yield BARRIER                                   # line 14
    for i in range(tid, n, ctx.block_size):         # lines 15-16
        ctx.atomic_add(w, i, ctx.shared[i])


def alg2_fused_sparse(ctx: ThreadCtx, values, col_idx, row_off, y, v, z, w,
                      m: int, n: int, VS: int, C: int,
                      alpha: float, beta: float):
    """Algorithm 2: the full fused pattern, shared-memory variant."""
    tid = ctx.tid
    lid, vid = tid % VS, tid // VS
    NV = ctx.block_size // VS
    row = ctx.block_id * NV + vid
    for i in range(tid, n, ctx.block_size):
        ctx.shared[i] = 0.0
    if beta != 0.0:                                 # lines 3-4
        for i in range(ctx.global_tid, n, ctx.grid_threads):
            ctx.atomic_add(w, i, beta * z[i])
    yield BARRIER
    for _ in range(C):                              # lines 5-15
        active = row < m
        s = 0.0
        if active:
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):   # lines 10-11
                s += values[i] * y[col_idx[i]]
        # line 12: intra-vector reduce; all lanes participate to keep the
        # warp shuffle convergent, inactive vectors contribute zero
        s = yield from warp_allreduce_sum(ctx, s, VS)
        if active:
            if v is not None:
                s *= v[row]
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):   # lines 13-14
                ctx.atomic_add_shared(int(col_idx[i]), values[i] * s)
        row += ctx.grid_threads // VS
    yield BARRIER                                   # line 16
    for i in range(tid, n, ctx.block_size):         # lines 17-18
        ctx.atomic_add(w, i, alpha * ctx.shared[i])


def alg2_fused_sparse_large_n(ctx: ThreadCtx, values, col_idx, row_off,
                              y, v, z, w, m: int, n: int, VS: int, C: int,
                              alpha: float, beta: float):
    """Algorithm 2, large-n variant: aggregation directly in global memory.

    The shared mirror and the final inter-block flush disappear; lines 13-14
    target ``w`` with global atomics and ``alpha`` is applied inline.
    """
    tid = ctx.tid
    lid, vid = tid % VS, tid // VS
    NV = ctx.block_size // VS
    row = ctx.block_id * NV + vid
    if beta != 0.0:
        for i in range(ctx.global_tid, n, ctx.grid_threads):
            ctx.atomic_add(w, i, beta * z[i])
    yield BARRIER
    for _ in range(C):
        active = row < m
        s = 0.0
        if active:
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):
                s += values[i] * y[col_idx[i]]
        s = yield from warp_allreduce_sum(ctx, s, VS)
        if active:
            if v is not None:
                s *= v[row]
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):
                ctx.atomic_add(w, int(col_idx[i]), alpha * values[i] * s)
        row += ctx.grid_threads // VS


def alg3_fused_dense(ctx: ThreadCtx, X, y, v, z, w, m: int, n: int,
                     VS: int, C: int, TL: int, alpha: float, beta: float):
    """Algorithm 3: the fused dense kernel (register-tiled).

    ``X`` is the VS*TL-padded dense matrix; ``n`` its padded width.  Supports
    VS > 32 through the inter-warp shared-memory reduction (two barriers per
    coarsening step, as in lines 18-22).
    """
    tid = ctx.tid
    lid, vid = tid % VS, tid // VS
    NV = ctx.block_size // VS
    warps_per_vec = max(1, VS // 32)
    row = ctx.block_id * NV + vid
    l_y = [y[lid + k * VS] for k in range(TL)]       # lines 4-5
    l_w = [0.0] * TL                                 # line 3
    if beta != 0.0:                                  # lines 6-7
        for i in range(ctx.global_tid, n, ctx.grid_threads):
            ctx.atomic_add(w, i, beta * z[i])
    for _ in range(C):                               # lines 8-25
        active = row < m
        l_X = [0.0] * TL
        s = 0.0
        if active:
            for k in range(TL):                      # lines 11-13
                l_X[k] = X[row, lid + k * VS]
                s += l_X[k] * l_y[k]
        if VS <= 32:                                 # lines 14-15
            s = yield from warp_allreduce_sum(ctx, s, VS)
        else:                                        # lines 16-22
            s = yield from warp_allreduce_sum(ctx, s, 32)
            if lid % 32 == 0:
                ctx.shared[vid * warps_per_vec + lid // 32] = s
            yield BARRIER
            s = 0.0
            for wv in range(warps_per_vec):
                s += ctx.shared[vid * warps_per_vec + wv]
            yield BARRIER
        if active:
            if v is not None:
                s *= v[row]                          # line 20 (cell-wise)
            for k in range(TL):                      # lines 23-24
                l_w[k] += l_X[k] * s
        row += ctx.grid_threads // VS
    for k in range(TL):                              # lines 26-27
        ctx.atomic_add(w, lid + k * VS, alpha * l_w[k])


def csr_vector_spmv(ctx: ThreadCtx, values, col_idx, row_off, y, out,
                    m: int, VS: int, C: int):
    """CSR-vector SpMV (the cuSPARSE-style baseline), per-thread.

    The building block the fused kernels extend: a vector of VS lanes
    reduces each row's dot product via shuffle, lane 0 writes the result —
    no shared mirror, no second pass.  Used to differential-test the
    baseline's functional semantics.
    """
    tid = ctx.tid
    lid, vid = tid % VS, tid // VS
    NV = ctx.block_size // VS
    row = ctx.block_id * NV + vid
    for _ in range(C):
        active = row < m
        s = 0.0
        if active:
            start, end = row_off[row], row_off[row + 1]
            for i in range(start + lid, end, VS):
                s += values[i] * y[col_idx[i]]
        s = yield from warp_allreduce_sum(ctx, s, VS)
        if active and lid == 0:
            out[row] = s
        row += ctx.grid_threads // VS


def run_alg2(engine, X_csr, y, v=None, z=None, alpha=1.0, beta=0.0,
             VS=4, block_size=32, grid_size=2, C=None, variant="shared"):
    """Convenience launcher for tests: run Algorithm 2 end to end."""
    m, n = X_csr.shape
    if C is None:
        vectors = grid_size * (block_size // VS)
        C = max(1, -(-m // vectors))
    w = np.zeros(n, dtype=np.float64)
    kern = alg2_fused_sparse if variant == "shared" \
        else alg2_fused_sparse_large_n
    shared = n if variant == "shared" else 1
    engine.launch(
        kern, grid_size, block_size,
        (X_csr.values, X_csr.col_idx, X_csr.row_off, y, v, z, w,
         m, n, VS, C, alpha, beta),
        shared_doubles=shared,
    )
    return w


def run_alg3(engine, X, y, v=None, z=None, alpha=1.0, beta=0.0,
             VS=8, TL=None, block_size=32, grid_size=2, C=None):
    """Convenience launcher for tests: run Algorithm 3 end to end."""
    X = np.asarray(X, dtype=np.float64)
    m, n = X.shape
    if n % VS:
        raise ValueError("X must be padded so VS divides n")
    if TL is None:
        TL = n // VS
    if VS * TL != n:
        raise ValueError("VS * TL must equal the padded width")
    w = np.zeros(n, dtype=np.float64)
    if C is None:
        vectors = grid_size * (block_size // VS)
        C = max(1, -(-m // vectors))
    shared = max(1, (block_size // VS) * max(1, VS // 32))
    engine.launch(
        alg3_fused_dense, grid_size, block_size,
        (X, y, v, z, w, m, n, VS, C, TL, alpha, beta),
        shared_doubles=shared,
    )
    return w
