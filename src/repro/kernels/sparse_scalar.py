"""CSR-scalar SpMV — the one-thread-per-row kernel of Bell & Garland.

The paper's CSR-vector partitioning (and its Eq. 4, which degenerates to
``VS = 1`` for very short rows) exists because of this kernel's trade-off:
one thread walks each row, so *within* a warp the 32 threads read 32
different row segments simultaneously — scattered accesses that defeat
coalescing as soon as rows have more than a couple of non-zeros, but zero
cooperation overhead when rows are tiny.  The classic crossover (scalar wins
below ~4 nnz/row, vector wins above) is reproduced by the
``bench_scalar_vector_crossover`` ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..gpu.counters import PerfCounters
from ..gpu.launch import LaunchConfig
from ..gpu.memory import coalesced_transactions
from ..gpu.balance import warp_idle_fraction
from ..sparse.csr import CsrMatrix
from ..sparse.ops import SpmvPlan
from .base import (DEFAULT_CONTEXT, SPARSE_STREAM_DERATE, GpuContext,
                   KernelResult, finish)
from .sparse_baseline import vector_gather_transactions

if TYPE_CHECKING:
    from .codegen import CompiledSparseKernels

_D = 8
_I = 4


def _scalar_launch(m: int, ctx: GpuContext) -> LaunchConfig:
    bs = 256
    grid = min(max(1, -(-m // bs)),
               ctx.device.num_sms * ctx.device.max_blocks_per_sm)
    return LaunchConfig(grid, bs, registers_per_thread=20, vector_size=1)


def scalar_row_transactions(row_nnz: np.ndarray, itemsize: int,
                            warp_size: int = 32,
                            transaction_bytes: int = 128) -> float:
    """Transactions for a warp of threads each walking its own row.

    At step ``k`` of the walk, the warp's lanes read element ``k`` of 32
    *different* rows — addresses ``row_off[r] + k`` scattered across the
    array, so each active lane's access is (approximately) its own
    transaction until rows shorten below one element per line.  Short rows
    bound the damage: a row of 1-2 non-zeros costs about what a coalesced
    scheme would pay anyway.
    """
    lengths = np.asarray(row_nnz, dtype=np.float64)
    if lengths.size == 0:
        return 0.0
    per_line = transaction_bytes / itemsize
    # step 0 reads the *first* element of 32 adjacent rows — those sit close
    # together when rows are short, so they coalesce like a stream; every
    # subsequent step reads one scattered element per lane (own transaction)
    first_elements = float(np.count_nonzero(lengths))
    coalesced_first = first_elements / per_line
    scattered_rest = float(np.maximum(lengths - 1, 0).sum())
    return coalesced_first + scattered_rest


@dataclass
class ScalarProfile:
    """Structure-invariant counter template for the CSR-scalar kernel."""

    launch: LaunchConfig
    occupancy_fraction: float
    spmv_plan: SpmvPlan
    m: int
    nnz: int
    load_transactions: float   # values + col idx + row offsets + y gathers
    m_stream: float            # coalesced m doubles (output)

    @property
    def nbytes(self) -> int:
        return int(self.spmv_plan.nbytes) + 256


def profile_csrmv_scalar(X: CsrMatrix, ctx: GpuContext = DEFAULT_CONTEXT,
                         spmv_plan: SpmvPlan | None = None) -> ScalarProfile:
    """One-time structure inspection for :func:`csrmv_scalar`."""
    launch = _scalar_launch(X.m, ctx)
    row_nnz = X.row_nnz
    loads = (
        scalar_row_transactions(row_nnz, _D)          # values, scattered
        + scalar_row_transactions(row_nnz, _I) * 0.5  # col idx (2 per line)
        + coalesced_transactions((X.m + 1) * _I)      # row offsets
        + vector_gather_transactions(X, ctx)
    )
    return ScalarProfile(
        launch=launch,
        occupancy_fraction=ctx.occupancy_for(launch).fraction(ctx.device),
        spmv_plan=spmv_plan if spmv_plan is not None else SpmvPlan(X),
        m=X.m, nnz=X.nnz,
        load_transactions=loads,
        m_stream=coalesced_transactions(X.m * _D),
    )


def csrmv_scalar(X: CsrMatrix, y: np.ndarray,
                 ctx: GpuContext = DEFAULT_CONTEXT,
                 profile: ScalarProfile | None = None,
                 compiled: "CompiledSparseKernels | None" = None
                 ) -> KernelResult:
    """CSR-scalar ``X @ y``: one thread per row, uncoalesced row walks.

    ``compiled`` dispatches through the generated AOT kernel
    (bit-identical numerics; same event accounting).
    """
    if profile is None:
        profile = profile_csrmv_scalar(X, ctx)
    pr = profile
    out = compiled.spmv(y) if compiled is not None else pr.spmv_plan.spmv(y)
    c = PerfCounters()
    c.global_load_transactions = pr.load_transactions
    c.global_store_transactions = pr.m_stream
    c.flops = 2.0 * pr.nnz
    c.kernel_launches = 1
    c.barriers = 1
    res = finish(ctx, out, c, pr.launch, "csr-scalar.spmv",
                 occupancy_fraction=pr.occupancy_fraction,
                 bandwidth_derate=SPARSE_STREAM_DERATE)
    return res


def imbalance_report(X: CsrMatrix, vector_size: int,
                     ctx: GpuContext = DEFAULT_CONTEXT) -> dict[str, float]:
    """Load-balance diagnostics for a row partitioning (analysis helper)."""
    return {
        "warp_idle_fraction": warp_idle_fraction(
            X.row_nnz, vector_size, ctx.device.warp_size),
        "mean_row_nnz": X.mean_row_nnz,
        "max_row_nnz": float(X.row_nnz.max(initial=0)),
    }
