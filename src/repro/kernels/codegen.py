"""Code generation for the dense fused kernel (the paper's Listing 2).

CUDA only keeps arrays in registers when every index is a compile-time
constant, so the paper generates a specialized kernel per (n, VS, TL) with
the ``l_y``/``l_X``/``l_w`` loops fully unrolled into *named* registers
(``l_y1``, ``l_y2``, ...).  We reproduce that mechanism faithfully in the
simulation's host language: :func:`generate_source` emits Python source whose
per-thread-load block is unrolled into explicitly named locals, and
:func:`get_kernel` compiles and caches it per specialization key — the same
"generate at invocation time, negligible cost vs. compute" workflow the paper
describes.

The generated function computes ``alpha * X^T (v ⊙ (X y))`` for a dense,
VS-padded ``X`` with all rows processed batch-wise (the batch axis plays the
role of the grid of vectors; the unrolled column slices play the role of each
thread's registers).
"""

from __future__ import annotations

import math

_KERNEL_CACHE: dict[tuple[int, int, int], object] = {}


def specialization_key(n: int, vs: int, tl: int) -> tuple[int, int, int]:
    """Cache key for one generated kernel (mirrors ``mtmvm_<n>_<VS>_<TL>``)."""
    return (int(n), int(vs), int(tl))


def generate_source(n: int, vs: int, tl: int) -> str:
    """Emit unrolled Python source for the ``mtmvm_{n}_{vs}_{tl}`` kernel.

    ``n`` must equal ``vs * tl`` (the padded column count); each of the ``tl``
    unroll steps owns one ``vs``-wide column slice, held in named locals.
    """
    if n != vs * tl:
        raise ValueError(f"padded n={n} must equal VS*TL={vs}*{tl}")
    if tl < 1 or vs < 1:
        raise ValueError("VS and TL must be positive")

    name = f"mtmvm_{n}_{vs}_{tl}"
    lines = [
        f"def {name}(X, y, v, alpha, out):",
        f'    """Generated fused kernel: n={n}, VS={vs}, TL={tl} '
        '(unrolled)."""',
    ]
    # --- load y into registers (Algorithm 3 lines 4-5, unrolled) ------------
    for i in range(1, tl + 1):
        lo, hi = (i - 1) * vs, i * vs
        lines.append(f"    l_y{i} = y[{lo}:{hi}]")
    # --- load X slices into registers (lines 11-12, unrolled) ---------------
    for i in range(1, tl + 1):
        lo, hi = (i - 1) * vs, i * vs
        lines.append(f"    l_X{i} = X[:, {lo}:{hi}]")
    # --- dot product with register accumulation (line 13, unrolled) ---------
    lines.append("    s = l_X1 @ l_y1")
    for i in range(2, tl + 1):
        lines.append(f"    s += l_X{i} @ l_y{i}")
    # --- the v ⊙ (.) step (line 20) ------------------------------------------
    lines.append("    if v is not None:")
    lines.append("        s = s * v")
    # --- scale rows and accumulate partial w (lines 23-24 + 26-27, unrolled) -
    for i in range(1, tl + 1):
        lines.append(f"    l_w{i} = l_X{i}.T @ s")
    for i in range(1, tl + 1):
        lo, hi = (i - 1) * vs, i * vs
        lines.append(f"    out[{lo}:{hi}] += alpha * l_w{i}")
    lines.append("    return out")
    return "\n".join(lines) + "\n"


def ensure_kernel(n: int, vs: int, tl: int) -> tuple[object, bool]:
    """Fetch (or compile) the specialized kernel; reports whether this call
    actually compiled it — session layers use the flag for accounting."""
    key = specialization_key(n, vs, tl)
    fn = _KERNEL_CACHE.get(key)
    if fn is not None:
        return fn, False
    src = generate_source(n, vs, tl)
    namespace: dict[str, object] = {}
    code = compile(src, filename=f"<generated mtmvm_{n}_{vs}_{tl}>",
                   mode="exec")
    exec(code, namespace)  # noqa: S102 - generated from trusted template
    fn = namespace[f"mtmvm_{n}_{vs}_{tl}"]
    _KERNEL_CACHE[key] = fn
    return fn, True


def get_kernel(n: int, vs: int, tl: int):
    """Compile (or fetch from cache) the specialized kernel function."""
    return ensure_kernel(n, vs, tl)[0]


def cache_size() -> int:
    return len(_KERNEL_CACHE)


def clear_cache() -> None:
    _KERNEL_CACHE.clear()


def pad_for_vector_size(n: int, vs: int) -> int:
    """Columns after zero-padding so VS divides n (at most VS-1 extra)."""
    return math.ceil(n / vs) * vs


# --------------------------------------------------------------------------
# Cell-wise fused kernels (optimizer-emitted regions)
# --------------------------------------------------------------------------

_CELLWISE_CACHE: dict[tuple, object] = {}


def generate_cellwise_source(n: int, vs: int, tl: int, program) -> str:
    """Emit unrolled source for a fused cell-wise kernel.

    ``program`` is a :class:`repro.kernels.cellwise.CellwiseProgram`.  The
    emitted ``cellwise_{n}_{vs}_{tl}(a0, ..., ak, out)`` follows the same
    Listing-2 register discipline as :func:`generate_source`: each of the
    ``tl`` unroll steps loads every operand's ``vs``-wide slice into named
    locals with compile-time-constant bounds, evaluates the region's whole
    expression in registers, and stores the result slice exactly once —
    the invariants :func:`repro.analyze.check_cellwise_source` enforces.
    """
    if n != vs * tl:
        raise ValueError(f"padded n={n} must equal VS*TL={vs}*{tl}")
    if tl < 1 or vs < 1:
        raise ValueError("VS and TL must be positive")

    name = f"cellwise_{n}_{vs}_{tl}"
    args = [f"a{k}" for k in range(program.n_inputs)]
    lines = [
        f"def {name}({', '.join(args)}, out):",
        f'    """Generated fused cell-wise kernel: '
        f'{program.describe()} (n={n}, VS={vs}, TL={tl})."""',
    ]
    for i in range(1, tl + 1):
        lo, hi = (i - 1) * vs, i * vs
        for k in range(program.n_inputs):
            lines.append(f"    l_a{k}s{i} = a{k}[{lo}:{hi}]")
        expr = program.render(
            [f"l_a{k}s{i}" for k in range(program.n_inputs)])
        lines.append(f"    out[{lo}:{hi}] = {expr}")
    lines.append("    return out")
    return "\n".join(lines) + "\n"


def ensure_cellwise_kernel(n: int, vs: int, tl: int,
                           program) -> tuple[object, bool]:
    """Fetch (or compile) a cell-wise specialization; flags compilation."""
    key = (program.expr, program.n_inputs, int(n), int(vs), int(tl))
    fn = _CELLWISE_CACHE.get(key)
    if fn is not None:
        return fn, False
    src = generate_cellwise_source(n, vs, tl, program)
    namespace: dict[str, object] = {}
    code = compile(src, filename=f"<generated cellwise_{n}_{vs}_{tl}>",
                   mode="exec")
    exec(code, namespace)  # noqa: S102 - generated from trusted template
    fn = namespace[f"cellwise_{n}_{vs}_{tl}"]
    _CELLWISE_CACHE[key] = fn
    return fn, True


def cellwise_cache_size() -> int:
    return len(_CELLWISE_CACHE)


def clear_cellwise_cache() -> None:
    _CELLWISE_CACHE.clear()
