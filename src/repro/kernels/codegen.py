"""Code generation for the dense fused kernel (the paper's Listing 2).

CUDA only keeps arrays in registers when every index is a compile-time
constant, so the paper generates a specialized kernel per (n, VS, TL) with
the ``l_y``/``l_X``/``l_w`` loops fully unrolled into *named* registers
(``l_y1``, ``l_y2``, ...).  We reproduce that mechanism faithfully in the
simulation's host language: :func:`generate_source` emits Python source whose
per-thread-load block is unrolled into explicitly named locals, and
:func:`get_kernel` compiles and caches it per specialization key — the same
"generate at invocation time, negligible cost vs. compute" workflow the paper
describes.

The generated function computes ``alpha * X^T (v ⊙ (X y))`` for a dense,
VS-padded ``X`` with all rows processed batch-wise (the batch axis plays the
role of the grid of vectors; the unrolled column slices play the role of each
thread's registers).
"""

from __future__ import annotations

import math
import threading
from hashlib import blake2b
from typing import Callable

import numpy as np

from ..sparse.csr import CsrMatrix
from ..sparse.ops import SpmvPlan, check_vector

_KERNEL_CACHE: dict[tuple[int, int, int], object] = {}


def specialization_key(n: int, vs: int, tl: int) -> tuple[int, int, int]:
    """Cache key for one generated kernel (mirrors ``mtmvm_<n>_<VS>_<TL>``)."""
    return (int(n), int(vs), int(tl))


def generate_source(n: int, vs: int, tl: int) -> str:
    """Emit unrolled Python source for the ``mtmvm_{n}_{vs}_{tl}`` kernel.

    ``n`` must equal ``vs * tl`` (the padded column count); each of the ``tl``
    unroll steps owns one ``vs``-wide column slice, held in named locals.
    """
    if n != vs * tl:
        raise ValueError(f"padded n={n} must equal VS*TL={vs}*{tl}")
    if tl < 1 or vs < 1:
        raise ValueError("VS and TL must be positive")

    name = f"mtmvm_{n}_{vs}_{tl}"
    lines = [
        f"def {name}(X, y, v, alpha, out):",
        f'    """Generated fused kernel: n={n}, VS={vs}, TL={tl} '
        '(unrolled)."""',
    ]
    # --- load y into registers (Algorithm 3 lines 4-5, unrolled) ------------
    for i in range(1, tl + 1):
        lo, hi = (i - 1) * vs, i * vs
        lines.append(f"    l_y{i} = y[{lo}:{hi}]")
    # --- load X slices into registers (lines 11-12, unrolled) ---------------
    for i in range(1, tl + 1):
        lo, hi = (i - 1) * vs, i * vs
        lines.append(f"    l_X{i} = X[:, {lo}:{hi}]")
    # --- dot product with register accumulation (line 13, unrolled) ---------
    lines.append("    s = l_X1 @ l_y1")
    for i in range(2, tl + 1):
        lines.append(f"    s += l_X{i} @ l_y{i}")
    # --- the v ⊙ (.) step (line 20) ------------------------------------------
    lines.append("    if v is not None:")
    lines.append("        s = s * v")
    # --- scale rows and accumulate partial w (lines 23-24 + 26-27, unrolled) -
    for i in range(1, tl + 1):
        lines.append(f"    l_w{i} = l_X{i}.T @ s")
    for i in range(1, tl + 1):
        lo, hi = (i - 1) * vs, i * vs
        lines.append(f"    out[{lo}:{hi}] += alpha * l_w{i}")
    lines.append("    return out")
    return "\n".join(lines) + "\n"


def ensure_kernel(n: int, vs: int, tl: int) -> tuple[object, bool]:
    """Fetch (or compile) the specialized kernel; reports whether this call
    actually compiled it — session layers use the flag for accounting."""
    key = specialization_key(n, vs, tl)
    fn = _KERNEL_CACHE.get(key)
    if fn is not None:
        return fn, False
    src = generate_source(n, vs, tl)
    namespace: dict[str, object] = {}
    code = compile(src, filename=f"<generated mtmvm_{n}_{vs}_{tl}>",
                   mode="exec")
    exec(code, namespace)  # noqa: S102 - generated from trusted template
    fn = namespace[f"mtmvm_{n}_{vs}_{tl}"]
    _KERNEL_CACHE[key] = fn
    return fn, True


def get_kernel(n: int, vs: int, tl: int):
    """Compile (or fetch from cache) the specialized kernel function."""
    return ensure_kernel(n, vs, tl)[0]


def cache_size() -> int:
    return len(_KERNEL_CACHE)


def clear_cache() -> None:
    _KERNEL_CACHE.clear()


def pad_for_vector_size(n: int, vs: int) -> int:
    """Columns after zero-padding so VS divides n (at most VS-1 extra)."""
    return math.ceil(n / vs) * vs


# --------------------------------------------------------------------------
# Cell-wise fused kernels (optimizer-emitted regions)
# --------------------------------------------------------------------------

_CELLWISE_CACHE: dict[tuple, object] = {}


def generate_cellwise_source(n: int, vs: int, tl: int, program) -> str:
    """Emit unrolled source for a fused cell-wise kernel.

    ``program`` is a :class:`repro.kernels.cellwise.CellwiseProgram`.  The
    emitted ``cellwise_{n}_{vs}_{tl}(a0, ..., ak, out)`` follows the same
    Listing-2 register discipline as :func:`generate_source`: each of the
    ``tl`` unroll steps loads every operand's ``vs``-wide slice into named
    locals with compile-time-constant bounds, evaluates the region's whole
    expression in registers, and stores the result slice exactly once —
    the invariants :func:`repro.analyze.check_cellwise_source` enforces.
    """
    if n != vs * tl:
        raise ValueError(f"padded n={n} must equal VS*TL={vs}*{tl}")
    if tl < 1 or vs < 1:
        raise ValueError("VS and TL must be positive")

    name = f"cellwise_{n}_{vs}_{tl}"
    args = [f"a{k}" for k in range(program.n_inputs)]
    lines = [
        f"def {name}({', '.join(args)}, out):",
        f'    """Generated fused cell-wise kernel: '
        f'{program.describe()} (n={n}, VS={vs}, TL={tl})."""',
    ]
    for i in range(1, tl + 1):
        lo, hi = (i - 1) * vs, i * vs
        for k in range(program.n_inputs):
            lines.append(f"    l_a{k}s{i} = a{k}[{lo}:{hi}]")
        expr = program.render(
            [f"l_a{k}s{i}" for k in range(program.n_inputs)])
        lines.append(f"    out[{lo}:{hi}] = {expr}")
    lines.append("    return out")
    return "\n".join(lines) + "\n"


def ensure_cellwise_kernel(n: int, vs: int, tl: int,
                           program) -> tuple[object, bool]:
    """Fetch (or compile) a cell-wise specialization; flags compilation."""
    key = (program.expr, program.n_inputs, int(n), int(vs), int(tl))
    fn = _CELLWISE_CACHE.get(key)
    if fn is not None:
        return fn, False
    src = generate_cellwise_source(n, vs, tl, program)
    namespace: dict[str, object] = {}
    code = compile(src, filename=f"<generated cellwise_{n}_{vs}_{tl}>",
                   mode="exec")
    exec(code, namespace)  # noqa: S102 - generated from trusted template
    fn = namespace[f"cellwise_{n}_{vs}_{tl}"]
    _CELLWISE_CACHE[key] = fn
    return fn, True


def cellwise_cache_size() -> int:
    return len(_CELLWISE_CACHE)


def clear_cellwise_cache() -> None:
    _CELLWISE_CACHE.clear()


# --------------------------------------------------------------------------
# Sparse fused family (ahead-of-time, structure-specialized)
# --------------------------------------------------------------------------
#
# The warm iterative path executes the same CSR kernels (Algorithm 1/2,
# csrmv, csrmv-scalar) on the same matrix hundreds of times.  Mirroring the
# Listing-2 workflow, each generator below emits *flat* Python source for
# one structure specialization: the segment boundaries of the cached
# :class:`~repro.sparse.ops.SpmvPlan` (``reduceat`` starts, non-empty-row
# mask, row-expansion index) and the matrix's value/index streams are bound
# into the function's namespace as uppercase constants, and every scalar the
# structure fixes — m, n, nnz, the §3.3 ``VS``/``C`` — is baked in as a
# literal.  Degenerate structures (``nnz == 0`` / ``m == 0``) bake their
# early-exit at generation time, so the emitted body is always straight-line
# code with no data-dependent branches.
#
# Each generated function performs *exactly* the NumPy operations of its
# interpreted twin in :class:`~repro.sparse.ops.SpmvPlan` /
# :func:`~repro.kernels.sparse_fused.fused_pattern_sparse`, in the same
# order on the same operands — results are bit-identical by construction
# (asserted over the parity sweep in ``tests/test_codegen_sparse.py``).

#: namespace constants every generated sparse kernel may reference
SPARSE_CONSTANTS = ("VALUES", "COL_IDX", "STARTS", "NONEMPTY", "ROW_EXPAND")

#: call-shape suffix for the fused entry point: (has_v, has_beta) -> name
FUSED_SUFFIX = {(False, False): "", (True, False): "_v",
                (False, True): "_b", (True, True): "_vb"}

_SPARSE_CODE_CACHE: dict[tuple, object] = {}
_SPARSE_CODE_LOCK = threading.Lock()


def sparse_structure_tag(X: CsrMatrix) -> str:
    """8-hex digest of the *structure* (shape + index arrays, not values).

    Two matrices with the same sparsity pattern share one tag — and
    therefore one set of compiled code objects; only the bound constants
    differ.  This is what makes value-only mutation recompile-free.
    """
    h = blake2b(digest_size=4)
    h.update(np.asarray(X.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(X.col_idx))
    h.update(np.ascontiguousarray(X.row_off))
    return h.hexdigest()


def sparse_kernel_name(stage: str, tag: str, vs: int, c: int,
                       suffix: str = "") -> str:
    """``sparse_<stage>_<tag>_<VS>_<C>[_v|_b|_vb]`` naming scheme."""
    return f"sparse_{stage}_{tag}_{vs}_{c}{suffix}"


def generate_sparse_spmv_source(tag: str, vs: int, c: int,
                                m: int, n: int, nnz: int) -> str:
    """Emit flat source for the planned-SpMV stage (``X @ y``)."""
    name = sparse_kernel_name("spmv", tag, vs, c)
    lines = [
        f"def {name}(y, scratch):",
        f'    """Generated SpMV: structure {tag}, m={m}, n={n}, '
        f'nnz={nnz}, VS={vs}, C={c}."""',
    ]
    if nnz == 0 or m == 0:
        lines += [f"    out = np.zeros({m})"]
    else:
        lines += [
            "    np.take(y, COL_IDX, out=scratch)",
            "    np.multiply(VALUES, scratch, out=scratch)",
            f"    out = np.zeros({m})",
            "    out[NONEMPTY] = np.add.reduceat(scratch, STARTS)",
        ]
    lines.append("    return out")
    return "\n".join(lines) + "\n"


def generate_sparse_spmvt_source(tag: str, vs: int, c: int,
                                 m: int, n: int, nnz: int) -> str:
    """Emit flat source for the xt-accumulate stage (``X^T @ p``)."""
    name = sparse_kernel_name("spmvt", tag, vs, c)
    lines = [
        f"def {name}(p, scratch):",
        f'    """Generated transpose SpMV: structure {tag}, m={m}, n={n}, '
        f'nnz={nnz}, VS={vs}, C={c}."""',
    ]
    if nnz == 0:
        lines += [f"    out = np.zeros({n})"]
    else:
        lines += [
            "    np.take(p, ROW_EXPAND, out=scratch)",
            "    np.multiply(VALUES, scratch, out=scratch)",
            f"    out = np.bincount(COL_IDX, weights=scratch, "
            f"minlength={n})",
        ]
    lines.append("    return out")
    return "\n".join(lines) + "\n"


def generate_sparse_fused_source(tag: str, vs: int, c: int,
                                 m: int, n: int, nnz: int,
                                 with_v: bool, with_beta: bool) -> str:
    """Emit flat source for Algorithm 2 at one call shape.

    The four call shapes (``v`` present x ``beta != 0``) are distinct
    specializations — the interpreted kernel's runtime flag checks become
    generation-time decisions, so the emitted body contains the inter-vector
    and axpy stages only when the shape includes them.
    """
    sfx = FUSED_SUFFIX[(with_v, with_beta)]
    name = sparse_kernel_name("fused", tag, vs, c, sfx)
    shape = f"v={'yes' if with_v else 'no'}, beta={'yes' if with_beta else 'no'}"
    lines = [
        f"def {name}(y, v, z, alpha, beta, scratch):",
        f'    """Generated Algorithm 2 ({shape}): structure {tag}, '
        f'm={m}, n={n}, nnz={nnz}, VS={vs}, C={c}."""',
    ]
    degenerate = nnz == 0 or m == 0
    if degenerate:
        lines += [f"    p = np.zeros({m})"]
    else:
        lines += [
            "    np.take(y, COL_IDX, out=scratch)",
            "    np.multiply(VALUES, scratch, out=scratch)",
            f"    p = np.zeros({m})",
            "    p[NONEMPTY] = np.add.reduceat(scratch, STARTS)",
        ]
    if with_v:
        lines.append("    p = p * v")
    if degenerate:
        lines.append(f"    w = alpha * np.zeros({n})")
    else:
        lines += [
            "    np.take(p, ROW_EXPAND, out=scratch)",
            "    np.multiply(VALUES, scratch, out=scratch)",
            f"    w = alpha * np.bincount(COL_IDX, weights=scratch, "
            f"minlength={n})",
        ]
    if with_beta:
        lines.append("    w = w + beta * z")
    lines.append("    return w")
    return "\n".join(lines) + "\n"


def _sparse_code(name: str, source: str,
                 key: tuple) -> tuple[object, bool]:
    """Compile (or fetch) one generated source; flags a fresh compile.

    Code objects are cached per (name, shape) — the name carries the
    structure tag and specialization, so matrices sharing a sparsity
    pattern share compiled code and only rebind constants.
    """
    with _SPARSE_CODE_LOCK:
        code = _SPARSE_CODE_CACHE.get(key)
        if code is not None:
            return code, False
    code = compile(source, filename=f"<generated {name}>", mode="exec")
    with _SPARSE_CODE_LOCK:
        return _SPARSE_CODE_CACHE.setdefault(key, code), True


class CompiledSparseKernels:
    """AOT-compiled sparse kernel family for one matrix's structure+content.

    Built once per (structure fingerprint x specialization) and cached in
    the :class:`~repro.core.engine.PatternEngine` artifact LRU next to the
    kernel profile; the warm path of iterative solvers dispatches through
    these callables from iteration 2 onward.  Holds:

    * the six generated entry points (``spmv``, ``spmvt``, and the four
      fused call shapes), compiled from flat specialization-constant source;
    * the bound constants — views of the matrix arrays and the
      :class:`~repro.sparse.ops.SpmvPlan` inspector products, shared (not
      copied) with their owners;
    * the emitted sources, for the ``repro codegen`` inspection CLI and the
      ``repro check`` linter.

    The bundle is valid for the matrix content it was built from, exactly
    like every other fingerprint-keyed engine artifact.
    """

    def __init__(self, X: CsrMatrix, plan: SpmvPlan | None = None,
                 vs: int = 32, c: int = 1):
        if not isinstance(X, CsrMatrix):
            raise TypeError("CompiledSparseKernels requires a CsrMatrix")
        plan = plan if plan is not None else SpmvPlan(X)
        self.tag = sparse_structure_tag(X)
        self.vs, self.c = int(vs), int(c)
        self.m, self.n, self.nnz = X.m, X.n, X.nnz
        self.plan = plan
        self.sources: dict[str, str] = {}
        self.fresh_compiles = 0
        self._fns: dict[str, Callable] = {}

        dims = (self.m, self.n, self.nnz)
        specs: list[tuple[str, str, str]] = [
            ("spmv", sparse_kernel_name("spmv", self.tag, vs, c),
             generate_sparse_spmv_source(self.tag, vs, c, *dims)),
            ("spmvt", sparse_kernel_name("spmvt", self.tag, vs, c),
             generate_sparse_spmvt_source(self.tag, vs, c, *dims)),
        ]
        for flags, sfx in FUSED_SUFFIX.items():
            specs.append((
                f"fused{sfx}",
                sparse_kernel_name("fused", self.tag, vs, c, sfx),
                generate_sparse_fused_source(self.tag, vs, c, *dims, *flags),
            ))
        namespace: dict[str, object] = {"np": np}
        namespace.update(plan.codegen_constants())
        for stage_key, name, src in specs:
            code, fresh = _sparse_code(name, src, (name, *dims))
            exec(code, namespace)  # noqa: S102 - generated from trusted template
            self._fns[stage_key] = namespace[name]  # type: ignore[assignment]
            self.sources[name] = src
            self.fresh_compiles += int(fresh)

    @property
    def nbytes(self) -> int:
        """LRU footprint: source text + dispatch tables.  The bound array
        constants are shared views of the matrix and its cached SpmvPlan,
        both already charged to their own cache entries."""
        return sum(len(s) for s in self.sources.values()) + 512

    # ------------------------------------------------------------- dispatch --
    def spmv(self, y: np.ndarray) -> np.ndarray:
        """Compiled twin of :meth:`~repro.sparse.ops.SpmvPlan.spmv`."""
        y = check_vector(y, self.n, "y")
        return self._fns["spmv"](y, self.plan.scratch())

    def spmv_t(self, p: np.ndarray) -> np.ndarray:
        """Compiled twin of :meth:`~repro.sparse.ops.SpmvPlan.spmv_t`."""
        p = check_vector(p, self.m, "p")
        return self._fns["spmvt"](p, self.plan.scratch())

    def fused(self, y: np.ndarray, v: np.ndarray | None = None,
              z: np.ndarray | None = None, alpha: float = 1.0,
              beta: float = 0.0) -> np.ndarray:
        """Compiled twin of the interpreted Algorithm-2 dataflow."""
        y = check_vector(y, self.n, "y")
        if v is not None:
            v = check_vector(v, self.m, "v")
        if beta != 0.0:
            if z is None:
                raise ValueError("beta != 0 requires z")
            z = check_vector(z, self.n, "z")
        fn = self._fns["fused" + FUSED_SUFFIX[(v is not None, beta != 0.0)]]
        return fn(y, v, z, alpha, beta, self.plan.scratch())


def sparse_code_cache_size() -> int:
    with _SPARSE_CODE_LOCK:
        return len(_SPARSE_CODE_CACHE)


def clear_sparse_code_cache() -> None:
    with _SPARSE_CODE_LOCK:
        _SPARSE_CODE_CACHE.clear()
