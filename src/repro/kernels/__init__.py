"""Simulated GPU kernels: the paper's fused kernels and their baselines."""

from .base import DEFAULT_CONTEXT, GpuContext, KernelResult, chain, finish
from .blas1 import axpy, dot, ewmul, nrm2, scal, sumsq
from .codegen import (clear_cache, generate_source, get_kernel,
                      pad_for_vector_size, specialization_key)
from .dense_baseline import bidmat_gemv_n, bidmat_gemv_t, gemv_n, gemv_t
from .dense_fused import fused_pattern_dense, fused_xtxy_dense
from .sparse_baseline import (bidmat_spmv, bidmat_spmv_transpose,
                              csr2csc_kernel, csrmv, csrmv_transpose,
                              csrmv_via_explicit_transpose,
                              vector_gather_transactions)
from .sparse_formats import ellmv, hybmv
from .sparse_multi import fused_pattern_multi, max_rhs_for_shared
from .sparse_scalar import csrmv_scalar, imbalance_report
from .sparse_fused import (fused_pattern_sparse, fused_xtxy_sparse,
                           xt_spmv_fused)

__all__ = [
    "DEFAULT_CONTEXT", "GpuContext", "KernelResult", "chain", "finish",
    "axpy", "dot", "ewmul", "nrm2", "scal", "sumsq",
    "clear_cache", "generate_source", "get_kernel", "pad_for_vector_size",
    "specialization_key",
    "bidmat_gemv_n", "bidmat_gemv_t", "gemv_n", "gemv_t",
    "fused_pattern_dense", "fused_xtxy_dense",
    "bidmat_spmv", "bidmat_spmv_transpose", "csr2csc_kernel", "csrmv",
    "csrmv_transpose", "csrmv_via_explicit_transpose",
    "vector_gather_transactions",
    "ellmv", "hybmv",
    "fused_pattern_multi", "max_rhs_for_shared",
    "csrmv_scalar", "imbalance_report",
    "fused_pattern_sparse", "fused_xtxy_sparse", "xt_spmv_fused",
]
