"""Baseline dense kernels: cuBLAS-like and BIDMat-like GEMV operators.

The operator-level route for the dense pattern launches ``dgemv`` twice
(normal then transposed) with the intermediate ``p`` materialized in global
memory.  ``dgemv`` in normal mode is bandwidth-optimal; transpose mode tiles
``X`` through shared memory, where the column-strided accesses cause bank
conflicts (the effect the paper cites when motivating its register-based
scheme) and the row-major-by-column walk loses some coalescing efficiency.

:class:`GemvProfile` precomputes the launch shape and counter scalars shared
by all four operators — thin compared with the sparse profiles (dense
counters are closed-form), but it keeps the warm engine path uniform: every
kernel family resolves its structure-invariant state once per matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import trace
from ..gpu.counters import PerfCounters
from ..gpu.launch import LaunchConfig
from ..gpu.memory import coalesced_transactions, shared_bank_conflict_replays
from .base import DEFAULT_CONTEXT, GpuContext, KernelResult, finish

_D = 8


def _dense_launch(m: int, ctx: GpuContext) -> LaunchConfig:
    bs = 256
    grid = min(max(1, -(-m // bs)),
               ctx.device.num_sms * ctx.device.max_blocks_per_sm)
    return LaunchConfig(grid, bs, registers_per_thread=32)


def _check(X: np.ndarray, vec: np.ndarray, axis: int, name: str) -> None:
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if vec.shape != (X.shape[axis],):
        raise ValueError(f"{name} must have shape ({X.shape[axis]},)")


@dataclass
class GemvProfile:
    """Structure-invariant counter template for the GEMV operator family."""

    launch: LaunchConfig
    occupancy_fraction: float
    m: int
    n: int
    load_mn: float      # coalesced m*n doubles (one full pass over X)
    m_stream: float     # coalesced m doubles
    n_stream: float     # coalesced n doubles
    tile_replays: int   # bank-conflict replays for the transpose tile

    @property
    def nbytes(self) -> int:
        return 256


def profile_gemv(X: np.ndarray,
                 ctx: GpuContext = DEFAULT_CONTEXT) -> GemvProfile:
    """One-time counter-template build for ``gemv_n``/``gemv_t``/BIDMat."""
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    m, n = X.shape
    launch = _dense_launch(m, ctx)
    return GemvProfile(
        launch=launch,
        occupancy_fraction=(ctx.occupancy_for(launch).fraction(ctx.device)),
        m=m, n=n,
        load_mn=coalesced_transactions(m * n * _D),
        m_stream=coalesced_transactions(m * _D),
        n_stream=coalesced_transactions(n * _D),
        tile_replays=shared_bank_conflict_replays(stride_elements=8),
    )


def gemv_n(X: np.ndarray, y: np.ndarray,
           ctx: GpuContext = DEFAULT_CONTEXT,
           profile: GemvProfile | None = None) -> KernelResult:
    """cuBLAS-like ``X @ y`` (row-parallel, fully coalesced)."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    _check(X, y, 1, "y")
    m, n = X.shape
    if profile is None:
        profile = profile_gemv(X, ctx)
    pr = profile
    with trace.span("spmv", "kernel", kernel="cublas.gemv_n") as sp:
        out = X @ y
        sp.count(elements=m * n)
    c = PerfCounters()
    c.global_load_transactions = pr.load_mn + pr.n_stream
    c.global_store_transactions = pr.m_stream
    c.flops = 2.0 * m * n
    c.shared_accesses = m / 4
    c.kernel_launches = 1
    c.barriers = 1
    return finish(ctx, out, c, pr.launch, "cublas.gemv_n",
                  occupancy_fraction=pr.occupancy_fraction)


def gemv_t(X: np.ndarray, p: np.ndarray,
           ctx: GpuContext = DEFAULT_CONTEXT,
           profile: GemvProfile | None = None) -> KernelResult:
    """cuBLAS-like ``X.T @ p`` via shared-memory tiling.

    Charges the transpose tile's bank-conflict replays (column-strided
    double-precision accesses across 32 four-byte banks) and a modest
    coalescing-efficiency loss on the tile loads.
    """
    X = np.asarray(X, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    _check(X, p, 0, "p")
    m, n = X.shape
    if profile is None:
        profile = profile_gemv(X, ctx)
    pr = profile
    with trace.span("xt-accumulate", "kernel", kernel="cublas.gemv_t") as sp:
        out = X.T @ p
        sp.count(elements=m * n)
    c = PerfCounters()
    c.global_load_transactions = 1.15 * pr.load_mn + pr.m_stream
    c.global_store_transactions = pr.n_stream
    c.flops = 2.0 * m * n
    # one shared access per element through the tile; column-strided reads
    # conflict (stride 8 doubles across 32 4-byte banks -> 16-way conflict)
    c.shared_accesses = m * n / 32
    c.shared_bank_conflicts = pr.tile_replays * m * n / 32
    c.kernel_launches = 1
    c.barriers = max(1.0, m * n / 32768)   # per-tile barriers
    return finish(ctx, out, c, pr.launch, "cublas.gemv_t",
                  occupancy_fraction=pr.occupancy_fraction)


def bidmat_gemv_n(X: np.ndarray, y: np.ndarray,
                  ctx: GpuContext = DEFAULT_CONTEXT,
                  profile: GemvProfile | None = None) -> KernelResult:
    """BIDMat's dense MV — comparable to cuBLAS in normal mode."""
    res = gemv_n(X, y, ctx, profile=profile)
    res.counters.global_load_transactions *= 1.05
    res.time_ms = ctx.cost_model.time_ms(res.counters, res.occupancy_fraction,
                                         res.bandwidth_derate)
    res.name = "bidmat.gemv_n"
    return res


def bidmat_gemv_t(X: np.ndarray, p: np.ndarray,
                  ctx: GpuContext = DEFAULT_CONTEXT,
                  profile: GemvProfile | None = None) -> KernelResult:
    """BIDMat's transpose MV: a clean second pass without the cuBLAS tile
    conflicts (BIDMat stores partials per thread and reduces), costing close
    to one extra full read of ``X``."""
    X = np.asarray(X, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    _check(X, p, 0, "p")
    m, n = X.shape
    if profile is None:
        profile = profile_gemv(X, ctx)
    pr = profile
    out = X.T @ p
    c = PerfCounters()
    c.global_load_transactions = pr.load_mn + pr.m_stream
    c.global_store_transactions = pr.n_stream * 4
    c.flops = 2.0 * m * n
    c.shared_accesses = m * n / 32
    c.kernel_launches = 1
    c.barriers = 1
    return finish(ctx, out, c, pr.launch, "bidmat.gemv_t",
                  occupancy_fraction=pr.occupancy_fraction)
