"""Multi-vector fused pattern: one pass of X serves k right-hand sides.

A natural extension of Algorithm 2 the paper's structure invites: when the
same matrix drives k independent patterns (multinomial logistic regression
trains one binomial problem per class; block power iteration tracks several
eigenvectors), the fused kernel can hold k running dot products per row and
k shared-memory mirrors — loading each CSR row *once for all k systems*
instead of once per system.

Events: the X pass is shared (the dominant traffic); the y gathers, v loads,
per-nnz shared atomics and the final flush scale with k.  The win therefore
approaches k x on load-bound inputs and saturates when the per-k terms take
over — the ``bench_multi_rhs`` ablation shows the curve.  Shared-memory
capacity bounds k: the mirrors need ``k * n`` doubles per block.

The structure-invariant aggregates (row-pass transactions, gathers, the
second-pass miss weight, the global contention chain) come from the same
:class:`~repro.kernels.sparse_fused.SparseFusedProfile` as Algorithm 2 —
only the cheap per-k scalar scaling happens per call.
"""

from __future__ import annotations

import numpy as np

from ..gpu.atomics import shared_atomic_batch
from ..gpu.counters import PerfCounters
from ..gpu.memory import coalesced_transactions
from ..sparse.csr import CsrMatrix
from ..tuning.sparse_params import SparseParams
from .base import (DEFAULT_CONTEXT, SPARSE_STREAM_DERATE, GpuContext,
                   KernelResult, finish)
from .sparse_fused import SparseFusedProfile, profile_sparse_fused

_D = 8


def max_rhs_for_shared(n: int, device, block_size: int = 640,
                       vector_size: int = 8) -> int:
    """Largest k whose mirrors fit the per-block shared memory."""
    slots = device.shared_memory_per_block // 8 - block_size // vector_size
    return max(1, slots // max(1, n))


def fused_pattern_multi(X: CsrMatrix, Y: np.ndarray,
                        V: np.ndarray | None = None,
                        Z: np.ndarray | None = None,
                        alpha: float = 1.0, beta: float = 0.0,
                        ctx: GpuContext = DEFAULT_CONTEXT,
                        params: SparseParams | None = None,
                        profile: SparseFusedProfile | None = None
                        ) -> KernelResult:
    """``W[:, j] = alpha * X^T (V[:, j] ⊙ (X Y[:, j])) + beta * Z[:, j]``.

    ``Y`` is ``(n, k)``; ``V`` (optional) is ``(m, k)``; ``Z`` (required iff
    ``beta != 0``) is ``(n, k)``.  Falls back to the large-n accounting rules
    of Algorithm 2 when the k mirrors exceed shared memory.
    """
    Y = np.asarray(Y, dtype=np.float64)
    if Y.ndim != 2 or Y.shape[0] != X.n:
        raise ValueError(f"Y must have shape ({X.n}, k)")
    k = Y.shape[1]
    if k < 1:
        raise ValueError("need at least one right-hand side")
    if V is not None:
        V = np.asarray(V, dtype=np.float64)
        if V.shape != (X.m, k):
            raise ValueError(f"V must have shape ({X.m}, {k})")
    if beta != 0.0:
        if Z is None:
            raise ValueError("beta != 0 requires Z")
        Z = np.asarray(Z, dtype=np.float64)
        if Z.shape != (X.n, k):
            raise ValueError(f"Z must have shape ({X.n}, {k})")

    if profile is None:
        profile = profile_sparse_fused(X, ctx, params)
    pr = profile
    params = pr.params

    # ---- functional result --------------------------------------------------
    W = np.empty((X.n, k), dtype=np.float64)
    for j in range(k):
        p = pr.spmv_plan.spmv(Y[:, j])
        if V is not None:
            p = p * V[:, j]
        W[:, j] = alpha * pr.spmv_plan.spmv_t(p)
        if beta != 0.0:
            W[:, j] += beta * Z[:, j]

    # ---- event accounting: X once, per-k terms scaled ------------------------
    c = PerfCounters()
    c.global_load_transactions = (
        pr.first_pass * (1.0 + pr.miss_weight)   # X: one pass + cache misses
        + pr.gather * k                          # y_j gathers
    )
    if V is not None:
        c.global_load_transactions += k * coalesced_transactions(X.m * _D)
    if beta != 0.0:
        c.global_load_transactions += k * coalesced_transactions(X.n * _D)
        c.atomic_global_ops += k * X.n
        c.atomic_cas_chain += 1.0
    c.flops = k * (4.0 * X.nnz + 2.0 * X.m)

    mirrors_fit = (params.variant == "shared"
                   and k <= max_rhs_for_shared(X.n, ctx.device,
                                               params.block_size,
                                               params.vector_size))
    if mirrors_fit:
        shm = shared_atomic_batch(k * X.nnz, k * X.n, params.block_size)
        c.atomic_shared_ops += shm.ops
        c.atomic_shared_serialized += shm.serialized
        c.shared_accesses += 2 * k * X.n / 32 * params.grid_size
        c.barriers += pr.block_barriers
        c.atomic_global_ops += params.grid_size * X.n * k
        c.atomic_cas_chain += params.grid_size
    else:
        c.atomic_global_ops += k * X.nnz
        c.atomic_cas_chain += k * pr.cas_chain_global
        c.global_store_transactions += 0.125 * k * X.nnz
    c.kernel_launches = 1
    return finish(ctx, W, c, pr.launch,
                  f"fused.pattern_multi[k={k}]",
                  bandwidth_derate=SPARSE_STREAM_DERATE)
