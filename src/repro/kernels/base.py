"""Kernel execution interfaces shared by all simulated kernels.

A *kernel* here computes its true numerical result with vectorized NumPy and
simultaneously derives the exact hardware events its CUDA counterpart would
generate from the input's actual layout.  :class:`KernelResult` bundles the
output vector, the event record, the launch configuration, and the model time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.costmodel import CostModel, TimeBreakdown
from ..gpu.counters import PerfCounters
from ..gpu.device import GTX_TITAN, DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import CacheModel
from ..gpu.occupancy import Occupancy, occupancy


@dataclass
class GpuContext:
    """Everything a simulated kernel needs besides its operands."""

    device: DeviceSpec = field(default_factory=lambda: GTX_TITAN)
    use_texture_cache: bool = True
    use_l2_reuse: bool = True
    #: when set (see :mod:`repro.gpu.trace`), every finished kernel result
    #: is appended here — an nvprof-like timeline of the simulated run
    trace: list | None = None

    def __post_init__(self) -> None:
        self.cost_model = CostModel(self.device)
        self.cache = CacheModel(self.device, enabled=self.use_l2_reuse)

    def occupancy_for(self, launch: LaunchConfig) -> Occupancy:
        return occupancy(self.device, launch.block_size,
                         launch.registers_per_thread, launch.shared_bytes)

    def concurrent_threads(self, launch: LaunchConfig) -> int:
        occ = self.occupancy_for(launch)
        resident = occ.threads_per_sm * self.device.num_sms
        return max(1, min(resident, launch.total_threads))


DEFAULT_CONTEXT = GpuContext()


@dataclass
class KernelResult:
    """Output and accounting for one (or a few chained) kernel launches."""

    output: np.ndarray | float
    counters: PerfCounters
    launch: LaunchConfig | None
    occupancy_fraction: float
    time_ms: float
    breakdown: TimeBreakdown | None = None
    name: str = ""
    bandwidth_derate: float = 1.0

    def __repr__(self) -> str:
        return (f"KernelResult({self.name or 'kernel'}, "
                f"time={self.time_ms:.4g} ms, occ={self.occupancy_fraction:.2f}, "
                f"loads={self.counters.global_load_transactions:.3g})")


def finish(ctx: GpuContext, output, counters: PerfCounters,
           launch: LaunchConfig | None, name: str,
           occupancy_fraction: float | None = None,
           bandwidth_derate: float = 1.0) -> KernelResult:
    """Assemble a :class:`KernelResult`, computing model time."""
    if occupancy_fraction is None:
        occupancy_fraction = (
            ctx.occupancy_for(launch).fraction(ctx.device) if launch else 1.0
        )
    bd = ctx.cost_model.breakdown(counters, occupancy_fraction,
                                  bandwidth_derate)
    res = KernelResult(output, counters, launch, occupancy_fraction,
                       bd.total_ms, bd, name, bandwidth_derate)
    if ctx.trace is not None:
        ctx.trace.append(res)
    return res


#: sustained fraction of peak bandwidth for CSR-vector style sparse kernels
SPARSE_STREAM_DERATE = 0.6


def chain(*results: KernelResult, name: str = "chain") -> KernelResult:
    """Combine sequential kernel results (times add, counters merge)."""
    if not results:
        raise ValueError("chain() needs at least one result")
    total = PerfCounters()
    for r in results:
        total.add(r.counters)
    return KernelResult(
        output=results[-1].output,
        counters=total,
        launch=results[-1].launch,
        occupancy_fraction=min(r.occupancy_fraction for r in results),
        time_ms=sum(r.time_ms for r in results),
        breakdown=None,
        name=name,
    )
