"""Fused cell-wise and row-aggregation kernels for optimizer-chosen regions.

The fusion-plan optimizer (:mod:`repro.systemml.fusion`) generalizes the
paper's single hand-matched Eq.-1 pattern to arbitrary fusable sub-DAGs, in
the spirit of SystemML's operator-fusion plans (Boehm et al.,
arXiv:1801.00829).  Two region shapes are lowered here:

* **cell-wise chains** — any DAG over ``{+, *, alpha *}`` on equal-length
  vectors collapses into a single streaming kernel: every distinct operand
  is read once, the result is written once, and all intermediate vectors
  stay in registers instead of round-tripping through global memory;
* **row aggregations** — a matrix-vector product followed by a cell-wise
  epilogue over its output; the epilogue folds into the producing kernel's
  store, eliminating the materialized intermediate entirely.

A region's arithmetic is captured as a :class:`CellwiseProgram` (a tiny
expression IR).  Execution goes through a *generated* specialized kernel
(:func:`repro.kernels.codegen.generate_cellwise_source`) with the Listing-2
register discipline — ``VS``-wide named slices, compile-time-constant
bounds — so the same linter rules that gate the dense mtmvm kernels apply
to optimizer-emitted sources.

Counter accounting mirrors :mod:`repro.kernels.blas1`: coalesced streaming
traffic for distinct operands, one launch, flops per rendered arithmetic
op.  Everything is structure-invariant, so counters predicted at plan time
equal the counters recorded at execution exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from hashlib import blake2b
from typing import TYPE_CHECKING

import numpy as np

from ..gpu.counters import PerfCounters
from ..gpu.memory import coalesced_transactions
from ..sparse.csr import CsrMatrix
from .base import DEFAULT_CONTEXT, GpuContext, KernelResult, finish
from .blas1 import _launch_for
from .dense_baseline import gemv_n, gemv_t
from .sparse_baseline import CsrmvProfile, csrmv, csrmv_transpose

if TYPE_CHECKING:
    from .codegen import CompiledSparseKernels

_D = 8

#: expression node tags: ('in', k) | ('smul', alpha, e) | ('ewmul', a, b)
#: | ('add', a, b)
_OPS = ("in", "smul", "ewmul", "add")


def _validate_expr(expr: tuple, n_inputs: int) -> int:
    """Recursively validate one expression node; returns its op count."""
    if not isinstance(expr, tuple) or not expr or expr[0] not in _OPS:
        raise ValueError(f"malformed cellwise expression node: {expr!r}")
    tag = expr[0]
    if tag == "in":
        if len(expr) != 2 or not isinstance(expr[1], int) \
                or not 0 <= expr[1] < n_inputs:
            raise ValueError(f"bad input reference {expr!r} "
                             f"(n_inputs={n_inputs})")
        return 0
    if tag == "smul":
        if len(expr) != 3 or not isinstance(expr[1], float):
            raise ValueError(f"bad smul node {expr!r}")
        return 1 + _validate_expr(expr[2], n_inputs)
    if len(expr) != 3:
        raise ValueError(f"bad {tag} node {expr!r}")
    return (1 + _validate_expr(expr[1], n_inputs)
            + _validate_expr(expr[2], n_inputs))


@dataclass(frozen=True)
class CellwiseProgram:
    """A fusable cell-wise computation over ``n_inputs`` operand vectors.

    ``expr`` is a nested-tuple expression tree; rendering, interpretation,
    and the generated kernel all evaluate it in the identical operation
    order, so every execution path is bit-identical (IEEE add/mul are
    commutative at the bit level, and the tree fixes associativity).
    """

    expr: tuple
    n_inputs: int

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("a cellwise program needs at least one input")
        _validate_expr(self.expr, self.n_inputs)

    # ------------------------------------------------------------------ ops
    @property
    def op_count(self) -> int:
        """Arithmetic operations per element (as rendered/executed)."""
        return _validate_expr(self.expr, self.n_inputs)

    def render(self, names: list[str]) -> str:
        """Python expression text over the given operand names."""
        def rec(e: tuple) -> str:
            if e[0] == "in":
                return names[e[1]]
            if e[0] == "smul":
                return f"({e[1]!r} * {rec(e[2])})"
            op = "*" if e[0] == "ewmul" else "+"
            return f"({rec(e[1])} {op} {rec(e[2])})"
        return rec(self.expr)

    def interpret(self, inputs: list[np.ndarray]) -> np.ndarray:
        """Reference evaluation (same op order as the generated kernel)."""
        def rec(e: tuple) -> np.ndarray:
            if e[0] == "in":
                return inputs[e[1]]
            if e[0] == "smul":
                return e[1] * rec(e[2])
            if e[0] == "ewmul":
                return rec(e[1]) * rec(e[2])
            return rec(e[1]) + rec(e[2])
        return rec(self.expr)

    def describe(self) -> str:
        """Human-readable form with ``in0, in1, ...`` operand names."""
        return self.render([f"in{k}" for k in range(self.n_inputs)])

    def key(self) -> str:
        """Short stable digest (cache keys, labels)."""
        h = blake2b(digest_size=6)
        h.update(repr((self.expr, self.n_inputs)).encode())
        return h.hexdigest()


def cellwise_params(n: int) -> tuple[int, int]:
    """Default ``(VS, TL)`` for an n-element cell-wise kernel.

    A small fixed unroll depth keeps the generated source compact; ``VS``
    absorbs the rest of the width (``VS * TL >= n``, within ``TL`` extra).
    """
    if n < 1:
        raise ValueError("cellwise kernels need n >= 1")
    tl = min(4, n)
    vs = math.ceil(n / tl)
    return vs, tl


def _padded(x: np.ndarray, n_pad: int) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.size == n_pad:
        return x
    out = np.zeros(n_pad, dtype=np.float64)
    out[:x.size] = x
    return out


def fused_cellwise(program: CellwiseProgram, inputs: list[np.ndarray],
                   ctx: GpuContext = DEFAULT_CONTEXT,
                   vs: int | None = None,
                   tl: int | None = None) -> KernelResult:
    """Execute a cell-wise region as one generated streaming kernel."""
    from .codegen import ensure_cellwise_kernel
    if len(inputs) != program.n_inputs:
        raise ValueError(f"program expects {program.n_inputs} inputs, "
                         f"got {len(inputs)}")
    arrays = [np.asarray(x, dtype=np.float64) for x in inputs]
    n = arrays[0].size
    if any(a.size != n for a in arrays):
        raise ValueError("cellwise operands must have identical lengths")
    if vs is None or tl is None:
        vs, tl = cellwise_params(n)
    n_pad = vs * tl
    if n_pad < n:
        raise ValueError(f"VS*TL={n_pad} cannot cover n={n}")
    fn, _ = ensure_cellwise_kernel(n_pad, vs, tl, program)
    out = np.zeros(n_pad, dtype=np.float64)
    fn(*[_padded(a, n_pad) for a in arrays], out)
    if n_pad != n:
        out = out[:n]

    c = PerfCounters()
    c.global_load_transactions = coalesced_transactions(
        program.n_inputs * n * _D)
    c.global_store_transactions = coalesced_transactions(n * _D)
    c.flops = float(program.op_count * n)
    c.kernel_launches = 1
    return finish(ctx, out, c, _launch_for(n, ctx),
                  f"fused.cellwise[{program.key()}]")


def fused_rowagg(mat: CsrMatrix | np.ndarray, vec: np.ndarray,
                 program: CellwiseProgram, extras: list[np.ndarray],
                 ctx: GpuContext = DEFAULT_CONTEXT,
                 transpose: bool = False,
                 profile: CsrmvProfile | None = None,
                 vs: int | None = None,
                 tl: int | None = None,
                 compiled: "CompiledSparseKernels | None" = None
                 ) -> KernelResult:
    """Matrix-vector product with a fused cell-wise epilogue.

    ``program`` input 0 is the matvec result; inputs ``1..k`` are
    ``extras``.  The epilogue folds into the producing kernel's output
    store, so the only added traffic is reading the extra operands (plus
    the epilogue flops) — the intermediate is never materialized.
    ``compiled`` routes the sparse matvec through the engine-cached AOT
    kernel (dense inputs ignore it).
    """
    from .codegen import ensure_cellwise_kernel
    if program.n_inputs != len(extras) + 1:
        raise ValueError(f"program expects {program.n_inputs} inputs, got "
                         f"{len(extras)} extras + the matvec result")
    if isinstance(mat, CsrMatrix):
        base = (csrmv_transpose(mat, vec, ctx, profile=profile,
                                compiled=compiled) if transpose
                else csrmv(mat, vec, ctx, texture=ctx.use_texture_cache,
                           profile=profile, compiled=compiled))
    else:
        X = np.asarray(mat, dtype=np.float64)
        base = gemv_t(X, vec, ctx) if transpose else gemv_n(X, vec, ctx)
    p = np.asarray(base.output, dtype=np.float64)
    n = p.size
    arrays = [np.asarray(x, dtype=np.float64) for x in extras]
    if any(a.size != n for a in arrays):
        raise ValueError("rowagg epilogue operands must match the matvec "
                         "output length")
    if vs is None or tl is None:
        vs, tl = cellwise_params(n)
    n_pad = vs * tl
    if n_pad < n:
        raise ValueError(f"VS*TL={n_pad} cannot cover n={n}")
    fn, _ = ensure_cellwise_kernel(n_pad, vs, tl, program)
    out = np.zeros(n_pad, dtype=np.float64)
    fn(*[_padded(a, n_pad) for a in [p, *arrays]], out)
    if n_pad != n:
        out = out[:n]

    c = PerfCounters()
    c.add(base.counters)
    c.global_load_transactions += coalesced_transactions(
        len(arrays) * n * _D)
    c.flops += float(program.op_count * n)
    return finish(ctx, out, c, base.launch,
                  f"fused.rowagg[{base.name}+{program.key()}]",
                  occupancy_fraction=base.occupancy_fraction,
                  bandwidth_derate=base.bandwidth_derate)
