"""Fused dense kernel — Algorithm 3 of the paper, driven by generated code.

Each row of ``X`` is handled by a ``VS``-thread vector whose threads keep
``TL`` elements of ``X``, ``y``, and the partial ``w`` in *registers* (the
code generator unrolls all register loops into named locals — see
:mod:`repro.kernels.codegen`).  ``X`` is therefore read from global memory
exactly once; the intermediate ``p`` never exists in memory; and the only
global synchronization is the final per-vector atomic flush of ``l_w``.
"""

from __future__ import annotations

import numpy as np

from ..gpu.counters import PerfCounters
from ..gpu.memory import coalesced_transactions
from ..tuning.dense_params import DenseParams, tune_dense
from .base import DEFAULT_CONTEXT, GpuContext, KernelResult, finish
from .codegen import get_kernel

_D = 8


def _pad(X: np.ndarray, y: np.ndarray,
         padded_n: int) -> tuple[np.ndarray, np.ndarray]:
    """Zero-pad columns so VS*TL divides the width (paper §3.2, end)."""
    m, n = X.shape
    if padded_n == n:
        return X, y
    Xp = np.zeros((m, padded_n), dtype=np.float64)
    Xp[:, :n] = X
    yp = np.zeros(padded_n, dtype=np.float64)
    yp[:n] = y
    return Xp, yp


def fused_pattern_dense(X: np.ndarray, y: np.ndarray,
                        v: np.ndarray | None = None,
                        z: np.ndarray | None = None,
                        alpha: float = 1.0, beta: float = 0.0,
                        ctx: GpuContext = DEFAULT_CONTEXT,
                        params: DenseParams | None = None) -> KernelResult:
    """Algorithm 3: ``alpha * X^T (v ⊙ (X y)) + beta * z`` for dense ``X``."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    m, n = X.shape
    y = np.asarray(y, dtype=np.float64)
    if y.shape != (n,):
        raise ValueError(f"y must have shape ({n},)")
    if v is not None and np.asarray(v).shape != (m,):
        raise ValueError(f"v must have shape ({m},)")
    if beta != 0.0 and z is None:
        raise ValueError("beta != 0 requires z")

    if params is None:
        params = tune_dense(m, n, ctx.device)
    launch = params.launch()
    launch.validate(ctx.device)

    # ------- functional result through the *generated* kernel ---------------
    Xp, yp = _pad(X, y, params.padded_n)
    kernel = get_kernel(params.padded_n, params.vector_size,
                        params.thread_load)
    out_padded = np.zeros(params.padded_n, dtype=np.float64)
    if beta != 0.0:
        out_padded[:n] = beta * np.asarray(z, dtype=np.float64)
    vv = None if v is None else np.asarray(v, dtype=np.float64)
    kernel(Xp, yp, vv, alpha, out_padded)
    w = out_padded[:n].copy()

    # ------- event accounting -------------------------------------------------
    c = PerfCounters()
    c.global_load_transactions = (
        coalesced_transactions(m * params.padded_n * _D)   # X, exactly once
        + coalesced_transactions(params.padded_n * _D)     # y -> registers
    )
    if v is not None:
        c.global_load_transactions += coalesced_transactions(m * _D)
    if beta != 0.0:
        c.global_load_transactions += coalesced_transactions(n * _D)
        c.atomic_global_ops += n
        c.atomic_cas_chain += 1.0

    # intra-vector reduction: shuffles are register traffic; VS > 32 also
    # runs an inter-warp shared-memory reduction with two barriers per row
    rows_per_wave = max(1, params.occupancy.warps_per_sm
                        * ctx.device.warp_size
                        * ctx.device.num_sms // params.vector_size)
    if params.vector_size > ctx.device.warp_size:
        c.shared_accesses = m * (params.vector_size // 32) / 32
        c.barriers = 2.0 * m / rows_per_wave

    # final flush: each vector atomically adds its n partials into w
    total_vectors = min(params.grid_size * (params.block_size
                                            // params.vector_size),
                        m)
    c.atomic_global_ops += total_vectors * params.padded_n
    c.atomic_cas_chain += total_vectors     # every vector hits every element

    c.flops = 4.0 * m * params.padded_n + 2.0 * m
    c.kernel_launches = 1
    # Latency hiding comes from warps *and* per-thread ILP: each thread has
    # TL independent outstanding loads, so large-TL configurations sustain
    # full bandwidth despite low warp occupancy (the register-tiling trade
    # the paper makes deliberately).
    occ = params.occupancy.fraction(ctx.device)
    eff_occ = min(1.0, occ * max(1.0, params.thread_load / 2.0))
    return finish(ctx, w, c, launch, "fused.pattern_dense",
                  occupancy_fraction=eff_occ)


def fused_xtxy_dense(X: np.ndarray, y: np.ndarray,
                     ctx: GpuContext = DEFAULT_CONTEXT,
                     params: DenseParams | None = None) -> KernelResult:
    """Convenience: the ``X^T x (X x y)`` instantiation for dense ``X``."""
    res = fused_pattern_dense(X, y, ctx=ctx, params=params)
    res.name = "fused.xtxy_dense"
    return res
