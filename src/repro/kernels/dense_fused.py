"""Fused dense kernel — Algorithm 3 of the paper, driven by generated code.

Each row of ``X`` is handled by a ``VS``-thread vector whose threads keep
``TL`` elements of ``X``, ``y``, and the partial ``w`` in *registers* (the
code generator unrolls all register loops into named locals — see
:mod:`repro.kernels.codegen`).  ``X`` is therefore read from global memory
exactly once; the intermediate ``p`` never exists in memory; and the only
global synchronization is the final per-vector atomic flush of ``l_w``.

:class:`DenseFusedProfile` plays the role :class:`SparseFusedProfile` plays
for Algorithm 2: it captures everything that depends only on (matrix,
parameters, device) — the tuned parameters, the resolved generated kernel,
the zero-padded copy of ``X`` (the expensive per-call copy in the unprofiled
path), and the counter scalars — so warm calls only pad ``y`` and run the
kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import trace
from ..gpu.counters import PerfCounters
from ..gpu.launch import LaunchConfig
from ..gpu.memory import coalesced_transactions
from ..tuning.dense_params import DenseParams, tune_dense
from .base import DEFAULT_CONTEXT, GpuContext, KernelResult, finish
from .codegen import get_kernel

_D = 8


def _pad(X: np.ndarray, y: np.ndarray,
         padded_n: int) -> tuple[np.ndarray, np.ndarray]:
    """Zero-pad columns so VS*TL divides the width (paper §3.2, end)."""
    m, n = X.shape
    if padded_n == n:
        return X, y
    Xp = np.zeros((m, padded_n), dtype=np.float64)
    Xp[:, :n] = X
    yp = np.zeros(padded_n, dtype=np.float64)
    yp[:n] = y
    return Xp, yp


def _pad_vec(y: np.ndarray, padded_n: int) -> np.ndarray:
    n = y.shape[0]
    if padded_n == n:
        return y
    yp = np.zeros(padded_n, dtype=np.float64)
    yp[:n] = y
    return yp


@dataclass
class DenseFusedProfile:
    """Structure-invariant state for Algorithm 3.

    ``x_padded`` holds the zero-padded ``X`` (aliases the original array
    when no padding is needed) and ``kernel`` the generated register-tiled
    closure for the tuned (padded_n, VS, TL) triple; both are the per-call
    costs the unprofiled path pays every iteration.
    """

    params: DenseParams
    launch: LaunchConfig
    kernel: Callable
    x_padded: np.ndarray
    m: int
    n: int
    eff_occupancy: float
    load_x: float          # X streamed exactly once
    load_y: float          # padded y -> registers
    m_stream: float        # coalesced m doubles (v)
    n_stream: float        # coalesced n doubles (z)
    shared_reduction: float     # inter-warp reduction traffic (VS > 32)
    reduction_barriers: float   # its barriers
    flush_ops: float       # total_vectors * padded_n atomic adds
    flush_chain: float     # total_vectors (every vector hits every element)

    @property
    def nbytes(self) -> int:
        own = 0 if self.x_padded.shape[1] == self.n else self.x_padded.nbytes
        return int(own) + 512


def profile_dense_fused(X: np.ndarray, ctx: GpuContext = DEFAULT_CONTEXT,
                        params: DenseParams | None = None
                        ) -> DenseFusedProfile:
    """One-time inspection + padding + codegen for the fused dense kernel."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    m, n = X.shape
    if params is None:
        params = tune_dense(m, n, ctx.device)
    launch = params.launch()
    launch.validate(ctx.device)

    Xp, _ = _pad(X, np.zeros(n), params.padded_n)
    kernel = get_kernel(params.padded_n, params.vector_size,
                        params.thread_load)

    rows_per_wave = max(1, params.occupancy.warps_per_sm
                        * ctx.device.warp_size
                        * ctx.device.num_sms // params.vector_size)
    if params.vector_size > ctx.device.warp_size:
        shared_reduction = m * (params.vector_size // 32) / 32
        reduction_barriers = 2.0 * m / rows_per_wave
    else:
        shared_reduction = reduction_barriers = 0.0

    total_vectors = min(params.grid_size * (params.block_size
                                            // params.vector_size),
                        m)
    occ = params.occupancy.fraction(ctx.device)
    return DenseFusedProfile(
        params=params,
        launch=launch,
        kernel=kernel,
        x_padded=Xp,
        m=m, n=n,
        eff_occupancy=min(1.0, occ * max(1.0, params.thread_load / 2.0)),
        load_x=coalesced_transactions(m * params.padded_n * _D),
        load_y=coalesced_transactions(params.padded_n * _D),
        m_stream=coalesced_transactions(m * _D),
        n_stream=coalesced_transactions(n * _D),
        shared_reduction=shared_reduction,
        reduction_barriers=reduction_barriers,
        flush_ops=total_vectors * params.padded_n,
        flush_chain=total_vectors,
    )


def fused_pattern_dense(X: np.ndarray, y: np.ndarray,
                        v: np.ndarray | None = None,
                        z: np.ndarray | None = None,
                        alpha: float = 1.0, beta: float = 0.0,
                        ctx: GpuContext = DEFAULT_CONTEXT,
                        params: DenseParams | None = None,
                        profile: DenseFusedProfile | None = None
                        ) -> KernelResult:
    """Algorithm 3: ``alpha * X^T (v ⊙ (X y)) + beta * z`` for dense ``X``."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    m, n = X.shape
    y = np.asarray(y, dtype=np.float64)
    if y.shape != (n,):
        raise ValueError(f"y must have shape ({n},)")
    if v is not None and np.asarray(v).shape != (m,):
        raise ValueError(f"v must have shape ({m},)")
    if beta != 0.0 and z is None:
        raise ValueError("beta != 0 requires z")

    if profile is None:
        profile = profile_dense_fused(X, ctx, params)
    pr = profile
    params = pr.params

    # ------- functional result through the *generated* kernel ---------------
    # Algorithm 3 runs as one generated kernel; the axpy initialization and
    # the fused body (SpMV + inter-vector + X^T.t accumulation) are the two
    # phases visible from the host side
    yp = _pad_vec(y, params.padded_n)
    out_padded = np.zeros(params.padded_n, dtype=np.float64)
    if beta != 0.0:
        with trace.span("axpy", "kernel") as sp:
            out_padded[:n] = beta * np.asarray(z, dtype=np.float64)
            sp.count(cols=n)
    vv = None if v is None else np.asarray(v, dtype=np.float64)
    with trace.span("fused-dense", "kernel",
                    kernel="fused.pattern_dense") as sp:
        pr.kernel(pr.x_padded, yp, vv, alpha, out_padded)
        w = out_padded[:n].copy()
        sp.count(elements=m * n)

    # ------- event accounting -------------------------------------------------
    c = PerfCounters()
    c.global_load_transactions = pr.load_x + pr.load_y
    if v is not None:
        c.global_load_transactions += pr.m_stream
    if beta != 0.0:
        c.global_load_transactions += pr.n_stream
        c.atomic_global_ops += n
        c.atomic_cas_chain += 1.0

    # intra-vector reduction: shuffles are register traffic; VS > 32 also
    # runs an inter-warp shared-memory reduction with two barriers per row
    if params.vector_size > ctx.device.warp_size:
        c.shared_accesses = pr.shared_reduction
        c.barriers = pr.reduction_barriers

    # final flush: each vector atomically adds its n partials into w
    c.atomic_global_ops += pr.flush_ops
    c.atomic_cas_chain += pr.flush_chain

    c.flops = 4.0 * m * params.padded_n + 2.0 * m
    c.kernel_launches = 1
    # Latency hiding comes from warps *and* per-thread ILP: each thread has
    # TL independent outstanding loads, so large-TL configurations sustain
    # full bandwidth despite low warp occupancy (the register-tiling trade
    # the paper makes deliberately).
    return finish(ctx, w, c, pr.launch, "fused.pattern_dense",
                  occupancy_fraction=pr.eff_occupancy)


def fused_xtxy_dense(X: np.ndarray, y: np.ndarray,
                     ctx: GpuContext = DEFAULT_CONTEXT,
                     params: DenseParams | None = None,
                     profile: DenseFusedProfile | None = None) -> KernelResult:
    """Convenience: the ``X^T x (X x y)`` instantiation for dense ``X``."""
    res = fused_pattern_dense(X, y, ctx=ctx, params=params, profile=profile)
    res.name = "fused.xtxy_dense"
    return res
