"""BLAS Level-1 kernels (cuBLAS-like): axpy, dot, nrm2, scal, ewmul.

Listing 1's conjugate-gradient loop stitches these around the BLAS-2 pattern;
Table 2 shows they account for the *remaining* CPU time (16.9% on KDD2010).
Each is a single memory-bound kernel launch: the model charges coalesced
streaming traffic, FLOPs, and the launch overhead that the fused kernel
amortizes away.
"""

from __future__ import annotations

import numpy as np

from ..gpu.counters import PerfCounters
from ..gpu.launch import LaunchConfig
from ..gpu.memory import coalesced_transactions
from .base import DEFAULT_CONTEXT, GpuContext, KernelResult, finish

_D = 8  # sizeof(double)


def _launch_for(n: int, ctx: GpuContext) -> LaunchConfig:
    bs = 256
    grid = max(1, min(-(-n // bs), ctx.device.num_sms * 16))
    return LaunchConfig(grid, bs, registers_per_thread=16)


def _stream_counters(read_doubles: float, write_doubles: float,
                     flops: float) -> PerfCounters:
    c = PerfCounters()
    c.global_load_transactions = coalesced_transactions(read_doubles * _D)
    c.global_store_transactions = coalesced_transactions(write_doubles * _D)
    c.flops = flops
    c.kernel_launches = 1
    return c


def axpy(alpha: float, x: np.ndarray, y: np.ndarray,
         ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """``y_out = alpha * x + y`` (cuBLAS ``daxpy``)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("axpy operands must have identical shapes")
    out = alpha * x + y
    n = x.size
    return finish(ctx, out, _stream_counters(2 * n, n, 2 * n),
                  _launch_for(n, ctx), "axpy")


def scal(alpha: float, x: np.ndarray,
         ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """``x_out = alpha * x`` (cuBLAS ``dscal``)."""
    x = np.asarray(x, dtype=np.float64)
    n = x.size
    return finish(ctx, alpha * x, _stream_counters(n, n, n),
                  _launch_for(n, ctx), "scal")


def ewmul(x: np.ndarray, y: np.ndarray,
          ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """Element-wise multiply ``x ⊙ y`` (the ``v ⊙ (.)`` step, unfused)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("ewmul operands must have identical shapes")
    n = x.size
    return finish(ctx, x * y, _stream_counters(2 * n, n, n),
                  _launch_for(n, ctx), "ewmul")


def dot(x: np.ndarray, y: np.ndarray,
        ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """Inner product (cuBLAS ``ddot``): tree reduction + tiny final pass."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("dot operands must have identical shapes")
    n = x.size
    c = _stream_counters(2 * n, 1, 2 * n)
    c.barriers = max(1, -(-n // 256))  # one barrier wave per block
    c.shared_accesses = n / 32        # shared-memory tree reduction
    launch = _launch_for(n, ctx)
    return finish(ctx, float(x @ y), c, launch, "dot")


def nrm2(x: np.ndarray, ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """Euclidean norm (cuBLAS ``dnrm2``)."""
    x = np.asarray(x, dtype=np.float64)
    n = x.size
    c = _stream_counters(n, 1, 2 * n)
    c.barriers = max(1, -(-n // 256))
    c.shared_accesses = n / 32
    return finish(ctx, float(np.sqrt(x @ x)), c, _launch_for(n, ctx), "nrm2")


def sumsq(x: np.ndarray, ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """``sum(x * x)`` — Listing 1's ``nr2`` update, one fused L1 kernel."""
    x = np.asarray(x, dtype=np.float64)
    n = x.size
    c = _stream_counters(n, 1, 2 * n)
    c.barriers = max(1, -(-n // 256))
    c.shared_accesses = n / 32
    return finish(ctx, float(x @ x), c, _launch_for(n, ctx), "sumsq")
