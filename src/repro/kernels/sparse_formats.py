"""SpMV kernels over alternative sparse formats (ELL, HYB).

Completes the Bell & Garland substrate the paper's CSR-vector kernel builds
on, and powers the format-choice ablation: ELL's column-major slabs coalesce
perfectly but pay for padding; HYB bounds the padding with a COO tail whose
atomics reintroduce contention; CSR-vector (the paper's choice) balances
both.
"""

from __future__ import annotations

import numpy as np

from ..gpu.atomics import contended_chain
from ..gpu.counters import PerfCounters
from ..gpu.launch import LaunchConfig
from ..gpu.memory import coalesced_transactions
from ..sparse.ell import EllMatrix, HybMatrix, ell_spmv, hyb_spmv
from .base import (DEFAULT_CONTEXT, SPARSE_STREAM_DERATE, GpuContext,
                   KernelResult, finish)

_D = 8
_I = 4


def _slab_launch(m: int, ctx: GpuContext) -> LaunchConfig:
    bs = 256
    grid = min(max(1, -(-m // bs)),
               ctx.device.num_sms * ctx.device.max_blocks_per_sm)
    return LaunchConfig(grid, bs, registers_per_thread=24)


def ellmv(X: EllMatrix, y: np.ndarray,
          ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """ELL SpMV: one thread per row, column-major slab walk.

    Every slab column is a fully coalesced load across the warp's rows —
    padding included, which is exactly ELL's cost: traffic scales with
    ``m x width``, not nnz.
    """
    out = ell_spmv(X, y)
    launch = _slab_launch(X.m, ctx)
    c = PerfCounters()
    slots = X.m * X.width
    c.global_load_transactions = (
        coalesced_transactions(slots * _D)          # values slab
        + coalesced_transactions(slots * _I)        # index slab
        + coalesced_transactions(X.n * _D) * 1.05   # y through cache
    )
    c.global_store_transactions = coalesced_transactions(X.m * _D)
    c.flops = 2.0 * slots
    c.kernel_launches = 1
    c.barriers = 1
    return finish(ctx, out, c, launch, "ell.spmv")


def hybmv(X: HybMatrix, y: np.ndarray,
          ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """HYB SpMV: ELL kernel + COO-tail kernel with atomic row updates."""
    out = hyb_spmv(X, y)
    ell_res = ellmv(X.ell, y, ctx)
    c = ell_res.counters.copy()
    tail = X.tail
    if tail.nnz:
        c.global_load_transactions += (
            coalesced_transactions(tail.nnz * (_D + 2 * _I)))
        row_counts = np.bincount(tail.row, minlength=X.shape[0])
        c.atomic_global_ops += tail.nnz
        c.atomic_cas_chain += contended_chain(tail.nnz, row_counts)
        c.global_store_transactions += 0.125 * tail.nnz
        c.kernel_launches += 1
        c.flops += 2.0 * tail.nnz
    launch = _slab_launch(X.shape[0], ctx)
    res = finish(ctx, out, c, launch, "hyb.spmv",
                 bandwidth_derate=1.0 if not tail.nnz
                 else SPARSE_STREAM_DERATE)
    return res
