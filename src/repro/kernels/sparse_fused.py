"""Fused sparse kernels — Algorithms 1 and 2 of the paper.

Algorithm 1 computes ``w = X^T x p`` with CSR-vector row partitioning and a
two-level aggregation: vectors accumulate into a shared-memory mirror of
``w`` (inter-vector, atomic within the block), then each block flushes the
mirror into global memory (inter-block, atomic across blocks).

Algorithm 2 fuses the whole pattern ``alpha * X^T (v ⊙ (X y)) + beta * z``:
each vector loads a row once to compute ``p[r] = X[r,:] x y`` (register-level
shuffle reduction), multiplies by ``v[r]``, then *reuses the same row* —
now warm in cache — to scatter ``X[r,:]^T * p[r]`` into the shared mirror.
The ``beta * z`` term is folded in as an atomic initialization pass, avoiding
the inter-block barrier CUDA does not provide.

The large-``n`` variant (used for KDD2010's 30M columns) drops the shared
mirror and aggregates straight into global memory: more atomic traffic, but
no shared-memory occupancy limit — and with huge, sparse column spaces the
collision probability is tiny.

**Kernel profiles.** Every event-accounting term above is a function of the
matrix structure, the §3.3 parameters, and the device — none of it depends
on the vectors that change each iteration.  :class:`SparseFusedProfile`
captures that structure-invariant template (plus a planned
:class:`~repro.sparse.ops.SpmvPlan` for the numeric side); each kernel call
either receives a cached profile (the engine's warm path) or builds a fresh
one inline, so profiled and unprofiled calls run the *same* assembly code
and are counter- and bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import trace
from ..gpu.atomics import contention_profile, shared_atomic_batch
from ..gpu.counters import PerfCounters
from ..gpu.launch import LaunchConfig
from ..gpu.memory import coalesced_transactions, warp_segment_template
from ..sparse.csr import CsrMatrix
from ..sparse.ops import SpmvPlan
from ..tuning.sparse_params import SparseParams, tune_sparse
from .base import (DEFAULT_CONTEXT, SPARSE_STREAM_DERATE, GpuContext,
                   KernelResult, finish)
from .codegen import CompiledSparseKernels
from .sparse_baseline import vector_gather_transactions

_D = 8
_I = 4


def _resolve_params(X: CsrMatrix, ctx: GpuContext,
                    params: SparseParams | None) -> SparseParams:
    return params if params is not None else tune_sparse(X, ctx.device)


def _active_vectors_per_sm(params: SparseParams) -> int:
    nv = params.block_size // params.vector_size
    return max(1, params.occupancy.blocks_per_sm * nv)


def _row_pass_loads(X: CsrMatrix, vector_size: int,
                    warp_size: int = 32) -> float:
    """Coalesced transactions for one pass over values + column indices.

    Counted at warp granularity: a warp holds ``warp/VS`` vectors working on
    consecutive rows whose CSR segments are adjacent in memory.
    """
    rows_per_warp = max(1, warp_size // vector_size)
    seg = warp_segment_template(X.row_nnz, rows_per_warp)
    return seg.pass_transactions + coalesced_transactions((X.m + 1) * _I)


@dataclass
class SparseFusedProfile:
    """Structure-invariant counter template for Algorithms 1 and 2.

    Everything here is fixed for a given (matrix content, §3.3 parameters,
    device spec, context cache flags); the per-call closure only folds in
    the scalars that vary (``v`` present, ``beta != 0``, alpha/beta) and the
    vector arithmetic.  The engine caches instances in its artifact LRU
    under the matrix's content fingerprint, so in-place mutation misses and
    forces a rebuild — the same invalidation semantics as every other
    engine artifact.
    """

    params: SparseParams
    launch: LaunchConfig
    occupancy_fraction: float
    spmv_plan: SpmvPlan
    m: int
    n: int
    nnz: int
    first_pass: float       # values + col_idx + row_off, one warm-warp pass
    second_full: float      # values + col_idx re-read (before cache credit)
    miss_weight: float      # nnz-weighted second-pass miss fraction
    gather: float           # y gathers, ctx texture flag baked in
    m_stream: float         # coalesced m-vector load (p or v)
    z_stream: float         # coalesced n-vector load (z)
    # shared-memory variant terms
    shm_ops: float
    shm_serialized: float
    mirror_accesses: float  # one pass over the block mirrors
    block_barriers: float
    flush_ops: float        # per-block mirror flush into global w
    # large-n (global) variant term
    cas_chain_global: float

    @property
    def variant(self) -> str:
        return self.params.variant

    @property
    def nbytes(self) -> int:
        """Footprint for the engine's artifact LRU (dominated by the plan)."""
        return int(self.spmv_plan.nbytes) + 512


def profile_sparse_fused(X: CsrMatrix, ctx: GpuContext = DEFAULT_CONTEXT,
                         params: SparseParams | None = None,
                         spmv_plan: SpmvPlan | None = None
                         ) -> SparseFusedProfile:
    """One-time structure inspection for the fused sparse kernels."""
    params = _resolve_params(X, ctx, params)
    launch = params.launch()
    launch.validate(ctx.device)
    row_nnz = X.row_nnz
    rows_per_warp = max(1, ctx.device.warp_size // params.vector_size)
    seg = warp_segment_template(row_nnz, rows_per_warp)
    first_pass = seg.pass_transactions + coalesced_transactions(
        (X.m + 1) * _I)

    if params.variant == "shared":
        shm = shared_atomic_batch(X.nnz, X.n, params.block_size)
        shm_ops, shm_serialized = shm.ops, shm.serialized
    else:
        shm_ops = shm_serialized = 0.0
    # computed for both variants: the multi-RHS kernel falls back to global
    # aggregation when its k mirrors exceed shared memory, even for matrices
    # tuned to the "shared" variant
    cas_chain_global = contention_profile(X.column_counts()).chain(X.nnz)

    return SparseFusedProfile(
        params=params,
        launch=launch,
        occupancy_fraction=ctx.occupancy_for(launch).fraction(ctx.device),
        spmv_plan=spmv_plan if spmv_plan is not None else SpmvPlan(X),
        m=X.m, n=X.n, nnz=X.nnz,
        first_pass=first_pass,
        second_full=seg.pass_transactions,
        miss_weight=ctx.cache.second_pass_miss_weight(
            row_nnz, _active_vectors_per_sm(params)),
        gather=vector_gather_transactions(X, ctx,
                                          texture=ctx.use_texture_cache),
        m_stream=coalesced_transactions(X.m * _D),
        z_stream=coalesced_transactions(X.n * _D),
        shm_ops=shm_ops,
        shm_serialized=shm_serialized,
        mirror_accesses=X.n / 32 * params.grid_size,
        block_barriers=params.grid_size / max(
            1, params.occupancy.blocks_per_sm * ctx.device.num_sms),
        flush_ops=params.grid_size * X.n,
        cas_chain_global=cas_chain_global,
    )


def xt_spmv_fused(X: CsrMatrix, p: np.ndarray,
                  ctx: GpuContext = DEFAULT_CONTEXT,
                  params: SparseParams | None = None,
                  profile: SparseFusedProfile | None = None,
                  compiled: CompiledSparseKernels | None = None
                  ) -> KernelResult:
    """Algorithm 1: ``w = X^T x p`` without transposing ``X``.

    With ``compiled`` (an engine-cached :class:`CompiledSparseKernels`
    bundle) the numeric side dispatches to the generated AOT kernel;
    outputs are bit-identical either way, so the event accounting below is
    dispatch-independent.
    """
    if profile is None:
        profile = profile_sparse_fused(X, ctx, params)
    pr = profile
    if compiled is not None:
        with trace.span("xt-accumulate", "kernel", variant=pr.variant,
                        compiled=True) as sp:
            out = compiled.spmv_t(p)
            sp.count(nnz=pr.nnz)
    else:
        with trace.span("xt-accumulate", "kernel", variant=pr.variant) as sp:
            out = pr.spmv_plan.spmv_t(p)
            sp.count(nnz=pr.nnz)

    c = PerfCounters()
    c.global_load_transactions = pr.first_pass + pr.m_stream       # X, p
    c.flops = 2.0 * pr.nnz + pr.params.grid_size * pr.n

    if pr.variant == "shared":
        # per-nnz adds into the shared mirror, contended inside each block
        c.atomic_shared_ops = pr.shm_ops
        c.atomic_shared_serialized = pr.shm_serialized
        c.shared_accesses = pr.mirror_accesses                 # mirror init
        c.barriers = pr.block_barriers
        # lines 15-16: every block adds its mirror into w -> chain = #blocks
        c.atomic_global_ops = pr.flush_ops
        c.atomic_cas_chain = pr.params.grid_size
        c.shared_accesses += pr.mirror_accesses                # mirror read
    else:
        c.atomic_global_ops = pr.nnz
        c.atomic_cas_chain = pr.cas_chain_global
        c.global_store_transactions += 0.125 * pr.nnz         # atomic sectors
    c.kernel_launches = 1
    return finish(ctx, out, c, pr.launch,
                  f"fused.xt_spmv[{pr.variant}]",
                  occupancy_fraction=pr.occupancy_fraction,
                  bandwidth_derate=SPARSE_STREAM_DERATE)


def fused_pattern_sparse(X: CsrMatrix, y: np.ndarray,
                         v: np.ndarray | None = None,
                         z: np.ndarray | None = None,
                         alpha: float = 1.0, beta: float = 0.0,
                         ctx: GpuContext = DEFAULT_CONTEXT,
                         params: SparseParams | None = None,
                         profile: SparseFusedProfile | None = None,
                         compiled: CompiledSparseKernels | None = None
                         ) -> KernelResult:
    """Algorithm 2: the complete fused pattern in one kernel launch.

    With ``compiled`` the whole dataflow runs as one generated AOT kernel
    specialized to the structure *and* the call shape (``v``/``beta``
    presence), under a single span — just as the real fused kernel is one
    launch.  Interpreted dispatch brackets each phase with its own span.
    Outputs are bit-identical either way.
    """
    if beta != 0.0 and z is None:
        raise ValueError("beta != 0 requires z")
    if profile is None:
        profile = profile_sparse_fused(X, ctx, params)
    pr = profile

    # ------- functional result (mirrors the kernel's dataflow) -------------
    if compiled is not None:
        with trace.span("fused-pattern", "kernel", variant=pr.variant,
                        compiled=True) as sp:
            w = compiled.fused(y, v, z, alpha, beta)
            sp.count(nnz=pr.nnz)
    else:
        # each Algorithm-2 phase is bracketed by a span: the row pass (SpMV),
        # the inter-vector scaling, the second row pass (X^T.t accumulation
        # into the shared/global mirror), and the beta*z fold
        with trace.span("spmv", "kernel", variant=pr.variant) as sp:
            p = pr.spmv_plan.spmv(y)
            sp.count(nnz=pr.nnz)
        if v is not None:
            if np.asarray(v).shape != (pr.m,):
                raise ValueError(f"v must have shape ({pr.m},)")
            with trace.span("inter-vector", "kernel") as sp:
                p = p * np.asarray(v, dtype=np.float64)
                sp.count(rows=pr.m)
        with trace.span("xt-accumulate", "kernel", variant=pr.variant) as sp:
            w = alpha * pr.spmv_plan.spmv_t(p)
            sp.count(nnz=pr.nnz)
        if beta != 0.0:
            with trace.span("axpy", "kernel") as sp:
                w = w + beta * np.asarray(z, dtype=np.float64)
                sp.count(cols=pr.n)

    # ------- event accounting: close the template over the call scalars ----
    c = PerfCounters()
    c.global_load_transactions = pr.first_pass + pr.gather          # X, y
    if v is not None:
        c.global_load_transactions += pr.m_stream

    # second pass over each row: cache hits where the row is still resident
    c.global_load_transactions += pr.second_full * pr.miss_weight

    c.flops = 4.0 * pr.nnz + 2.0 * pr.m

    if beta != 0.0:
        c.global_load_transactions += pr.z_stream
        c.atomic_global_ops += pr.n        # one add per element, no chain
        c.atomic_cas_chain += 1.0
        c.flops += pr.n

    if pr.variant == "shared":
        c.atomic_shared_ops = pr.shm_ops
        c.atomic_shared_serialized = pr.shm_serialized
        c.shared_accesses = 2 * pr.mirror_accesses
        c.barriers = pr.block_barriers
        c.atomic_global_ops += pr.flush_ops
        c.atomic_cas_chain += pr.params.grid_size
        c.flops += pr.flush_ops
    else:
        c.atomic_global_ops += pr.nnz
        c.atomic_cas_chain += pr.cas_chain_global
        c.global_store_transactions += 0.125 * pr.nnz
    c.kernel_launches = 1
    return finish(ctx, w, c, pr.launch,
                  f"fused.pattern_sparse[{pr.variant}]",
                  occupancy_fraction=pr.occupancy_fraction,
                  bandwidth_derate=SPARSE_STREAM_DERATE)


def fused_xtxy_sparse(X: CsrMatrix, y: np.ndarray,
                      ctx: GpuContext = DEFAULT_CONTEXT,
                      params: SparseParams | None = None,
                      profile: SparseFusedProfile | None = None
                      ) -> KernelResult:
    """Convenience: the ``X^T x (X x y)`` instantiation (no v, z)."""
    res = fused_pattern_sparse(X, y, ctx=ctx, params=params, profile=profile)
    res.name = "fused.xtxy_sparse"
    return res
