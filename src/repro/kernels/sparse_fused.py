"""Fused sparse kernels — Algorithms 1 and 2 of the paper.

Algorithm 1 computes ``w = X^T x p`` with CSR-vector row partitioning and a
two-level aggregation: vectors accumulate into a shared-memory mirror of
``w`` (inter-vector, atomic within the block), then each block flushes the
mirror into global memory (inter-block, atomic across blocks).

Algorithm 2 fuses the whole pattern ``alpha * X^T (v ⊙ (X y)) + beta * z``:
each vector loads a row once to compute ``p[r] = X[r,:] x y`` (register-level
shuffle reduction), multiplies by ``v[r]``, then *reuses the same row* —
now warm in cache — to scatter ``X[r,:]^T * p[r]`` into the shared mirror.
The ``beta * z`` term is folded in as an atomic initialization pass, avoiding
the inter-block barrier CUDA does not provide.

The large-``n`` variant (used for KDD2010's 30M columns) drops the shared
mirror and aggregates straight into global memory: more atomic traffic, but
no shared-memory occupancy limit — and with huge, sparse column spaces the
collision probability is tiny.
"""

from __future__ import annotations

import numpy as np

from ..gpu.atomics import contended_chain, shared_atomic_batch
from ..gpu.counters import PerfCounters
from ..gpu.memory import coalesced_transactions, warp_segment_transactions
from ..sparse.csr import CsrMatrix
from ..sparse.ops import spmv, spmv_t
from ..tuning.sparse_params import SparseParams, tune_sparse
from .base import (DEFAULT_CONTEXT, SPARSE_STREAM_DERATE, GpuContext,
                   KernelResult, finish)
from .sparse_baseline import vector_gather_transactions

_D = 8
_I = 4


def _resolve_params(X: CsrMatrix, ctx: GpuContext,
                    params: SparseParams | None) -> SparseParams:
    return params if params is not None else tune_sparse(X, ctx.device)


def _active_vectors_per_sm(params: SparseParams) -> int:
    nv = params.block_size // params.vector_size
    return max(1, params.occupancy.blocks_per_sm * nv)


def _row_pass_loads(X: CsrMatrix, vector_size: int,
                    warp_size: int = 32) -> float:
    """Coalesced transactions for one pass over values + column indices.

    Counted at warp granularity: a warp holds ``warp/VS`` vectors working on
    consecutive rows whose CSR segments are adjacent in memory.
    """
    rows_per_warp = max(1, warp_size // vector_size)
    row_nnz = X.row_nnz
    return (warp_segment_transactions(row_nnz, _D, rows_per_warp)
            + warp_segment_transactions(row_nnz, _I, rows_per_warp)
            + coalesced_transactions((X.m + 1) * _I))


def xt_spmv_fused(X: CsrMatrix, p: np.ndarray,
                  ctx: GpuContext = DEFAULT_CONTEXT,
                  params: SparseParams | None = None) -> KernelResult:
    """Algorithm 1: ``w = X^T x p`` without transposing ``X``."""
    params = _resolve_params(X, ctx, params)
    launch = params.launch()
    launch.validate(ctx.device)
    out = spmv_t(X, p)

    c = PerfCounters()
    c.global_load_transactions = (
        _row_pass_loads(X, params.vector_size, ctx.device.warp_size)
        + coalesced_transactions(X.m * _D)                       # p
    )
    c.flops = 2.0 * X.nnz + params.grid_size * X.n

    if params.variant == "shared":
        # per-nnz adds into the shared mirror, contended inside each block
        shm = shared_atomic_batch(X.nnz, X.n, params.block_size)
        c.atomic_shared_ops = shm.ops
        c.atomic_shared_serialized = shm.serialized
        c.shared_accesses = X.n / 32 * params.grid_size       # mirror init
        c.barriers = params.grid_size / max(
            1, params.occupancy.blocks_per_sm * ctx.device.num_sms)
        # lines 15-16: every block adds its mirror into w -> chain = #blocks
        c.atomic_global_ops = params.grid_size * X.n
        c.atomic_cas_chain = params.grid_size
        c.shared_accesses += X.n / 32 * params.grid_size      # mirror read
    else:
        c.atomic_global_ops = X.nnz
        c.atomic_cas_chain = contended_chain(X.nnz, X.column_counts())
        c.global_store_transactions += 0.125 * X.nnz          # atomic sectors
    c.kernel_launches = 1
    return finish(ctx, out, c, launch, f"fused.xt_spmv[{params.variant}]",
                  bandwidth_derate=SPARSE_STREAM_DERATE)


def fused_pattern_sparse(X: CsrMatrix, y: np.ndarray,
                         v: np.ndarray | None = None,
                         z: np.ndarray | None = None,
                         alpha: float = 1.0, beta: float = 0.0,
                         ctx: GpuContext = DEFAULT_CONTEXT,
                         params: SparseParams | None = None) -> KernelResult:
    """Algorithm 2: the complete fused pattern in one kernel launch."""
    if beta != 0.0 and z is None:
        raise ValueError("beta != 0 requires z")
    params = _resolve_params(X, ctx, params)
    launch = params.launch()
    launch.validate(ctx.device)

    # ------- functional result (mirrors the kernel's dataflow) -------------
    p = spmv(X, y)
    if v is not None:
        if np.asarray(v).shape != (X.m,):
            raise ValueError(f"v must have shape ({X.m},)")
        p = p * np.asarray(v, dtype=np.float64)
    w = alpha * spmv_t(X, p)
    if beta != 0.0:
        w = w + beta * np.asarray(z, dtype=np.float64)

    # ------- event accounting ----------------------------------------------
    c = PerfCounters()
    row_nnz = X.row_nnz
    first_pass = _row_pass_loads(X, params.vector_size,
                                 ctx.device.warp_size)
    c.global_load_transactions = (
        first_pass
        + vector_gather_transactions(X, ctx,
                                     texture=ctx.use_texture_cache)  # y
    )
    if v is not None:
        c.global_load_transactions += coalesced_transactions(X.m * _D)

    # second pass over each row: cache hits where the row is still resident
    hit = ctx.cache.second_pass_hit_fraction(
        row_nnz, _active_vectors_per_sm(params))
    rows_per_warp = max(1, ctx.device.warp_size // params.vector_size)
    second_full = (warp_segment_transactions(row_nnz, _D, rows_per_warp)
                   + warp_segment_transactions(row_nnz, _I, rows_per_warp))
    miss_weight = float((row_nnz * (1.0 - hit)).sum()) / max(1.0,
                                                             float(row_nnz.sum()))
    c.global_load_transactions += second_full * miss_weight

    c.flops = 4.0 * X.nnz + 2.0 * X.m

    if beta != 0.0:
        c.global_load_transactions += coalesced_transactions(X.n * _D)  # z
        c.atomic_global_ops += X.n         # one add per element, no chain
        c.atomic_cas_chain += 1.0
        c.flops += X.n

    if params.variant == "shared":
        shm = shared_atomic_batch(X.nnz, X.n, params.block_size)
        c.atomic_shared_ops = shm.ops
        c.atomic_shared_serialized = shm.serialized
        c.shared_accesses = 2 * X.n / 32 * params.grid_size
        c.barriers = params.grid_size / max(
            1, params.occupancy.blocks_per_sm * ctx.device.num_sms)
        c.atomic_global_ops += params.grid_size * X.n
        c.atomic_cas_chain += params.grid_size
        c.flops += params.grid_size * X.n
    else:
        c.atomic_global_ops += X.nnz
        c.atomic_cas_chain += contended_chain(X.nnz, X.column_counts())
        c.global_store_transactions += 0.125 * X.nnz
    c.kernel_launches = 1
    return finish(ctx, w, c, launch,
                  f"fused.pattern_sparse[{params.variant}]",
                  bandwidth_derate=SPARSE_STREAM_DERATE)


def fused_xtxy_sparse(X: CsrMatrix, y: np.ndarray,
                      ctx: GpuContext = DEFAULT_CONTEXT,
                      params: SparseParams | None = None) -> KernelResult:
    """Convenience: the ``X^T x (X x y)`` instantiation (no v, z)."""
    res = fused_pattern_sparse(X, y, ctx=ctx, params=params)
    res.name = "fused.xtxy_sparse"
    return res
