"""Baseline sparse kernels: cuSPARSE-like and BIDMat-like SpMV operators.

These model the operator-level strategy the paper compares against:

* :func:`csrmv` — standard CSR-vector SpMV (``X x y``); cuSPARSE is good at
  this, and the paper explicitly does *not* claim wins on it.
* :func:`csrmv_transpose` — cuSPARSE's transpose-mode SpMV (``X^T x p``
  without materializing the transpose).  The paper measures ~3.5x more global
  load transactions than the fused kernel plus heavy semaphore/atomic
  serialization; we model that structurally (extra row-reconstruction pass,
  per-nnz global atomics contended by the column histogram).
* :func:`csr2csc_kernel` + csrmv over the result — NVIDIA's recommended
  "explicitly transpose, then SpMV" route, whose amortization cost Figure 2
  quantifies.
* :func:`bidmat_spmv` / :func:`bidmat_spmv_transpose` — BIDMat's GPU kernels,
  which the paper found to perform "similar to cuSPARSE".
"""

from __future__ import annotations

import numpy as np

from ..gpu.atomics import contended_chain
from ..gpu.counters import PerfCounters
from ..gpu.launch import LaunchConfig, grid_for_rows
from ..gpu.memory import (coalesced_transactions, gather_transactions,
                          warp_segment_transactions)
from ..sparse.csc import csr_to_csc
from ..sparse.csr import CsrMatrix
from ..sparse.ops import spmv, spmv_t
from .base import (DEFAULT_CONTEXT, SPARSE_STREAM_DERATE, GpuContext,
                   KernelResult, finish)

_D = 8   # sizeof(double)
_I = 4   # sizeof(int) on device


def vector_gather_transactions(X: CsrMatrix, ctx: GpuContext,
                               texture: bool = False) -> float:
    """Global transactions to gather ``y[col_idx[k]]`` over all non-zeros.

    The gathered vector (n doubles) almost always fits in L2 for the column
    counts studied (n <= 30M only for KDD, where gathers rarely collide),
    so after compulsory misses most gathers hit cache; texture binding
    (the fused kernel's trick) raises the hit rate further.
    """
    n = X.n
    cold_lines = coalesced_transactions(n * _D)
    raw = gather_transactions(X.col_idx, itemsize=_D,
                              warp_size=ctx.device.warp_size)
    vec_bytes = n * _D
    if texture:
        hit = ctx.cache.texture_hit_ratio()
    else:
        hit = min(1.0, ctx.device.l2_cache_bytes / max(1.0, vec_bytes)) * 0.95
    return cold_lines + (1.0 - hit) * max(0.0, raw - cold_lines)


def _csrmv_launch(X: CsrMatrix, ctx: GpuContext) -> LaunchConfig:
    """cuSPARSE-style CSR-vector launch: BS=128, VS by mean row length."""
    mu = max(1.0, X.mean_row_nnz)
    vs = 32
    for cand in (2, 4, 8, 16, 32):
        if mu <= cand:
            vs = cand
            break
    bs = 128
    grid = grid_for_rows(X.m, bs, vs, 1)
    grid = min(grid, 8 * ctx.device.num_sms * ctx.device.max_blocks_per_sm)
    return LaunchConfig(grid, bs, registers_per_thread=32, vector_size=vs)


def csrmv(X: CsrMatrix, y: np.ndarray,
          ctx: GpuContext = DEFAULT_CONTEXT,
          texture: bool = False) -> KernelResult:
    """cuSPARSE-like ``X @ y`` (CSR-vector with warp reduction)."""
    out = spmv(X, y)
    launch = _csrmv_launch(X, ctx)
    rows_per_warp = max(1, ctx.device.warp_size // launch.vector_size)
    c = PerfCounters()
    row_nnz = X.row_nnz
    c.global_load_transactions = (
        warp_segment_transactions(row_nnz, _D, rows_per_warp)   # values
        + warp_segment_transactions(row_nnz, _I, rows_per_warp)  # col idx
        + coalesced_transactions((X.m + 1) * _I)   # row offsets
        + vector_gather_transactions(X, ctx, texture)
    )
    c.global_store_transactions = coalesced_transactions(X.m * _D)
    c.flops = 2.0 * X.nnz
    c.shared_accesses = X.m / 4        # warp-reduction spill per row
    c.kernel_launches = 1
    c.barriers = 1
    return finish(ctx, out, c, launch, "cusparse.csrmv",
                  bandwidth_derate=SPARSE_STREAM_DERATE)


def csrmv_transpose(X: CsrMatrix, p: np.ndarray,
                    ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """cuSPARSE-like transpose-mode SpMV: ``X^T @ p`` on the CSR arrays.

    Structural cost story (cuSPARSE is closed-source; the paper infers the
    behaviour from profiler counters): one coalesced pass over values and
    column indices, an extra pass's worth of traffic to recover row ids and
    manage per-column semaphores, and one global atomic per non-zero into the
    output — serialized by hot columns.
    """
    out = spmv_t(X, p)
    launch = _csrmv_launch(X, ctx)
    rows_per_warp = max(1, ctx.device.warp_size // launch.vector_size)
    c = PerfCounters()
    row_nnz = X.row_nnz
    nnz = X.nnz
    l2 = ctx.device.l2_cache_bytes

    # Semaphore + output-line traffic per non-zero.  When w (n doubles) is
    # L2-resident the lock/update round trips mostly hit cache (32B sectors);
    # for huge column spaces (KDD2010: 30M columns) every update is a full
    # uncoalesced line out to DRAM — the regime where the paper measures
    # cuSPARSE two orders of magnitude behind.
    w_resident = X.n * _D <= l2 / 2
    sem_traffic = (0.125 if w_resident else 1.0) * nnz

    # Row-index recovery: transpose mode must map each non-zero back to its
    # row via binary search over row_off; probes beyond the L2-resident top
    # of the search tree are uncoalesced misses.
    probes = max(1.0, np.log2(max(2, X.m)))
    rowoff_bytes = (X.m + 1) * _I
    miss_frac = min(1.0, max(0.03, 1.0 - (l2 / 2) / max(1.0, rowoff_bytes)))
    recovery = probes * miss_frac * nnz

    c.global_load_transactions = (
        warp_segment_transactions(row_nnz, _D, rows_per_warp)    # values
        + warp_segment_transactions(row_nnz, _I, rows_per_warp)  # col idx
        + coalesced_transactions(nnz * _D)             # row-id expansion pass
        + coalesced_transactions(X.m * _D)             # p
        + sem_traffic + recovery
    )
    c.global_store_transactions = sem_traffic           # lock release/update
    c.atomic_global_ops = nnz
    # semaphore-guarded column updates serialize along hot columns
    c.atomic_lock_chain = contended_chain(nnz, X.column_counts())
    c.flops = 2.0 * nnz
    c.kernel_launches = 1
    c.barriers = 1
    return finish(ctx, out, c, launch, "cusparse.csrmv_transpose",
                  bandwidth_derate=SPARSE_STREAM_DERATE)


def csr2csc_kernel(X: CsrMatrix,
                   ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """Explicit device-side transposition (cuSPARSE ``csr2csc``).

    Counting-sort structure: a histogram pass (one global atomic per nnz),
    a prefix sum over columns, and a scatter pass whose writes are inherently
    uncoalesced (destination order is column-major).
    """
    csc = csr_to_csc(X)
    nnz = X.nnz
    launch = _csrmv_launch(X, ctx)
    rows_per_warp = max(1, ctx.device.warp_size // launch.vector_size)
    c = PerfCounters()
    c.global_load_transactions = (
        2 * warp_segment_transactions(X.row_nnz, _D, rows_per_warp)
        + 2 * warp_segment_transactions(X.row_nnz, _I, rows_per_warp)
        + coalesced_transactions((X.n + 1) * _I)   # offsets
    )
    # scatter: each nnz writes value+row-id to an uncoalesced position
    c.global_store_transactions = nnz * 2 * 0.25 + \
        coalesced_transactions((X.n + 1) * _I)
    c.atomic_global_ops = nnz                          # histogram pass
    c.atomic_cas_chain = contended_chain(nnz, X.column_counts())
    c.kernel_launches = 3                           # histogram, scan, scatter
    c.barriers = 3
    return finish(ctx, csc, c, launch, "cusparse.csr2csc",
                  bandwidth_derate=SPARSE_STREAM_DERATE)


def csrmv_via_explicit_transpose(X: CsrMatrix, p: np.ndarray,
                                 ctx: GpuContext = DEFAULT_CONTEXT,
                                 XT: CsrMatrix | None = None
                                 ) -> tuple[KernelResult, KernelResult | None]:
    """NVIDIA's recommended route: ``csr2csc`` once, then plain ``csrmv``.

    Returns ``(spmv_result, transpose_result_or_None)``; pass a pre-built
    ``XT`` to model the amortized steady state.
    """
    trans = None
    if XT is None:
        trans = csr2csc_kernel(X, ctx)
        csc = trans.output
        XT = CsrMatrix((X.n, X.m), csc.values, csc.row_idx, csc.col_off)
    res = csrmv(XT, p, ctx)
    res.name = "cusparse.csrmv(X^T explicit)"
    return res, trans


def bidmat_spmv(X: CsrMatrix, y: np.ndarray,
                ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """BIDMat's GPU SpMV — measured "similar to cuSPARSE" by the paper."""
    res = csrmv(X, y, ctx)
    res.counters.global_load_transactions *= 1.08   # slightly less tuned
    res.time_ms = ctx.cost_model.time_ms(res.counters,
                                         res.occupancy_fraction,
                                         res.bandwidth_derate)
    res.name = "bidmat.spmv"
    return res


def bidmat_spmv_transpose(X: CsrMatrix, p: np.ndarray,
                          ctx: GpuContext = DEFAULT_CONTEXT) -> KernelResult:
    """BIDMat's GPU transpose SpMV (same per-nnz atomic strategy)."""
    res = csrmv_transpose(X, p, ctx)
    res.counters.global_load_transactions *= 0.9    # no semaphore pass
    res.counters.atomic_lock_chain *= 0.7           # plain CAS, no locks
    res.time_ms = ctx.cost_model.time_ms(res.counters,
                                         res.occupancy_fraction,
                                         res.bandwidth_derate)
    res.name = "bidmat.spmv_transpose"
    return res
