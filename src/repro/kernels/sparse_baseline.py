"""Baseline sparse kernels: cuSPARSE-like and BIDMat-like SpMV operators.

These model the operator-level strategy the paper compares against:

* :func:`csrmv` — standard CSR-vector SpMV (``X x y``); cuSPARSE is good at
  this, and the paper explicitly does *not* claim wins on it.
* :func:`csrmv_transpose` — cuSPARSE's transpose-mode SpMV (``X^T x p``
  without materializing the transpose).  The paper measures ~3.5x more global
  load transactions than the fused kernel plus heavy semaphore/atomic
  serialization; we model that structurally (extra row-reconstruction pass,
  per-nnz global atomics contended by the column histogram).
* :func:`csr2csc_kernel` + csrmv over the result — NVIDIA's recommended
  "explicitly transpose, then SpMV" route, whose amortization cost Figure 2
  quantifies.
* :func:`bidmat_spmv` / :func:`bidmat_spmv_transpose` — BIDMat's GPU kernels,
  which the paper found to perform "similar to cuSPARSE".

Like the fused kernels, every structure-dependent accounting term lives in
a :class:`CsrmvProfile` built once per (matrix, device, ctx flags); calls
without a cached profile build one inline, so profiled and unprofiled
results are identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .. import trace
from ..gpu.atomics import ContentionProfile, contention_profile
from ..gpu.counters import PerfCounters
from ..gpu.launch import LaunchConfig, grid_for_rows
from ..gpu.memory import (coalesced_transactions, gather_transactions,
                          warp_segment_template)
from ..sparse.csc import csr_to_csc
from ..sparse.csr import CsrMatrix
from ..sparse.ops import SpmvPlan
from .base import (DEFAULT_CONTEXT, SPARSE_STREAM_DERATE, GpuContext,
                   KernelResult, finish)

if TYPE_CHECKING:
    from .codegen import CompiledSparseKernels

_D = 8   # sizeof(double)
_I = 4   # sizeof(int) on device


def vector_gather_transactions(X: CsrMatrix, ctx: GpuContext,
                               texture: bool = False) -> float:
    """Global transactions to gather ``y[col_idx[k]]`` over all non-zeros.

    The gathered vector (n doubles) almost always fits in L2 for the column
    counts studied (n <= 30M only for KDD, where gathers rarely collide),
    so after compulsory misses most gathers hit cache; texture binding
    (the fused kernel's trick) raises the hit rate further.
    """
    raw = gather_transactions(X.col_idx, itemsize=_D,
                              warp_size=ctx.device.warp_size)
    return _gather_from_raw(X, ctx, raw, texture)


def _gather_from_raw(X: CsrMatrix, ctx: GpuContext, raw: float,
                     texture: bool) -> float:
    """Fold the (expensive, structure-only) raw line count into a hit model."""
    n = X.n
    cold_lines = coalesced_transactions(n * _D)
    vec_bytes = n * _D
    if texture:
        hit = ctx.cache.texture_hit_ratio()
    else:
        hit = min(1.0, ctx.device.l2_cache_bytes / max(1.0, vec_bytes)) * 0.95
    return cold_lines + (1.0 - hit) * max(0.0, raw - cold_lines)


def _csrmv_launch(X: CsrMatrix, ctx: GpuContext) -> LaunchConfig:
    """cuSPARSE-style CSR-vector launch: BS=128, VS by mean row length."""
    mu = max(1.0, X.mean_row_nnz)
    vs = 32
    for cand in (2, 4, 8, 16, 32):
        if mu <= cand:
            vs = cand
            break
    bs = 128
    grid = grid_for_rows(X.m, bs, vs, 1)
    grid = min(grid, 8 * ctx.device.num_sms * ctx.device.max_blocks_per_sm)
    return LaunchConfig(grid, bs, registers_per_thread=32, vector_size=vs)


@dataclass
class CsrmvProfile:
    """Structure-invariant counter template for the cuSPARSE-style kernels.

    Shared by :func:`csrmv`, :func:`csrmv_transpose`, :func:`csr2csc_kernel`
    and the BIDMat variants: they all walk the same CSR arrays under the
    same launch shape, so one inspection serves the whole operator family.
    Both texture states of the y-gather are precomputed because ``texture``
    is a per-call flag, not a structural property.
    """

    launch: LaunchConfig
    occupancy_fraction: float
    spmv_plan: SpmvPlan
    m: int
    n: int
    nnz: int
    tx_values: float        # values stream, warp-segment counted
    tx_col_idx: float       # col_idx stream, warp-segment counted
    rowoff_stream: float    # coalesced (m+1) ints
    coloff_stream: float    # coalesced (n+1) ints (csr2csc offsets)
    gather_plain: float     # y gathers through L2
    gather_texture: float   # y gathers through the texture path
    m_stream: float         # coalesced m doubles (p / output)
    n_stream: float         # coalesced n doubles
    rowid_stream: float     # transpose mode: row-id expansion pass
    sem_traffic: float      # transpose mode: semaphore/output round trips
    recovery: float         # transpose mode: binary-search row recovery
    contention: ContentionProfile   # column-histogram atomic contention

    @property
    def row_pass(self) -> float:
        return self.tx_values + self.tx_col_idx

    @property
    def nbytes(self) -> int:
        return int(self.spmv_plan.nbytes) + 512


def profile_csrmv(X: CsrMatrix, ctx: GpuContext = DEFAULT_CONTEXT,
                  spmv_plan: SpmvPlan | None = None) -> CsrmvProfile:
    """One-time structure inspection for the cuSPARSE-style kernel family."""
    launch = _csrmv_launch(X, ctx)
    rows_per_warp = max(1, ctx.device.warp_size // launch.vector_size)
    seg = warp_segment_template(X.row_nnz, rows_per_warp)
    raw = gather_transactions(X.col_idx, itemsize=_D,
                              warp_size=ctx.device.warp_size)
    nnz = X.nnz
    l2 = ctx.device.l2_cache_bytes

    # Semaphore + output-line traffic per non-zero.  When w (n doubles) is
    # L2-resident the lock/update round trips mostly hit cache (32B sectors);
    # for huge column spaces (KDD2010: 30M columns) every update is a full
    # uncoalesced line out to DRAM — the regime where the paper measures
    # cuSPARSE two orders of magnitude behind.
    w_resident = X.n * _D <= l2 / 2
    sem_traffic = (0.125 if w_resident else 1.0) * nnz

    # Row-index recovery: transpose mode must map each non-zero back to its
    # row via binary search over row_off; probes beyond the L2-resident top
    # of the search tree are uncoalesced misses.
    probes = max(1.0, np.log2(max(2, X.m)))
    rowoff_bytes = (X.m + 1) * _I
    miss_frac = min(1.0, max(0.03, 1.0 - (l2 / 2) / max(1.0, rowoff_bytes)))
    recovery = probes * miss_frac * nnz

    return CsrmvProfile(
        launch=launch,
        occupancy_fraction=ctx.occupancy_for(launch).fraction(ctx.device),
        spmv_plan=spmv_plan if spmv_plan is not None else SpmvPlan(X),
        m=X.m, n=X.n, nnz=nnz,
        tx_values=seg.tx_values,
        tx_col_idx=seg.tx_col_idx,
        rowoff_stream=coalesced_transactions((X.m + 1) * _I),
        coloff_stream=coalesced_transactions((X.n + 1) * _I),
        gather_plain=_gather_from_raw(X, ctx, raw, texture=False),
        gather_texture=_gather_from_raw(X, ctx, raw, texture=True),
        m_stream=coalesced_transactions(X.m * _D),
        n_stream=coalesced_transactions(X.n * _D),
        rowid_stream=coalesced_transactions(nnz * _D),
        sem_traffic=sem_traffic,
        recovery=recovery,
        contention=contention_profile(X.column_counts()),
    )


def csrmv(X: CsrMatrix, y: np.ndarray,
          ctx: GpuContext = DEFAULT_CONTEXT,
          texture: bool = False,
          profile: CsrmvProfile | None = None,
          compiled: "CompiledSparseKernels | None" = None) -> KernelResult:
    """cuSPARSE-like ``X @ y`` (CSR-vector with warp reduction).

    ``compiled`` dispatches the numeric side through the generated AOT
    kernel (bit-identical); event accounting is dispatch-independent.
    """
    if profile is None:
        profile = profile_csrmv(X, ctx)
    pr = profile
    if compiled is not None:
        with trace.span("spmv", "kernel", kernel="cusparse.csrmv",
                        compiled=True) as sp:
            out = compiled.spmv(y)
            sp.count(nnz=pr.nnz)
    else:
        with trace.span("spmv", "kernel", kernel="cusparse.csrmv") as sp:
            out = pr.spmv_plan.spmv(y)
            sp.count(nnz=pr.nnz)
    c = PerfCounters()
    c.global_load_transactions = (
        pr.tx_values                       # values
        + pr.tx_col_idx                    # col idx
        + pr.rowoff_stream                 # row offsets
        + (pr.gather_texture if texture else pr.gather_plain)
    )
    c.global_store_transactions = pr.m_stream
    c.flops = 2.0 * pr.nnz
    c.shared_accesses = pr.m / 4       # warp-reduction spill per row
    c.kernel_launches = 1
    c.barriers = 1
    return finish(ctx, out, c, pr.launch, "cusparse.csrmv",
                  occupancy_fraction=pr.occupancy_fraction,
                  bandwidth_derate=SPARSE_STREAM_DERATE)


def csrmv_transpose(X: CsrMatrix, p: np.ndarray,
                    ctx: GpuContext = DEFAULT_CONTEXT,
                    profile: CsrmvProfile | None = None,
                    compiled: "CompiledSparseKernels | None" = None
                    ) -> KernelResult:
    """cuSPARSE-like transpose-mode SpMV: ``X^T @ p`` on the CSR arrays.

    Structural cost story (cuSPARSE is closed-source; the paper infers the
    behaviour from profiler counters): one coalesced pass over values and
    column indices, an extra pass's worth of traffic to recover row ids and
    manage per-column semaphores, and one global atomic per non-zero into the
    output — serialized by hot columns.
    """
    if profile is None:
        profile = profile_csrmv(X, ctx)
    pr = profile
    if compiled is not None:
        with trace.span("xt-accumulate", "kernel",
                        kernel="cusparse.csrmv_transpose",
                        compiled=True) as sp:
            out = compiled.spmv_t(p)
            sp.count(nnz=pr.nnz)
    else:
        with trace.span("xt-accumulate", "kernel",
                        kernel="cusparse.csrmv_transpose") as sp:
            out = pr.spmv_plan.spmv_t(p)
            sp.count(nnz=pr.nnz)
    c = PerfCounters()
    c.global_load_transactions = (
        pr.tx_values                       # values
        + pr.tx_col_idx                    # col idx
        + pr.rowid_stream                  # row-id expansion pass
        + pr.m_stream                      # p
        + pr.sem_traffic + pr.recovery
    )
    c.global_store_transactions = pr.sem_traffic   # lock release/update
    c.atomic_global_ops = pr.nnz
    # semaphore-guarded column updates serialize along hot columns
    c.atomic_lock_chain = pr.contention.chain(pr.nnz)
    c.flops = 2.0 * pr.nnz
    c.kernel_launches = 1
    c.barriers = 1
    return finish(ctx, out, c, pr.launch, "cusparse.csrmv_transpose",
                  occupancy_fraction=pr.occupancy_fraction,
                  bandwidth_derate=SPARSE_STREAM_DERATE)


def csr2csc_kernel(X: CsrMatrix,
                   ctx: GpuContext = DEFAULT_CONTEXT,
                   profile: CsrmvProfile | None = None) -> KernelResult:
    """Explicit device-side transposition (cuSPARSE ``csr2csc``).

    Counting-sort structure: a histogram pass (one global atomic per nnz),
    a prefix sum over columns, and a scatter pass whose writes are inherently
    uncoalesced (destination order is column-major).
    """
    if profile is None:
        profile = profile_csrmv(X, ctx)
    pr = profile
    with trace.span("csr2csc", "kernel") as sp:
        csc = csr_to_csc(X)
        sp.count(nnz=pr.nnz)
    nnz = pr.nnz
    c = PerfCounters()
    c.global_load_transactions = (
        2 * pr.tx_values
        + 2 * pr.tx_col_idx
        + pr.coloff_stream                 # offsets
    )
    # scatter: each nnz writes value+row-id to an uncoalesced position
    c.global_store_transactions = nnz * 2 * 0.25 + pr.coloff_stream
    c.atomic_global_ops = nnz                          # histogram pass
    c.atomic_cas_chain = pr.contention.chain(nnz)
    c.kernel_launches = 3                           # histogram, scan, scatter
    c.barriers = 3
    return finish(ctx, csc, c, pr.launch, "cusparse.csr2csc",
                  occupancy_fraction=pr.occupancy_fraction,
                  bandwidth_derate=SPARSE_STREAM_DERATE)


def csrmv_via_explicit_transpose(X: CsrMatrix, p: np.ndarray,
                                 ctx: GpuContext = DEFAULT_CONTEXT,
                                 XT: CsrMatrix | None = None,
                                 profile: CsrmvProfile | None = None
                                 ) -> tuple[KernelResult, KernelResult | None]:
    """NVIDIA's recommended route: ``csr2csc`` once, then plain ``csrmv``.

    Returns ``(spmv_result, transpose_result_or_None)``; pass a pre-built
    ``XT`` to model the amortized steady state.  ``profile``, when given,
    is the :class:`CsrmvProfile` of the *transposed* matrix (the operand of
    the steady-state ``csrmv``).
    """
    trans = None
    if XT is None:
        trans = csr2csc_kernel(X, ctx)
        csc = trans.output
        XT = CsrMatrix((X.n, X.m), csc.values, csc.row_idx, csc.col_off)
    res = csrmv(XT, p, ctx, profile=profile)
    res.name = "cusparse.csrmv(X^T explicit)"
    return res, trans


def bidmat_spmv(X: CsrMatrix, y: np.ndarray,
                ctx: GpuContext = DEFAULT_CONTEXT,
                profile: CsrmvProfile | None = None) -> KernelResult:
    """BIDMat's GPU SpMV — measured "similar to cuSPARSE" by the paper."""
    res = csrmv(X, y, ctx, profile=profile)
    res.counters.global_load_transactions *= 1.08   # slightly less tuned
    res.time_ms = ctx.cost_model.time_ms(res.counters,
                                         res.occupancy_fraction,
                                         res.bandwidth_derate)
    res.name = "bidmat.spmv"
    return res


def bidmat_spmv_transpose(X: CsrMatrix, p: np.ndarray,
                          ctx: GpuContext = DEFAULT_CONTEXT,
                          profile: CsrmvProfile | None = None) -> KernelResult:
    """BIDMat's GPU transpose SpMV (same per-nnz atomic strategy)."""
    res = csrmv_transpose(X, p, ctx, profile=profile)
    res.counters.global_load_transactions *= 0.9    # no semaphore pass
    res.counters.atomic_lock_chain *= 0.7           # plain CAS, no locks
    res.time_ms = ctx.cost_model.time_ms(res.counters,
                                         res.occupancy_fraction,
                                         res.bandwidth_derate)
    res.name = "bidmat.spmv_transpose"
    return res
