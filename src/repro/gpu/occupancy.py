"""CUDA occupancy calculator for the simulated device.

Reimplements the resource arithmetic of NVIDIA's occupancy-calculator
spreadsheet (referenced by the paper in Section 3.3) for compute capability
3.5: the number of blocks an SM can host is the minimum of the limits imposed
by (i) resident threads/blocks, (ii) the register file with per-warp
allocation granularity, and (iii) shared memory with its allocation unit.

The tuner (:mod:`repro.tuning`) uses :func:`occupancy` to pick the block size
that maximizes resident warps, exactly as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec


def _ceil_to(value: int, unit: int) -> int:
    """Round ``value`` up to a multiple of ``unit``."""
    if unit <= 0:
        raise ValueError("granularity must be positive")
    return -(-value // unit) * unit


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy computation for one launch shape."""

    blocks_per_sm: int
    warps_per_block: int
    limited_by: str

    @property
    def warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block

    @property
    def threads_per_sm(self) -> int:
        return self.warps_per_sm * 32

    def fraction(self, device: DeviceSpec) -> float:
        """Occupancy as the fraction of the device's maximum resident warps."""
        if self.blocks_per_sm == 0:
            return 0.0
        return self.warps_per_sm / device.max_warps_per_sm


def occupancy(device: DeviceSpec, block_size: int,
              registers_per_thread: int, shared_bytes: int) -> Occupancy:
    """Compute achievable occupancy for a launch shape on ``device``.

    Returns ``blocks_per_sm == 0`` (with the limiting resource named) when the
    block cannot be scheduled at all — e.g. it requests more shared memory or
    registers than one SM owns.
    """
    if block_size < 1 or block_size > device.max_threads_per_block:
        return Occupancy(0, 0, "block-size")

    warp = device.warp_size
    warps_per_block = -(-block_size // warp)

    # Limit 1: resident threads / resident blocks.
    by_blocks = device.max_blocks_per_sm
    by_threads = device.max_warps_per_sm // warps_per_block
    limit_threads = min(by_blocks, by_threads)

    # Limit 2: register file.  Registers are allocated per warp, rounded up to
    # the allocation unit; the warp count itself is rounded to the warp
    # allocation granularity.
    if registers_per_thread > device.max_registers_per_thread:
        return Occupancy(0, warps_per_block, "registers-per-thread")
    if registers_per_thread > 0:
        regs_per_warp = _ceil_to(registers_per_thread * warp,
                                 device.register_allocation_unit)
        warps_alloc = _ceil_to(warps_per_block,
                               device.warp_allocation_granularity)
        regs_per_block = regs_per_warp * warps_alloc
        if regs_per_block > device.max_registers_per_block:
            return Occupancy(0, warps_per_block, "registers-per-block")
        limit_regs = device.registers_per_sm // regs_per_block
    else:
        limit_regs = limit_threads

    # Limit 3: shared memory, with its allocation unit.
    if shared_bytes > device.shared_memory_per_block:
        return Occupancy(0, warps_per_block, "shared-memory-per-block")
    if shared_bytes > 0:
        shm_alloc = _ceil_to(shared_bytes, device.shared_memory_allocation_unit)
        limit_shm = device.shared_memory_per_sm // shm_alloc
    else:
        limit_shm = limit_threads

    blocks = min(limit_threads, limit_regs, limit_shm)
    if blocks == limit_threads and limit_threads <= min(limit_regs, limit_shm):
        reason = "threads" if by_threads <= by_blocks else "blocks"
    elif blocks == limit_regs:
        reason = "registers"
    else:
        reason = "shared-memory"
    return Occupancy(max(0, blocks), warps_per_block, reason)


def best_block_size(device: DeviceSpec, registers_per_thread: int,
                    shared_bytes_fn, candidates=None) -> tuple[int, Occupancy]:
    """Pick the block size maximizing resident warps per SM.

    ``shared_bytes_fn(block_size)`` returns the dynamic shared-memory request
    for a given block size (the fused sparse kernel needs
    ``(BS/VS + n) * sizeof(double)``, so the request depends on BS).
    Ties are broken toward the *largest* block size, following the paper's
    goal of maximizing coarsening while keeping occupancy maximal.
    """
    if candidates is None:
        candidates = [w * device.warp_size for w in range(1, 33)]
    best: tuple[int, Occupancy] | None = None
    for bs in candidates:
        if bs > device.max_threads_per_block:
            continue
        occ = occupancy(device, bs, registers_per_thread, shared_bytes_fn(bs))
        if occ.blocks_per_sm == 0:
            continue
        if best is None or occ.warps_per_sm > best[1].warps_per_sm or (
            occ.warps_per_sm == best[1].warps_per_sm and bs > best[0]
        ):
            best = (bs, occ)
    if best is None:
        raise ValueError("no schedulable block size for the given resources")
    return best
