"""Simulated GPU substrate: device specs, SIMT semantics, and cost models.

This package replaces the paper's physical NVIDIA GTX Titan.  Kernels execute
functionally (vectorized NumPy or the :mod:`~repro.gpu.simt` interpreter) and
report the hardware events a Kepler GPU would generate; the
:class:`~repro.gpu.costmodel.CostModel` turns those events into model time.
"""

from .atomics import AtomicBatch, effective_addresses, global_atomic_batch, \
    shared_atomic_batch, uniform_weights
from .balance import gini, vector_load_cv, warp_idle_fraction
from .counters import PerfCounters, merge
from .costmodel import CostModel, TimeBreakdown
from .cpu import CORE_I7, CpuCostModel, CpuSpec
from .device import GTX_TITAN, K20X, PRESETS, TINY_CC35, DeviceSpec, get_device
from .launch import LaunchConfig, grid_for_rows
from .memory import (CacheModel, coalesced_transactions, gather_transactions,
                     segment_transactions, shared_bank_conflict_replays,
                     uncoalesced_transactions)
from .occupancy import Occupancy, best_block_size, occupancy
from .simt import (BARRIER, AccessRecord, DeadlockError, LaunchStats,
                   RaceEvent, SanitizerReport, ShadowArray, ShflDown, ShflXor,
                   SimtEngine, ThreadCtx, warp_allreduce_sum, warp_reduce_sum)
from .trace import KernelSummary, TraceReport, summarize, tracing
from .transfer import TransferModel

__all__ = [
    "AtomicBatch", "effective_addresses", "global_atomic_batch",
    "shared_atomic_batch", "uniform_weights",
    "gini", "vector_load_cv", "warp_idle_fraction",
    "PerfCounters", "merge",
    "CostModel", "TimeBreakdown",
    "CORE_I7", "CpuCostModel", "CpuSpec",
    "GTX_TITAN", "K20X", "PRESETS", "TINY_CC35", "DeviceSpec", "get_device",
    "LaunchConfig", "grid_for_rows",
    "CacheModel", "coalesced_transactions", "gather_transactions",
    "segment_transactions", "shared_bank_conflict_replays",
    "uncoalesced_transactions",
    "Occupancy", "best_block_size", "occupancy",
    "BARRIER", "AccessRecord", "DeadlockError", "LaunchStats", "RaceEvent",
    "SanitizerReport", "ShadowArray", "ShflDown", "ShflXor",
    "SimtEngine", "ThreadCtx", "warp_allreduce_sum", "warp_reduce_sum",
    "KernelSummary", "TraceReport", "summarize", "tracing",
    "TransferModel",
]
