"""Kernel-trace analysis: an nvprof-like view of a simulated run.

Attach a trace list to a :class:`~repro.kernels.base.GpuContext` (or use
:func:`tracing`) and every kernel the context executes records its
:class:`~repro.kernels.base.KernelResult`.  :func:`summarize` aggregates the
timeline into per-kernel rows — calls, total/mean time, load transactions,
atomics — the way the paper's authors read the NVIDIA Visual Profiler to
find the 43-registers-per-thread figure and the load-transaction counts of
Figure 2.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class KernelSummary:
    """Aggregated statistics for one kernel name."""

    name: str
    calls: int = 0
    total_ms: float = 0.0
    load_transactions: float = 0.0
    store_transactions: float = 0.0
    atomic_ops: float = 0.0
    flops: float = 0.0

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.calls if self.calls else 0.0


@dataclass
class TraceReport:
    """A full trace summary, ordered by total time (hot kernels first)."""

    kernels: list[KernelSummary] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return sum(k.total_ms for k in self.kernels)

    @property
    def total_calls(self) -> int:
        return sum(k.calls for k in self.kernels)

    def fraction(self, name: str) -> float:
        t = self.total_ms
        for k in self.kernels:
            if k.name == name:
                return k.total_ms / t if t else 0.0
        return 0.0

    def __getitem__(self, name: str) -> KernelSummary:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)

    def to_text(self) -> str:
        lines = [f"{'kernel':<38} {'calls':>6} {'total ms':>10} "
                 f"{'mean ms':>9} {'%':>6} {'loads':>12}"]
        total = self.total_ms or 1.0
        for k in self.kernels:
            lines.append(
                f"{k.name:<38} {k.calls:>6d} {k.total_ms:>10.4f} "
                f"{k.mean_ms:>9.4f} {100 * k.total_ms / total:>5.1f}% "
                f"{k.load_transactions:>12.0f}")
        return "\n".join(lines)


def summarize(trace: list) -> TraceReport:
    """Aggregate a kernel trace (list of ``KernelResult``) by kernel name."""
    by_name: dict[str, KernelSummary] = {}
    for res in trace:
        s = by_name.setdefault(res.name or "kernel",
                               KernelSummary(res.name or "kernel"))
        s.calls += 1
        s.total_ms += res.time_ms
        s.load_transactions += res.counters.global_load_transactions
        s.store_transactions += res.counters.global_store_transactions
        s.atomic_ops += res.counters.atomic_global_ops
        s.flops += res.counters.flops
    report = TraceReport(sorted(by_name.values(),
                                key=lambda k: -k.total_ms))
    return report


@contextmanager
def tracing(ctx):
    """Temporarily attach a trace to a context::

        with tracing(ctx) as trace:
            evaluate(X, y, ctx=ctx)
        print(summarize(trace).to_text())
    """
    previous = ctx.trace
    trace: list = []
    ctx.trace = trace
    try:
        yield trace
    finally:
        ctx.trace = previous
