"""Device specifications for the simulated GPU substrate.

The reproduction has no physical GPU; instead, kernels execute functionally
(NumPy or the SIMT interpreter) and report hardware *events* to a
:class:`~repro.gpu.counters.PerfCounters`.  A :class:`DeviceSpec` carries the
architectural constants needed to (a) validate launch configurations,
(b) compute occupancy exactly like NVIDIA's occupancy calculator, and
(c) convert event counts into model time.

The default preset mirrors the paper's evaluation hardware, an NVIDIA GeForce
GTX Titan (compute capability 3.5): 14 SMs x 192 cores, 6 GB global memory at
288 GB/s, 48 KB shared memory and 64K 32-bit registers per SM, warps of 32
threads, at most 2,048 resident threads and 16 resident blocks per SM.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of a simulated CUDA device.

    All sizes are in bytes unless noted.  Throughput figures are the knobs of
    the analytical cost model; they are calibrated to first-order published
    numbers for the Kepler generation and only their *ratios* matter for the
    reproduced experiments.
    """

    name: str = "device"
    compute_capability: tuple[int, int] = (3, 5)

    # --- parallel structure -------------------------------------------------
    num_sms: int = 14
    cores_per_sm: int = 192
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    max_warps_per_sm: int = 64
    max_grid_dim_x: int = 2**31 - 1

    # --- register file ------------------------------------------------------
    registers_per_sm: int = 65536          # 32-bit registers
    max_registers_per_thread: int = 255
    max_registers_per_block: int = 65536
    register_allocation_unit: int = 256    # registers, per-warp granularity
    warp_allocation_granularity: int = 4   # warps

    # --- memories -----------------------------------------------------------
    shared_memory_per_sm: int = 49152
    shared_memory_per_block: int = 49152
    shared_memory_allocation_unit: int = 256
    shared_memory_banks: int = 32
    global_memory_bytes: int = 6 * 1024**3
    l2_cache_bytes: int = 1536 * 1024
    texture_cache_bytes_per_sm: int = 48 * 1024
    memory_transaction_bytes: int = 128    # coalesced global transaction size

    # --- throughputs (model constants) --------------------------------------
    global_bandwidth_gbps: float = 288.0      # GB/s, ECC off
    shared_bandwidth_gbps: float = 1300.0     # aggregate across SMs
    peak_gflops_double: float = 1300.0        # double-precision GFLOP/s
    atomic_global_ns: float = 1.2             # per serialized global-atomic replay
    atomic_shared_ns: float = 0.4             # per serialized shared-atomic replay
    kernel_launch_us: float = 5.0             # per kernel launch
    sync_us: float = 0.6                      # per block-wide barrier wave
    texture_hit_ratio: float = 0.97           # cache hit rate for bound vectors

    # --- host link (PCIe Gen3 x16) ------------------------------------------
    pcie_bandwidth_gbps: float = 12.0         # effective host<->device GB/s
    pcie_latency_us: float = 10.0

    def validate(self) -> None:
        """Raise ``ValueError`` if the spec is internally inconsistent."""
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ValueError("warp_size must be a positive power of two")
        if self.max_threads_per_block > self.max_threads_per_sm:
            raise ValueError("a block cannot exceed the per-SM thread limit")
        if self.max_warps_per_sm * self.warp_size != self.max_threads_per_sm:
            raise ValueError("max_warps_per_sm inconsistent with thread limit")
        if self.shared_memory_per_block > self.shared_memory_per_sm:
            raise ValueError("per-block shared memory exceeds per-SM capacity")
        if self.registers_per_sm <= 0 or self.num_sms <= 0:
            raise ValueError("resource counts must be positive")

    # Convenience -------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def global_bandwidth_bytes_per_ms(self) -> float:
        return self.global_bandwidth_gbps * 1e9 / 1e3

    @property
    def pcie_bandwidth_bytes_per_ms(self) -> float:
        return self.pcie_bandwidth_gbps * 1e9 / 1e3

    def with_(self, **kwargs) -> "DeviceSpec":
        """Return a copy with the given fields replaced (for ablations)."""
        return replace(self, **kwargs)


#: The paper's evaluation device (NVIDIA GeForce GTX Titan, CC 3.5).
GTX_TITAN = DeviceSpec(name="GTX Titan")

#: A Tesla K20X-like preset (same generation, fewer SMs, ECC on).
K20X = DeviceSpec(
    name="K20X",
    num_sms=14,
    global_bandwidth_gbps=250.0 * 0.8,
    peak_gflops_double=1170.0,
    global_memory_bytes=6 * 1024**3,
)

#: A deliberately small device used by tests to hit resource limits quickly.
TINY_CC35 = DeviceSpec(
    name="tiny-cc35",
    num_sms=2,
    cores_per_sm=64,
    registers_per_sm=8192,
    shared_memory_per_sm=8192,
    shared_memory_per_block=8192,
    max_threads_per_sm=512,
    max_warps_per_sm=16,
    max_threads_per_block=256,
    max_blocks_per_sm=4,
    global_memory_bytes=64 * 1024**2,
)

PRESETS: dict[str, DeviceSpec] = {
    "gtx-titan": GTX_TITAN,
    "k20x": K20X,
    "tiny-cc35": TINY_CC35,
}


def get_device(name: str = "gtx-titan") -> DeviceSpec:
    """Look up a device preset by name.

    >>> get_device("gtx-titan").num_sms
    14
    """
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(PRESETS)}"
        ) from None
