"""A functional SIMT interpreter: blocks, warps, lanes, shared memory.

This module executes CUDA-style kernels *semantically*: a kernel is a Python
generator function run once per thread, with real shared-memory arrays per
block, warp-level shuffle exchanges, block-wide barriers, and atomic
read-modify-write operations.  It exists to validate the fast vectorized
kernels in :mod:`repro.kernels` — the per-thread renditions of the paper's
Algorithms 1-3 (:mod:`repro.kernels.simt_kernels`) must produce bit-identical
results, which pins down the aggregation hierarchy (registers -> shared
memory -> global memory) and its synchronization points.

Kernel convention
-----------------
A kernel is a generator function ``kernel(ctx, *args)`` where ``ctx`` is a
:class:`ThreadCtx`.  Synchronization points are expressed as ``yield``::

    yield BARRIER                      # __syncthreads()
    got = yield ShflDown(val, 1, 16)   # __shfl_down_sync within width 16

Threads in a warp execute in lockstep only at these yield points; between
them, the interpreter runs each thread to its next suspension.  That is
sufficient for the paper's kernels, whose warp-synchronous sections are all
expressed through shuffles, shared memory plus barriers, or atomics.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from .device import DeviceSpec, TINY_CC35


class Sync:
    """Marker type for block-wide barriers."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BARRIER"


BARRIER = Sync()


@dataclass(frozen=True)
class ShflDown:
    """Warp shuffle: lane ``i`` receives the value of lane ``i + delta``
    within each ``width``-lane subgroup (own value if out of range)."""

    value: float
    delta: int
    width: int = 32


@dataclass(frozen=True)
class ShflXor:
    """Warp shuffle: lane ``i`` exchanges with lane ``i ^ mask``."""

    value: float
    mask: int
    width: int = 32


@dataclass
class LaunchStats:
    """Events observed while interpreting one launch."""

    atomic_global: int = 0
    atomic_shared: int = 0
    barriers: int = 0
    shuffles: int = 0
    threads_run: int = 0


class DeadlockError(RuntimeError):
    """Raised when threads are parked inconsistently (e.g. divergent barrier)."""


@dataclass(frozen=True)
class AccessRecord:
    """One recorded memory access in sanitizer mode."""

    block: int
    tid: int
    epoch: int       # barrier interval within the block
    op: str          # "read" | "write" | "atomic"


@dataclass(frozen=True)
class RaceEvent:
    """A happens-before violation found by the race sanitizer.

    Two accesses to the same cell conflict when at least one is a write,
    they are not both atomic, and no barrier orders them: either they come
    from different blocks (no inter-block barrier exists — Section 3.1), or
    from different threads of one block within the same barrier epoch.
    """

    space: str                 # "shared" | "global"
    array: str                 # parameter name of the kernel
    index: Any                 # the cell both accesses touched
    first: AccessRecord
    second: AccessRecord

    def describe(self) -> str:
        return (f"{self.space} race on {self.array}[{self.index}]: "
                f"{self.first.op} by (block {self.first.block}, "
                f"tid {self.first.tid}, epoch {self.first.epoch}) vs "
                f"{self.second.op} by (block {self.second.block}, "
                f"tid {self.second.tid}, epoch {self.second.epoch})")


def _ordered(a: AccessRecord, b: AccessRecord) -> bool:
    """Whether a barrier orders the two accesses (same-thread is ordered)."""
    if a.block != b.block:
        return False                      # no inter-block barrier exists
    return a.tid == b.tid or a.epoch != b.epoch


class ShadowArray:
    """Array wrapper used in sanitizer mode: records reads/writes per cell.

    Plain ``arr[i]`` loads and stores are recorded as they happen; the
    atomic entry points on :class:`ThreadCtx` record ``"atomic"`` instead.
    Augmented stores (``arr[i] += v``) decompose into a recorded read plus
    a recorded write, which is exactly the non-atomicity the sanitizer must
    see.  The wrapped ndarray is mutated in place, so callers holding the
    raw array observe the kernel's output unchanged.
    """

    __slots__ = ("data", "name", "space", "_engine", "_cells")

    def __init__(self, data: np.ndarray, name: str, space: str,
                 engine: "SimtEngine"):
        self.data = data
        self.name = name
        self.space = space
        self._engine = engine
        # cell -> {"read": set[AccessRecord-key], "write": ..., "atomic": ...}
        self._cells: dict[Any, dict[str, set[AccessRecord]]] = {}

    # -- ndarray surface the kernels rely on --------------------------- #
    @property
    def shape(self):
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, idx):
        self.record(idx, "read")
        return self.data[idx]

    def __setitem__(self, idx, value) -> None:
        self.record(idx, "write")
        self.data[idx] = value

    # -- shadow bookkeeping -------------------------------------------- #
    @staticmethod
    def _cell(idx) -> Any:
        if isinstance(idx, tuple):
            return tuple(int(i) for i in idx)
        return int(idx)

    def record(self, idx, op: str) -> None:
        try:
            cell = self._cell(idx)
        except (TypeError, ValueError):   # slice/fancy index: not a cell op
            return
        eng = self._engine
        rec = AccessRecord(eng._cur_block, eng._cur_tid, eng._cur_epoch, op)
        slots = self._cells.setdefault(
            cell, {"read": set(), "write": set(), "atomic": set()})
        against = {"read": ("write", "atomic"),
                   "write": ("read", "write", "atomic"),
                   "atomic": ("read", "write")}[op]
        for other_op in against:
            for prev in slots[other_op]:
                if not _ordered(prev, rec):
                    eng._report_race(self, cell, prev, rec)
                    break                  # one witness per op pair suffices
        slots[op].add(rec)


class SanitizerReport:
    """Races observed during sanitized launches (deduplicated)."""

    MAX_EVENTS = 256

    WITNESSES_PER_CLASS = 4

    def __init__(self) -> None:
        self.events: list[RaceEvent] = []
        self._per_class: dict[tuple, int] = {}
        self.dropped = 0

    def add(self, event: RaceEvent) -> None:
        key = (event.space, event.array,
               frozenset((event.first.op, event.second.op)))
        if (self._per_class.get(key, 0) >= self.WITNESSES_PER_CLASS
                or len(self.events) >= self.MAX_EVENTS):
            self.dropped += 1
            return
        self._per_class[key] = self._per_class.get(key, 0) + 1
        self.events.append(event)

    def kinds(self) -> set[str]:
        """Map observed races onto the static finding taxonomy."""
        return {f"{e.space}-race" for e in self.events}

    def __bool__(self) -> bool:
        return bool(self.events)


class ThreadCtx:
    """Per-thread view handed to a kernel."""

    __slots__ = ("tid", "block_id", "block_size", "grid_size", "shared",
                 "_engine")

    def __init__(self, tid: int, block_id: int, block_size: int,
                 grid_size: int, shared: np.ndarray, engine: "SimtEngine"):
        self.tid = tid                      # threadIdx.x
        self.block_id = block_id            # blockIdx.x
        self.block_size = block_size        # blockDim.x
        self.grid_size = grid_size          # gridDim.x
        self.shared = shared                # block-shared array
        self._engine = engine

    @property
    def global_tid(self) -> int:
        return self.block_id * self.block_size + self.tid

    @property
    def grid_threads(self) -> int:
        return self.grid_size * self.block_size

    @property
    def lane(self) -> int:
        return self.tid % self._engine.device.warp_size

    @property
    def warp(self) -> int:
        return self.tid // self._engine.device.warp_size

    def atomic_add(self, array, index: int, value: float) -> float:
        """Atomic read-modify-write on global memory; returns the old value."""
        if isinstance(array, ShadowArray):
            array.record(index, "atomic")
            array = array.data
        old = array[index]
        array[index] = old + value
        self._engine.stats.atomic_global += 1
        return old

    def atomic_add_shared(self, index: int, value: float) -> float:
        """Atomic add targeting this block's shared memory."""
        shared = self.shared
        if isinstance(shared, ShadowArray):
            shared.record(index, "atomic")
            shared = shared.data
        old = shared[index]
        shared[index] = old + value
        self._engine.stats.atomic_shared += 1
        return old


class SimtEngine:
    """Interprets kernel launches block by block.

    Blocks are independent in CUDA (no inter-block barrier exists — the paper
    leans on this in Section 3.1), so interpreting them sequentially is
    faithful as long as inter-block communication happens only through
    atomics, which remain atomic under sequential execution.
    """

    def __init__(self, device: DeviceSpec = TINY_CC35,
                 sanitize: bool = False):
        self.device = device
        self.stats = LaunchStats()
        self.sanitize = sanitize
        self.report = SanitizerReport()
        # sanitizer bookkeeping: which thread the interpreter is currently
        # advancing, and the barrier epoch of the block being run
        self._cur_block = 0
        self._cur_tid = 0
        self._cur_epoch = 0

    def _report_race(self, shadow: ShadowArray, cell,
                     first: AccessRecord, second: AccessRecord) -> None:
        self.report.add(RaceEvent(shadow.space, shadow.name, cell,
                                  first, second))

    def _wrap_args(self, kernel, args: tuple) -> tuple:
        """Shadow every ndarray argument, labeled by kernel parameter name."""
        try:
            names = [p.name for p in
                     inspect.signature(kernel).parameters.values()][1:]
        except (TypeError, ValueError):    # builtins/partials: fall back
            names = []
        wrapped = []
        for i, a in enumerate(args):
            if isinstance(a, np.ndarray):
                label = names[i] if i < len(names) else f"arg{i}"
                wrapped.append(ShadowArray(a, label, "global", self))
            else:
                wrapped.append(a)
        return tuple(wrapped)

    def launch(self, kernel: Callable[..., Iterator[Any]], grid_size: int,
               block_size: int, args: tuple = (),
               shared_doubles: int = 0) -> LaunchStats:
        """Run ``kernel`` over a ``grid_size x block_size`` launch."""
        if block_size < 1 or block_size > self.device.max_threads_per_block:
            raise ValueError(f"invalid block size {block_size}")
        if shared_doubles * 8 > self.device.shared_memory_per_block:
            raise ValueError("shared memory request exceeds per-block limit")
        self.stats = LaunchStats()
        if self.sanitize:
            self.report = SanitizerReport()
            args = self._wrap_args(kernel, args)
        for block_id in range(grid_size):
            self._run_block(kernel, block_id, grid_size, block_size,
                            args, shared_doubles)
        return self.stats

    # ------------------------------------------------------------------ #
    def _run_block(self, kernel, block_id: int, grid_size: int,
                   block_size: int, args: tuple, shared_doubles: int) -> None:
        shared: Any = np.zeros(max(1, shared_doubles), dtype=np.float64)
        if self.sanitize:
            shared = ShadowArray(shared, "shared", "shared", self)
            self._cur_block = block_id
            self._cur_epoch = 0
        threads: list[Iterator | None] = []
        parked: list[Any] = [None] * block_size   # token each thread waits on
        sendval: list[Any] = [None] * block_size  # value to resume with
        for tid in range(block_size):
            ctx = ThreadCtx(tid, block_id, block_size, grid_size,
                            shared, self)
            threads.append(kernel(ctx, *args))
            self.stats.threads_run += 1

        live = set(range(block_size))
        warp = self.device.warp_size

        def advance(tid: int) -> None:
            gen = threads[tid]
            assert gen is not None
            self._cur_tid = tid
            try:
                token = gen.send(sendval[tid]) if parked[tid] is not None \
                    else next(gen)
            except StopIteration:
                threads[tid] = None
                parked[tid] = None
                live.discard(tid)
                return
            parked[tid] = token
            sendval[tid] = None

        # First advance: run every thread to its first suspension or the end.
        for tid in list(live):
            parked[tid] = None
            advance(tid)

        while live:
            progressed = False
            # Resolve warp-local shuffles first: a warp whose live lanes are
            # all parked at shuffles can proceed without the rest of the block.
            for w0 in range(0, block_size, warp):
                lanes = [t for t in range(w0, min(w0 + warp, block_size))]
                live_lanes = [t for t in lanes if t in live]
                if not live_lanes:
                    continue
                toks = [parked[t] for t in live_lanes]
                if all(isinstance(tk, (ShflDown, ShflXor)) for tk in toks):
                    self._resolve_shuffles(lanes, live, parked, sendval, w0)
                    for t in live_lanes:
                        advance(t)
                    progressed = True
            if progressed:
                continue
            # Block-wide barrier: every live thread must be parked on it.
            if live and all(isinstance(parked[t], Sync) for t in live):
                self.stats.barriers += 1
                self._cur_epoch += 1       # the barrier orders epochs
                for t in list(live):
                    sendval[t] = None
                    advance(t)
                continue
            if not live:
                break
            kinds = {type(parked[t]).__name__ for t in live}
            raise DeadlockError(
                f"block {block_id}: threads parked inconsistently on {kinds} "
                "(divergent barrier or incomplete warp shuffle)"
            )

    def _resolve_shuffles(self, lanes, live, parked, sendval, w0) -> None:
        """Exchange values for one warp's worth of shuffle tokens."""
        self.stats.shuffles += 1
        values: dict[int, float] = {}
        for t in lanes:
            if t in live:
                values[t - w0] = parked[t].value
        for t in lanes:
            if t not in live:
                continue
            tok = parked[t]
            lane = t - w0
            width = tok.width
            group = (lane // width) * width
            if isinstance(tok, ShflDown):
                src = lane + tok.delta
            else:
                src = lane ^ tok.mask
            if group <= src < group + width and (w0 + src) in [
                l for l in lanes
            ]:
                sendval[t] = values.get(src, tok.value)
            else:
                sendval[t] = tok.value


def warp_allreduce_sum(ctx: ThreadCtx, value: float, width: int):
    """Generator helper: butterfly (xor) all-reduce within ``width`` lanes.

    Every lane of each ``width``-lane group ends with the group sum — the
    idiom kernels use when all cooperating threads need the reduced value
    (e.g. Algorithm 2 broadcasting ``p[r]`` to the whole vector).
    """
    mask = width // 2
    while mask >= 1:
        other = yield ShflXor(value, mask, width)
        value = value + other
        mask //= 2
    return value


def warp_reduce_sum(ctx: ThreadCtx, value: float, width: int):
    """Generator helper: shuffle-based intra-vector sum reduction.

    After completion, lane 0 of each ``width``-lane group holds the group sum
    (other lanes hold partial sums, as on real hardware).  Usage::

        total = yield from warp_reduce_sum(ctx, partial, VS)
    """
    offset = width // 2
    while offset >= 1:
        other = yield ShflDown(value, offset, width)
        value = value + other
        offset //= 2
    return value
