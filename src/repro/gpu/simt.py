"""A functional SIMT interpreter: blocks, warps, lanes, shared memory.

This module executes CUDA-style kernels *semantically*: a kernel is a Python
generator function run once per thread, with real shared-memory arrays per
block, warp-level shuffle exchanges, block-wide barriers, and atomic
read-modify-write operations.  It exists to validate the fast vectorized
kernels in :mod:`repro.kernels` — the per-thread renditions of the paper's
Algorithms 1-3 (:mod:`repro.kernels.simt_kernels`) must produce bit-identical
results, which pins down the aggregation hierarchy (registers -> shared
memory -> global memory) and its synchronization points.

Kernel convention
-----------------
A kernel is a generator function ``kernel(ctx, *args)`` where ``ctx`` is a
:class:`ThreadCtx`.  Synchronization points are expressed as ``yield``::

    yield BARRIER                      # __syncthreads()
    got = yield ShflDown(val, 1, 16)   # __shfl_down_sync within width 16

Threads in a warp execute in lockstep only at these yield points; between
them, the interpreter runs each thread to its next suspension.  That is
sufficient for the paper's kernels, whose warp-synchronous sections are all
expressed through shuffles, shared memory plus barriers, or atomics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from .device import DeviceSpec, TINY_CC35


class Sync:
    """Marker type for block-wide barriers."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BARRIER"


BARRIER = Sync()


@dataclass(frozen=True)
class ShflDown:
    """Warp shuffle: lane ``i`` receives the value of lane ``i + delta``
    within each ``width``-lane subgroup (own value if out of range)."""

    value: float
    delta: int
    width: int = 32


@dataclass(frozen=True)
class ShflXor:
    """Warp shuffle: lane ``i`` exchanges with lane ``i ^ mask``."""

    value: float
    mask: int
    width: int = 32


@dataclass
class LaunchStats:
    """Events observed while interpreting one launch."""

    atomic_global: int = 0
    atomic_shared: int = 0
    barriers: int = 0
    shuffles: int = 0
    threads_run: int = 0


class DeadlockError(RuntimeError):
    """Raised when threads are parked inconsistently (e.g. divergent barrier)."""


class ThreadCtx:
    """Per-thread view handed to a kernel."""

    __slots__ = ("tid", "block_id", "block_size", "grid_size", "shared",
                 "_engine")

    def __init__(self, tid: int, block_id: int, block_size: int,
                 grid_size: int, shared: np.ndarray, engine: "SimtEngine"):
        self.tid = tid                      # threadIdx.x
        self.block_id = block_id            # blockIdx.x
        self.block_size = block_size        # blockDim.x
        self.grid_size = grid_size          # gridDim.x
        self.shared = shared                # block-shared array
        self._engine = engine

    @property
    def global_tid(self) -> int:
        return self.block_id * self.block_size + self.tid

    @property
    def grid_threads(self) -> int:
        return self.grid_size * self.block_size

    @property
    def lane(self) -> int:
        return self.tid % self._engine.device.warp_size

    @property
    def warp(self) -> int:
        return self.tid // self._engine.device.warp_size

    def atomic_add(self, array: np.ndarray, index: int, value: float) -> float:
        """Atomic read-modify-write on global memory; returns the old value."""
        old = array[index]
        array[index] = old + value
        self._engine.stats.atomic_global += 1
        return old

    def atomic_add_shared(self, index: int, value: float) -> float:
        """Atomic add targeting this block's shared memory."""
        old = self.shared[index]
        self.shared[index] = old + value
        self._engine.stats.atomic_shared += 1
        return old


class SimtEngine:
    """Interprets kernel launches block by block.

    Blocks are independent in CUDA (no inter-block barrier exists — the paper
    leans on this in Section 3.1), so interpreting them sequentially is
    faithful as long as inter-block communication happens only through
    atomics, which remain atomic under sequential execution.
    """

    def __init__(self, device: DeviceSpec = TINY_CC35):
        self.device = device
        self.stats = LaunchStats()

    def launch(self, kernel: Callable[..., Iterator[Any]], grid_size: int,
               block_size: int, args: tuple = (),
               shared_doubles: int = 0) -> LaunchStats:
        """Run ``kernel`` over a ``grid_size x block_size`` launch."""
        if block_size < 1 or block_size > self.device.max_threads_per_block:
            raise ValueError(f"invalid block size {block_size}")
        if shared_doubles * 8 > self.device.shared_memory_per_block:
            raise ValueError("shared memory request exceeds per-block limit")
        self.stats = LaunchStats()
        for block_id in range(grid_size):
            self._run_block(kernel, block_id, grid_size, block_size,
                            args, shared_doubles)
        return self.stats

    # ------------------------------------------------------------------ #
    def _run_block(self, kernel, block_id: int, grid_size: int,
                   block_size: int, args: tuple, shared_doubles: int) -> None:
        shared = np.zeros(max(1, shared_doubles), dtype=np.float64)
        threads: list[Iterator | None] = []
        parked: list[Any] = [None] * block_size   # token each thread waits on
        sendval: list[Any] = [None] * block_size  # value to resume with
        for tid in range(block_size):
            ctx = ThreadCtx(tid, block_id, block_size, grid_size,
                            shared, self)
            threads.append(kernel(ctx, *args))
            self.stats.threads_run += 1

        live = set(range(block_size))
        warp = self.device.warp_size

        def advance(tid: int) -> None:
            gen = threads[tid]
            assert gen is not None
            try:
                token = gen.send(sendval[tid]) if parked[tid] is not None \
                    else next(gen)
            except StopIteration:
                threads[tid] = None
                parked[tid] = None
                live.discard(tid)
                return
            parked[tid] = token
            sendval[tid] = None

        # First advance: run every thread to its first suspension or the end.
        for tid in list(live):
            parked[tid] = None
            advance(tid)

        while live:
            progressed = False
            # Resolve warp-local shuffles first: a warp whose live lanes are
            # all parked at shuffles can proceed without the rest of the block.
            for w0 in range(0, block_size, warp):
                lanes = [t for t in range(w0, min(w0 + warp, block_size))]
                live_lanes = [t for t in lanes if t in live]
                if not live_lanes:
                    continue
                toks = [parked[t] for t in live_lanes]
                if all(isinstance(tk, (ShflDown, ShflXor)) for tk in toks):
                    self._resolve_shuffles(lanes, live, parked, sendval, w0)
                    for t in live_lanes:
                        advance(t)
                    progressed = True
            if progressed:
                continue
            # Block-wide barrier: every live thread must be parked on it.
            if live and all(isinstance(parked[t], Sync) for t in live):
                self.stats.barriers += 1
                for t in list(live):
                    sendval[t] = None
                    advance(t)
                continue
            if not live:
                break
            kinds = {type(parked[t]).__name__ for t in live}
            raise DeadlockError(
                f"block {block_id}: threads parked inconsistently on {kinds} "
                "(divergent barrier or incomplete warp shuffle)"
            )

    def _resolve_shuffles(self, lanes, live, parked, sendval, w0) -> None:
        """Exchange values for one warp's worth of shuffle tokens."""
        self.stats.shuffles += 1
        values: dict[int, float] = {}
        for t in lanes:
            if t in live:
                values[t - w0] = parked[t].value
        for t in lanes:
            if t not in live:
                continue
            tok = parked[t]
            lane = t - w0
            width = tok.width
            group = (lane // width) * width
            if isinstance(tok, ShflDown):
                src = lane + tok.delta
            else:
                src = lane ^ tok.mask
            if group <= src < group + width and (w0 + src) in [
                l for l in lanes
            ]:
                sendval[t] = values.get(src, tok.value)
            else:
                sendval[t] = tok.value


def warp_allreduce_sum(ctx: ThreadCtx, value: float, width: int):
    """Generator helper: butterfly (xor) all-reduce within ``width`` lanes.

    Every lane of each ``width``-lane group ends with the group sum — the
    idiom kernels use when all cooperating threads need the reduced value
    (e.g. Algorithm 2 broadcasting ``p[r]`` to the whole vector).
    """
    mask = width // 2
    while mask >= 1:
        other = yield ShflXor(value, mask, width)
        value = value + other
        mask //= 2
    return value


def warp_reduce_sum(ctx: ThreadCtx, value: float, width: int):
    """Generator helper: shuffle-based intra-vector sum reduction.

    After completion, lane 0 of each ``width``-lane group holds the group sum
    (other lanes hold partial sums, as on real hardware).  Usage::

        total = yield from warp_reduce_sum(ctx, partial, VS)
    """
    offset = width // 2
    while offset >= 1:
        other = yield ShflDown(value, offset, width)
        value = value + other
        offset //= 2
    return value
