"""Host <-> device transfer model (PCIe Gen3) and JNI copy overheads.

Table 5 of the paper folds the PCIe transfer of the input matrix into the
end-to-end time (939 ms for KDD2010), amortized over ML iterations.  Table 6
additionally pays SystemML's Java-side costs: copying from the JVM heap into
native buffers via JNI and converting between the CPU sparse-row layout and
the device CSR layout.  Those overheads are exactly what shrinks the 9x
kernel-level speedup to 1.9x end-to-end, so they are modelled explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec


@dataclass
class TransferModel:
    """PCIe + host-side copy cost model."""

    device: DeviceSpec
    #: effective JNI/JVM-heap-to-native copy bandwidth (GB/s); the serialized
    #: single-thread copy through the JNI critical section is slow
    jni_bandwidth_gbps: float = 3.0
    #: CPU-side format conversion bandwidth (sparse rows -> CSR, GB/s)
    conversion_bandwidth_gbps: float = 4.0

    def pcie_ms(self, nbytes: float) -> float:
        """Milliseconds to move ``nbytes`` across PCIe (one direction)."""
        if nbytes <= 0:
            return 0.0
        return (self.device.pcie_latency_us / 1e3
                + nbytes / self.device.pcie_bandwidth_bytes_per_ms)

    def jni_ms(self, nbytes: float) -> float:
        """Milliseconds to copy ``nbytes`` from JVM heap to native buffers."""
        if nbytes <= 0:
            return 0.0
        return nbytes / (self.jni_bandwidth_gbps * 1e6)

    def conversion_ms(self, nbytes: float) -> float:
        """Milliseconds to convert ``nbytes`` between host and device layouts."""
        if nbytes <= 0:
            return 0.0
        return nbytes / (self.conversion_bandwidth_gbps * 1e6)

    def h2d_ms(self, nbytes: float, via_jni: bool = False,
               convert: bool = False) -> float:
        """Full host-to-device path, optionally through JNI and conversion."""
        total = self.pcie_ms(nbytes)
        if via_jni:
            total += self.jni_ms(nbytes)
        if convert:
            total += self.conversion_ms(nbytes)
        return total

    def d2h_ms(self, nbytes: float, via_jni: bool = False) -> float:
        total = self.pcie_ms(nbytes)
        if via_jni:
            total += self.jni_ms(nbytes)
        return total
