"""Memory-system models: coalescing, bank conflicts, and cache reuse.

These helpers turn *data-layout facts* (how many elements a warp touches, at
what stride, through which cache) into the event counts a real Kepler GPU
would generate.  They are the heart of the reproduction: the paper attributes
its speedups to (i) fewer global load transactions (Fig. 2-bottom), (ii)
temporal locality making the second pass over each CSR row a cache hit, and
(iii) aggregation moved from global atomics into shared memory and registers.

All functions are pure and vectorized so kernels can evaluate them per warp
over the whole input at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .device import DeviceSpec

DOUBLE = 8  # sizeof(double), the precision used throughout the paper


def coalesced_transactions(total_bytes: float,
                           transaction_bytes: int = 128) -> float:
    """Transactions for a perfectly coalesced stream of ``total_bytes``.

    A warp reading 32 consecutive doubles (256 B) needs two 128-B
    transactions; streaming an array costs ``ceil(bytes / 128)`` overall.
    """
    if total_bytes <= 0:
        return 0.0
    return math.ceil(total_bytes / transaction_bytes)


def segment_transactions(segment_lengths: np.ndarray, itemsize: int = DOUBLE,
                         transaction_bytes: int = 128) -> float:
    """Transactions to stream many independent contiguous segments.

    Models CSR-vector row reads: each row's ``values``/``col_idx`` span is
    contiguous but starts at an arbitrary offset, so each segment pays its own
    (possibly partial) leading and trailing transaction:
    ``ceil(len * itemsize / T) + (1 misalignment transaction on average)/2``.
    We charge the conservative ``floor`` of the expected extra line.
    """
    lengths = np.asarray(segment_lengths, dtype=np.int64)
    if lengths.size == 0:
        return 0.0
    bytes_ = lengths * itemsize
    per_seg = np.ceil(bytes_ / transaction_bytes)
    # Unaligned segment starts touch one extra line roughly half the time;
    # empty segments cost nothing.
    extra = 0.5 * np.count_nonzero(lengths)
    return float(per_seg.sum() + extra)


def warp_segment_transactions(row_nnz: np.ndarray, itemsize: int = DOUBLE,
                              rows_per_group: int = 16,
                              transaction_bytes: int = 128) -> float:
    """Transactions for a CSR-vector pass counted at *warp* granularity.

    With vector size VS, one 32-thread warp covers ``32 / VS`` consecutive
    rows whose CSR segments are adjacent in memory, so the warp issues one
    coalesced stream per group — short rows share transactions instead of
    each paying a full line.  Each group pays one extra line for the
    leading/trailing misalignment of its span.
    """
    lengths = np.asarray(row_nnz, dtype=np.int64)
    if lengths.size == 0:
        return 0.0
    g = max(1, int(rows_per_group))
    pad = (-lengths.size) % g
    if pad:
        lengths = np.concatenate([lengths, np.zeros(pad, dtype=np.int64)])
    group_nnz = lengths.reshape(-1, g).sum(axis=1)
    bytes_ = group_nnz * itemsize
    per_group = np.ceil(bytes_ / transaction_bytes)
    extra = np.count_nonzero(group_nnz)          # misalignment line
    return float(per_group.sum() + extra)


@dataclass(frozen=True)
class SegmentPassTemplate:
    """Structure-invariant transaction counts for one CSR row pass.

    For a fixed row-length distribution and warp partitioning, one pass over
    the matrix touches the ``values`` (8 B) and ``col_idx`` (4 B) streams; the
    per-pass transaction counts depend only on structure, so kernels that
    re-walk the same matrix every iteration can compute them once.  The
    stored numbers are exactly ``warp_segment_transactions(row_nnz, 8, g)``
    and ``(..., 4, g)`` — same grouping, same rounding — so templated and
    direct accounting agree to the bit.
    """

    tx_values: float      # 8-byte stream (doubles)
    tx_col_idx: float     # 4-byte stream (device column indices)

    @property
    def pass_transactions(self) -> float:
        """Total for one full pass over values + column indices."""
        return self.tx_values + self.tx_col_idx


def warp_segment_template(row_nnz: np.ndarray, rows_per_group: int = 16,
                          transaction_bytes: int = 128
                          ) -> SegmentPassTemplate:
    """Profile-returning variant of :func:`warp_segment_transactions`.

    Computes the per-group nnz once and derives both itemsize counts from
    it, instead of re-padding and re-reducing the row-length array twice per
    kernel call.
    """
    lengths = np.asarray(row_nnz, dtype=np.int64)
    if lengths.size == 0:
        return SegmentPassTemplate(0.0, 0.0)
    g = max(1, int(rows_per_group))
    pad = (-lengths.size) % g
    if pad:
        lengths = np.concatenate([lengths, np.zeros(pad, dtype=np.int64)])
    group_nnz = lengths.reshape(-1, g).sum(axis=1)
    extra = np.count_nonzero(group_nnz)
    tx = []
    for itemsize in (DOUBLE, 4):
        per_group = np.ceil(group_nnz * itemsize / transaction_bytes)
        tx.append(float(per_group.sum() + extra))
    return SegmentPassTemplate(tx[0], tx[1])


def uncoalesced_transactions(n_accesses: float) -> float:
    """Transactions for fully scattered accesses (one line per access).

    This is the access pattern of a column-major walk over a row-major CSR
    structure — the reason the paper calls cuSPARSE's transpose ``csrmv``
    "very slow".
    """
    return float(max(0.0, n_accesses))


def gather_transactions(indices: np.ndarray, itemsize: int = DOUBLE,
                        transaction_bytes: int = 128,
                        warp_size: int = 32) -> float:
    """Transactions for a warp-cooperative gather ``dst[i] = src[idx[i]]``.

    Splits ``indices`` into warp-sized groups and counts the *distinct* memory
    lines each group touches — exactly what the coalescing hardware does.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return 0.0
    lines = (idx * itemsize) // transaction_bytes
    pad = (-lines.size) % warp_size
    if pad:
        lines = np.concatenate([lines, np.full(pad, -1, dtype=np.int64)])
    groups = lines.reshape(-1, warp_size)
    # distinct lines per warp: sort each row, count strictly-increasing steps
    s = np.sort(groups, axis=1)
    distinct = 1 + np.count_nonzero(s[:, 1:] != s[:, :-1], axis=1)
    # subtract the padding sentinel line where present
    if pad:
        distinct[-1] -= 1
    return float(distinct.sum())


def shared_bank_conflict_replays(stride_elements: int, warp_size: int = 32,
                                 banks: int = 32,
                                 words_per_element: int = 2) -> int:
    """Serialized replays for a warp accessing shared memory at a stride.

    With 32 banks of 4-byte words, a stride of ``s`` doubles maps lanes onto
    ``banks / gcd(s * words, banks)`` distinct banks; the conflict degree is
    the warp size divided by that count, and replays are ``degree - 1``.
    """
    if stride_elements <= 0:
        return 0
    word_stride = stride_elements * words_per_element
    distinct = banks // math.gcd(word_stride, banks)
    degree = max(1, warp_size // max(1, distinct))
    return degree - 1


@dataclass
class CacheModel:
    """Reuse model for the fused kernel's second pass over each CSR row.

    The paper: "if we ensure that the second load of ``X[r,:]`` is performed
    by the same threads that previously used the row, due to temporal locality
    the second load will likely be a cache hit.  Such behaviour can be
    guaranteed when the number of non-zeros per row is bounded by the cache
    size."  We model the per-SM share of L2 + L1/texture available to each
    concurrently active vector and give the second pass a hit fraction equal
    to the fraction of the row that still fits.
    """

    device: DeviceSpec
    enabled: bool = True

    def second_pass_hit_fraction(self, row_nnz: np.ndarray,
                                 active_vectors_per_sm: int,
                                 itemsize: int = DOUBLE) -> np.ndarray:
        """Per-row fraction of second-pass loads served by cache."""
        nnz = np.asarray(row_nnz, dtype=np.float64)
        if not self.enabled:
            return np.zeros_like(nnz)
        cache_per_sm = (self.device.l2_cache_bytes / self.device.num_sms
                        + self.device.texture_cache_bytes_per_sm)
        budget = cache_per_sm / max(1, active_vectors_per_sm)
        # both the values and the column indices (4B) must be resident
        row_bytes = nnz * (itemsize + 4)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(row_bytes > 0,
                            np.minimum(1.0, budget / np.maximum(row_bytes, 1)),
                            1.0)
        return frac

    def second_pass_miss_weight(self, row_nnz: np.ndarray,
                                active_vectors_per_sm: int,
                                itemsize: int = DOUBLE) -> float:
        """nnz-weighted miss fraction of the second pass over each row.

        The scalar the fused kernels actually multiply into their re-read
        traffic: ``sum(row_nnz * (1 - hit)) / max(1, nnz)``.  Structure- and
        device-dependent only, so a kernel profile computes it once per
        (matrix, params, device) and reuses it on every warm call.
        """
        nnz = np.asarray(row_nnz, dtype=np.float64)
        hit = self.second_pass_hit_fraction(nnz, active_vectors_per_sm,
                                            itemsize)
        return float((nnz * (1.0 - hit)).sum()) / max(1.0, float(nnz.sum()))

    def texture_hit_ratio(self) -> float:
        """Hit ratio for a read-only vector bound to texture memory."""
        return self.device.texture_hit_ratio if self.enabled else 0.0


def streamed_array_transactions(shape_bytes: float,
                                transaction_bytes: int = 128) -> float:
    """Alias for :func:`coalesced_transactions` with a clearer call-site name."""
    return coalesced_transactions(shape_bytes, transaction_bytes)
