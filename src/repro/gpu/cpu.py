"""CPU roofline model for the BIDMat-CPU / MKL baselines.

The paper's CPU baseline is BIDMat backed by Intel MKL with 8 hyper-threads on
a core-i7 3.4 GHz host.  For the memory-bound BLAS-2 patterns studied here the
CPU is bandwidth-limited, so a roofline with a random-access (gather) penalty
captures the relevant behaviour, including the effect the paper observes in
Section 4.2: MKL is *relatively* better on sparse inputs (GPU coalescing pays
off most on dense, regular accesses).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuSpec:
    """Host CPU description (defaults: core-i7, 4 cores / 8 threads)."""

    name: str = "core-i7-3.4GHz"
    threads: int = 8
    #: sustained streaming bandwidth with all threads (GB/s)
    stream_bandwidth_gbps: float = 21.0
    #: single-thread streaming bandwidth (GB/s)
    single_thread_bandwidth_gbps: float = 9.0
    #: effective bandwidth for dependent random gathers (GB/s)
    gather_bandwidth_gbps: float = 6.0
    #: peak double-precision throughput, all cores (GFLOP/s)
    peak_gflops: float = 108.0
    #: fixed per-BLAS-call overhead (microseconds)
    call_overhead_us: float = 2.0


CORE_I7 = CpuSpec()


@dataclass
class CpuCostModel:
    """Roofline time estimates for CPU kernels."""

    spec: CpuSpec = CORE_I7
    threads: int | None = None  # None -> all threads

    def _bw(self, gather_fraction: float) -> float:
        t = self.threads or self.spec.threads
        scale = min(1.0, t / self.spec.threads)
        stream = (self.spec.single_thread_bandwidth_gbps
                  + (self.spec.stream_bandwidth_gbps
                     - self.spec.single_thread_bandwidth_gbps) * scale)
        gather = self.spec.gather_bandwidth_gbps * max(scale, 1 / self.spec.threads)
        g = min(1.0, max(0.0, gather_fraction))
        # harmonic blend: total time is the sum of both phases' times
        return 1.0 / ((1.0 - g) / stream + g / gather)

    def time_ms(self, streamed_bytes: float, flops: float = 0.0,
                gather_fraction: float = 0.0, calls: int = 1) -> float:
        """Model milliseconds for an operation touching ``streamed_bytes``.

        ``gather_fraction`` is the fraction of the traffic that is random
        access (index-driven, e.g. ``y[col_idx[k]]`` in a CSR SpMV).
        """
        t = self.threads or self.spec.threads
        bw_bytes_per_ms = self._bw(gather_fraction) * 1e6
        mem_ms = streamed_bytes / bw_bytes_per_ms if streamed_bytes else 0.0
        flops_per_ms = self.spec.peak_gflops * 1e6 * min(1.0, t / self.spec.threads)
        compute_ms = flops / flops_per_ms if flops else 0.0
        return max(mem_ms, compute_ms) + calls * self.spec.call_overhead_us / 1e3
