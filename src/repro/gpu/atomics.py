"""Atomic-operation contention model.

CUDA serializes atomic read-modify-write operations that target the same
address.  The cost of the fused kernels' final aggregation therefore depends
on *how many concurrent writers collide per element of w* — which the paper
argues is small for very sparse, very wide matrices ("when n is very large
... the likelihood of concurrent accesses to a single element of w is very
small").

We model contention from the actual access multiset: given the number of
issued atomics and the distribution of target addresses, the expected
serialization degree is the ratio of concurrently in-flight atomics to the
*effective* number of distinct addresses (inverse Simpson index of the target
distribution, which correctly penalizes skew).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def effective_addresses(weights: np.ndarray) -> float:
    """Effective number of distinct targets for a weighted address histogram.

    Uses the inverse Simpson index ``(sum w)^2 / sum w^2``: equals the number
    of addresses when accesses are uniform, and collapses toward 1 when a few
    hot addresses dominate (e.g. a dense column in an otherwise sparse
    matrix).
    """
    w = np.asarray(weights, dtype=np.float64)
    w = w[w > 0]
    if w.size == 0:
        return 1.0
    w = w / w.max()          # normalize to avoid under/overflow in squares
    total = w.sum()
    return float(total * total / np.square(w).sum())


@dataclass(frozen=True)
class AtomicBatch:
    """One batch of atomic operations with its contention estimate."""

    ops: float
    serialized: float

    @property
    def degree(self) -> float:
        return self.serialized / self.ops if self.ops else 1.0


def global_atomic_batch(n_ops: float, target_weights: np.ndarray,
                        concurrent_threads: int) -> AtomicBatch:
    """Estimate serialized global atomics for ``n_ops`` issued operations.

    ``target_weights`` is a histogram of how often each address is targeted
    over the whole batch; ``concurrent_threads`` bounds how many atomics can
    be in flight simultaneously (resident threads on the device).
    """
    if n_ops <= 0:
        return AtomicBatch(0.0, 0.0)
    eff = effective_addresses(target_weights)
    in_flight = min(float(n_ops), float(max(1, concurrent_threads)))
    degree = max(1.0, in_flight / eff)
    return AtomicBatch(float(n_ops), float(n_ops) * degree)


def shared_atomic_batch(n_ops: float, n_addresses: int,
                        threads_per_block: int) -> AtomicBatch:
    """Estimate serialized shared-memory atomics within one block.

    Intra-block (inter-vector) aggregation targets the block's private copy of
    ``w`` in shared memory; only the block's own threads can collide.
    """
    if n_ops <= 0:
        return AtomicBatch(0.0, 0.0)
    in_flight = min(float(n_ops), float(max(1, threads_per_block)))
    degree = max(1.0, in_flight / max(1, n_addresses))
    return AtomicBatch(float(n_ops), float(n_ops) * degree)


def uniform_weights(n_addresses: int) -> np.ndarray:
    """Convenience histogram for uniformly distributed targets."""
    return np.ones(max(1, n_addresses))


@dataclass(frozen=True)
class ContentionProfile:
    """Precomputed contention state for one fixed address distribution.

    The inverse-Simpson reduction over the target histogram (the O(n) part
    of :func:`contended_chain`) depends only on the matrix structure, so the
    warm iterative path computes it once and derives every chain length from
    the stored effective-address count with one division.
    """

    effective: float

    def chain(self, n_ops: float) -> float:
        """Serialized chain for ``n_ops`` atomics over this distribution.

        Bit-identical to ``contended_chain(n_ops, weights)`` for the
        weights this profile was built from (same division, same floats).
        """
        if n_ops <= 0:
            return 0.0
        return float(n_ops) / self.effective


def contention_profile(target_weights: np.ndarray) -> ContentionProfile:
    """Profile-returning variant: reduce the histogram once, reuse forever."""
    return ContentionProfile(effective_addresses(target_weights))


def contended_chain(n_ops: float, target_weights: np.ndarray) -> float:
    """Expected serialized chain length at the hottest address.

    Atomics to *different* addresses proceed in parallel through the L2
    slices; atomics to the *same* address serialize.  The run time of a batch
    is therefore governed by the longest per-address chain, which for the
    weighted histogram is ``n_ops / effective_addresses`` — the exact
    quantity behind the paper's observation that huge, sparse column spaces
    make the fused kernel's global aggregation cheap.
    """
    return contention_profile(target_weights).chain(n_ops)
