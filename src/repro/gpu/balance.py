"""Workload-balance metrics for CSR-vector row partitioning.

The paper's fourth challenge: "ensuring a balanced workload, maximizing
thread occupancy ... in case of sparse matrices with different number of
non-zeros across rows is difficult."  These metrics quantify that balance
for a given vector size, so kernels can report it and ablations can show how
Eq. 4's VS choice and the coarsening of Eq. 5 keep the imbalance bounded.

All functions are pure measurements; they do not change model time (whose
bandwidth derate already absorbs the first-order effect) but are exposed on
demand for analysis and asserted on in tests.
"""

from __future__ import annotations

import numpy as np


def warp_idle_fraction(row_nnz: np.ndarray, vector_size: int,
                       warp_size: int = 32) -> float:
    """Fraction of warp-lane-cycles idle while sibling vectors finish.

    A warp holds ``warp/VS`` vectors working on consecutive rows; each
    row-step of the warp lasts as long as its longest row, so lanes assigned
    shorter rows idle for the difference.
    """
    lengths = np.asarray(row_nnz, dtype=np.float64)
    if lengths.size == 0:
        return 0.0
    group = max(1, warp_size // max(1, vector_size))
    pad = (-lengths.size) % group
    if pad:
        lengths = np.concatenate([lengths, np.zeros(pad)])
    mat = lengths.reshape(-1, group)
    per_warp_time = mat.max(axis=1)
    useful = mat.sum(axis=1)
    capacity = per_warp_time * group
    total_capacity = capacity.sum()
    if total_capacity == 0:
        return 0.0
    return float(1.0 - useful.sum() / total_capacity)


def vector_load_cv(row_nnz: np.ndarray, total_vectors: int) -> float:
    """Coefficient of variation of per-vector work under round-robin rows.

    The grid-stride row assignment of Algorithms 1-2 deals rows to vectors
    like cards; with enough coarsening the per-vector totals concentrate —
    the effect Eq. 5 relies on ("all warps have maximal balanced workload").
    """
    lengths = np.asarray(row_nnz, dtype=np.float64)
    if lengths.size == 0 or total_vectors <= 0:
        return 0.0
    pad = (-lengths.size) % total_vectors
    if pad:
        lengths = np.concatenate([lengths, np.zeros(pad)])
    per_vector = lengths.reshape(-1, total_vectors).sum(axis=0)
    mean = per_vector.mean()
    if mean == 0:
        return 0.0
    return float(per_vector.std() / mean)


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative workload distribution."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0:
        return 0.0
    if np.any(v < 0):
        raise ValueError("workloads must be non-negative")
    total = v.sum()
    if total == 0:
        return 0.0
    n = v.size
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / total).sum()) / n)
