"""Hardware event counters recorded by simulated kernels.

Every kernel in :mod:`repro.kernels` computes its numerical result *and*
records the hardware events its CUDA counterpart would generate: global-memory
load/store transactions, shared-memory accesses and bank conflicts, atomic
operations (with an estimated serialization degree), floating-point operations,
barriers, and kernel launches.  The cost model
(:mod:`repro.gpu.costmodel`) converts a counter record into model time.

Counting *transactions* rather than bytes mirrors how the paper explains its
speedups (Figure 2-bottom compares global load transactions directly).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Accumulated event counts for one or more simulated kernel launches."""

    # global memory, in 128-byte transactions
    global_load_transactions: float = 0.0
    global_store_transactions: float = 0.0
    # shared memory, in per-warp accesses; conflicts add serialized replays
    shared_accesses: float = 0.0
    shared_bank_conflicts: float = 0.0
    # atomics, counted as issued ops; serialized_* include contention replays
    atomic_global_ops: float = 0.0
    atomic_global_serialized: float = 0.0
    atomic_shared_ops: float = 0.0
    atomic_shared_serialized: float = 0.0
    # per-address serialized chains (addresses retire in parallel):
    # plain CAS-loop atomics (atomicAdd on double) vs. lock/semaphore updates
    atomic_cas_chain: float = 0.0
    atomic_lock_chain: float = 0.0
    # compute
    flops: float = 0.0
    # control
    barriers: float = 0.0
    kernel_launches: float = 0.0
    # host <-> device traffic in bytes
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0

    def add(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate ``other`` into ``self`` (in place) and return ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "PerfCounters":
        """Return a copy with every event count multiplied by ``factor``.

        Used to extrapolate iteration-loop costs measured on one iteration.
        """
        out = PerfCounters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) * factor)
        return out

    def copy(self) -> "PerfCounters":
        return self.scaled(1.0)

    @property
    def global_transactions(self) -> float:
        return self.global_load_transactions + self.global_store_transactions

    def global_bytes(self, transaction_bytes: int = 128) -> float:
        """Total global-memory traffic implied by the transaction counts."""
        return self.global_transactions * transaction_bytes

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __repr__(self) -> str:  # compact, for logs and bench output
        parts = [f"{k}={v:.3g}" for k, v in self.as_dict().items() if v]
        return f"PerfCounters({', '.join(parts)})"


def merge(*counters: PerfCounters) -> PerfCounters:
    """Return a new record that is the sum of all inputs."""
    out = PerfCounters()
    for c in counters:
        out.add(c)
    return out
