"""Analytical cost model: event counts -> model time.

The simulated kernels produce exact event counts (:class:`PerfCounters`);
this module converts them into *model milliseconds* using the device's
throughput constants.  The model follows the standard GPU roofline
decomposition the paper reasons with:

* memory-bound phase time = global transactions x 128 B / effective bandwidth,
  where effective bandwidth degrades below ~50% occupancy (too few resident
  warps to hide DRAM latency — the reason the tuner maximizes occupancy);
* shared-memory time = (accesses + conflict replays) / shared throughput;
* compute time = FLOPs / peak (never dominant for these BLAS-2 patterns,
  which run at ~1 FLOP per load against the 34 needed to balance the Titan);
* atomic time = serialized atomics x per-op latency / parallel atomic lanes;
* fixed costs: kernel launches and block-wide barriers.

Phase times overlap as ``max(memory, shared, compute)`` — the GPU hides
whichever is cheaper under the dominant stream — while atomics, launches and
barriers add serially.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import PerfCounters
from .device import DeviceSpec


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-phase model time in milliseconds."""

    memory_ms: float
    shared_ms: float
    compute_ms: float
    atomic_ms: float
    launch_ms: float
    sync_ms: float

    @property
    def total_ms(self) -> float:
        # barrier stalls are hidden by switching to other resident warps,
        # so sync overlaps with the dominant stream; atomics and launches
        # serialize at the end of / between kernels
        overlapped = max(self.memory_ms, self.shared_ms, self.compute_ms,
                         self.sync_ms)
        return overlapped + self.atomic_ms + self.launch_ms

    def as_dict(self) -> dict[str, float]:
        return {
            "memory_ms": self.memory_ms,
            "shared_ms": self.shared_ms,
            "compute_ms": self.compute_ms,
            "atomic_ms": self.atomic_ms,
            "launch_ms": self.launch_ms,
            "sync_ms": self.sync_ms,
            "total_ms": self.total_ms,
        }


@dataclass
class CostModel:
    """Converts :class:`PerfCounters` into model time for one device.

    Atomic cost separates the *base* issue cost (an uncontended atomic is
    roughly a store) from the *replay* cost each serialized retry pays; both
    retire through parallel pipelines (global: L2 slices; shared: one set of
    banks per SM).
    """

    device: DeviceSpec
    #: global atomics retire through this many parallel pipelines (L2 slices)
    atomic_parallel_lanes: float = 32.0
    #: base cost of an uncontended global atomic (ns, per lane)
    atomic_global_base_ns: float = 0.3
    #: base cost of an uncontended shared atomic (ns, per lane)
    atomic_shared_base_ns: float = 0.05
    #: per-op cost along a same-address CAS-retry chain (atomicAdd on double)
    atomic_cas_chain_ns: float = 4.0
    #: per-op cost along a same-address lock/semaphore chain (acquire +
    #: update + release round trips; cuSPARSE's transpose-mode updates)
    atomic_lock_chain_ns: float = 1000.0
    #: occupancy below which bandwidth starts to degrade
    saturation_occupancy: float = 0.5
    #: bandwidth floor at vanishing occupancy (latency-bound regime)
    min_bandwidth_fraction: float = 0.15

    def bandwidth_efficiency(self, occupancy_fraction: float) -> float:
        """Fraction of peak DRAM bandwidth achievable at a given occupancy."""
        occ = min(1.0, max(0.0, occupancy_fraction))
        if occ >= self.saturation_occupancy:
            return 1.0
        lo = self.min_bandwidth_fraction
        return lo + (1.0 - lo) * (occ / self.saturation_occupancy)

    def breakdown(self, counters: PerfCounters,
                  occupancy_fraction: float = 1.0,
                  bandwidth_derate: float = 1.0) -> TimeBreakdown:
        """``bandwidth_derate`` models access-pattern inefficiency that
        transaction counts alone do not capture (CSR-vector kernels sustain
        ~60% of STREAM bandwidth even when fully coalesced, due to short
        bursts and index-dependent addressing)."""
        dev = self.device
        eff = self.bandwidth_efficiency(occupancy_fraction)
        eff *= min(1.0, max(0.05, bandwidth_derate))
        bw = dev.global_bandwidth_bytes_per_ms * eff

        mem_bytes = counters.global_transactions * dev.memory_transaction_bytes
        memory_ms = mem_bytes / bw if mem_bytes else 0.0

        shm_bytes = (counters.shared_accesses
                     + counters.shared_bank_conflicts) * 32 * 8
        shared_ms = shm_bytes / (dev.shared_bandwidth_gbps * 1e6) \
            if shm_bytes else 0.0

        compute_ms = counters.flops / (dev.peak_gflops_double * 1e6) \
            if counters.flops else 0.0

        g_replays = max(0.0, counters.atomic_global_serialized
                        - counters.atomic_global_ops)
        s_replays = max(0.0, counters.atomic_shared_serialized
                        - counters.atomic_shared_ops)
        shared_lanes = self.device.num_sms * self.device.shared_memory_banks
        atomic_ms = (
            (g_replays * dev.atomic_global_ns
             + counters.atomic_global_ops * self.atomic_global_base_ns)
            / (self.atomic_parallel_lanes * 1e6)
            + (s_replays * dev.atomic_shared_ns
               + counters.atomic_shared_ops * self.atomic_shared_base_ns)
            / (shared_lanes * 1e6)
            + (counters.atomic_cas_chain * self.atomic_cas_chain_ns
               + counters.atomic_lock_chain * self.atomic_lock_chain_ns)
            / 1e6
        )

        launch_ms = counters.kernel_launches * dev.kernel_launch_us / 1e3
        sync_ms = counters.barriers * dev.sync_us / 1e3
        return TimeBreakdown(memory_ms, shared_ms, compute_ms,
                             atomic_ms, launch_ms, sync_ms)

    def time_ms(self, counters: PerfCounters,
                occupancy_fraction: float = 1.0,
                bandwidth_derate: float = 1.0) -> float:
        """Total model time in milliseconds for one counter record."""
        return self.breakdown(counters, occupancy_fraction,
                              bandwidth_derate).total_ms
