"""Kernel launch configuration and validation.

A :class:`LaunchConfig` captures what a CUDA kernel launch would specify:
grid size, block size, dynamic shared memory, plus the per-thread register
footprint reported by the compiler (the paper reads it off the NVIDIA Visual
Profiler: 43 registers/thread for the sparse kernel, 23..255 for the dense one
depending on the thread load ``TL``).

The fused kernels additionally carry their logical decomposition: vector size
``VS`` (threads cooperating on a row), number of vectors per block ``NV``, and
the coarsening factor ``C`` (rows per vector).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec


@dataclass(frozen=True)
class LaunchConfig:
    """A validated kernel launch configuration."""

    grid_size: int
    block_size: int
    shared_bytes: int = 0
    registers_per_thread: int = 32
    # logical decomposition used by the fused kernels
    vector_size: int = 1
    coarsening: int = 1
    thread_load: int = 1

    @property
    def vectors_per_block(self) -> int:
        """NV — the number of cooperating-thread vectors in one block."""
        return max(1, self.block_size // self.vector_size)

    @property
    def total_threads(self) -> int:
        return self.grid_size * self.block_size

    @property
    def total_vectors(self) -> int:
        return self.grid_size * self.vectors_per_block

    def warps_per_block(self, warp_size: int = 32) -> int:
        return -(-self.block_size // warp_size)

    def validate(self, device: DeviceSpec) -> None:
        """Raise ``ValueError`` for configurations CUDA would reject."""
        if self.grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {self.grid_size}")
        if self.grid_size > device.max_grid_dim_x:
            raise ValueError("grid_size exceeds device limit")
        if not 1 <= self.block_size <= device.max_threads_per_block:
            raise ValueError(
                f"block_size {self.block_size} outside "
                f"[1, {device.max_threads_per_block}]"
            )
        if self.shared_bytes > device.shared_memory_per_block:
            raise ValueError(
                f"shared memory request {self.shared_bytes}B exceeds per-block "
                f"limit {device.shared_memory_per_block}B"
            )
        if self.registers_per_thread > device.max_registers_per_thread:
            raise ValueError(
                f"{self.registers_per_thread} registers/thread exceeds limit "
                f"{device.max_registers_per_thread} (register spilling)"
            )
        if self.vector_size < 1 or self.block_size % self.vector_size:
            raise ValueError("vector_size must divide block_size")
        if self.coarsening < 1:
            raise ValueError("coarsening factor must be >= 1")
        if self.thread_load < 1:
            raise ValueError("thread_load must be >= 1")

    def describe(self) -> str:
        return (
            f"grid={self.grid_size} block={self.block_size} VS={self.vector_size} "
            f"NV={self.vectors_per_block} C={self.coarsening} TL={self.thread_load} "
            f"shm={self.shared_bytes}B regs={self.registers_per_thread}"
        )


def grid_for_rows(rows: int, block_size: int, vector_size: int,
                  coarsening: int) -> int:
    """Grid size so that ``grid*NV*C`` vectors-slots cover ``rows`` rows."""
    nv = max(1, block_size // vector_size)
    per_block = nv * coarsening
    return max(1, -(-rows // per_block))
