"""COO (coordinate) sparse matrix — the construction format.

COO is the natural builder format: triplets can arrive in any order and are
sorted/deduplicated once when converting to CSR.  The paper's kernels operate
on CSR; COO exists here as the ingestion path (mirroring how SystemML and
cuSPARSE pipelines assemble matrices before conversion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CooMatrix:
    """Sparse matrix in coordinate format (row, col, value triplets)."""

    shape: tuple[int, int]
    row: np.ndarray
    col: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.row = np.ascontiguousarray(self.row, dtype=np.int64)
        self.col = np.ascontiguousarray(self.col, dtype=np.int64)
        self.data = np.ascontiguousarray(self.data, dtype=np.float64)
        m, n = self.shape
        if not (self.row.shape == self.col.shape == self.data.shape):
            raise ValueError("row/col/data must have identical shapes")
        if self.row.size:
            if self.row.min(initial=0) < 0 or self.col.min(initial=0) < 0:
                raise ValueError("negative indices")
            if self.row.max(initial=-1) >= m or self.col.max(initial=-1) >= n:
                raise ValueError("index out of bounds for shape "
                                 f"{self.shape}")

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def sum_duplicates(self) -> "CooMatrix":
        """Return a copy with duplicate (row, col) entries summed."""
        if self.nnz == 0:
            return CooMatrix(self.shape, self.row, self.col, self.data)
        m, n = self.shape
        keys = self.row * n + self.col
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        data = self.data[order]
        uniq, start = np.unique(keys, return_index=True)
        sums = np.add.reduceat(data, start)
        return CooMatrix(self.shape, uniq // n, uniq % n, sums)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.row, self.col), self.data)
        return out

    def to_csr(self):
        """Convert to CSR (sorts, sums duplicates)."""
        from .csr import CsrMatrix
        dedup = self.sum_duplicates()
        m, n = self.shape
        order = np.lexsort((dedup.col, dedup.row))
        rows = dedup.row[order]
        row_off = np.zeros(m + 1, dtype=np.int64)
        np.add.at(row_off, rows + 1, 1)
        np.cumsum(row_off, out=row_off)
        return CsrMatrix(self.shape, dedup.data[order], dedup.col[order],
                         row_off)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CooMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("expected a 2-D array")
        mask = np.abs(dense) > tol
        r, c = np.nonzero(mask)
        return cls(dense.shape, r, c, dense[r, c])
