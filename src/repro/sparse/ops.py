"""Reference (ground-truth) linear algebra on CSR matrices.

These NumPy implementations define *what* every kernel must compute; the
kernel simulations in :mod:`repro.kernels` are tested against them.  They are
also the compute engine of the CPU baselines (BIDMat-CPU / single-threaded
SystemML), whose time is modelled by :mod:`repro.gpu.cpu`.

For the warm iterative path (the same matrix multiplied hundreds of times,
Listing 1), :class:`SpmvPlan` separates the structure-dependent inspection —
the non-empty-row ``reduceat`` starts and the row-expansion index that
``spmv_t`` otherwise rebuilds with ``np.repeat`` on every call — from the
vector-dependent execution, and keeps reusable O(nnz) scratch.  Planned
results are bit-identical to the plain functions (same operations in the
same order on the same operands), which the property suite asserts.
"""

from __future__ import annotations

import threading

import numpy as np

from .csr import CsrMatrix


def check_vector(x: np.ndarray, size: int, name: str) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (size,):
        raise ValueError(f"{name} must have shape ({size},), got {x.shape}")
    return x


_check_vector = check_vector


def spmv(X: CsrMatrix, y: np.ndarray) -> np.ndarray:
    """``X @ y`` for CSR ``X`` — row-parallel dot products."""
    y = _check_vector(y, X.n, "y")
    prod = X.values * y[X.col_idx]
    out = np.zeros(X.m, dtype=np.float64)
    if prod.size == 0 or X.m == 0:
        return out
    # segment sums over non-empty rows via reduceat (O(nnz), C-speed;
    # empty rows are skipped because reduceat mishandles zero-length spans)
    nonempty = X.row_nnz > 0
    starts = X.row_off[:-1][nonempty]
    out[nonempty] = np.add.reduceat(prod, starts)
    return out


def spmv_t(X: CsrMatrix, p: np.ndarray) -> np.ndarray:
    """``X.T @ p`` for CSR ``X`` — scatter of scaled rows into columns."""
    p = _check_vector(p, X.m, "p")
    scaled = X.values * np.repeat(p, X.row_nnz)
    if scaled.size == 0:
        return np.zeros(X.n, dtype=np.float64)
    return np.bincount(X.col_idx, weights=scaled, minlength=X.n)


class SpmvPlan:
    """Inspector-executor split for repeated SpMV on one fixed matrix.

    Precomputes, once:

    * the non-empty-row mask and the ``reduceat`` segment starts that
      :func:`spmv` rebuilds per call,
    * the row-expansion index ``rows[k] = row of non-zero k``, replacing
      :func:`spmv_t`'s per-call ``np.repeat(p, row_nnz)``.

    Per call, only the vector changes: the O(nnz) gather/product runs in
    reusable scratch (thread-local, so one plan is safe under the engine's
    batched thread pool).  Output vectors are freshly allocated unless an
    ``out`` buffer is passed, so callers may retain results across calls.

    The plan is valid for the matrix content it was built from; like the
    engine's fingerprint semantics, mutating the matrix in place makes the
    plan stale and the caller must rebuild it.
    """

    def __init__(self, X: CsrMatrix):
        self.X = X
        row_nnz = X.row_nnz
        self.nonempty = row_nnz > 0
        self.starts = X.row_off[:-1][self.nonempty]
        #: row id of each stored non-zero (the np.repeat spmv_t re-derives)
        self.row_expand = np.repeat(np.arange(X.m, dtype=np.int64), row_nnz)
        self._tls = threading.local()

    @property
    def nbytes(self) -> int:
        """Footprint of the precomputed index structure (for cache LRUs)."""
        return int(self.row_expand.nbytes + self.starts.nbytes
                   + self.nonempty.nbytes)

    def scratch(self) -> np.ndarray:
        """Reusable O(nnz) product buffer (thread-local, see class docs).

        Public because the generated AOT kernels
        (:mod:`repro.kernels.codegen`) execute the same gather/product in
        the same buffer — one scratch discipline for both dispatch modes.
        """
        buf = getattr(self._tls, "buf", None)
        if buf is None:
            buf = np.empty(self.X.nnz, dtype=np.float64)
            self._tls.buf = buf
        return buf

    _scratch = scratch

    def codegen_constants(self) -> dict[str, np.ndarray]:
        """The plan's index structure as codegen specialization constants.

        These are bound (by reference, not copied) into the namespace of
        generated sparse kernels: the value/index streams of the matrix and
        the inspector products above.  Keys match the uppercase globals the
        generated source references.
        """
        X = self.X
        return {
            "VALUES": X.values,
            "COL_IDX": X.col_idx,
            "STARTS": self.starts,
            "NONEMPTY": self.nonempty,
            "ROW_EXPAND": self.row_expand,
        }

    def spmv(self, y: np.ndarray, out: np.ndarray | None = None
             ) -> np.ndarray:
        """Planned ``X @ y``; bit-identical to :func:`spmv`."""
        X = self.X
        y = _check_vector(y, X.n, "y")
        if out is None:
            out = np.zeros(X.m, dtype=np.float64)
        else:
            out.fill(0.0)
        if X.nnz == 0 or X.m == 0:
            return out
        prod = self._scratch()
        np.take(y, X.col_idx, out=prod)
        np.multiply(X.values, prod, out=prod)
        out[self.nonempty] = np.add.reduceat(prod, self.starts)
        return out

    def spmv_t(self, p: np.ndarray) -> np.ndarray:
        """Planned ``X.T @ p``; bit-identical to :func:`spmv_t`."""
        X = self.X
        p = _check_vector(p, X.m, "p")
        if X.nnz == 0:
            return np.zeros(X.n, dtype=np.float64)
        scaled = self._scratch()
        np.take(p, self.row_expand, out=scaled)
        np.multiply(X.values, scaled, out=scaled)
        return np.bincount(X.col_idx, weights=scaled, minlength=X.n)


def fused_pattern_reference(X: CsrMatrix | np.ndarray, y: np.ndarray,
                            v: np.ndarray | None = None,
                            z: np.ndarray | None = None,
                            alpha: float = 1.0,
                            beta: float = 0.0) -> np.ndarray:
    """Ground truth for Eq. 1: ``alpha * X^T (v ⊙ (X y)) + beta * z``.

    Accepts either a :class:`CsrMatrix` or a dense 2-D array for ``X``.
    ``v=None`` means the all-ones vector; ``z=None`` with ``beta != 0`` is an
    error (matching the kernel API).
    """
    if isinstance(X, CsrMatrix):
        m, n = X.shape
        y = _check_vector(y, n, "y")
        p = spmv(X, y)
        if v is not None:
            p = p * _check_vector(v, m, "v")
        w = alpha * spmv_t(X, p)
    else:
        Xd = np.asarray(X, dtype=np.float64)
        m, n = Xd.shape
        y = _check_vector(y, n, "y")
        p = Xd @ y
        if v is not None:
            p = p * _check_vector(v, m, "v")
        w = alpha * (Xd.T @ p)
    if beta != 0.0:
        if z is None:
            raise ValueError("beta != 0 requires z")
        w = w + beta * _check_vector(z, n, "z")
    return w


def spmm(X: CsrMatrix, B: np.ndarray) -> np.ndarray:
    """``X @ B`` for a dense right-hand side (utility for the ML layer).

    One segmented reduction over the whole dense block — the k columns share
    a single gather of ``B``'s rows and a single ``reduceat`` pass, instead
    of k independent :func:`spmv` calls.  Per column the accumulation order
    matches :func:`spmv` exactly, so results are bit-identical.
    """
    B = np.asarray(B, dtype=np.float64)
    if B.ndim == 1:
        return spmv(X, B)
    if B.shape[0] != X.n:
        raise ValueError(f"B must have {X.n} rows, got {B.shape[0]}")
    k = B.shape[1]
    out = np.zeros((X.m, k), dtype=np.float64)
    if X.nnz == 0 or X.m == 0 or k == 0:
        return out
    prod = X.values[:, None] * B[X.col_idx, :]
    nonempty = X.row_nnz > 0
    starts = X.row_off[:-1][nonempty]
    out[nonempty] = np.add.reduceat(prod, starts, axis=0)
    return out


def row_norms_sq(X: CsrMatrix) -> np.ndarray:
    """Squared L2 norm of each row (used by SVM/LogReg preconditioners).

    Segment sums via ``reduceat`` over the contiguous CSR rows — the
    ``np.add.at`` scatter it replaces funnels through a ~10x slower C path
    for the same left-to-right per-row accumulation order.
    """
    out = np.zeros(X.m, dtype=np.float64)
    if X.nnz == 0 or X.m == 0:
        return out
    nonempty = X.row_nnz > 0
    out[nonempty] = np.add.reduceat(X.values**2,
                                    X.row_off[:-1][nonempty])
    return out
