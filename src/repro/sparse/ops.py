"""Reference (ground-truth) linear algebra on CSR matrices.

These NumPy implementations define *what* every kernel must compute; the
kernel simulations in :mod:`repro.kernels` are tested against them.  They are
also the compute engine of the CPU baselines (BIDMat-CPU / single-threaded
SystemML), whose time is modelled by :mod:`repro.gpu.cpu`.
"""

from __future__ import annotations

import numpy as np

from .csr import CsrMatrix


def _check_vector(x: np.ndarray, size: int, name: str) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (size,):
        raise ValueError(f"{name} must have shape ({size},), got {x.shape}")
    return x


def spmv(X: CsrMatrix, y: np.ndarray) -> np.ndarray:
    """``X @ y`` for CSR ``X`` — row-parallel dot products."""
    y = _check_vector(y, X.n, "y")
    prod = X.values * y[X.col_idx]
    out = np.zeros(X.m, dtype=np.float64)
    if prod.size == 0 or X.m == 0:
        return out
    # segment sums over non-empty rows via reduceat (O(nnz), C-speed;
    # empty rows are skipped because reduceat mishandles zero-length spans)
    nonempty = X.row_nnz > 0
    starts = X.row_off[:-1][nonempty]
    out[nonempty] = np.add.reduceat(prod, starts)
    return out


def spmv_t(X: CsrMatrix, p: np.ndarray) -> np.ndarray:
    """``X.T @ p`` for CSR ``X`` — scatter of scaled rows into columns."""
    p = _check_vector(p, X.m, "p")
    scaled = X.values * np.repeat(p, X.row_nnz)
    if scaled.size == 0:
        return np.zeros(X.n, dtype=np.float64)
    return np.bincount(X.col_idx, weights=scaled, minlength=X.n)


def fused_pattern_reference(X: CsrMatrix | np.ndarray, y: np.ndarray,
                            v: np.ndarray | None = None,
                            z: np.ndarray | None = None,
                            alpha: float = 1.0,
                            beta: float = 0.0) -> np.ndarray:
    """Ground truth for Eq. 1: ``alpha * X^T (v ⊙ (X y)) + beta * z``.

    Accepts either a :class:`CsrMatrix` or a dense 2-D array for ``X``.
    ``v=None`` means the all-ones vector; ``z=None`` with ``beta != 0`` is an
    error (matching the kernel API).
    """
    if isinstance(X, CsrMatrix):
        m, n = X.shape
        y = _check_vector(y, n, "y")
        p = spmv(X, y)
        if v is not None:
            p = p * _check_vector(v, m, "v")
        w = alpha * spmv_t(X, p)
    else:
        Xd = np.asarray(X, dtype=np.float64)
        m, n = Xd.shape
        y = _check_vector(y, n, "y")
        p = Xd @ y
        if v is not None:
            p = p * _check_vector(v, m, "v")
        w = alpha * (Xd.T @ p)
    if beta != 0.0:
        if z is None:
            raise ValueError("beta != 0 requires z")
        w = w + beta * _check_vector(z, n, "z")
    return w


def spmm(X: CsrMatrix, B: np.ndarray) -> np.ndarray:
    """``X @ B`` for a dense right-hand side (utility for the ML layer)."""
    B = np.asarray(B, dtype=np.float64)
    if B.ndim == 1:
        return spmv(X, B)
    out = np.empty((X.m, B.shape[1]), dtype=np.float64)
    for j in range(B.shape[1]):
        out[:, j] = spmv(X, B[:, j])
    return out


def row_norms_sq(X: CsrMatrix) -> np.ndarray:
    """Squared L2 norm of each row (used by SVM/LogReg preconditioners)."""
    out = np.zeros(X.m, dtype=np.float64)
    np.add.at(out, np.repeat(np.arange(X.m), X.row_nnz), X.values**2)
    return out
