"""CSC (compressed sparse column) matrix and the ``csr2csc`` conversion.

NVIDIA's recommended route for ``X^T x y`` is an explicit ``csr2csc``
transposition followed by a standard SpMV — the strategy the paper's fused
kernel beats (Fig. 2's second x-axis shows how many ML iterations are needed
to amortize the transposition).  The conversion here is the host-side
ground-truth; its *device* cost is modelled in
:mod:`repro.kernels.sparse_baseline`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CscMatrix:
    """Compressed sparse column matrix over float64."""

    shape: tuple[int, int]
    values: np.ndarray
    row_idx: np.ndarray
    col_off: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.ascontiguousarray(self.values, dtype=np.float64)
        self.row_idx = np.ascontiguousarray(self.row_idx, dtype=np.int64)
        self.col_off = np.ascontiguousarray(self.col_off, dtype=np.int64)
        m, n = self.shape
        if self.col_off.shape != (n + 1,):
            raise ValueError(f"col_off must have length n+1={n + 1}")
        if self.col_off[0] != 0 or self.col_off[-1] != self.values.size:
            raise ValueError("col_off endpoints inconsistent with nnz")
        if np.any(np.diff(self.col_off) < 0):
            raise ValueError("col_off must be non-decreasing")
        if self.row_idx.size and (self.row_idx.min() < 0
                                  or self.row_idx.max() >= m):
            raise ValueError("row index out of bounds")

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        cols = np.repeat(np.arange(self.shape[1]), np.diff(self.col_off))
        np.add.at(out, (self.row_idx, cols), self.values)
        return out


def csr_to_csc(csr) -> CscMatrix:
    """Stable counting-sort conversion, the same algorithm ``csr2csc`` uses.

    Cost on device: one pass to histogram columns, a prefix sum, and one
    scatter pass over all non-zeros (uncoalesced writes) — charged by the
    baseline kernel model.
    """
    m, n = csr.shape
    nnz = csr.nnz
    counts = np.bincount(csr.col_idx, minlength=n)
    col_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=col_off[1:])
    values = np.empty(nnz, dtype=np.float64)
    row_idx = np.empty(nnz, dtype=np.int64)
    rows = np.repeat(np.arange(m), np.diff(csr.row_off))
    # stable sort by column keeps rows ascending within each column
    order = np.argsort(csr.col_idx, kind="stable")
    values[:] = csr.values[order]
    row_idx[:] = rows[order]
    return CscMatrix((m, n), values, row_idx, col_off)


def csc_to_csr(csc: CscMatrix):
    """Inverse conversion (transpose of the transpose)."""
    from .csr import CsrMatrix
    m, n = csc.shape
    cols = np.repeat(np.arange(n), np.diff(csc.col_off))
    counts = np.bincount(csc.row_idx, minlength=m)
    row_off = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=row_off[1:])
    order = np.argsort(csc.row_idx, kind="stable")
    return CsrMatrix((m, n), csc.values[order], cols[order], row_off)
