"""ELL (ELLPACK) and HYB sparse formats.

The paper's CSR-vector kernel descends from Bell & Garland's
throughput-oriented SpMV study [3], whose other key formats are ELLPACK
(fixed width per row — perfectly coalesced column-major access, wasteful for
skewed rows) and HYB (an ELL core plus a COO tail for the long rows).  They
are provided here both as substrate completeness and as the comparison point
for the format-choice ablation benchmark: CSR-vector vs ELL vs HYB across
row-length skew.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coo import CooMatrix
from .csr import CsrMatrix


@dataclass
class EllMatrix:
    """ELLPACK: ``m x width`` dense index/value slabs, column-major access.

    ``col_idx[i, k] == -1`` marks padding; ``values`` there must be zero.
    """

    shape: tuple[int, int]
    values: np.ndarray       # (m, width)
    col_idx: np.ndarray      # (m, width), int64, -1 padding

    def __post_init__(self) -> None:
        self.values = np.ascontiguousarray(self.values, dtype=np.float64)
        self.col_idx = np.ascontiguousarray(self.col_idx, dtype=np.int64)
        m, n = self.shape
        if self.values.shape != self.col_idx.shape:
            raise ValueError("values and col_idx must have the same shape")
        if self.values.ndim != 2 or self.values.shape[0] != m:
            raise ValueError(f"slabs must have {m} rows")
        pad = self.col_idx < 0
        if np.any(self.values[pad] != 0.0):
            raise ValueError("padding slots must hold zero values")
        if self.col_idx.size and self.col_idx.max(initial=-1) >= n:
            raise ValueError("column index out of bounds")

    @property
    def m(self) -> int:
        return self.shape[0]

    @property
    def n(self) -> int:
        return self.shape[1]

    @property
    def width(self) -> int:
        return self.values.shape[1]

    @property
    def nnz(self) -> int:
        return int((self.col_idx >= 0).sum())

    @property
    def padding_fraction(self) -> float:
        """Wasted slots / total slots — ELL's cost on skewed rows."""
        total = self.values.size
        return 1.0 - self.nnz / total if total else 0.0

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        rows, slots = np.nonzero(self.col_idx >= 0)
        np.add.at(out, (rows, self.col_idx[rows, slots]),
                  self.values[rows, slots])
        return out

    def to_csr(self) -> CsrMatrix:
        rows, slots = np.nonzero(self.col_idx >= 0)
        return CooMatrix(self.shape, rows,
                         self.col_idx[rows, slots],
                         self.values[rows, slots]).to_csr()

    @classmethod
    def from_csr(cls, X: CsrMatrix, width: int | None = None) -> "EllMatrix":
        """Convert; rows longer than ``width`` raise (use HYB instead)."""
        w = int(X.row_nnz.max(initial=0)) if width is None else width
        if np.any(X.row_nnz > w):
            raise ValueError(
                f"row with {int(X.row_nnz.max())} nnz exceeds ELL width {w}; "
                "use HybMatrix")
        values = np.zeros((X.m, w), dtype=np.float64)
        col_idx = np.full((X.m, w), -1, dtype=np.int64)
        for r in range(X.m):
            s, e = X.row_off[r], X.row_off[r + 1]
            k = e - s
            values[r, :k] = X.values[s:e]
            col_idx[r, :k] = X.col_idx[s:e]
        return cls(X.shape, values, col_idx)


def ell_spmv(X: EllMatrix, y: np.ndarray) -> np.ndarray:
    """``X @ y`` on the ELL slabs (the reference the kernel model follows)."""
    y = np.asarray(y, dtype=np.float64)
    if y.shape != (X.n,):
        raise ValueError(f"y must have shape ({X.n},)")
    safe = np.maximum(X.col_idx, 0)
    gathered = y[safe] * (X.col_idx >= 0)
    return (X.values * gathered).sum(axis=1)


@dataclass
class HybMatrix:
    """HYB: ELL core of width ``K`` plus a COO tail for the excess entries."""

    ell: EllMatrix
    tail: CooMatrix

    def __post_init__(self) -> None:
        if self.ell.shape != self.tail.shape:
            raise ValueError("ELL core and COO tail shapes differ")

    @property
    def shape(self) -> tuple[int, int]:
        return self.ell.shape

    @property
    def nnz(self) -> int:
        return self.ell.nnz + self.tail.nnz

    @property
    def tail_fraction(self) -> float:
        return self.tail.nnz / self.nnz if self.nnz else 0.0

    def to_dense(self) -> np.ndarray:
        return self.ell.to_dense() + self.tail.to_dense()

    @classmethod
    def from_csr(cls, X: CsrMatrix, width: int | None = None) -> "HybMatrix":
        """Split at ``width`` (default heuristic: cover the typical row —
        at least the mean row length and the 66th length percentile, but no
        more than twice the mean, so heavy tails spill to COO while the ELL
        core stays dense enough to be worth its slabs)."""
        if width is None:
            row_nnz = X.row_nnz
            if row_nnz.size:
                mu = max(1.0, X.mean_row_nnz)
                width = int(max(1, min(max(np.percentile(row_nnz, 66),
                                           np.ceil(mu)),
                                       np.ceil(2 * mu))))
            else:
                width = 1
        values = np.zeros((X.m, width), dtype=np.float64)
        col_idx = np.full((X.m, width), -1, dtype=np.int64)
        t_rows, t_cols, t_vals = [], [], []
        for r in range(X.m):
            s, e = X.row_off[r], X.row_off[r + 1]
            k = min(e - s, width)
            values[r, :k] = X.values[s:s + k]
            col_idx[r, :k] = X.col_idx[s:s + k]
            if e - s > width:
                t_rows.append(np.full(e - s - width, r, dtype=np.int64))
                t_cols.append(X.col_idx[s + width:e])
                t_vals.append(X.values[s + width:e])
        if t_rows:
            tail = CooMatrix(X.shape, np.concatenate(t_rows),
                             np.concatenate(t_cols), np.concatenate(t_vals))
        else:
            tail = CooMatrix(X.shape, np.empty(0, dtype=np.int64),
                             np.empty(0, dtype=np.int64), np.empty(0))
        return cls(EllMatrix(X.shape, values, col_idx), tail)


def hyb_spmv(X: HybMatrix, y: np.ndarray) -> np.ndarray:
    """``X @ y`` = ELL part + COO tail scatter."""
    out = ell_spmv(X.ell, y)
    if X.tail.nnz:
        np.add.at(out, X.tail.row, X.tail.data * y[X.tail.col])
    return out
