"""CSR (compressed sparse row) matrix — the device format.

The paper's kernels consume CSR exactly as cuSPARSE does: a ``values`` array,
a parallel ``col_idx`` array, and an ``m+1``-long ``row_off`` prefix array.
This implementation is self-contained (no SciPy) so the kernel simulations can
reason about the raw arrays — segment offsets, per-row non-zero counts, and
column histograms all feed the memory/atomic models directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CsrMatrix:
    """Compressed sparse row matrix over float64."""

    shape: tuple[int, int]
    values: np.ndarray
    col_idx: np.ndarray
    row_off: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.ascontiguousarray(self.values, dtype=np.float64)
        self.col_idx = np.ascontiguousarray(self.col_idx, dtype=np.int64)
        self.row_off = np.ascontiguousarray(self.row_off, dtype=np.int64)
        self._column_counts: np.ndarray | None = None
        self.validate()

    # --- invariants ---------------------------------------------------------
    def validate(self) -> None:
        """Check the CSR structural invariants; raise ``ValueError`` if broken."""
        m, n = self.shape
        if m < 0 or n < 0:
            raise ValueError("negative dimensions")
        if self.row_off.shape != (m + 1,):
            raise ValueError(f"row_off must have length m+1={m + 1}")
        if self.row_off[0] != 0:
            raise ValueError("row_off[0] must be 0")
        if np.any(np.diff(self.row_off) < 0):
            raise ValueError("row_off must be non-decreasing")
        if self.row_off[-1] != self.values.size:
            raise ValueError("row_off[-1] must equal nnz")
        if self.values.shape != self.col_idx.shape:
            raise ValueError("values and col_idx must have identical shapes")
        if self.col_idx.size:
            if self.col_idx.min() < 0 or self.col_idx.max() >= n:
                raise ValueError("column index out of bounds")

    # --- basic properties -----------------------------------------------------
    @property
    def m(self) -> int:
        return self.shape[0]

    @property
    def n(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def row_nnz(self) -> np.ndarray:
        """Per-row non-zero counts (drives CSR-vector load balance)."""
        return np.diff(self.row_off)

    @property
    def mean_row_nnz(self) -> float:
        """mu = NNZ / m, the quantity Eq. 4 selects the vector size from."""
        return self.nnz / self.m if self.m else 0.0

    @property
    def density(self) -> float:
        cells = self.m * self.n
        return self.nnz / cells if cells else 0.0

    def nbytes(self, itemsize: int = 8, index_size: int = 4) -> int:
        """Device footprint in bytes (values + col indices + row offsets).

        Column indices are stored as 32-bit on device (cuSPARSE default) even
        though the host arrays here are int64.
        """
        return (self.values.size * itemsize
                + self.col_idx.size * index_size
                + self.row_off.size * index_size)

    def column_counts(self) -> np.ndarray:
        """Histogram of non-zeros per column (feeds the atomic model).

        Computed lazily and cached on the instance: every global-variant
        kernel call consults it, and it only depends on the structure
        (``col_idx`` + shape).  The cache follows the engine's fingerprint
        semantics — an in-place mutation of ``col_idx`` must be treated as
        a *new* matrix (the engine's content fingerprint misses for exactly
        that reason); this per-object cache is never invalidated in place.
        The returned array is read-only because it is shared across calls.
        """
        if self._column_counts is None:
            counts = np.bincount(self.col_idx,
                                 minlength=self.n).astype(np.int64)
            counts.flags.writeable = False
            self._column_counts = counts
        return self._column_counts

    # --- conversions ----------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.m), self.row_nnz)
        # accumulate: CSR permits duplicate (row, col) entries, which sum
        np.add.at(out, (rows, self.col_idx), self.values)
        return out

    def to_coo(self):
        from .coo import CooMatrix
        rows = np.repeat(np.arange(self.m), self.row_nnz)
        return CooMatrix(self.shape, rows, self.col_idx.copy(),
                         self.values.copy())

    def transpose_csr(self) -> "CsrMatrix":
        """Explicit transpose (the host-side analogue of ``csr2csc``)."""
        from .csc import csr_to_csc
        csc = csr_to_csc(self)
        return CsrMatrix((self.n, self.m), csc.values, csc.row_idx,
                         csc.col_off)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CsrMatrix":
        from .coo import CooMatrix
        return CooMatrix.from_dense(dense, tol).to_csr()

    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CsrMatrix":
        return cls(shape, np.empty(0), np.empty(0, dtype=np.int64),
                   np.zeros(shape[0] + 1, dtype=np.int64))

    def row_block(self, start: int, end: int) -> "CsrMatrix":
        """Sub-matrix of rows ``[start, end)`` (zero-copy on values/cols).

        The column space is preserved, so ``X.row_block(a, b).T @ p_block``
        contributes directly to the full ``X^T p`` — the decomposition the
        streaming and hybrid executors rely on.
        """
        if not 0 <= start <= end <= self.m:
            raise ValueError(f"invalid row range [{start}, {end}) "
                             f"for m={self.m}")
        s, e = self.row_off[start], self.row_off[end]
        return CsrMatrix((end - start, self.n), self.values[s:e],
                         self.col_idx[s:e], self.row_off[start:end + 1] - s)

    # --- row access -------------------------------------------------------------
    def row_slice(self, r: int) -> tuple[np.ndarray, np.ndarray]:
        """(values, col_idx) of row ``r`` as contiguous views."""
        s, e = self.row_off[r], self.row_off[r + 1]
        return self.values[s:e], self.col_idx[s:e]

    def __matmul__(self, other):
        """``X @ y`` / ``X @ B`` via the reference ops (NumPy-like sugar)."""
        from .ops import spmm
        return spmm(self, np.asarray(other, dtype=np.float64))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CsrMatrix):
            return NotImplemented
        return (self.shape == other.shape
                and np.array_equal(self.row_off, other.row_off)
                and np.array_equal(self.col_idx, other.col_idx)
                and np.array_equal(self.values, other.values))

    def __repr__(self) -> str:
        return (f"CsrMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"density={self.density:.4g})")
