"""Random sparse-matrix generators for the paper's workloads.

Three families:

* :func:`random_csr` — uniform sparsity, used by the synthetic sweeps of
  Figures 2-5 (m = 500k rows, sparsity 0.01, n in {200..4096});
* :func:`power_law_csr` — skewed rows/columns, the regime where load balance
  and atomic contention diverge from the uniform case (ablation studies);
* :func:`kdd_like` lives in :mod:`repro.data.synthetic` and composes these
  into scaled stand-ins for the paper's real datasets.
"""

from __future__ import annotations

import numpy as np

from .csr import CsrMatrix


def random_csr(m: int, n: int, sparsity: float,
               rng: np.random.Generator | int | None = None,
               value_scale: float = 1.0,
               distinct: bool = False) -> CsrMatrix:
    """Uniform random CSR with expected density ``sparsity``.

    Draws a binomial nnz per row (keeps the generator O(nnz), not O(m*n)).
    The default fast path samples columns with replacement — duplicate
    (row, col) entries are permitted by CSR semantics (they accumulate, as
    cuSPARSE's kernels also allow) and occur with probability ~mu/n.
    ``distinct=True`` switches to per-row rejection sampling (slower; for
    property tests that need strict uniqueness).
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    rng = np.random.default_rng(rng)
    row_nnz = rng.binomial(n, sparsity, size=m).astype(np.int64)
    np.minimum(row_nnz, n, out=row_nnz)
    row_off = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=row_off[1:])
    nnz = int(row_off[-1])
    if distinct:
        col_idx = np.empty(nnz, dtype=np.int64)
        pos = 0
        for r in range(m):
            k = int(row_nnz[r])
            if k == 0:
                continue
            if k > n // 2:
                cols = np.sort(rng.permutation(n)[:k])
            else:
                cols = np.unique(rng.integers(0, n, size=int(k * 1.3) + 4))
                while cols.size < k:
                    extra = rng.integers(0, n, size=k)
                    cols = np.unique(np.concatenate([cols, extra]))
                cols = np.sort(rng.permutation(cols)[:k])
            col_idx[pos:pos + k] = cols
            pos += k
    else:
        cols = rng.integers(0, n, size=nnz)
        rows = np.repeat(np.arange(m), row_nnz)
        order = np.lexsort((cols, rows))
        col_idx = cols[order]
    values = rng.normal(0.0, value_scale, size=nnz)
    return CsrMatrix((m, n), values, col_idx, row_off)


def power_law_csr(m: int, n: int, nnz_target: int, alpha: float = 1.5,
                  rng: np.random.Generator | int | None = None) -> CsrMatrix:
    """Skewed CSR: Zipf-distributed row lengths and column popularity.

    Models web/social data ("when n is very large, the data is likely to be
    sparse, e.g. social network data"): a few hot rows and columns, a long
    tail of near-empty ones.
    """
    rng = np.random.default_rng(rng)
    ranks = np.arange(1, m + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    # allocate the nnz budget along the power law, redistributing the mass
    # that row-capacity clipping (row_nnz <= n) would otherwise discard
    row_nnz = np.zeros(m, dtype=np.int64)
    remaining = int(min(nnz_target, m * n))
    for _ in range(30):
        if remaining <= 0:
            break
        free = np.flatnonzero(row_nnz < n)
        if free.size == 0:
            break
        w = weights[free]
        alloc = np.floor(remaining * w / w.sum()).astype(np.int64)
        new = np.minimum(row_nnz[free] + alloc, n)
        granted = int((new - row_nnz[free]).sum())
        row_nnz[free] = new
        if granted == 0:
            # proportional floors all rounded to zero: finish one-by-one
            take = free[:remaining]
            row_nnz[take] += 1
            granted = take.size
        remaining -= granted
    rng.shuffle(row_nnz)
    row_off = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=row_off[1:])
    nnz = int(row_off[-1])
    col_ranks = np.arange(1, n + 1, dtype=np.float64)
    col_w = col_ranks ** (-alpha)
    col_w /= col_w.sum()
    col_perm = rng.permutation(n)
    col_idx = np.empty(nnz, dtype=np.int64)
    pos = 0
    for r in range(m):
        k = int(row_nnz[r])
        if k == 0:
            continue
        cols = rng.choice(n, size=k, replace=False, p=col_w) if k < n \
            else np.arange(n)
        col_idx[pos:pos + k] = np.sort(col_perm[cols])
        pos += k
    values = rng.normal(size=nnz)
    return CsrMatrix((m, n), values, col_idx, row_off)


def banded_csr(m: int, n: int, bandwidth: int,
               rng: np.random.Generator | int | None = None) -> CsrMatrix:
    """Banded CSR (perfectly balanced rows) — best case for CSR-vector."""
    rng = np.random.default_rng(rng)
    row_nnz = np.full(m, 0, dtype=np.int64)
    cols_list = []
    for r in range(m):
        center = int(r * n / max(1, m))
        lo = max(0, center - bandwidth // 2)
        hi = min(n, lo + bandwidth)
        cols_list.append(np.arange(lo, hi, dtype=np.int64))
        row_nnz[r] = hi - lo
    row_off = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=row_off[1:])
    col_idx = np.concatenate(cols_list) if cols_list else \
        np.empty(0, dtype=np.int64)
    values = rng.normal(size=int(row_off[-1]))
    return CsrMatrix((m, n), values, col_idx, row_off)
