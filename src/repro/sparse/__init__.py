"""Sparse-matrix substrate: COO / CSR / CSC formats and reference ops."""

from .coo import CooMatrix
from .csc import CscMatrix, csc_to_csr, csr_to_csc
from .csr import CsrMatrix
from .ell import EllMatrix, HybMatrix, ell_spmv, hyb_spmv
from .generate import banded_csr, power_law_csr, random_csr
from .ops import (SpmvPlan, fused_pattern_reference, row_norms_sq, spmm,
                  spmv, spmv_t)

__all__ = [
    "CooMatrix", "CscMatrix", "csc_to_csr", "csr_to_csc", "CsrMatrix",
    "EllMatrix", "HybMatrix", "ell_spmv", "hyb_spmv",
    "banded_csr", "power_law_csr", "random_csr",
    "SpmvPlan", "fused_pattern_reference", "row_norms_sq", "spmm", "spmv",
    "spmv_t",
]
