"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``evaluate`` — evaluate the generic pattern on a saved or synthetic matrix
  under one or more strategies, printing model times and speedups;
* ``tune`` — print the §3.3 launch parameters for a matrix (sparse or dense)
  and optionally the exhaustive-sweep validation;
* ``report`` — regenerate EXPERIMENTS.md (all tables and figures);
* ``script`` — run a mini-DML script (Listing-1 dialect) on saved data;
* ``engine-stats`` — run an LR-CG-style iteration series through the
  :class:`~repro.core.engine.PatternEngine` session cache and report
  hits/misses, bytes cached, and amortized-vs-cold model time;
* ``generate`` — build and save a synthetic dataset (sweep point, KDD-like,
  HIGGS-like);
* ``loadgen`` — synthesize a serving workload trace (Zipf-skewed matrix
  popularity, Poisson arrivals, deadline spread) as a small JSON file;
* ``serve`` — replay a workload trace through the micro-batching
  :class:`~repro.serve.server.PatternServer` and report latency
  percentiles, shedding/timeout counts, and live engine metrics;
* ``trace`` — run a pattern workload (or replay a loadgen trace) under span
  tracing; writes Chrome trace-event JSON (``chrome://tracing``/Perfetto)
  and prints the top-down phase summary with end-to-end cost attribution;
* ``check`` — static race/barrier/codegen analysis of the per-thread SIMT
  kernels (shipped set or explicit files) plus a (VS, TL) grid of generated
  dense specializations; machine-readable findings with ``--json``, exit 1
  on any finding;
* ``plan`` — enumerate, cost, and select DAG fusion plans
  (:mod:`repro.systemml.fusion`) for the shipped DML scripts or an
  arbitrary ``--expr``, printing per-candidate fused/unfused model costs
  and the chosen plan; machine-readable with ``--json``.

``serve``, ``loadgen --run``, and ``trace --replay`` honor SIGINT: the
first Ctrl-C drains in-flight work and shuts the server down gracefully
(exit 130); further SIGINTs are deferred until the drain completes so the
scheduler thread can never be leaked mid-join.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
import zipfile

import numpy as np

from . import evaluate as evaluate_pattern
from .core.executor import STRATEGIES
from .data import higgs_like, kdd_like, regression_targets, synthetic_sparse
from .data.io import load_csr, load_dataset, save_csr, save_dataset
from .sparse import CsrMatrix, random_csr
from .tuning import autotune_sparse, tune_dense, tune_sparse


def _load_matrix(spec: str) -> CsrMatrix | np.ndarray:
    """``path.npz`` or ``MxN:sparsity`` (synthetic, seeded)."""
    if spec.endswith(".npz"):
        if not os.path.exists(spec):
            raise SystemExit(f"matrix file not found: {spec}")
        return load_csr(spec)
    try:
        dims, sparsity = spec.split(":")
        m, n = (int(v) for v in dims.lower().split("x"))
        return random_csr(m, n, float(sparsity), rng=0)
    except ValueError:
        raise SystemExit(
            f"matrix spec {spec!r} must be a .npz path or MxN:sparsity "
            "(e.g. 100000x1024:0.01)") from None


def cmd_evaluate(args: argparse.Namespace) -> int:
    X = _load_matrix(args.matrix)
    m, n = X.shape
    rng = np.random.default_rng(args.seed)
    y = rng.normal(size=n)
    v = rng.normal(size=m) if args.with_v else None
    z = rng.normal(size=n) if args.beta else None
    results = {}
    for strategy in args.strategies:
        res = evaluate_pattern(X, y, v=v, z=z, alpha=args.alpha,
                               beta=args.beta, strategy=strategy)
        results[strategy] = res
        print(f"{strategy:>18}: {res.time_ms:10.4f} model-ms   "
              f"loads={res.counters.global_load_transactions:12.0f}")
    if "fused" in results and len(results) > 1:
        base = min((r.time_ms for s, r in results.items() if s != "fused"),
                   default=None)
        if base:
            print(f"\nfused speedup vs best competitor: "
                  f"{base / results['fused'].time_ms:.2f}x")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    X = _load_matrix(args.matrix)
    if isinstance(X, CsrMatrix):
        p = tune_sparse(X)
        print(f"sparse {X.m}x{X.n} (mu={X.mean_row_nnz:.1f}): "
              f"VS={p.vector_size} BS={p.block_size} C={p.coarsening} "
              f"grid={p.grid_size} shm={p.shared_bytes}B "
              f"variant={p.variant}")
        if args.sweep:
            at = autotune_sparse(X)
            print(f"sweep: {len(at.settings)} settings, model gap "
                  f"{100 * at.model_gap:.2f}% "
                  f"(best {at.best.time_ms:.4f} ms)")
    else:
        m, n = X.shape
        p = tune_dense(m, n)
        print(f"dense {m}x{n}: TL={p.thread_load} VS={p.vector_size} "
              f"BS={p.block_size} C={p.coarsening} grid={p.grid_size} "
              f"regs={p.registers} padded_n={p.padded_n}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .bench.report import generate
    generate(args.output)
    print(f"wrote {args.output}")
    return 0


def cmd_script(args: argparse.Namespace) -> int:
    from .ml.runtime import MLRuntime
    from .systemml.script import run_script
    if not os.path.exists(args.script):
        raise SystemExit(f"script file not found: {args.script}")
    if not os.path.exists(args.dataset):
        raise SystemExit(f"dataset file not found: {args.dataset}")
    X, y, _ = load_dataset(args.dataset)
    with open(args.script) as f:
        source = f.read()
    rt = MLRuntime(args.backend)
    res = run_script(source, {"1": X, "2": y}, rt)
    print(f"executed {res.statements_executed} statements, "
          f"{res.fused_calls} fused pattern calls")
    for cat, ms in sorted(rt.ledger.by_category.items()):
        print(f"  {cat:>9}: {ms:10.3f} model-ms")
    for name in res.outputs:
        print(f"output {name!r}: vector of length "
              f"{np.asarray(res.outputs[name]).size}")
    return 0


def cmd_engine_stats(args: argparse.Namespace) -> int:
    """Cold-vs-warm cache report for an LR-CG-style iteration series."""
    from .core.engine import PatternEngine, PatternRequest

    X = _load_matrix(args.matrix)
    m, n = X.shape
    rng = np.random.default_rng(args.seed)
    engine = PatternEngine()

    # the hot statement of Listing 1: q = X^T (X p) + eps * p, p changing
    # every iteration but the matrix (and therefore the plan) staying fixed
    for _ in range(args.iterations):
        p = rng.normal(size=n)
        engine.evaluate(X, p, z=p, beta=args.eps, strategy=args.strategy)
    st = engine.stats()

    if args.json:
        # sorted-key export (EngineStats.to_dict): the same deterministic
        # shape the serve metrics endpoint and cluster aggregation consume
        print(json.dumps(st.to_dict(), indent=2, sort_keys=True))
        return 0

    # an uncached run pays the cold per-call price every iteration
    cold_total = st.cold_ms_per_call * args.iterations
    warm_total = st.cold_model_ms + st.warm_model_ms
    print(f"matrix {m}x{n}, strategy {args.strategy!r}, "
          f"{args.iterations} iterations")
    print(st.report())
    print(f"uncached total:   {cold_total:10.3f} model-ms")
    print(f"engine total:     {warm_total:10.3f} model-ms "
          f"({cold_total / max(warm_total, 1e-12):.2f}x)")

    if args.batch:
        reqs = [PatternRequest(X, rng.normal(size=n), strategy=args.strategy)
                for _ in range(args.batch)]
        results = engine.evaluate_many(reqs, max_workers=args.workers)
        walls = [r.wall_ms for r in results]
        print(f"batched:          {len(results)} requests on "
              f"{args.workers} workers, wall "
              f"{min(walls):.2f}-{max(walls):.2f} ms/request")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "sweep":
        X: CsrMatrix | np.ndarray = synthetic_sparse(
            args.n, m=args.m, rng=args.seed)
    elif args.kind == "kdd":
        X = kdd_like(scale=args.scale, rng=args.seed)
    elif args.kind == "higgs":
        X = higgs_like(scale=args.scale, rng=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown kind {args.kind}")
    y, _ = regression_targets(X, rng=args.seed + 1)
    if args.targets:
        save_dataset(args.output, X, y)
    elif isinstance(X, CsrMatrix):
        save_csr(args.output, X)
    else:
        raise SystemExit("dense matrices need --targets (saved as dataset)")
    m, n = X.shape
    print(f"wrote {args.output}: {m}x{n}"
          + (f", nnz={X.nnz}" if isinstance(X, CsrMatrix) else " dense"))
    return 0


def _resolve_sched(args: argparse.Namespace, trace: dict | None = None):
    """Resolve the SLO-scheduling knobs shared by serve/cluster/trace.

    Returns ``(tiers, autoscale, policy)``.  ``--tiers`` wins; otherwise a
    replayed trace that carries a ``tiers`` block configures the server the
    same way the trace was synthesized.  When tiers or a default SLO are in
    play and no policy was named, the scheduler defaults to ``edf``.
    """
    from .serve import parse_autoscale, parse_tiers, tiers_from_trace
    tiers = parse_tiers(args.tiers) if getattr(args, "tiers", None) else None
    if tiers is None and trace is not None:
        tiers = tiers_from_trace(trace)
    autoscale = (parse_autoscale(args.autoscale)
                 if getattr(args, "autoscale", None) else None)
    slo = getattr(args, "slo", None)
    policy = args.policy or ("edf" if (tiers or slo is not None)
                             else "fingerprint")
    return tiers, autoscale, policy


def _serve_config(args: argparse.Namespace, trace: dict | None = None):
    from .serve import ServerConfig
    tiers, autoscale, policy = _resolve_sched(args, trace)
    return ServerConfig(
        queue_capacity=args.queue_capacity, max_batch=args.max_batch,
        batch_linger_ms=args.linger_ms, workers=args.workers,
        engine_workers=args.engine_workers, policy=policy,
        default_deadline_ms=args.default_deadline_ms,
        tiers=tiers, default_slo_ms=getattr(args, "slo", None),
        autoscale=autoscale)


def _drain_ignoring_sigint(server) -> None:
    """Stop the server with SIGINT deferred for the duration.

    A second Ctrl-C during the drain would otherwise interrupt
    ``PatternServer.stop()`` mid-join and leak the scheduler thread; the
    stop is retried by the caller's ``finally`` if that ever happens.
    """
    try:
        previous = signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:                     # not the main thread (tests)
        previous = None
    try:
        server.stop()
    finally:
        if previous is not None:
            signal.signal(signal.SIGINT, previous)


def _interrupted(args: argparse.Namespace, server) -> int:
    """Shared SIGINT epilogue for serve/loadgen/trace replays (exit 130)."""
    _drain_ignoring_sigint(server)
    print(f"repro {args.command}: interrupted — drained in-flight work "
          "and shut down cleanly", file=sys.stderr)
    return 130


def _run_trace(args: argparse.Namespace, trace: dict) -> int:
    from .core.engine import PatternEngine
    from .serve import PatternServer, format_report, run_workload

    engine = PatternEngine(max_plans=args.max_plans,
                           max_artifact_bytes=args.max_artifact_bytes)
    server = PatternServer(engine, _serve_config(args, trace))
    try:
        report = run_workload(server, trace, verify=args.verify)
        server.stop()                  # drain before the final snapshots
        metrics_json = server.metrics_json()
        metrics_prom = server.metrics_prometheus()
    except KeyboardInterrupt:
        return _interrupted(args, server)
    finally:
        server.stop()                  # idempotent; covers error paths
    print(format_report(report))
    for spec, text in ((args.metrics_json, metrics_json),
                       (args.prometheus, metrics_prom)):
        if spec == "-":
            print(text)
        elif spec:
            with open(spec, "w") as f:
                f.write(text if text.endswith("\n") else text + "\n")
            print(f"wrote {spec}")
    if args.verify and report["divergent"]:
        print(f"{report['divergent']} outputs diverged from uncached "
              "evaluation", file=sys.stderr)
        return 1
    return 0


def _traced_replay(args: argparse.Namespace) -> tuple[int | None, float]:
    """Replay a loadgen trace through a server while a tracer is installed.

    Returns ``(exit_status, measured_ms)`` where ``exit_status`` is not
    ``None`` only when the replay was interrupted, and ``measured_ms`` is
    the sum of completed-request end-to-end latencies (the quantity the
    attribution gate decomposes).
    """
    from .core.engine import PatternEngine
    from .serve import (PatternServer, format_report, load_workload,
                        run_workload)

    if not os.path.exists(args.replay):
        raise SystemExit(f"workload file not found: {args.replay}")
    workload = load_workload(args.replay)
    engine = PatternEngine(max_plans=args.max_plans,
                           max_artifact_bytes=args.max_artifact_bytes)
    server = PatternServer(engine, _serve_config(args, workload))
    try:
        report = run_workload(server, workload)
        server.stop()                  # drain so every span is recorded
    except KeyboardInterrupt:
        return _interrupted(args, server), 0.0
    finally:
        server.stop()
    print(format_report(report))
    print()
    # arithmetic mean * count recovers the latency sum exactly
    measured = report["latency_ms"]["mean"] * report["completed"]
    return None, measured


def _traced_engine_loop(args: argparse.Namespace, tracer) -> float:
    """Warm-engine iteration loop (the Listing-1 hot statement) under
    tracing; returns the summed per-call wall time in milliseconds."""
    from .core.engine import PatternEngine

    X = _load_matrix(args.matrix)
    n = X.shape[1]
    rng = np.random.default_rng(args.seed)
    engine = PatternEngine(max_plans=args.max_plans,
                           max_artifact_bytes=args.max_artifact_bytes)
    # warm the session first, then drop the warmup spans: first-call costs
    # (plan/tune/profile builds, allocator and code warmup) land partly
    # outside any span and would skew the attribution of the amortized
    # regime this mode profiles; replay mode keeps its cold starts because
    # its per-request decomposition is exact by construction
    warm = rng.normal(size=n)
    engine.evaluate(X, warm, z=warm, beta=1e-3, strategy=args.strategy)
    tracer.clear()
    measured = 0.0
    for _ in range(args.iterations):
        y = rng.normal(size=n)
        t0 = time.perf_counter()
        engine.evaluate(X, y, z=y, beta=1e-3, strategy=args.strategy)
        measured += (time.perf_counter() - t0) * 1e3
    return measured


def cmd_trace(args: argparse.Namespace) -> int:
    from . import trace as tracing

    with tracing.capture() as tracer:
        if args.replay:
            status, measured = _traced_replay(args)
            if status is not None:
                return status
        else:
            measured = _traced_engine_loop(args, tracer)

    spans = tracer.snapshot()
    if tracer.dropped:
        print(f"repro trace: retention cap hit, {tracer.dropped} spans "
              "dropped (aggregates remain exact)", file=sys.stderr)
    if args.chrome:
        doc = tracing.to_chrome(spans)
        tracing.validate_chrome(doc)
        with open(args.chrome, "w") as f:
            json.dump(doc, f)
        print(f"wrote {args.chrome}: {len(doc['traceEvents'])} trace events "
              "(open in chrome://tracing or Perfetto)")
    print(tracing.to_text(tracing.aggregate(spans)))
    print()
    att = tracing.attribution(spans, measured)
    print(tracing.attribution_text(att))
    if measured > 0 and abs(att["coverage"] - 1.0) > args.coverage_tolerance:
        print(f"repro trace: attribution coverage {att['coverage']:.3f} "
              f"outside 1±{args.coverage_tolerance:g} of measured latency",
              file=sys.stderr)
        return 1
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Static kernel + host-concurrency analysis; exit 1 on any finding."""
    from .analyze import (HOST_MODULE_FILES, findings_json, findings_text,
                          parse_grid, run_check, run_host_check)
    scope = args.scope
    if scope not in ("all", "kernels", "host"):
        raise ValueError(
            f"unknown scope {scope!r}; expected kernels, host, or all")
    try:
        grid = parse_grid(args.grid)
        findings, suppressed = [], []
        if scope in ("kernels", "all"):
            findings.extend(run_check(paths=args.paths or None, grid=grid))
        if scope in ("host", "all"):
            host_active, host_supp = run_host_check(args.paths or None)
            findings.extend(host_active)
            suppressed.extend(host_supp)
    except KeyboardInterrupt:
        print("repro check: interrupted", file=sys.stderr)
        return 130
    if args.json:
        print(findings_json(findings, suppressed))
    else:
        if args.paths:
            checked = f"{len(args.paths)} file(s)"
        else:
            parts = []
            if scope in ("kernels", "all"):
                parts.append(f"shipped kernels + {len(grid)} generated "
                             "specializations + fusion + AOT sparse sources")
            if scope in ("host", "all"):
                parts.append(f"{len(HOST_MODULE_FILES)} host module(s)")
            checked = " + ".join(parts)
        print(findings_text(findings, checked,
                            suppressed_count=len(suppressed)))
    return 1 if findings else 0


def cmd_codegen(args: argparse.Namespace) -> int:
    """Inspect the AOT sparse generators: emit (and optionally lint) the
    specialized source a matrix's structure produces."""
    from .analyze.codegen_lint import check_sparse_source
    from .kernels.codegen import CompiledSparseKernels, sparse_kernel_name

    X = _load_matrix(args.matrix)
    if not isinstance(X, CsrMatrix):
        raise SystemExit("repro codegen is sparse-only (CSR matrices)")
    if args.vs is not None or args.c is not None:
        vs, c = args.vs or 32, args.c or 1
    else:
        params = tune_sparse(X)
        vs, c = params.vector_size, params.coarsening
    bundle = CompiledSparseKernels(X, vs=vs, c=c)

    m, n = X.shape
    print(f"# structure {bundle.tag}: {m}x{n}, nnz={X.nnz}, "
          f"VS={vs}, C={c} — {len(bundle.sources)} entry points, "
          f"{bundle.fresh_compiles} fresh compiles, "
          f"{bundle.nbytes} bytes")
    wanted: list[str] = []
    if args.stage in ("spmv", "all"):
        wanted.append(sparse_kernel_name("spmv", bundle.tag, vs, c))
    if args.stage in ("spmvt", "all"):
        wanted.append(sparse_kernel_name("spmvt", bundle.tag, vs, c))
    if args.stage in ("fused", "all"):
        sfx = {(False, False): "", (True, False): "_v",
               (False, True): "_b", (True, True): "_vb"}[
            (bool(args.with_v), bool(args.beta))]
        if args.stage == "all" and not (args.with_v or args.beta):
            wanted += [name for name in bundle.sources
                       if f"fused_{bundle.tag}" in name]
        else:
            wanted.append(
                sparse_kernel_name("fused", bundle.tag, vs, c, sfx))
    findings = []
    for name in wanted:
        src = bundle.sources[name]
        print(f"\n# --- {name} ---")
        print(src, end="")
        if args.lint:
            findings.extend(check_sparse_source(
                src, filename=f"<generated {name}>"))
    if args.lint:
        print()
        for f in findings:
            print(f.describe())
        print(f"{len(findings)} finding(s) over {len(wanted)} generated "
              f"source(s)")
        return 1 if findings else 0
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Enumerate, cost, and select fusion plans for DML expressions."""
    from .core.engine import PatternEngine
    from .systemml.fusion import SHIPPED_DML, infer_roles, make_env
    from .systemml.parser import parse_expression

    X = _load_matrix(args.matrix)
    engine = PatternEngine()
    jobs: list[tuple[str, object, dict]] = []
    try:
        if args.expr:
            root = parse_expression(args.expr)
            env = make_env(infer_roles(root), X, rng=args.seed)
            jobs.append((args.expr, root, env))
        else:
            names = (list(SHIPPED_DML) if args.script == "all"
                     else [args.script])
            for name in names:
                if name not in SHIPPED_DML:
                    raise SystemExit(
                        f"unknown script {name!r} (choose from "
                        f"{', '.join(sorted(SHIPPED_DML))} or 'all')")
                spec = SHIPPED_DML[name]
                jobs.append((f"{name}: {spec.dml}", spec.parse(),
                             make_env(spec, X, rng=args.seed)))
        plans = []
        for name, root, env in jobs:
            plan = engine.fusion_plan(root, env, node_budget=args.budget,
                                      expression=name)
            plans.append(plan)
    except KeyboardInterrupt:
        print("repro plan: interrupted", file=sys.stderr)
        return 130

    if args.json:
        print(json.dumps([p.to_dict() for p in plans], indent=2))
        return 0
    m, n = X.shape
    print(f"matrix {m}x{n}, {len(plans)} expression(s)\n")
    for plan in plans:
        chosen = set(plan.chosen)
        print(f"{plan.expression}")
        print(f"  nodes={plan.node_count} search={plan.search} "
              f"baseline={plan.baseline.time_ms:.4f} model-ms "
              f"saving={plan.saving_ms:.4f} model-ms")
        for i, pc in enumerate(plan.candidates):
            mark = "*" if i in chosen else " "
            print(f"  {mark} [{i}] {pc.candidate.label}")
            print(f"        fused {pc.fused.time_ms:.4f} ms "
                  f"({pc.fused.transactions:.0f} txn, "
                  f"{pc.fused.launches:.0f} launches) | unfused "
                  f"{pc.unfused.time_ms:.4f} ms "
                  f"({pc.unfused.transactions:.0f} txn, "
                  f"{pc.unfused.launches:.0f} launches, "
                  f"{pc.unfused.intermediate_bytes:.0f} B intermediates) "
                  f"| saving {pc.saving_ms:.4f} ms")
        if not plan.candidates:
            print("    (no fusable regions)")
        print()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import load_workload
    if not os.path.exists(args.workload):
        raise SystemExit(f"workload file not found: {args.workload}")
    return _run_trace(args, load_workload(args.workload))


def cmd_loadgen(args: argparse.Namespace) -> int:
    from .serve import parse_tier_mix, save_workload, synthesize_workload
    tier_mix = parse_tier_mix(args.tier_mix) if args.tier_mix else None
    trace = synthesize_workload(
        matrices=args.matrices, requests=args.requests, zipf=args.zipf,
        rows=args.rows, cols=args.cols, sparsity=args.sparsity,
        rate_rps=args.rate, mode=args.mode, concurrency=args.concurrency,
        deadline_ms=args.deadline_ms, deadline_spread=args.deadline_spread,
        strategy=args.strategy, beta=args.beta, seed=args.seed,
        tier_mix=tier_mix)
    save_workload(args.output, trace)
    arrivals = "burst at t=0" if args.rate is None or args.mode == "closed" \
        else f"Poisson at {args.rate:g} req/s"
    mix = f", tiers {'/'.join(sorted(tier_mix))}" if tier_mix else ""
    print(f"wrote {args.output}: {args.requests} requests over "
          f"{args.matrices} matrices ({args.rows}x{args.cols}:"
          f"{args.sparsity:g}), Zipf({args.zipf:g}), {args.mode} loop, "
          f"{arrivals}{mix}")
    if args.run and getattr(args, "shards", 0):
        return _run_cluster_trace(args, trace)
    if args.run:
        return _run_trace(args, trace)
    return 0


def _cluster_config(args: argparse.Namespace, trace: dict | None = None):
    from .cluster import ClusterConfig
    from .cluster.worker import WorkerConfig
    tiers, autoscale, policy = _resolve_sched(args, trace)
    worker = WorkerConfig(
        queue_capacity=args.queue_capacity, max_batch=args.max_batch,
        batch_linger_ms=args.linger_ms, workers=args.workers,
        engine_workers=args.engine_workers, policy=policy,
        max_plans=args.max_plans,
        max_artifact_bytes=args.max_artifact_bytes,
        max_matrices=args.max_matrices,
        tiers=tiers, default_slo_ms=getattr(args, "slo", None),
        autoscale=autoscale)
    return ClusterConfig(
        shards=args.shards, replication=args.replication,
        hot_threshold=args.hot_threshold,
        hot_min_requests=args.hot_min_requests,
        max_retries=args.max_retries, seed=args.seed, worker=worker)


def _run_cluster_trace(args: argparse.Namespace, trace: dict) -> int:
    from .cluster import (ShardRouter, format_cluster_report,
                          run_cluster_workload)

    router = ShardRouter(_cluster_config(args, trace))
    try:
        report = run_cluster_workload(router, trace, verify=args.verify)
        metrics_json = router.metrics_json()
        metrics_prom = router.metrics_prometheus()
    except KeyboardInterrupt:
        return _interrupted(args, router)
    finally:
        router.stop()                  # idempotent; covers error paths
    print(format_cluster_report(report))
    for spec, text in ((args.metrics_json, metrics_json),
                       (args.prometheus, metrics_prom)):
        if spec == "-":
            print(text)
        elif spec:
            with open(spec, "w") as f:
                f.write(text if text.endswith("\n") else text + "\n")
            print(f"wrote {spec}")
    if args.verify and report["divergent"]:
        print(f"{report['divergent']} outputs diverged from uncached "
              "evaluation", file=sys.stderr)
        return 1
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    from .serve import load_workload
    if not os.path.exists(args.workload):
        raise SystemExit(f"workload file not found: {args.workload}")
    return _run_cluster_trace(args, load_workload(args.workload))


def _add_serve_config_flags(p: argparse.ArgumentParser) -> None:
    """Server/engine knobs shared by ``serve``, ``loadgen --run``, ``trace``."""
    from .serve import POLICIES
    p.add_argument("--policy", default=None, choices=list(POLICIES),
                   help="micro-batching policy (default: fingerprint, or "
                        "edf once --tiers/--slo are given)")
    p.add_argument("--tiers", nargs="?", const="interactive:3,batch:1",
                   default=None, metavar="SPEC",
                   help="priority tiers as name:weight[:slo_ms],... "
                        "ranked by position (bare flag = "
                        "'interactive:3,batch:1')")
    p.add_argument("--slo", type=float, default=None, metavar="MS",
                   help="default latency SLO for requests and tiers that "
                        "carry none")
    p.add_argument("--autoscale", default=None, metavar="MIN:MAX",
                   help="autoscale in-flight batch workers between MIN and "
                        "MAX from the queue-wait/service-time ratio")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent batches in flight")
    p.add_argument("--engine-workers", type=int, default=1,
                   help="threads inside evaluate_many per batch")
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--queue-capacity", type=int, default=256)
    p.add_argument("--linger-ms", type=float, default=1.0,
                   help="batch-fill linger before dispatch")
    p.add_argument("--default-deadline-ms", type=float, default=None,
                   help="deadline for requests that carry none")
    p.add_argument("--max-plans", type=int, default=256,
                   help="engine plan-LRU bound")
    p.add_argument("--max-artifact-bytes", type=int,
                   default=256 * 1024 * 1024,
                   help="engine artifact-LRU byte budget")


def _add_serve_run_flags(p: argparse.ArgumentParser) -> None:
    """Config knobs plus the replay-output flags of ``serve``/``loadgen``."""
    _add_serve_config_flags(p)
    p.add_argument("--verify", action="store_true",
                   help="check every output bit-identically against "
                        "uncached evaluation (slow; exits 1 on divergence)")
    p.add_argument("--metrics-json", metavar="PATH",
                   help="write the metrics snapshot as JSON ('-' = stdout)")
    p.add_argument("--prometheus", metavar="PATH",
                   help="write Prometheus text metrics ('-' = stdout)")


def _add_cluster_flags(p: argparse.ArgumentParser) -> None:
    """Topology/replication knobs of the sharded cluster router."""
    p.add_argument("--replication", type=int, default=2,
                   help="replica-set size for hot fingerprints "
                        "(1 disables replication)")
    p.add_argument("--hot-threshold", type=float, default=0.2,
                   help="traffic share that promotes a fingerprint")
    p.add_argument("--hot-min-requests", type=int, default=16,
                   help="absolute popularity floor before promotion")
    p.add_argument("--max-retries", type=int, default=3,
                   help="forwarding attempts before deterministic "
                        "rejection")
    p.add_argument("--max-matrices", type=int, default=0,
                   help="per-shard matrix-cache bound (0 = unbounded)")


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="command", required=True)

    ev = sub.add_parser("evaluate", help="evaluate the generic pattern")
    ev.add_argument("matrix", help=".npz path or MxN:sparsity")
    ev.add_argument("--strategies", nargs="+", default=["fused", "cusparse"],
                    choices=[s for s in STRATEGIES if s != "auto"])
    ev.add_argument("--alpha", type=float, default=1.0)
    ev.add_argument("--beta", type=float, default=0.0)
    ev.add_argument("--with-v", action="store_true")
    ev.add_argument("--seed", type=int, default=0)
    ev.set_defaults(fn=cmd_evaluate)

    tu = sub.add_parser("tune", help="print §3.3 launch parameters")
    tu.add_argument("matrix")
    tu.add_argument("--sweep", action="store_true",
                    help="also run the exhaustive validation sweep")
    tu.set_defaults(fn=cmd_tune)

    rp = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    rp.add_argument("--output", default="EXPERIMENTS.md")
    rp.set_defaults(fn=cmd_report)

    sc = sub.add_parser("script", help="run a mini-DML script")
    sc.add_argument("script", help="path to the .dml file")
    sc.add_argument("dataset", help=".npz dataset (matrix as $1, y as $2)")
    sc.add_argument("--backend", default="gpu-fused",
                    choices=["cpu", "gpu-baseline", "gpu-fused"])
    sc.set_defaults(fn=cmd_script)

    es = sub.add_parser("engine-stats",
                        help="cold-vs-warm cache report for an LR-CG-style "
                             "iteration series")
    es.add_argument("matrix", help=".npz path or MxN:sparsity")
    es.add_argument("--iterations", type=int, default=100)
    es.add_argument("--strategy", default="auto",
                    choices=list(STRATEGIES))
    es.add_argument("--eps", type=float, default=0.001)
    es.add_argument("--batch", type=int, default=0,
                    help="also time N batched requests through the pool")
    es.add_argument("--workers", type=int, default=4)
    es.add_argument("--seed", type=int, default=0)
    es.add_argument("--json", action="store_true",
                    help="machine-readable stats (sorted keys) on stdout")
    es.set_defaults(fn=cmd_engine_stats)

    ge = sub.add_parser("generate", help="build a synthetic dataset")
    ge.add_argument("kind", choices=["sweep", "kdd", "higgs"])
    ge.add_argument("output")
    ge.add_argument("--m", type=int, default=100_000)
    ge.add_argument("--n", type=int, default=1024)
    ge.add_argument("--scale", type=float, default=0.004)
    ge.add_argument("--seed", type=int, default=0)
    ge.add_argument("--targets", action="store_true",
                    help="save as dataset with regression targets")
    ge.set_defaults(fn=cmd_generate)

    ck = sub.add_parser("check",
                        help="static race/barrier/codegen analysis of the "
                             "SIMT kernels and lock-discipline analysis of "
                             "the threaded host stack (exit 1 on any "
                             "finding)")
    ck.add_argument("paths", nargs="*",
                    help="files to analyze (default: shipped kernels + "
                         "generated specializations and/or the shipped "
                         "host modules, per --scope)")
    ck.add_argument("--scope", default="all",
                    help="kernels | host | all (default all): SIMT kernel "
                         "checkers, host lock-discipline checkers, or both")
    ck.add_argument("--json", action="store_true",
                    help="machine-readable findings on stdout")
    ck.add_argument("--grid", default="2x2,4x2,4x4,8x2,8x4,16x2,32x2",
                    help="VSxTL specialization grid for the codegen lint "
                         "(comma-separated, e.g. 8x4,16x2)")
    ck.set_defaults(fn=cmd_check)

    cg = sub.add_parser("codegen",
                        help="emit (and lint) the AOT-specialized sparse "
                             "kernel source for a matrix's structure")
    cg.add_argument("--matrix", default="2000x128:0.02",
                    help=".npz path or MxN:sparsity (default "
                         "2000x128:0.02)")
    cg.add_argument("--stage", default="all",
                    choices=["spmv", "spmvt", "fused", "all"])
    cg.add_argument("--with-v", action="store_true",
                    help="fused call shape includes the inter-vector "
                         "operand")
    cg.add_argument("--beta", action="store_true",
                    help="fused call shape includes the beta*z fold")
    cg.add_argument("--vs", type=int, default=None,
                    help="vector size override (default: tuned)")
    cg.add_argument("--c", type=int, default=None,
                    help="coarsening override (default: tuned)")
    cg.add_argument("--lint", action="store_true",
                    help="run the sparse codegen lint over the emitted "
                         "sources (exit 1 on findings)")
    cg.set_defaults(fn=cmd_codegen)

    pl = sub.add_parser("plan",
                        help="enumerate, cost, and select DAG fusion plans "
                             "for shipped DML scripts or an expression")
    pl.add_argument("--script", default="all",
                    help="shipped script name or 'all' (default)")
    pl.add_argument("--expr", metavar="DML",
                    help="plan an arbitrary DML expression instead "
                         "(vector roles are inferred from matvec edges)")
    pl.add_argument("--matrix", default="2000x128:0.02",
                    help=".npz path or MxN:sparsity (default "
                         "2000x128:0.02)")
    pl.add_argument("--budget", type=int, default=32,
                    help="node budget before greedy fallback")
    pl.add_argument("--seed", type=int, default=0)
    pl.add_argument("--json", action="store_true",
                    help="machine-readable plans on stdout")
    pl.set_defaults(fn=cmd_plan)

    sv = sub.add_parser("serve",
                        help="replay a workload trace through the "
                             "micro-batching PatternServer")
    sv.add_argument("workload", help="trace JSON from `repro loadgen`")
    _add_serve_run_flags(sv)
    sv.set_defaults(fn=cmd_serve)

    lg = sub.add_parser("loadgen", help="synthesize a serving workload trace")
    lg.add_argument("output", help="trace JSON path to write")
    lg.add_argument("--matrices", type=int, default=8)
    lg.add_argument("--requests", type=int, default=200)
    lg.add_argument("--zipf", type=float, default=1.1,
                    help="matrix-popularity skew exponent")
    lg.add_argument("--rows", type=int, default=2000)
    lg.add_argument("--cols", type=int, default=96)
    lg.add_argument("--sparsity", type=float, default=0.05)
    lg.add_argument("--rate", type=float, default=None,
                    help="open-loop arrival rate in req/s (default: burst)")
    lg.add_argument("--mode", default="open", choices=["open", "closed"])
    lg.add_argument("--concurrency", type=int, default=8,
                    help="closed-loop outstanding requests")
    lg.add_argument("--deadline-ms", type=float, default=None)
    lg.add_argument("--deadline-spread", type=float, default=0.0,
                    help="uniform deadline spread fraction in [0, 1)")
    lg.add_argument("--strategy", default="fused",
                    choices=list(STRATEGIES))
    lg.add_argument("--beta", type=float, default=1e-3)
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--tier-mix", default=None, metavar="SPEC",
                    help="tiered tenant mix as name:share[:slo_ms[:weight]]"
                         ",... (e.g. 'interactive:0.3:30:3,batch:0.7'); "
                         "stamps tier/tenant/slo_ms on every request")
    lg.add_argument("--run", action="store_true",
                    help="also replay the trace through a server in-process")
    lg.add_argument("--cluster", type=int, default=0, metavar="SHARDS",
                    dest="shards",
                    help="with --run: drive a sharded cluster of N worker "
                         "processes instead of a single server")
    _add_serve_run_flags(lg)
    _add_cluster_flags(lg)
    lg.set_defaults(fn=cmd_loadgen)

    cl = sub.add_parser("cluster",
                        help="replay a workload trace through the sharded "
                             "multi-process cluster router")
    cl.add_argument("workload", help="trace JSON from `repro loadgen`")
    cl.add_argument("--shards", type=int, default=2,
                    help="worker processes to spawn")
    cl.add_argument("--seed", type=int, default=0)
    _add_serve_run_flags(cl)
    _add_cluster_flags(cl)
    cl.set_defaults(fn=cmd_cluster)

    tr = sub.add_parser("trace",
                        help="run a workload under span tracing: Chrome "
                             "trace JSON + per-phase cost attribution")
    mode = tr.add_mutually_exclusive_group(required=True)
    mode.add_argument("--replay", metavar="TRACE.json",
                      help="loadgen trace to replay through a PatternServer")
    mode.add_argument("--matrix", metavar="SPEC",
                      help=".npz path or MxN:sparsity for a warm engine loop")
    tr.add_argument("--iterations", type=int, default=30,
                    help="engine-loop iterations (--matrix mode)")
    tr.add_argument("--strategy", default="auto", choices=list(STRATEGIES))
    tr.add_argument("--chrome", metavar="PATH",
                    help="write Chrome trace-event JSON "
                         "(chrome://tracing, Perfetto)")
    tr.add_argument("--coverage-tolerance", type=float, default=0.10,
                    help="fail when |attribution coverage - 1| exceeds this")
    tr.add_argument("--seed", type=int, default=0)
    _add_serve_config_flags(tr)
    tr.set_defaults(fn=cmd_trace)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        # uniform contract: unreadable/corrupt inputs exit 1 with one line
        # on stderr, never a traceback (tests/test_cli_errors.py)
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
