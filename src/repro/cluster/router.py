"""The shard router: fingerprint-affinity placement over worker processes.

``ShardRouter`` is the cluster's front process.  It spawns N
:mod:`~repro.cluster.worker` processes (each a ``PatternServer`` with its
own engine and artifact LRU), places every request by consistent-hashing
its matrix content fingerprint (:mod:`~repro.cluster.hashring`), and keeps
the matrices themselves in a registry that is uploaded to shards lazily —
so each shard's caches hold exactly the disjoint slice of the working set
the ring assigns it, and aggregate warm capacity grows linearly with N.

* **Hot-key replication** — a :class:`~repro.cluster.hotkeys.HotKeyTracker`
  watches observed popularity; fingerprints above the threshold are routed
  over their deterministic ring replica set instead of the primary alone,
  picking among healthy replicas with power-of-two-choices on the
  channels' outstanding-request gauges (arXiv:2203.07673's 1.5D tradeoff:
  replicate the dense few, partition the long tail).
* **Failure handling** — a heartbeat thread pings every shard and sweeps
  per-request timeouts; torn links or expired replies fail back into the
  router, which retries with exponential backoff on the next healthy
  shard (excluding ones that already failed this request) up to
  ``max_retries``, then resolves a deterministic ``rejected`` response.
  Workers are never restarted mid-run: a dead shard simply leaves the
  routing set, and its keys fail over along the ring.
* **Drain** — ``stop()`` stops admission, waits for live requests, asks
  every healthy worker to drain (in-flight completes, queued rejects),
  then joins processes; stragglers are terminated after a timeout.
* **Observability** — per-shard serve/engine snapshots are gathered over
  the control op and merged (sorted keys) next to router-level counters
  into one JSON/Prometheus endpoint; route/forward/retry phases emit
  :mod:`repro.trace` spans.

The router also exposes a socket front door (:meth:`listen`) speaking the
same length-prefixed protocol, used by the socket and asyncio clients.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass
from multiprocessing import get_context

from .. import trace
from ..core.engine import fingerprint_matrix
from .channel import ShardChannel
from .hashring import HashRing
from .hotkeys import HotKeyTracker
from .metrics import aggregate_shards, cluster_prometheus
from .protocol import (CODE_UNKNOWN_FINGERPRINT, OP_CLUSTER_METRICS,
                       OP_DRAIN, OP_EVAL, OP_METRICS, OP_PING, OP_REGISTER,
                       OP_RESULT, OP_UPLOAD, recv_msg, send_msg)
from .request import (STATUS_OK, STATUS_REJECTED, ClusterFuture,
                      ClusterRequest, ClusterResponse, _RouterTicket)
from .worker import WorkerConfig, worker_main

#: worker reply statuses the router retries elsewhere instead of returning:
#: a shed or shutdown-rejection from one shard says nothing about the rest
#: of the cluster, so placement policy (not the worker) decides the outcome
RETRYABLE_STATUSES = ("shed", "rejected")


@dataclass
class ClusterConfig:
    """Cluster topology, replication policy, and failure-handling bounds."""

    shards: int = 2
    vnodes: int = 64                  # ring smoothing (per shard)
    replication: int = 2              # replica-set size for hot keys (incl.
                                      # the primary); 1 disables replication
    hot_threshold: float = 0.2        # traffic share that makes a key hot
    hot_min_requests: int = 16
    hot_window: int = 1024            # popularity decay window (requests)
    max_retries: int = 3              # forwarding attempts per request
    retry_backoff_ms: float = 5.0     # base of the exponential backoff
    request_timeout_s: float = 60.0   # per-forward reply bound
    heartbeat_interval_s: float = 0.25
    drain_timeout_s: float = 30.0
    seed: int = 0                     # power-of-two-choices tie RNG
    worker: WorkerConfig | None = None   # template; shard_id is stamped in

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if not 1 <= self.replication:
            raise ValueError("replication must be >= 1")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")


class ShardRouter:
    """Cluster front door: spawn, route, replicate, retry, drain."""

    def __init__(self, config: ClusterConfig | None = None,
                 start: bool = True):
        self.config = config or ClusterConfig()
        self.ring = HashRing(range(self.config.shards),
                             vnodes=self.config.vnodes)
        self.tracker = HotKeyTracker(
            threshold=self.config.hot_threshold,
            min_requests=self.config.hot_min_requests,
            window=self.config.hot_window)
        self._rng = random.Random(self.config.seed)
        self._channels: dict[int, ShardChannel] = {}
        self._matrices: dict[str, object] = {}
        self._uploaded: set[tuple[int, str]] = set()
        self._hot: dict[str, list[int]] = {}      # fp -> replica set
        self._live: dict[int, _RouterTicket] = {}
        self._lock = threading.RLock()
        self._counters = {k: 0 for k in (
            "completed", "demotions", "errors", "failovers", "promotions",
            "rejected", "retries", "reuploads", "routed_primary",
            "routed_replica", "shed", "submitted", "timeout", "uploads")}
        self._next_id = 0
        # an Event, not a bare bool: flipped under the lifecycle lock but
        # read on the submit fast path under the routing lock only
        self._accepting = threading.Event()
        self._stopped = False
        self._shutdown_complete = False
        self._lifecycle_lock = threading.RLock()
        self._live_cond = threading.Condition(self._lock)
        self._timers: set[threading.Timer] = set()
        self._hb_stop = threading.Event()
        self._heartbeat: threading.Thread | None = None
        self._listener: socket.socket | None = None
        self._frontend_threads: list[threading.Thread] = []
        self._frontend_conns: list[socket.socket] = []
        if start:
            self.start()

    # ------------------------------------------------------------- lifecycle
    # the worker-spawn handshake (pipe poll/recv) deliberately runs under
    # the lifecycle lock so a concurrent stop() cannot interleave with it
    def start(self) -> "ShardRouter":  # analyze: allow(lock-held-blocking)
        """Spawn workers, connect channels, start the heartbeat."""
        with self._lifecycle_lock:
            if self._stopped:
                raise RuntimeError("router was stopped; create a new one")
            if self._channels:
                return self
            ctx = get_context(
                "fork" if "fork" in
                __import__("multiprocessing").get_all_start_methods()
                else "spawn")
            template = self.config.worker or WorkerConfig()
            for shard in self.ring.shards:
                cfg = WorkerConfig(**{**template.__dict__,
                                      "shard_id": shard})
                parent_pipe, child_pipe = ctx.Pipe()
                proc = ctx.Process(
                    target=worker_main, args=(child_pipe, cfg),
                    name=f"repro-cluster-worker-{shard}", daemon=True)
                proc.start()
                child_pipe.close()
                if not parent_pipe.poll(30.0):
                    raise RuntimeError(f"shard {shard} never reported its "
                                       "port (spawn failed?)")
                port = parent_pipe.recv()
                parent_pipe.close()
                self._channels[shard] = ShardChannel(shard, port,
                                                     process=proc)
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop, name="repro-cluster-heartbeat",
                daemon=True)
            self._heartbeat.start()
            self._accepting.set()
        return self

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # draining/joining under the lifecycle lock is the shutdown contract:
    # a concurrent stop() must observe a fully-reaped router
    def stop(self) -> None:  # analyze: allow(lock-held-blocking)
        """Graceful drain: live requests finish (or fail over), queued
        worker backlogs reject deterministically, processes join.

        Idempotent, and safe to retry after an interrupt cut a previous
        call short — completion latches only once every worker has been
        reaped (the same contract ``PatternServer.stop`` keeps)."""
        with self._lifecycle_lock:
            if self._shutdown_complete:
                return
            self._stopped = True
            self._accepting.clear()
            self._close_frontend()
            deadline = time.monotonic() + self.config.drain_timeout_s
            with self._live_cond:
                while self._live and time.monotonic() < deadline:
                    self._live_cond.wait(0.1)
                leftovers = list(self._live.values())
                self._live.clear()
            for ticket in leftovers:
                self._resolve(ticket, ClusterResponse(
                    id=ticket.id, status=STATUS_REJECTED,
                    fingerprint=ticket.request.fingerprint,
                    reason="router shutdown before completion",
                    attempts=ticket.attempts), count=False)
            # _retry mutates _timers under the routing lock; swap the set
            # out under that same lock before cancelling
            with self._lock:
                timers, self._timers = list(self._timers), set()
            for timer in timers:
                timer.cancel()
            # ask every live worker to drain, then reap
            acks = []
            for shard, channel in self._channels.items():
                if channel.healthy:
                    done = threading.Event()
                    channel.send({"op": OP_DRAIN},
                                 on_reply=lambda _r, d=done: d.set())
                    acks.append(done)
            for done in acks:
                done.wait(self.config.drain_timeout_s)
            self._hb_stop.set()
            if self._heartbeat is not None:
                self._heartbeat.join(timeout=5.0)
            for channel in self._channels.values():
                channel.close()
                proc = channel.process
                if proc is not None:
                    proc.join(timeout=5.0)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=5.0)
            self._shutdown_complete = True

    close = stop

    # -------------------------------------------------------------- frontend
    def register(self, X) -> str:
        """Publish a matrix; returns the fingerprint requests route by."""
        fp = fingerprint_matrix(X)
        with self._lock:
            self._matrices.setdefault(fp, X)
        return fp

    def submit(self, request: ClusterRequest) -> ClusterFuture:
        """Route one request; always returns a future that will resolve."""
        with trace.span("route", "cluster") as sp:
            with self._lock:
                self._next_id += 1
                ticket = _RouterTicket(id=self._next_id, request=request,
                                       submitted_at=time.monotonic())
                self._counters["submitted"] += 1
                accepting = self._accepting.is_set()
                known = request.fingerprint in self._matrices
            sp.set("rid", ticket.id)
            if not accepting:
                self._resolve(ticket, self._rejection(
                    ticket, "router shutdown"), count=False)
                sp.set("outcome", "rejected")
                return ticket.future
            if not known:
                self._resolve(ticket, self._rejection(
                    ticket, f"unregistered fingerprint "
                            f"{request.fingerprint!r}"), count=False)
                sp.set("outcome", "rejected")
                return ticket.future
            with self._lock:
                self._live[ticket.id] = ticket
            shard = self._route(ticket)
            sp.set("shard", -1 if shard is None else shard)
            if shard is None:
                self._reject_no_shard(ticket)
            else:
                self._forward(ticket, shard)
        return ticket.future

    def evaluate(self, request: ClusterRequest,
                 timeout: float | None = None) -> ClusterResponse:
        return self.submit(request).result(timeout)

    # --------------------------------------------------------------- routing
    # _channels is sealed in start() before the heartbeat and any frontend
    # thread exists; post-start it is read-only, so bare reads are safe
    def _healthy_shards(self) -> list[int]:  # analyze: allow(atomicity)
        return [s for s, c in self._channels.items() if c.healthy]

    def _route(self, ticket: _RouterTicket) -> int | None:
        """Pick the next shard for ``ticket`` (None = nothing healthy)."""
        fp = ticket.request.fingerprint
        replicas = self._note_popularity(fp)
        exclude = ticket.failed_shards
        if replicas is not None:
            candidates = [s for s in replicas
                          if s not in exclude
                          and self._channels[s].healthy]
            if len(candidates) >= 2:
                # power-of-two-choices among the healthy replicas: sample
                # two, take the one with fewer outstanding forwards
                a, b = self._rng.sample(candidates, 2)
                pick = a if (self._channels[a].outstanding
                             <= self._channels[b].outstanding) else b
                ticket.replica_routed = True
                self._inc("routed_replica")
                return pick
            if candidates:
                ticket.replica_routed = True
                self._inc("routed_replica")
                return candidates[0]
        # cold path: ring order from the primary, skipping failed/dead
        for shard in self.ring.replicas(fp, len(self.ring)):
            if shard in exclude or not self._channels[shard].healthy:
                continue
            if ticket.attempts == 0 and shard == self.ring.primary(fp):
                self._inc("routed_primary")
            else:
                self._inc("failovers")
            return shard
        return None

    def _note_popularity(self, fp: str) -> list[int] | None:
        """Record one observation; the replica set while ``fp`` is hot."""
        if self.config.replication < 2:
            self.tracker.record(fp)
            return None
        hot = self.tracker.record(fp)
        with self._lock:
            if hot and fp not in self._hot:
                self._hot[fp] = self.ring.replicas(
                    fp, self.config.replication)
                self.tracker.note_promotion()
                self._counters["promotions"] += 1
            elif not hot and fp in self._hot:
                del self._hot[fp]          # cooled off: back to the primary
                self._counters["demotions"] += 1
            return self._hot.get(fp)

    # ------------------------------------------------------------ forwarding
    def _forward(self, ticket: _RouterTicket, shard: int) -> None:
        channel = self._channels[shard]
        fp = ticket.request.fingerprint
        ticket.attempts += 1
        with self._lock:
            needs_upload = (shard, fp) not in self._uploaded
            if needs_upload:
                self._uploaded.add((shard, fp))
                matrix = self._matrices[fp]
        if needs_upload:
            self._inc("uploads")
            channel.send({"op": OP_UPLOAD, "fingerprint": fp,
                          "matrix": matrix})
        sent_at = time.monotonic()
        channel.send(
            dict(ticket.request.to_wire(), op=OP_EVAL),
            on_reply=lambda reply, t=ticket, s=shard, t0=sent_at:
                self._on_reply(t, s, t0, reply))

    def _on_reply(self, ticket: _RouterTicket, shard: int, sent_at: float,
                  reply: dict | None) -> None:
        tracer = trace.active()
        now = time.monotonic()
        if tracer is not None:
            status = "transport-failure" if reply is None \
                else reply.get("status", "?")
            tracer.add_span("forward", "cluster", sent_at, now,
                            args={"rid": ticket.id, "shard": shard,
                                  "status": status})
        if reply is None:
            ticket.failed_shards.add(shard)
            self._retry(ticket, f"shard {shard} failed")
            return
        status = reply.get("status")
        if (status == "error"
                and reply.get("code") == CODE_UNKNOWN_FINGERPRINT):
            # the worker lost (or never had) the matrix: re-upload once
            # per shard per request, then resend without burning a retry
            fp = ticket.request.fingerprint
            if shard not in ticket.reuploaded_shards:
                ticket.reuploaded_shards.add(shard)
                with self._lock:
                    self._uploaded.discard((shard, fp))
                self._inc("reuploads")
                ticket.attempts -= 1
                self._forward(ticket, shard)
                return
            ticket.failed_shards.add(shard)
            self._retry(ticket, f"shard {shard} kept rejecting "
                                f"fingerprint {fp}")
            return
        if status in RETRYABLE_STATUSES:
            ticket.failed_shards.add(shard)
            self._retry(ticket, f"shard {shard} answered {status}")
            return
        self._resolve(ticket, ClusterResponse(
            id=ticket.id, status=status,
            fingerprint=ticket.request.fingerprint,
            result=reply.get("result"), reason=reply.get("reason", ""),
            shard=shard, attempts=ticket.attempts,
            replica_routed=ticket.replica_routed,
            latency_ms=(now - ticket.submitted_at) * 1e3,
            wait_ms=reply.get("wait_ms", 0.0),
            service_ms=reply.get("service_ms", 0.0),
            batch_size=reply.get("batch_size", 0),
            cached=reply.get("cached", False),
            tier=reply.get("tier", "")))

    def _retry(self, ticket: _RouterTicket, why: str) -> None:
        if ticket.attempts >= self.config.max_retries:
            self._reject_no_shard(ticket)
            return
        self._inc("retries")
        backoff_s = (self.config.retry_backoff_ms / 1e3
                     * (2 ** (ticket.attempts - 1)))
        scheduled_at = time.monotonic()

        def resend() -> None:
            tracer = trace.active()
            if tracer is not None:
                tracer.add_span("retry", "cluster", scheduled_at,
                                time.monotonic(),
                                args={"rid": ticket.id,
                                      "attempt": ticket.attempts,
                                      "why": why})
            with self._lock:
                self._timers.discard(timer)
                if ticket.id not in self._live:   # resolved while backed off
                    return
            shard = self._route(ticket)
            if shard is None:
                self._reject_no_shard(ticket)
            else:
                self._forward(ticket, shard)

        timer = threading.Timer(backoff_s, resend)
        timer.daemon = True
        with self._lock:
            if ticket.id not in self._live:
                return
            self._timers.add(timer)
        timer.start()

    def _rejection(self, ticket: _RouterTicket,
                   reason: str) -> ClusterResponse:
        return ClusterResponse(
            id=ticket.id, status=STATUS_REJECTED,
            fingerprint=ticket.request.fingerprint, reason=reason,
            attempts=ticket.attempts,
            replica_routed=ticket.replica_routed,
            latency_ms=(time.monotonic() - ticket.submitted_at) * 1e3)

    def _reject_no_shard(self, ticket: _RouterTicket) -> None:
        """Deterministic terminal rejection after routing exhaustion."""
        self._resolve(ticket, self._rejection(
            ticket, f"no healthy shard after {ticket.attempts} "
                    f"attempt(s) (max_retries={self.config.max_retries})"))

    def _resolve(self, ticket: _RouterTicket, response: ClusterResponse,
                 count: bool = True) -> None:
        if ticket.future.resolve(response):
            with self._live_cond:
                self._live.pop(ticket.id, None)
                if count:
                    if response.status == STATUS_OK:
                        self._counters["completed"] += 1
                    elif response.status in self._counters:
                        self._counters[response.status] += 1
                    else:
                        self._counters["errors"] += 1
                elif response.status == STATUS_REJECTED:
                    self._counters["rejected"] += 1
                self._live_cond.notify_all()

    def _inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    # -------------------------------------------------------------- heartbeat
    def _heartbeat_loop(self) -> None:
        while not self._hb_stop.wait(self.config.heartbeat_interval_s):
            for shard, channel in self._channels.items():
                if not channel.healthy:
                    continue
                channel.fail_timed_out(self.config.request_timeout_s)
                channel.send(
                    {"op": OP_PING},
                    on_reply=lambda reply, c=channel:
                        c.last_pong.update(reply or {}))

    # ------------------------------------------------------------ observability
    def shard_metrics(self, timeout: float = 5.0) -> dict[int, dict]:
        """Per-shard serve/engine snapshots gathered over the control op."""
        replies: dict[int, dict] = {}
        events = []
        for shard, channel in self._channels.items():
            if not channel.healthy:
                continue
            done = threading.Event()

            def on_reply(reply, shard=shard, done=done):
                if reply is not None:
                    replies[shard] = reply
                done.set()

            channel.send({"op": OP_METRICS}, on_reply=on_reply)
            events.append(done)
        for done in events:
            done.wait(timeout)
        return {s: replies[s] for s in sorted(replies)}

    def metrics_snapshot(self, timeout: float = 5.0) -> dict:
        """Router counters + per-shard snapshots + sorted-key aggregation."""
        shards = self.shard_metrics(timeout)
        with self._lock:
            counters = {k: self._counters[k] for k in sorted(self._counters)}
            live = len(self._live)
            hot = {fp: reps for fp, reps in sorted(self._hot.items())}
        per_shard = {}
        for shard, channel in sorted(self._channels.items()):
            entry = {
                "cached_matrices": shards.get(shard, {}).get(
                    "cached_matrices", 0),
                "healthy": channel.healthy,
                "in_flight": channel.last_pong.get("in_flight", 0),
                "outstanding": channel.outstanding,
                "queue_depth": channel.last_pong.get("queue_depth", 0),
            }
            if shard in shards:
                entry["metrics"] = shards[shard]["metrics"]
            per_shard[str(shard)] = entry
        return {
            "aggregate": aggregate_shards(
                [s["metrics"] for s in shards.values()]),
            "counters": counters,
            "gauges": {"live_requests": live,
                       "shards": len(self._channels),
                       "shards_healthy": len(self._healthy_shards())},
            "hotkeys": self.tracker.snapshot(),
            "replicated": hot,
            "shards": per_shard,
        }

    def metrics_json(self, indent: int | None = 2,
                     timeout: float = 5.0) -> str:
        import json
        return json.dumps(self.metrics_snapshot(timeout), indent=indent,
                          sort_keys=True)

    def metrics_prometheus(self, timeout: float = 5.0) -> str:
        return cluster_prometheus(self.metrics_snapshot(timeout))

    # ------------------------------------------------------------- front door
    def listen(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Open the socket front door; returns the bound port."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        t = threading.Thread(target=self._accept_loop,
                             name="repro-cluster-frontend", daemon=True)
        t.start()
        self._frontend_threads.append(t)
        return listener.getsockname()[1]

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        # monotonic shutdown latch polled every 200ms; a stale read only
        # delays loop exit by one accept timeout
        while not self._stopped:  # analyze: allow(atomicity)
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self._frontend_conns.append(conn)
            t = threading.Thread(
                target=self._serve_client, args=(conn,),
                name="repro-cluster-frontend-conn", daemon=True)
            t.start()
            self._frontend_threads.append(t)

    def _serve_client(self, conn: socket.socket) -> None:
        """One client link: register/eval/metrics over the shared framing."""
        write_lock = threading.Lock()

        def reply(msg: dict) -> None:
            with write_lock:
                try:
                    send_msg(conn, msg)
                except (OSError, ValueError):
                    pass

        try:
            while True:
                try:
                    msg = recv_msg(conn)
                except (ConnectionError, OSError):
                    return
                if msg is None:
                    return
                op, rid = msg.get("op"), msg.get("rid")
                if op == OP_REGISTER:
                    fp = self.register(msg["matrix"])
                    reply({"op": "ok", "rid": rid, "fingerprint": fp})
                elif op == OP_EVAL:
                    request = ClusterRequest(
                        fingerprint=msg["fingerprint"], y=msg["y"],
                        v=msg.get("v"), z=msg.get("z"),
                        alpha=msg.get("alpha", 1.0),
                        beta=msg.get("beta", 0.0),
                        inner=msg.get("inner", True),
                        strategy=msg.get("strategy", "auto"),
                        deadline_ms=msg.get("deadline_ms"),
                        tenant=msg.get("tenant", ""),
                        tier=msg.get("tier", ""),
                        slo_ms=msg.get("slo_ms"))
                    self.submit(request).add_done_callback(
                        lambda resp, rid=rid: reply(
                            {"op": OP_RESULT, "rid": rid,
                             "response": resp}))
                elif op == OP_PING:
                    reply({"op": "pong", "rid": rid,
                           "shards": len(self._channels),
                           "shards_healthy": len(self._healthy_shards())})
                elif op == OP_CLUSTER_METRICS:
                    reply({"op": "ok", "rid": rid,
                           "snapshot": self.metrics_snapshot()})
                else:
                    reply({"op": OP_RESULT, "rid": rid, "status": "error",
                           "reason": f"unknown op {op!r}"})
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # joins run from stop() under the lifecycle lock by design (see stop)
    def _close_frontend(self) -> None:  # analyze: allow(lock-held-blocking)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in self._frontend_conns:
            try:
                conn.close()
            except OSError:
                pass
        for t in self._frontend_threads:
            if t is not threading.current_thread():
                t.join(timeout=2.0)
