"""Cluster clients: in-process, blocking socket, and asyncio.

Three clients, one surface (``register`` / ``submit`` / ``evaluate`` /
``metrics``):

* :class:`ClusterClient` wraps an in-process :class:`ShardRouter` — the
  loadgen/bench path, zero extra hops;
* :class:`SocketClusterClient` talks to a router front door opened with
  ``router.listen()`` over one pipelined connection (a reader thread
  matches replies to futures by rid, so many requests can be in flight);
* :class:`AsyncClusterClient` is the asyncio twin for async applications:
  same wire protocol, ``await``-able futures on the running loop.

All three resolve :class:`~repro.cluster.request.ClusterFuture` objects
with terminal :class:`~repro.cluster.request.ClusterResponse` values —
transport loss resolves an ``error`` response rather than raising, so a
client-side failure is observable the same way a cluster-side one is.
"""

from __future__ import annotations

import socket
import threading

from .protocol import (OP_CLUSTER_METRICS, OP_EVAL, OP_PING, OP_REGISTER,
                       recv_msg, send_msg)
from .request import (STATUS_ERROR, ClusterFuture, ClusterRequest,
                      ClusterResponse)


class ClusterClient:
    """Thin in-process facade over a running :class:`ShardRouter`."""

    def __init__(self, router):
        self.router = router

    def register(self, X) -> str:
        return self.router.register(X)

    def submit(self, request: ClusterRequest) -> ClusterFuture:
        return self.router.submit(request)

    def evaluate(self, request: ClusterRequest,
                 timeout: float | None = None) -> ClusterResponse:
        return self.router.submit(request).result(timeout)

    def metrics(self) -> dict:
        return self.router.metrics_snapshot()

    def close(self) -> None:      # the router's owner stops it
        pass


class SocketClusterClient:
    """Blocking client for the router's socket front door (pipelined)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 connect_timeout_s: float = 10.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout_s)
        self._sock.settimeout(None)
        self._lock = threading.Lock()       # guards rid counter + pending
        self._write_lock = threading.Lock() # serializes frame writes
        self._pending: dict[int, ClusterFuture] = {}
        self._next_rid = 0
        self._closed = False
        self._reader = threading.Thread(target=self._read_loop,
                                        name="repro-cluster-client-read",
                                        daemon=True)
        self._reader.start()

    # --------------------------------------------------------------- plumbing
    def _call(self, msg: dict) -> ClusterFuture:
        future = ClusterFuture()
        with self._lock:
            if self._closed:
                future.resolve(ClusterResponse(
                    id=0, status=STATUS_ERROR, reason="client closed"))
                return future
            rid = self._next_rid = self._next_rid + 1
            self._pending[rid] = future
        try:
            with self._write_lock:
                send_msg(self._sock, dict(msg, rid=rid))
        except (OSError, ValueError) as exc:
            self._fail(f"send failed: {exc}")
        return future

    def _read_loop(self) -> None:
        while True:
            try:
                msg = recv_msg(self._sock)
            except (ConnectionError, OSError):
                msg = None
            if msg is None:
                self._fail("connection closed")
                return
            with self._lock:
                future = self._pending.pop(msg.get("rid"), None)
            if future is None:
                continue
            response = msg.get("response")
            if isinstance(response, ClusterResponse):
                future.resolve(response)
            else:
                # non-eval replies (register/metrics/ping acks) ride the
                # same future type with the raw payload as the result
                future.resolve(ClusterResponse(
                    id=msg.get("rid", 0),
                    status=msg.get("status", "ok"),
                    result=msg, reason=msg.get("reason", "")))

    def _fail(self, reason: str) -> None:
        with self._lock:
            if self._closed:
                pending = {}
            else:
                self._closed = True
                pending, self._pending = self._pending, {}
        for rid, future in pending.items():
            future.resolve(ClusterResponse(
                id=rid, status=STATUS_ERROR,
                reason=f"transport failure: {reason}"))

    # ---------------------------------------------------------------- surface
    def register(self, X, timeout: float | None = 30.0) -> str:
        reply = self._call({"op": OP_REGISTER, "matrix": X}).result(timeout)
        if not reply.ok:
            raise ConnectionError(f"register failed: {reply.reason}")
        return reply.result["fingerprint"]

    def submit(self, request: ClusterRequest) -> ClusterFuture:
        return self._call(dict(request.to_wire(), op=OP_EVAL))

    def evaluate(self, request: ClusterRequest,
                 timeout: float | None = None) -> ClusterResponse:
        return self.submit(request).result(timeout)

    def metrics(self, timeout: float | None = 30.0) -> dict:
        reply = self._call({"op": OP_CLUSTER_METRICS}).result(timeout)
        if not reply.ok:
            raise ConnectionError(f"metrics failed: {reply.reason}")
        return reply.result["snapshot"]

    def ping(self, timeout: float | None = 30.0) -> dict:
        reply = self._call({"op": OP_PING}).result(timeout)
        return reply.result or {}

    def close(self) -> None:
        self._fail("client closed")      # marks closed + flushes pending
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        if self._reader is not threading.current_thread():
            self._reader.join(timeout=5.0)

    def __enter__(self) -> "SocketClusterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncClusterClient:
    """asyncio client for the router front door (same wire protocol).

    Usage::

        client = await AsyncClusterClient.connect(port=port)
        fp = await client.register(X)
        response = await client.evaluate(ClusterRequest(fp, y))
        await client.close()
    """

    def __init__(self, reader, writer):
        import asyncio

        self._reader = reader
        self._writer = writer
        self._pending: dict[int, "asyncio.Future"] = {}
        self._next_rid = 0
        self._closed = False
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: int = 0) -> "AsyncClusterClient":
        import asyncio

        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # --------------------------------------------------------------- plumbing
    async def _call(self, msg: dict):
        import asyncio
        import pickle
        import struct

        if self._closed:
            raise ConnectionError("client closed")
        self._next_rid += 1
        rid = self._next_rid
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        payload = pickle.dumps(dict(msg, rid=rid),
                               protocol=pickle.HIGHEST_PROTOCOL)
        self._writer.write(struct.pack(">I", len(payload)) + payload)
        await self._writer.drain()
        return await future

    async def _read_loop(self) -> None:
        import asyncio
        import pickle
        import struct

        try:
            while True:
                header = await self._reader.readexactly(4)
                (length,) = struct.unpack(">I", header)
                payload = await self._reader.readexactly(length)
                msg = pickle.loads(payload)
                future = self._pending.pop(msg.get("rid"), None)
                if future is not None and not future.done():
                    future.set_result(msg)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            pending, self._pending = self._pending, {}
            for future in pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("connection closed"))

    # ---------------------------------------------------------------- surface
    async def register(self, X) -> str:
        reply = await self._call({"op": OP_REGISTER, "matrix": X})
        return reply["fingerprint"]

    async def evaluate(self, request: ClusterRequest) -> ClusterResponse:
        reply = await self._call(dict(request.to_wire(), op=OP_EVAL))
        response = reply.get("response")
        if not isinstance(response, ClusterResponse):
            raise ConnectionError(f"malformed reply: {reply!r}")
        return response

    async def metrics(self) -> dict:
        reply = await self._call({"op": OP_CLUSTER_METRICS})
        return reply["snapshot"]

    async def ping(self) -> dict:
        return await self._call({"op": OP_PING})

    async def close(self) -> None:
        import asyncio

        if self._closed:
            return
        self._closed = True
        self._read_task.cancel()
        try:
            await self._read_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
