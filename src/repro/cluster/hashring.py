"""Consistent-hash ring with virtual nodes and deterministic replica sets.

The router's placement function: a matrix content fingerprint maps onto a
fixed point of a 64-bit ring, and the shard owning the first virtual node
clockwise of that point is the *primary* for the fingerprint.  Virtual
nodes (``vnodes`` per shard, blake2b-placed) smooth the per-shard key share
toward ``1/N``; walking the ring past the primary yields the deterministic
*replica set* used for hot-key replication.

Everything is a pure function of ``(shard ids, vnodes, key)`` — no RNG, no
clock — so two routers configured identically agree on every placement, and
adding or removing one shard remaps only the keys whose owning arc moved
(~``1/N`` of them), which the hypothesis suite pins.
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b


def ring_point(data: str | bytes) -> int:
    """Deterministic 64-bit ring position for an arbitrary key."""
    if isinstance(data, str):
        data = data.encode()
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """Consistent hashing of string keys onto integer shard ids."""

    def __init__(self, shards, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[tuple[int, int]] = []   # (ring point, shard id)
        self._shards: set[int] = set()
        for shard in shards:
            self.add(shard)
        if not self._shards:
            raise ValueError("ring needs at least one shard")

    # ---------------------------------------------------------------- topology
    @property
    def shards(self) -> tuple[int, ...]:
        return tuple(sorted(self._shards))

    def add(self, shard: int) -> None:
        shard = int(shard)
        if shard in self._shards:
            return
        self._shards.add(shard)
        self._points.extend((ring_point(f"shard-{shard}/vnode-{i}"), shard)
                            for i in range(self.vnodes))
        self._points.sort()

    def remove(self, shard: int) -> None:
        shard = int(shard)
        if shard not in self._shards:
            raise KeyError(f"shard {shard} is not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    # ----------------------------------------------------------------- lookup
    def primary(self, key: str) -> int:
        """The shard owning ``key`` (first vnode clockwise of its point)."""
        return self.replicas(key, 1)[0]

    def replicas(self, key: str, r: int) -> list[int]:
        """The first ``min(r, N)`` *distinct* shards clockwise of ``key``.

        Index 0 is the primary; the tail is the deterministic replica set a
        hot key is mirrored onto.  Stable under vnode interleaving: the
        walk skips points of shards already collected.
        """
        if r < 1:
            raise ValueError("need at least one replica")
        r = min(r, len(self._shards))
        start = bisect_right(self._points, (ring_point(key), float("inf")))
        out: list[int] = []
        for i in range(len(self._points)):
            shard = self._points[(start + i) % len(self._points)][1]
            if shard not in out:
                out.append(shard)
                if len(out) == r:
                    break
        return out

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: int) -> bool:
        return int(shard) in self._shards
