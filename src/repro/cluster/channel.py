"""Router-side handle to one shard: process, socket, pipelined in-flight.

A :class:`ShardChannel` owns the link to one worker process — a single
persistent connection with a sender thread (frames from a queue, so
callers never block on the socket) and a reader thread (replies matched to
pending callbacks by rid).  The link is *pipelined*: many requests are
outstanding at once, which is what lets the worker's fingerprint
micro-batcher see whole groups instead of one request per round trip.

Failure is a first-class outcome, not an exception path: when the
connection tears (worker killed, torn frame) or a reply exceeds the
per-request timeout, every pending callback fires with ``None`` — the
router's signal to retry on a replica or reject deterministically.  The
channel itself never retries; policy lives in the router.
"""

from __future__ import annotations

import queue
import socket
import threading
import time

from .protocol import recv_msg, send_msg


class ShardChannel:
    """One worker link: pipelined request/reply with failure callbacks."""

    def __init__(self, shard_id: int, port: int, process=None,
                 connect_timeout_s: float = 10.0):
        self.shard_id = shard_id
        self.port = port
        self.process = process
        self._sock = socket.create_connection(("127.0.0.1", port),
                                              timeout=connect_timeout_s)
        self._sock.settimeout(None)
        self._out: queue.Queue = queue.Queue()
        self._pending: dict[int, tuple] = {}   # rid -> (callback, sent_at)
        self._lock = threading.Lock()
        self._next_rid = 0
        self._healthy = True
        self._closed = False
        #: router-visible load signal for power-of-two-choices
        self.outstanding = 0
        self.last_pong: dict = {}
        self._sender = threading.Thread(
            target=self._send_loop,
            name=f"repro-cluster-ch{shard_id}-send", daemon=True)
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-cluster-ch{shard_id}-read", daemon=True)
        self._sender.start()
        self._reader.start()

    # ----------------------------------------------------------------- state
    @property
    def healthy(self) -> bool:
        with self._lock:
            if not self._healthy:
                return False
        if self.process is not None and not self.process.is_alive():
            return False
        return True

    # ------------------------------------------------------------ submission
    def send(self, msg: dict, on_reply=None) -> int:
        """Queue one frame; ``on_reply(reply | None)`` fires on the reply,
        or with ``None`` when the link fails first.  Returns the rid."""
        with self._lock:
            if not self._healthy or self._closed:
                rid = self._next_rid = self._next_rid + 1
                failed = True
            else:
                rid = self._next_rid = self._next_rid + 1
                failed = False
                if on_reply is not None:
                    self._pending[rid] = (on_reply, time.monotonic())
                    self.outstanding += 1
        if failed:
            if on_reply is not None:
                on_reply(None)
            return rid
        self._out.put(dict(msg, rid=rid))
        return rid

    # -------------------------------------------------------------- internals
    def _send_loop(self) -> None:
        while True:
            msg = self._out.get()
            if msg is None:
                return
            try:
                send_msg(self._sock, msg)
            except (OSError, ValueError):
                self._fail("send failed")
                while self._out.get() is not None:
                    pass
                return

    def _read_loop(self) -> None:
        while True:
            try:
                reply = recv_msg(self._sock)
            except (ConnectionError, OSError):
                reply = None
            if reply is None:
                self._fail("connection closed")
                return
            with self._lock:
                entry = self._pending.pop(reply.get("rid"), None)
                if entry is not None:
                    self.outstanding -= 1
            if entry is not None:
                entry[0](reply)

    def _fail(self, reason: str) -> None:
        """Mark unhealthy and flush every pending callback with ``None``."""
        with self._lock:
            if not self._healthy:
                return
            self._healthy = False
            pending = list(self._pending.values())
            self._pending.clear()
            self.outstanding = 0
        for callback, _ in pending:
            callback(None)

    def fail_timed_out(self, timeout_s: float) -> int:
        """Fail pending entries older than ``timeout_s`` (heartbeat sweep).

        A worker that is alive but wedged never tears the socket; this is
        the bound that turns a wedged shard into retryable failures."""
        now = time.monotonic()
        expired = []
        with self._lock:
            for rid, (callback, sent_at) in list(self._pending.items()):
                if now - sent_at > timeout_s:
                    expired.append(callback)
                    del self._pending[rid]
                    self.outstanding -= 1
        for callback in expired:
            callback(None)
        return len(expired)

    # ------------------------------------------------------------- lifecycle
    def close(self, join_timeout_s: float = 5.0) -> None:
        """Tear the link down and fail anything still pending."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._out.put(None)
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._fail("channel closed")
        self._sender.join(timeout=join_timeout_s)
        self._reader.join(timeout=join_timeout_s)
